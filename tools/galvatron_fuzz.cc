// galvatron_fuzz: deterministic differential-fuzzing driver over the
// search / estimator / simulator / plan-I/O stack (see docs/fuzzing.md).
//
//   galvatron_fuzz                         # 100 iterations of all checks
//   galvatron_fuzz --seed=7 --iterations=1000
//   galvatron_fuzz --checks=memory-model,json-roundtrip
//   galvatron_fuzz --corpus                # the pinned regression corpus
//   galvatron_fuzz --repro=memory-model:0x1234abcd
//
// Every reported failure prints its per-iteration seed; --repro replays
// exactly that iteration. On failure a minimized repro document
// (fuzz_<check>_<seed>.json) is written to --dump-dir. Exit codes: 0 clean,
// 1 failures found, 2 usage error.

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "testing/corpus.h"
#include "testing/invariant_checks.h"
#include "util/string_util.h"

namespace galvatron {
namespace {

struct FuzzCliArgs {
  uint64_t seed = 1;
  int iterations = 100;
  std::vector<FuzzCheck> checks;  // empty = all
  bool corpus = false;
  bool list_checks = false;
  bool has_repro = false;
  FuzzCheck repro_check = FuzzCheck::kPlanValidity;
  uint64_t repro_seed = 0;
  std::string dump_dir = ".";
};

void PrintUsage(std::FILE* out) {
  std::fprintf(out,
               "usage: galvatron_fuzz [options]\n"
               "  --seed=N            base seed of the campaign (default 1)\n"
               "  --iterations=N      iterations per check (default 100)\n"
               "  --checks=a,b,...    subset of checks (default: all "
               "seven)\n"
               "  --corpus            run the pinned seed/JSON corpus only\n"
               "  --repro=CHECK:SEED  replay one reported iteration\n"
               "  --dump-dir=PATH     where failure repros are written "
               "(default .)\n"
               "  --list-checks       print the check names and exit\n");
}

Result<uint64_t> ParseU64(const std::string& text) {
  if (text.empty()) return Status::InvalidArgument("empty number");
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 0);
  if (errno != 0 || end != text.c_str() + text.size()) {
    return Status::InvalidArgument(
        StrFormat("bad number '%s'", text.c_str()));
  }
  return static_cast<uint64_t>(v);
}

Result<FuzzCliArgs> ParseArgs(int argc, char** argv) {
  FuzzCliArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const std::string& prefix) -> std::optional<std::string> {
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
      return std::nullopt;
    };
    if (arg == "--help" || arg == "-h") {
      PrintUsage(stdout);
      std::exit(0);
    } else if (arg == "--corpus") {
      args.corpus = true;
    } else if (arg == "--list-checks") {
      args.list_checks = true;
    } else if (auto v = value_of("--seed=")) {
      GALVATRON_ASSIGN_OR_RETURN(args.seed, ParseU64(*v));
    } else if (auto v = value_of("--iterations=")) {
      GALVATRON_ASSIGN_OR_RETURN(uint64_t n, ParseU64(*v));
      if (n == 0 || n > 1000000) {
        return Status::InvalidArgument("iterations must be in [1, 1000000]");
      }
      args.iterations = static_cast<int>(n);
    } else if (auto v = value_of("--checks=")) {
      std::string rest = *v;
      while (!rest.empty()) {
        const size_t comma = rest.find(',');
        const std::string token = rest.substr(0, comma);
        GALVATRON_ASSIGN_OR_RETURN(FuzzCheck check,
                                   FuzzCheckFromString(token));
        args.checks.push_back(check);
        if (comma == std::string::npos) break;
        rest = rest.substr(comma + 1);
      }
      if (args.checks.empty()) {
        return Status::InvalidArgument("--checks needs at least one name");
      }
    } else if (auto v = value_of("--repro=")) {
      const size_t colon = v->find(':');
      if (colon == std::string::npos) {
        return Status::InvalidArgument("--repro wants CHECK:SEED");
      }
      GALVATRON_ASSIGN_OR_RETURN(args.repro_check,
                                 FuzzCheckFromString(v->substr(0, colon)));
      GALVATRON_ASSIGN_OR_RETURN(args.repro_seed,
                                 ParseU64(v->substr(colon + 1)));
      args.has_repro = true;
    } else if (auto v = value_of("--dump-dir=")) {
      args.dump_dir = *v;
    } else {
      return Status::InvalidArgument(StrFormat("unknown flag '%s'",
                                               arg.c_str()));
    }
  }
  return args;
}

void DumpFailure(const CheckFailure& failure, const std::string& dump_dir) {
  const std::string path = StrFormat(
      "%s/fuzz_%s_%llx.json", dump_dir.c_str(),
      std::string(FuzzCheckToString(failure.check)).c_str(),
      static_cast<unsigned long long>(failure.seed));
  std::ofstream out(path);
  if (out) {
    out << failure.repro_json;
    std::fprintf(stderr, "  repro written to %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "  (could not write repro to %s)\n", path.c_str());
  }
}

void PrintFailure(const CheckFailure& failure, const std::string& dump_dir) {
  std::fprintf(stderr, "FAIL [%s] seed=0x%llx\n  %s\n",
               std::string(FuzzCheckToString(failure.check)).c_str(),
               static_cast<unsigned long long>(failure.seed),
               failure.detail.c_str());
  std::fprintf(stderr, "  replay: galvatron_fuzz --repro=%s:0x%llx\n",
               std::string(FuzzCheckToString(failure.check)).c_str(),
               static_cast<unsigned long long>(failure.seed));
  DumpFailure(failure, dump_dir);
}

int Main(int argc, char** argv) {
  Result<FuzzCliArgs> args_or = ParseArgs(argc, argv);
  if (!args_or.ok()) {
    std::fprintf(stderr, "galvatron_fuzz: %s\n",
                 args_or.status().ToString().c_str());
    PrintUsage(stderr);
    return 2;
  }
  const FuzzCliArgs& args = *args_or;

  if (args.list_checks) {
    for (int i = 0; i < kNumFuzzChecks; ++i) {
      std::printf("%s\n",
                  std::string(FuzzCheckToString(static_cast<FuzzCheck>(i)))
                      .c_str());
    }
    return 0;
  }

  if (args.has_repro) {
    std::optional<CheckFailure> failure =
        RunCheck(args.repro_check, args.repro_seed);
    if (failure.has_value()) {
      PrintFailure(*failure, args.dump_dir);
      return 1;
    }
    std::printf("PASS [%s] seed=0x%llx\n",
                std::string(FuzzCheckToString(args.repro_check)).c_str(),
                static_cast<unsigned long long>(args.repro_seed));
    return 0;
  }

  if (args.corpus) {
    const std::vector<CheckFailure> failures = RunCorpus();
    for (const CheckFailure& failure : failures) {
      PrintFailure(failure, args.dump_dir);
    }
    const int cases = static_cast<int>(SeedCorpus().size()) +
                      static_cast<int>(JsonCorpus().size());
    std::printf("corpus: %d cases, %d failures\n", cases,
                static_cast<int>(failures.size()));
    return failures.empty() ? 0 : 1;
  }

  FuzzOptions options;
  options.seed = args.seed;
  options.iterations = args.iterations;
  options.checks = args.checks;
  const FuzzReport report = RunFuzz(options);
  for (const CheckFailure& failure : report.failures) {
    PrintFailure(failure, args.dump_dir);
  }
  std::printf("fuzz: seed=0x%llx, %d iterations run, %d failures\n",
              static_cast<unsigned long long>(args.seed),
              report.iterations_run,
              static_cast<int>(report.failures.size()));
  return report.ok() ? 0 : 1;
}

}  // namespace
}  // namespace galvatron

int main(int argc, char** argv) { return galvatron::Main(argc, argv); }
