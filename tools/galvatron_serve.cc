/// galvatron_serve — the plan-serving daemon: an HTTP/1.1 + JSON service
/// that answers hybrid-parallelism planning requests from a process-lifetime
/// cache hierarchy (response-level PlanCache above per-signature
/// SharedCostCaches).
///
///   galvatron_serve --port 8080 --threads 4
///   curl -s localhost:8080/healthz
///   curl -s -d @request.json localhost:8080/v1/plan
///   curl -s localhost:8080/metrics       # Prometheus text exposition
///
/// See docs/serving.md for the wire format. SIGINT/SIGTERM drain in-flight
/// requests before exiting.

#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "serve/handlers.h"
#include "serve/http_server.h"
#include "serve/metrics.h"

namespace galvatron {
namespace serve {
namespace {

struct ServeArgs {
  std::string host = "127.0.0.1";
  int port = 8080;
  int threads = 4;
  int max_in_flight = 64;
  int plan_cache_entries = 128;
  int context_cache_entries = 8;
  int max_body_kb = 8192;
  int io_timeout_ms = 5000;
  double deadline_ms = 0.0;  // default per-request deadline; 0 = unlimited
  int async_workers = 2;
  int async_jobs = 128;
  std::string plan_cache_file;  // persistent journal; empty = in-memory only
  int plan_cache_journal_max_kb = 0;  // size-triggered compaction; 0 = off
  int calibration_samples = 65536;    // /v1/measure observations retained
  bool help = false;
};

void PrintUsage() {
  std::printf(R"(galvatron_serve: HTTP/JSON planning service

  --host ADDR              bind address (default 127.0.0.1)
  --port N                 port; 0 asks the kernel for an ephemeral one
                           (default 8080)
  --threads N              worker threads (default 4)
  --max-in-flight N        admission limit; excess requests get 429
                           (default 64)
  --plan-cache-entries N   response-level LRU entries, 0 disables
                           (default 128)
  --context-cache-entries N  warm (model, cluster) contexts, each holding a
                           shared cost cache (default 8)
  --max-body-kb N          request body limit; larger bodies get 413
                           (default 8192)
  --io-timeout-ms N        per-connection socket timeout; stalled clients
                           get 408 (default 5000)
  --deadline-ms X          default per-request search deadline; an expired
                           sweep gets 504 (default 0 = unlimited)
  --plan-cache-file PATH   persistent plan-cache journal, replayed on
                           startup and compacted on drain (default off)
  --plan-cache-journal-max-kb N  compact the journal whenever it grows past
                           N KiB (default 0 = only compact on drain)
  --calibration-samples N  traced /v1/measure comm observations retained for
                           POST /v1/calibrate; 0 disables capture
                           (default 65536)
  --async-workers N        threads executing "async": true plan requests
                           (default 2)
  --async-jobs N           async jobs retained for polling (default 128)

Endpoints: POST /v1/plan, GET /v1/plan/<id>, POST /v1/measure,
POST /v1/calibrate, GET /healthz, GET /metrics.
)");
}

Result<ServeArgs> ParseArgs(int argc, char** argv) {
  ServeArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> Result<std::string> {
      if (i + 1 >= argc) {
        return Status::InvalidArgument(flag + " needs a value");
      }
      return std::string(argv[++i]);
    };
    auto next_int = [&](int min_value) -> Result<int> {
      GALVATRON_ASSIGN_OR_RETURN(std::string v, next());
      const int parsed = std::atoi(v.c_str());
      if (parsed < min_value) {
        return Status::InvalidArgument(
            flag + " must be >= " + std::to_string(min_value));
      }
      return parsed;
    };
    if (flag == "--host") {
      GALVATRON_ASSIGN_OR_RETURN(args.host, next());
    } else if (flag == "--port") {
      GALVATRON_ASSIGN_OR_RETURN(args.port, next_int(0));
    } else if (flag == "--threads") {
      GALVATRON_ASSIGN_OR_RETURN(args.threads, next_int(1));
    } else if (flag == "--max-in-flight") {
      GALVATRON_ASSIGN_OR_RETURN(args.max_in_flight, next_int(1));
    } else if (flag == "--plan-cache-entries") {
      GALVATRON_ASSIGN_OR_RETURN(args.plan_cache_entries, next_int(0));
    } else if (flag == "--context-cache-entries") {
      GALVATRON_ASSIGN_OR_RETURN(args.context_cache_entries, next_int(1));
    } else if (flag == "--max-body-kb") {
      GALVATRON_ASSIGN_OR_RETURN(args.max_body_kb, next_int(1));
    } else if (flag == "--io-timeout-ms") {
      GALVATRON_ASSIGN_OR_RETURN(args.io_timeout_ms, next_int(100));
    } else if (flag == "--plan-cache-file") {
      GALVATRON_ASSIGN_OR_RETURN(args.plan_cache_file, next());
    } else if (flag == "--plan-cache-journal-max-kb") {
      GALVATRON_ASSIGN_OR_RETURN(args.plan_cache_journal_max_kb, next_int(0));
    } else if (flag == "--calibration-samples") {
      GALVATRON_ASSIGN_OR_RETURN(args.calibration_samples, next_int(0));
    } else if (flag == "--async-workers") {
      GALVATRON_ASSIGN_OR_RETURN(args.async_workers, next_int(1));
    } else if (flag == "--async-jobs") {
      GALVATRON_ASSIGN_OR_RETURN(args.async_jobs, next_int(1));
    } else if (flag == "--deadline-ms") {
      GALVATRON_ASSIGN_OR_RETURN(std::string v, next());
      args.deadline_ms = std::atof(v.c_str());
      if (args.deadline_ms < 0) {
        return Status::InvalidArgument("--deadline-ms must be >= 0");
      }
    } else if (flag == "--help" || flag == "-h") {
      args.help = true;
    } else {
      return Status::InvalidArgument("unknown flag " + flag);
    }
  }
  return args;
}

// Self-pipe: the signal handler only writes one byte; the main thread
// blocks on the read end and runs the (non-async-signal-safe) drain there.
int g_signal_pipe[2] = {-1, -1};

void OnSignal(int) {
  const char byte = 1;
  [[maybe_unused]] ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

Result<int> RunServe(const ServeArgs& args) {
  if (::pipe(g_signal_pipe) != 0) {
    return Status::Internal(
        std::string("pipe failed: ") + std::strerror(errno));
  }
  struct sigaction action{};
  action.sa_handler = OnSignal;
  ::sigemptyset(&action.sa_mask);
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);

  ServeMetrics metrics;
  PlanServiceOptions service_options;
  service_options.plan_cache_entries =
      static_cast<size_t>(args.plan_cache_entries);
  service_options.context_cache_entries =
      static_cast<size_t>(args.context_cache_entries);
  service_options.default_deadline_ms = args.deadline_ms;
  service_options.plan_cache_journal = args.plan_cache_file;
  service_options.plan_cache_journal_max_bytes =
      static_cast<int64_t>(args.plan_cache_journal_max_kb) * 1024;
  service_options.calibration_sample_capacity =
      static_cast<size_t>(args.calibration_samples);
  service_options.async_workers = args.async_workers;
  service_options.async_jobs = static_cast<size_t>(args.async_jobs);
  service_options.metrics = &metrics;
  PlanService service(service_options);

  HttpServerOptions server_options;
  server_options.bind_address = args.host;
  server_options.port = args.port;
  server_options.num_threads = args.threads;
  server_options.max_in_flight = args.max_in_flight;
  server_options.max_body_bytes = static_cast<size_t>(args.max_body_kb) * 1024;
  server_options.io_timeout_ms = args.io_timeout_ms;
  server_options.metrics = &metrics;
  GALVATRON_ASSIGN_OR_RETURN(
      std::unique_ptr<HttpServer> server,
      HttpServer::Start(server_options, [&service](const HttpRequest& request) {
        return service.Handle(request);
      }));

  // The parent (tests, scripts) parses this line for the resolved port.
  std::printf("galvatron_serve listening on %s:%d\n", args.host.c_str(),
              server->port());
  std::fflush(stdout);

  char byte;
  while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }
  std::printf("galvatron_serve draining...\n");
  std::fflush(stdout);
  server->Shutdown();  // stops accepting, waits for in-flight requests
  std::printf("galvatron_serve stopped\n");
  return 0;
}

}  // namespace
}  // namespace serve
}  // namespace galvatron

int main(int argc, char** argv) {
  auto args = galvatron::serve::ParseArgs(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.status().ToString().c_str());
    galvatron::serve::PrintUsage();
    return 1;
  }
  if (args->help) {
    galvatron::serve::PrintUsage();
    return 0;
  }
  auto exit_code = galvatron::serve::RunServe(*args);
  if (!exit_code.ok()) {
    std::fprintf(stderr, "%s\n", exit_code.status().ToString().c_str());
    return 1;
  }
  return *exit_code;
}
