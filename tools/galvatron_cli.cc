/// galvatron_cli — plan hybrid-parallel Transformer training from the
/// command line.
///
/// Examples:
///   galvatron_cli --model bert-huge-32 --nodes 1 --gpus 8 --memory-gb 16
///   galvatron_cli --model swin-huge-48 --memory-gb 8 --recompute \
///       --schedule 1f1b --json-out plan.json --trace-out trace.json
///   galvatron_cli --model vit-huge-32 --mode sdp        # a pure baseline
///   galvatron_cli --list-models

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "api/galvatron.h"
#include "api/plan_io.h"
#include "calibrate/fit.h"
#include "calibrate/profile.h"
#include "serve/http.h"
#include "trace/analyzer.h"
#include "trace/export.h"
#include "trace/trace.h"
#include "util/json.h"
#include "util/string_util.h"

namespace galvatron {
namespace {

struct CliArgs {
  std::string model = "bert-huge-32";
  int nodes = 1;
  int gpus_per_node = 8;
  double memory_gb = 16;
  std::string intra_link = "pcie";
  std::string inter_link = "ib";
  std::string topology_file;  // heterogeneous cluster spec (JSON)
  std::string mode = "galvatron";
  std::string schedule = "gpipe";
  bool recompute = false;
  bool dense_dp = false;
  int search_threads = 1;
  std::string json_out;
  std::string trace_out;
  std::string explain_json;  // attribution report as JSON
  bool explain = false;      // print the attribution table
  /// Attribution reports to fit a calibration profile from (--calibrate,
  /// repeatable / comma-separated). Non-empty switches the CLI into
  /// fit-and-exit mode; the profile is written to `calibration_file`.
  std::vector<std::string> calibrate_inputs;
  std::string calibration_file;  // profile to write (fit) or apply (plan)
  std::string server;       // host:port of a galvatron_serve daemon
  double deadline_ms = 0;   // per-request server deadline (0 = none)
  bool async_plan = false;  // submit async, then poll /v1/plan/<id>
  bool list_models = false;
  bool help = false;
};

void PrintUsage() {
  std::printf(R"(galvatron_cli: automatic hybrid-parallel training plans

  --model NAME        model from the zoo (--list-models); default bert-huge-32
  --nodes N           number of nodes (default 1)
  --gpus N            GPUs per node (default 8)
  --memory-gb G       per-GPU memory budget in decimal GB (default 16)
  --intra-link L      pcie | nvlink        (default pcie)
  --inter-link L      ib | ethernet        (default ib)
  --topology FILE     plan on a heterogeneous cluster loaded from a
                      topology JSON file ({"name", "topology": {"nodes",
                      "islands"}}, see docs/topology.md); replaces
                      --nodes/--gpus/--memory-gb/--*-link
  --mode M            galvatron | dp | tp | pp | sdp | 3d | dp+tp | dp+pp
  --schedule S        gpipe | 1f1b         (default gpipe)
  --recompute         allow per-layer activation checkpointing
  --dense-dp          use the dense DP kernel instead of the sparse
                      Pareto-frontier one (same plan, more work; debugging)
  --search-threads N  worker threads for the strategy sweep
                      (default 1 = serial, 0 = all hardware threads;
                      the resulting plan is identical for every N)
  --json-out FILE     write the plan as JSON
  --trace FILE        write a Chrome trace of the simulated iteration
                      (load in https://ui.perfetto.dev; --trace-out is an
                      alias). One track per simulated stream, slices
                      colored by cost category, per-device memory counters
  --explain           print the per-category time-attribution table:
                      critical-path breakdown, busy and contention-lost
                      seconds (rows sum to the iteration time)
  --explain-json FILE write the machine-readable attribution report
                      (--attribution is an alias); includes the
                      comm_samples the calibration fitter ingests
  --calibrate FILES   fit a calibration profile from one or more
                      attribution reports (comma-separated, flag
                      repeatable) and write it to the --calibration path,
                      then exit. See docs/calibration.md
  --calibration FILE  with --calibrate: where to write the fitted profile.
                      Alone: load the profile and apply it to the
                      estimator while planning (absent profile keeps the
                      analytic estimates byte-identical)
  --server HOST:PORT  don't search locally; POST the request to a running
                      galvatron_serve daemon and print its answer
  --deadline-ms X     per-request search deadline in server mode
  --async             server mode: submit with "async": true, then poll
                      GET /v1/plan/<id> until the plan is ready
  --list-models       print zoo models and exit
)");
}

Result<ModelId> FindModel(const std::string& name) {
  for (ModelId id : AllModelIds()) {
    std::string candidate(ModelIdToString(id));
    for (char& c : candidate) c = static_cast<char>(std::tolower(c));
    if (candidate == name) return id;
  }
  return Status::NotFound(StrFormat("unknown model '%s'", name.c_str()));
}

Result<BaselineKind> FindMode(const std::string& mode) {
  static const std::map<std::string, BaselineKind> kModes = {
      {"galvatron", BaselineKind::kGalvatron},
      {"dp", BaselineKind::kPureDp},
      {"tp", BaselineKind::kPureTp},
      {"pp", BaselineKind::kPurePp},
      {"sdp", BaselineKind::kPureSdp},
      {"3d", BaselineKind::kDeepSpeed3d},
      {"dp+tp", BaselineKind::kAutoDpTp},
      {"dp+pp", BaselineKind::kAutoDpPp},
  };
  auto it = kModes.find(mode);
  if (it == kModes.end()) {
    return Status::InvalidArgument(StrFormat("unknown mode '%s'",
                                             mode.c_str()));
  }
  return it->second;
}

Result<CliArgs> ParseArgs(int argc, char** argv) {
  CliArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> Result<std::string> {
      if (i + 1 >= argc) {
        return Status::InvalidArgument(flag + " needs a value");
      }
      return std::string(argv[++i]);
    };
    if (flag == "--model") {
      GALVATRON_ASSIGN_OR_RETURN(args.model, next());
    } else if (flag == "--nodes") {
      GALVATRON_ASSIGN_OR_RETURN(std::string v, next());
      args.nodes = std::atoi(v.c_str());
    } else if (flag == "--gpus") {
      GALVATRON_ASSIGN_OR_RETURN(std::string v, next());
      args.gpus_per_node = std::atoi(v.c_str());
    } else if (flag == "--memory-gb") {
      GALVATRON_ASSIGN_OR_RETURN(std::string v, next());
      args.memory_gb = std::atof(v.c_str());
    } else if (flag == "--intra-link") {
      GALVATRON_ASSIGN_OR_RETURN(args.intra_link, next());
    } else if (flag == "--inter-link") {
      GALVATRON_ASSIGN_OR_RETURN(args.inter_link, next());
    } else if (flag == "--topology") {
      GALVATRON_ASSIGN_OR_RETURN(args.topology_file, next());
    } else if (flag == "--mode") {
      GALVATRON_ASSIGN_OR_RETURN(args.mode, next());
    } else if (flag == "--schedule") {
      GALVATRON_ASSIGN_OR_RETURN(args.schedule, next());
    } else if (flag == "--recompute") {
      args.recompute = true;
    } else if (flag == "--dense-dp") {
      args.dense_dp = true;
    } else if (flag == "--search-threads") {
      GALVATRON_ASSIGN_OR_RETURN(std::string v, next());
      // Negative values are rejected by the optimizer's options validation
      // (one authority for every entry point: CLI, API, serve); the
      // InvalidArgument it returns is reported on stderr like any other.
      args.search_threads = std::atoi(v.c_str());
    } else if (flag == "--json-out") {
      GALVATRON_ASSIGN_OR_RETURN(args.json_out, next());
    } else if (flag == "--trace" || flag == "--trace-out") {
      GALVATRON_ASSIGN_OR_RETURN(args.trace_out, next());
    } else if (flag == "--explain") {
      args.explain = true;
    } else if (flag == "--explain-json" || flag == "--attribution") {
      GALVATRON_ASSIGN_OR_RETURN(args.explain_json, next());
    } else if (flag == "--calibrate") {
      GALVATRON_ASSIGN_OR_RETURN(std::string v, next());
      size_t start = 0;
      while (start <= v.size()) {
        const size_t comma = v.find(',', start);
        const std::string part =
            v.substr(start, comma == std::string::npos ? std::string::npos
                                                       : comma - start);
        if (!part.empty()) args.calibrate_inputs.push_back(part);
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
      if (args.calibrate_inputs.empty()) {
        return Status::InvalidArgument(
            "--calibrate needs at least one attribution report");
      }
    } else if (flag == "--calibration") {
      GALVATRON_ASSIGN_OR_RETURN(args.calibration_file, next());
    } else if (flag == "--server") {
      GALVATRON_ASSIGN_OR_RETURN(args.server, next());
    } else if (flag == "--deadline-ms") {
      GALVATRON_ASSIGN_OR_RETURN(std::string v, next());
      args.deadline_ms = std::atof(v.c_str());
      if (args.deadline_ms <= 0) {
        return Status::InvalidArgument("--deadline-ms must be > 0");
      }
    } else if (flag == "--async") {
      args.async_plan = true;
    } else if (flag == "--list-models") {
      args.list_models = true;
    } else if (flag == "--help" || flag == "-h") {
      args.help = true;
    } else {
      return Status::InvalidArgument("unknown flag " + flag);
    }
  }
  return args;
}

ClusterSpec BuildCliCluster(const CliArgs& args) {
  const LinkClass intra = args.intra_link == "nvlink" ? LinkClass::kNvLink
                                                      : LinkClass::kPcie3;
  const LinkClass inter = args.inter_link == "ethernet"
                              ? LinkClass::kEthernet10
                              : LinkClass::kInfiniBand100;
  return MakeHomogeneousCluster(
      "cli-cluster", args.nodes, args.gpus_per_node,
      static_cast<int64_t>(args.memory_gb * 1e9),
      /*sustained_flops=*/args.intra_link == "nvlink" ? 17e12 : 6.5e12, intra,
      inter);
}

/// The planning cluster: a homogeneous one from the shape flags, or a
/// (possibly heterogeneous, graph-priced) one loaded from --topology.
Result<ClusterSpec> LoadCliCluster(const CliArgs& args) {
  if (args.topology_file.empty()) {
    if (args.nodes < 1 || args.gpus_per_node < 1 || args.memory_gb <= 0) {
      return Status::InvalidArgument("bad cluster shape");
    }
    return BuildCliCluster(args);
  }
  std::ifstream in(args.topology_file);
  if (!in) {
    return Status::NotFound("cannot read topology file " +
                            args.topology_file);
  }
  std::string json((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return ParseTopologyClusterJson(json);
}

/// --calibrate mode: ingest attribution reports (galvatron_cli
/// --attribution, or /v1/measure with "explain"), fit per-(link class,
/// collective kind, size bucket) comm scales plus the overlap slowdown, and
/// write the profile to the --calibration path.
Result<int> RunCalibrate(const CliArgs& args) {
  if (args.calibration_file.empty()) {
    return Status::InvalidArgument(
        "--calibrate needs --calibration FILE naming the output profile");
  }
  std::vector<calibrate::CommObservation> observations;
  double overlap = 0.0;
  for (const std::string& path : args.calibrate_inputs) {
    std::ifstream in(path);
    if (!in) {
      return Status::NotFound("cannot read attribution report " + path);
    }
    std::string json((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    GALVATRON_ASSIGN_OR_RETURN(calibrate::AttributionSamples samples,
                               calibrate::ParseAttributionSamples(json));
    observations.insert(observations.end(), samples.observations.begin(),
                        samples.observations.end());
    overlap = std::max(overlap, samples.overlap_slowdown_estimate);
    std::printf("ingested %s: %d comm samples\n", path.c_str(),
                static_cast<int>(samples.observations.size()));
  }
  GALVATRON_ASSIGN_OR_RETURN(
      calibrate::CalibrationProfile profile,
      calibrate::FitCalibrationProfile(observations, overlap));
  std::ofstream out(args.calibration_file);
  if (!out) return Status::Internal("cannot write " + args.calibration_file);
  out << calibrate::CalibrationProfileToJson(profile) << "\n";
  std::printf(
      "fitted %d calibration groups from %lld samples (overlap slowdown "
      "%s)\nprofile written to %s\n",
      static_cast<int>(profile.groups.size()),
      static_cast<long long>(profile.fitted_events),
      profile.overlap_slowdown > 0.0
          ? StrFormat("%.3f", profile.overlap_slowdown).c_str()
          : "unset",
      args.calibration_file.c_str());
  return 0;
}

/// --calibration (planning mode): load and validate a fitted profile.
Result<calibrate::CalibrationProfile> LoadCalibration(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot read calibration profile " + path);
  std::string json((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return calibrate::ParseCalibrationProfileJson(json);
}

/// --server mode: ship the same planning request to a galvatron_serve
/// daemon over HTTP and render its answer like a local run would be.
Result<int> RunRemote(const CliArgs& args) {
  if (args.mode != "galvatron") {
    return Status::InvalidArgument(
        "--mode baselines run locally; the server always answers with the "
        "full Galvatron search");
  }
  if (!args.trace_out.empty() || args.explain || !args.explain_json.empty()) {
    return Status::InvalidArgument(
        "--trace/--explain are local-only (POST /v1/measure with "
        "\"explain\": true for a served attribution summary)");
  }
  if (!args.calibration_file.empty()) {
    return Status::InvalidArgument(
        "--calibration is local-only (POST /v1/calibrate fits and applies "
        "a profile on the daemon)");
  }
  const size_t colon = args.server.rfind(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument("--server expects HOST:PORT");
  }
  const std::string host = args.server.substr(0, colon);
  const int port = std::atoi(args.server.c_str() + colon + 1);
  if (port <= 0 || port > 65535) {
    return Status::InvalidArgument("--server expects HOST:PORT");
  }

  GALVATRON_ASSIGN_OR_RETURN(ModelId model_id, FindModel(args.model));
  GALVATRON_ASSIGN_OR_RETURN(const ClusterSpec cluster,
                             LoadCliCluster(args));

  std::string body = StrFormat(
      "{\"model\": \"%s\", \"cluster\": %s, \"options\": "
      "{\"schedule\": \"%s\", \"allow_recompute\": %s, "
      "\"use_sparse_dp\": %s, \"search_threads\": %d}",
      std::string(ModelIdToString(model_id)).c_str(),
      ClusterSpecToJson(cluster).c_str(),
      args.schedule == "1f1b" ? "1f1b" : "gpipe",
      args.recompute ? "true" : "false", args.dense_dp ? "false" : "true",
      args.search_threads);
  if (args.deadline_ms > 0) {
    body += StrFormat(", \"deadline_ms\": %s",
                      JsonNumber(args.deadline_ms).c_str());
  }
  if (args.async_plan) body += ", \"async\": true";
  body += "}";

  GALVATRON_ASSIGN_OR_RETURN(
      serve::HttpResponse response,
      serve::HttpFetch(host, port, "POST", "/v1/plan", body));
  if (args.async_plan) {
    if (response.status != 202) {
      std::fprintf(stderr, "server answered HTTP %d: %s\n", response.status,
                   response.body.c_str());
      return 1;
    }
    GALVATRON_ASSIGN_OR_RETURN(JsonValue accepted, ParseJson(response.body));
    GALVATRON_ASSIGN_OR_RETURN(const std::string poll,
                               GetString(accepted, "poll"));
    std::printf("accepted: polling %s\n", poll.c_str());
    // Poll until the job resolves. The terminal response is byte-identical
    // to what the synchronous request would have returned.
    for (;;) {
      GALVATRON_ASSIGN_OR_RETURN(response,
                                 serve::HttpFetch(host, port, "GET", poll, ""));
      if (response.status != 202) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  if (response.status != 200) {
    std::fprintf(stderr, "server answered HTTP %d: %s\n", response.status,
                 response.body.c_str());
    return 1;
  }
  GALVATRON_ASSIGN_OR_RETURN(JsonValue root, ParseJson(response.body));
  GALVATRON_ASSIGN_OR_RETURN(
      const JsonValue* plan_value,
      GetMember(root, "plan", JsonValue::Kind::kObject));
  GALVATRON_ASSIGN_OR_RETURN(TrainingPlan plan,
                             PlanFromJsonValue(*plan_value));
  GALVATRON_ASSIGN_OR_RETURN(bool cache_hit, GetBool(root, "plan_cache_hit"));

  std::printf("%s\n", plan.ToString().c_str());
  if (const JsonValue* stats = FindMember(root, "search_stats")) {
    GALVATRON_ASSIGN_OR_RETURN(int configs,
                               GetInt(*stats, "configs_explored", 0));
    GALVATRON_ASSIGN_OR_RETURN(int64_t hits,
                               GetInt64(*stats, "cost_cache_hits", 0));
    GALVATRON_ASSIGN_OR_RETURN(int64_t misses,
                               GetInt64(*stats, "cost_cache_misses", 0));
    std::printf("server search: %d configs; cost cache %lld hits, %lld "
                "misses%s\n",
                configs, static_cast<long long>(hits),
                static_cast<long long>(misses),
                cache_hit ? "  [served from plan cache]" : "");
  }
  if (const JsonValue* estimated = FindMember(root, "estimated")) {
    GALVATRON_ASSIGN_OR_RETURN(
        double throughput,
        GetDouble(*estimated, "throughput_samples_per_sec"));
    std::printf("estimated: %.2f samples/s\n", throughput);
  }
  if (!args.json_out.empty()) {
    std::ofstream out(args.json_out);
    if (!out) return Status::Internal("cannot write " + args.json_out);
    out << PlanToJson(plan);
    std::printf("plan written to %s\n", args.json_out.c_str());
  }
  return 0;
}

Result<int> RunCli(const CliArgs& args) {
  if (args.list_models) {
    for (ModelId id : AllModelIds()) {
      std::string name(ModelIdToString(id));
      for (char& c : name) c = static_cast<char>(std::tolower(c));
      ModelStatistics stats = ComputeStatistics(BuildModel(id));
      std::printf("%-14s %6.0fM params, %8.1f MB activations/sample\n",
                  name.c_str(), stats.param_count / 1e6,
                  stats.activation_bytes_per_sample / 1048576.0);
    }
    return 0;
  }

  if (!args.calibrate_inputs.empty()) {
    if (!args.server.empty()) {
      return Status::InvalidArgument(
          "--calibrate runs locally (POST /v1/calibrate fits on the "
          "daemon)");
    }
    return RunCalibrate(args);
  }
  if (!args.server.empty()) return RunRemote(args);

  GALVATRON_ASSIGN_OR_RETURN(ModelId model_id, FindModel(args.model));
  GALVATRON_ASSIGN_OR_RETURN(BaselineKind mode, FindMode(args.mode));

  GALVATRON_ASSIGN_OR_RETURN(ClusterSpec cluster, LoadCliCluster(args));

  // Loaded up front so the profile outlives every estimator built below.
  calibrate::CalibrationProfile calibration;
  bool have_calibration = false;
  if (!args.calibration_file.empty()) {
    GALVATRON_ASSIGN_OR_RETURN(calibration,
                               LoadCalibration(args.calibration_file));
    have_calibration = true;
  }

  ModelSpec model = BuildModel(model_id);
  std::printf("model:   %s (%.0fM params)\n", model.name().c_str(),
              model.TotalParams() / 1e6);
  std::printf("cluster: %s\n", cluster.ToString().c_str());
  if (have_calibration) {
    std::printf("calibration: %d groups from %lld samples (%s)\n",
                static_cast<int>(calibration.groups.size()),
                static_cast<long long>(calibration.fitted_events),
                args.calibration_file.c_str());
  }
  std::printf("\n");

  BaselineOptions options;
  options.search_threads = args.search_threads;
  options.use_sparse_dp = !args.dense_dp;
  if (have_calibration) options.estimator.calibration = &calibration;
  auto result = RunBaseline(mode, model, cluster, options);
  if (!result.ok()) {
    if (result.status().IsInfeasible()) {
      std::printf("OOM: %s\n", result.status().message().c_str());
      return 2;
    }
    return result.status();
  }
  // CLI-only knobs re-run the full optimizer when requested.
  if (mode == BaselineKind::kGalvatron &&
      (args.recompute || args.schedule == "1f1b")) {
    OptimizerOptions opt;
    opt.allow_recompute = args.recompute;
    opt.search_threads = args.search_threads;
    opt.use_sparse_dp = !args.dense_dp;
    if (have_calibration) opt.estimator.calibration = &calibration;
    opt.schedule = args.schedule == "1f1b" ? PipelineSchedule::k1F1B
                                           : PipelineSchedule::kGPipe;
    GALVATRON_ASSIGN_OR_RETURN(OptimizationResult tuned,
                               Optimizer(&cluster, opt).Optimize(model));
    result = std::move(tuned);
  }

  std::printf("%s\n", result->plan.ToString().c_str());
  if (result->stats.configs_explored > 0) {
    const SearchStats& sstats = result->stats;
    std::printf(
        "search: %.3fs on %d threads (%d configs; cost cache %lld hits, "
        "%lld misses)\n",
        sstats.search_seconds, sstats.search_threads_used,
        sstats.configs_explored,
        static_cast<long long>(sstats.cost_cache_hits),
        static_cast<long long>(sstats.cost_cache_misses));
  }

  const bool want_trace =
      !args.trace_out.empty() || args.explain || !args.explain_json.empty();
  SimOptions sim_options;
  sim_options.record_trace = want_trace;
  Simulator simulator(&cluster, sim_options);
  SimTrace sim_trace;
  GALVATRON_ASSIGN_OR_RETURN(
      SimMetrics metrics,
      want_trace ? simulator.Run(model, result->plan, &sim_trace)
                 : simulator.Run(model, result->plan));
  std::printf("estimated: %.2f samples/s\n",
              result->estimated.throughput_samples_per_sec);
  std::printf("simulated: %.2f samples/s, iteration %.3fs, peak %s%s\n",
              metrics.throughput_samples_per_sec, metrics.iteration_seconds,
              HumanBytes(static_cast<double>(metrics.max_peak_memory_bytes))
                  .c_str(),
              metrics.oom ? "  ** EXCEEDS BUDGET **" : "");

  if (!args.json_out.empty()) {
    std::ofstream out(args.json_out);
    if (!out) return Status::Internal("cannot write " + args.json_out);
    out << PlanToJson(result->plan);
    std::printf("plan written to %s\n", args.json_out.c_str());
  }
  if (want_trace) {
    GALVATRON_ASSIGN_OR_RETURN(trace::ExecutionTrace exec_trace,
                               trace::RecordTrace(sim_trace));
    GALVATRON_ASSIGN_OR_RETURN(trace::AttributionReport report,
                               trace::Analyze(exec_trace));
    if (args.explain) {
      std::printf("\n%s",
                  trace::RenderAttributionTable(exec_trace, report).c_str());
    }
    if (!args.trace_out.empty()) {
      std::ofstream out(args.trace_out);
      if (!out) return Status::Internal("cannot write " + args.trace_out);
      out << trace::ToChromeTraceJson(exec_trace) << "\n";
      std::printf("trace written to %s (open in https://ui.perfetto.dev)\n",
                  args.trace_out.c_str());
    }
    if (!args.explain_json.empty()) {
      std::ofstream out(args.explain_json);
      if (!out) return Status::Internal("cannot write " + args.explain_json);
      out << trace::ToAttributionJson(exec_trace, report) << "\n";
      std::printf("attribution written to %s\n", args.explain_json.c_str());
    }
  }
  return metrics.oom ? 2 : 0;
}

}  // namespace
}  // namespace galvatron

int main(int argc, char** argv) {
  auto args = galvatron::ParseArgs(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.status().ToString().c_str());
    galvatron::PrintUsage();
    return 1;
  }
  if (args->help) {
    galvatron::PrintUsage();
    return 0;
  }
  auto exit_code = galvatron::RunCli(*args);
  if (!exit_code.ok()) {
    std::fprintf(stderr, "%s\n", exit_code.status().ToString().c_str());
    return 1;
  }
  return *exit_code;
}
