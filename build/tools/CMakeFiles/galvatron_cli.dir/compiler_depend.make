# Empty compiler generated dependencies file for galvatron_cli.
# This may be replaced when dependencies are built.
