file(REMOVE_RECURSE
  "CMakeFiles/galvatron_cli.dir/galvatron_cli.cc.o"
  "CMakeFiles/galvatron_cli.dir/galvatron_cli.cc.o.d"
  "galvatron_cli"
  "galvatron_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/galvatron_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
