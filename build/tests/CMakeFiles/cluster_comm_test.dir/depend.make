# Empty dependencies file for cluster_comm_test.
# This may be replaced when dependencies are built.
