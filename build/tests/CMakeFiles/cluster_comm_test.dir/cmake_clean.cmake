file(REMOVE_RECURSE
  "CMakeFiles/cluster_comm_test.dir/cluster_comm_test.cc.o"
  "CMakeFiles/cluster_comm_test.dir/cluster_comm_test.cc.o.d"
  "cluster_comm_test"
  "cluster_comm_test.pdb"
  "cluster_comm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_comm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
