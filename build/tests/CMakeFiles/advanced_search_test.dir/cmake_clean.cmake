file(REMOVE_RECURSE
  "CMakeFiles/advanced_search_test.dir/advanced_search_test.cc.o"
  "CMakeFiles/advanced_search_test.dir/advanced_search_test.cc.o.d"
  "advanced_search_test"
  "advanced_search_test.pdb"
  "advanced_search_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/advanced_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
