# Empty dependencies file for baselines_api_test.
# This may be replaced when dependencies are built.
