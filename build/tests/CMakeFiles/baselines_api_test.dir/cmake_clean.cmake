file(REMOVE_RECURSE
  "CMakeFiles/baselines_api_test.dir/baselines_api_test.cc.o"
  "CMakeFiles/baselines_api_test.dir/baselines_api_test.cc.o.d"
  "baselines_api_test"
  "baselines_api_test.pdb"
  "baselines_api_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_api_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
