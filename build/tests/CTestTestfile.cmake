# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_comm_test[1]_include.cmake")
include("/root/repo/build/tests/strategy_test[1]_include.cmake")
include("/root/repo/build/tests/cost_model_test[1]_include.cmake")
include("/root/repo/build/tests/estimator_test[1]_include.cmake")
include("/root/repo/build/tests/search_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_api_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/plan_io_test[1]_include.cmake")
include("/root/repo/build/tests/profiler_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/heterogeneous_test[1]_include.cmake")
include("/root/repo/build/tests/advanced_search_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/coverage_test[1]_include.cmake")
add_test(cli_list_models "/root/repo/build/tools/galvatron_cli" "--list-models")
set_tests_properties(cli_list_models PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;27;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_plan_small "/root/repo/build/tools/galvatron_cli" "--model" "vit-huge-32" "--memory-gb" "16" "--json-out" "cli_plan_test.json")
set_tests_properties(cli_plan_small PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;28;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_rejects_bad_flag "/root/repo/build/tools/galvatron_cli" "--bogus")
set_tests_properties(cli_rejects_bad_flag PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;30;add_test;/root/repo/tests/CMakeLists.txt;0;")
