# Empty dependencies file for galvatron_sim.
# This may be replaced when dependencies are built.
