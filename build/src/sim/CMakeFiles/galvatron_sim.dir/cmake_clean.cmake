file(REMOVE_RECURSE
  "CMakeFiles/galvatron_sim.dir/engine.cc.o"
  "CMakeFiles/galvatron_sim.dir/engine.cc.o.d"
  "CMakeFiles/galvatron_sim.dir/simulator.cc.o"
  "CMakeFiles/galvatron_sim.dir/simulator.cc.o.d"
  "libgalvatron_sim.a"
  "libgalvatron_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/galvatron_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
