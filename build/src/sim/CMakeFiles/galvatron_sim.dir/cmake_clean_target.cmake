file(REMOVE_RECURSE
  "libgalvatron_sim.a"
)
