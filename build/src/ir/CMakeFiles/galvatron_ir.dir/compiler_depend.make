# Empty compiler generated dependencies file for galvatron_ir.
# This may be replaced when dependencies are built.
