file(REMOVE_RECURSE
  "libgalvatron_ir.a"
)
