
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/dtype.cc" "src/ir/CMakeFiles/galvatron_ir.dir/dtype.cc.o" "gcc" "src/ir/CMakeFiles/galvatron_ir.dir/dtype.cc.o.d"
  "/root/repo/src/ir/layer.cc" "src/ir/CMakeFiles/galvatron_ir.dir/layer.cc.o" "gcc" "src/ir/CMakeFiles/galvatron_ir.dir/layer.cc.o.d"
  "/root/repo/src/ir/model.cc" "src/ir/CMakeFiles/galvatron_ir.dir/model.cc.o" "gcc" "src/ir/CMakeFiles/galvatron_ir.dir/model.cc.o.d"
  "/root/repo/src/ir/model_zoo.cc" "src/ir/CMakeFiles/galvatron_ir.dir/model_zoo.cc.o" "gcc" "src/ir/CMakeFiles/galvatron_ir.dir/model_zoo.cc.o.d"
  "/root/repo/src/ir/op.cc" "src/ir/CMakeFiles/galvatron_ir.dir/op.cc.o" "gcc" "src/ir/CMakeFiles/galvatron_ir.dir/op.cc.o.d"
  "/root/repo/src/ir/tensor_shape.cc" "src/ir/CMakeFiles/galvatron_ir.dir/tensor_shape.cc.o" "gcc" "src/ir/CMakeFiles/galvatron_ir.dir/tensor_shape.cc.o.d"
  "/root/repo/src/ir/transformer_builder.cc" "src/ir/CMakeFiles/galvatron_ir.dir/transformer_builder.cc.o" "gcc" "src/ir/CMakeFiles/galvatron_ir.dir/transformer_builder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/galvatron_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
