file(REMOVE_RECURSE
  "CMakeFiles/galvatron_ir.dir/dtype.cc.o"
  "CMakeFiles/galvatron_ir.dir/dtype.cc.o.d"
  "CMakeFiles/galvatron_ir.dir/layer.cc.o"
  "CMakeFiles/galvatron_ir.dir/layer.cc.o.d"
  "CMakeFiles/galvatron_ir.dir/model.cc.o"
  "CMakeFiles/galvatron_ir.dir/model.cc.o.d"
  "CMakeFiles/galvatron_ir.dir/model_zoo.cc.o"
  "CMakeFiles/galvatron_ir.dir/model_zoo.cc.o.d"
  "CMakeFiles/galvatron_ir.dir/op.cc.o"
  "CMakeFiles/galvatron_ir.dir/op.cc.o.d"
  "CMakeFiles/galvatron_ir.dir/tensor_shape.cc.o"
  "CMakeFiles/galvatron_ir.dir/tensor_shape.cc.o.d"
  "CMakeFiles/galvatron_ir.dir/transformer_builder.cc.o"
  "CMakeFiles/galvatron_ir.dir/transformer_builder.cc.o.d"
  "libgalvatron_ir.a"
  "libgalvatron_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/galvatron_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
