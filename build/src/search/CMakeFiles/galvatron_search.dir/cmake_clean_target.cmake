file(REMOVE_RECURSE
  "libgalvatron_search.a"
)
