# Empty dependencies file for galvatron_search.
# This may be replaced when dependencies are built.
