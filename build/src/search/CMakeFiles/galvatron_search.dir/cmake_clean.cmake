file(REMOVE_RECURSE
  "CMakeFiles/galvatron_search.dir/dp_search.cc.o"
  "CMakeFiles/galvatron_search.dir/dp_search.cc.o.d"
  "CMakeFiles/galvatron_search.dir/optimizer.cc.o"
  "CMakeFiles/galvatron_search.dir/optimizer.cc.o.d"
  "libgalvatron_search.a"
  "libgalvatron_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/galvatron_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
