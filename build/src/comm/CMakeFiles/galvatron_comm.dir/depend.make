# Empty dependencies file for galvatron_comm.
# This may be replaced when dependencies are built.
