file(REMOVE_RECURSE
  "libgalvatron_comm.a"
)
