file(REMOVE_RECURSE
  "CMakeFiles/galvatron_comm.dir/collective.cc.o"
  "CMakeFiles/galvatron_comm.dir/collective.cc.o.d"
  "CMakeFiles/galvatron_comm.dir/group_pool.cc.o"
  "CMakeFiles/galvatron_comm.dir/group_pool.cc.o.d"
  "libgalvatron_comm.a"
  "libgalvatron_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/galvatron_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
