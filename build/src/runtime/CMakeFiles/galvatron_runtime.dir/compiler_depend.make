# Empty compiler generated dependencies file for galvatron_runtime.
# This may be replaced when dependencies are built.
