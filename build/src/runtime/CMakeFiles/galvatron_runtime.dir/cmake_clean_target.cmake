file(REMOVE_RECURSE
  "libgalvatron_runtime.a"
)
