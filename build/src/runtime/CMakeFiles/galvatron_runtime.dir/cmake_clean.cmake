file(REMOVE_RECURSE
  "CMakeFiles/galvatron_runtime.dir/training_session.cc.o"
  "CMakeFiles/galvatron_runtime.dir/training_session.cc.o.d"
  "libgalvatron_runtime.a"
  "libgalvatron_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/galvatron_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
