file(REMOVE_RECURSE
  "CMakeFiles/galvatron_baselines.dir/baselines.cc.o"
  "CMakeFiles/galvatron_baselines.dir/baselines.cc.o.d"
  "libgalvatron_baselines.a"
  "libgalvatron_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/galvatron_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
