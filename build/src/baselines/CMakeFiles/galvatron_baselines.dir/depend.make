# Empty dependencies file for galvatron_baselines.
# This may be replaced when dependencies are built.
