file(REMOVE_RECURSE
  "libgalvatron_baselines.a"
)
