file(REMOVE_RECURSE
  "libgalvatron_cluster.a"
)
