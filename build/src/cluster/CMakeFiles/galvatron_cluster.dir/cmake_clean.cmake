file(REMOVE_RECURSE
  "CMakeFiles/galvatron_cluster.dir/cluster.cc.o"
  "CMakeFiles/galvatron_cluster.dir/cluster.cc.o.d"
  "CMakeFiles/galvatron_cluster.dir/link.cc.o"
  "CMakeFiles/galvatron_cluster.dir/link.cc.o.d"
  "libgalvatron_cluster.a"
  "libgalvatron_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/galvatron_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
