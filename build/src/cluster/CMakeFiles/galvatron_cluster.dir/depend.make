# Empty dependencies file for galvatron_cluster.
# This may be replaced when dependencies are built.
