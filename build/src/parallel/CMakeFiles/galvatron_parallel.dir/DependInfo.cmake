
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/parallel/decision_tree.cc" "src/parallel/CMakeFiles/galvatron_parallel.dir/decision_tree.cc.o" "gcc" "src/parallel/CMakeFiles/galvatron_parallel.dir/decision_tree.cc.o.d"
  "/root/repo/src/parallel/layer_cost_model.cc" "src/parallel/CMakeFiles/galvatron_parallel.dir/layer_cost_model.cc.o" "gcc" "src/parallel/CMakeFiles/galvatron_parallel.dir/layer_cost_model.cc.o.d"
  "/root/repo/src/parallel/pipeline_partition.cc" "src/parallel/CMakeFiles/galvatron_parallel.dir/pipeline_partition.cc.o" "gcc" "src/parallel/CMakeFiles/galvatron_parallel.dir/pipeline_partition.cc.o.d"
  "/root/repo/src/parallel/plan.cc" "src/parallel/CMakeFiles/galvatron_parallel.dir/plan.cc.o" "gcc" "src/parallel/CMakeFiles/galvatron_parallel.dir/plan.cc.o.d"
  "/root/repo/src/parallel/strategy.cc" "src/parallel/CMakeFiles/galvatron_parallel.dir/strategy.cc.o" "gcc" "src/parallel/CMakeFiles/galvatron_parallel.dir/strategy.cc.o.d"
  "/root/repo/src/parallel/transformation.cc" "src/parallel/CMakeFiles/galvatron_parallel.dir/transformation.cc.o" "gcc" "src/parallel/CMakeFiles/galvatron_parallel.dir/transformation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/galvatron_util.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/galvatron_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/galvatron_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/galvatron_comm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
