# Empty compiler generated dependencies file for galvatron_parallel.
# This may be replaced when dependencies are built.
