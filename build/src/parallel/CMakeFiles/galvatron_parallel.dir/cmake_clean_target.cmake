file(REMOVE_RECURSE
  "libgalvatron_parallel.a"
)
