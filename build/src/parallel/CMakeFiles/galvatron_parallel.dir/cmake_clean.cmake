file(REMOVE_RECURSE
  "CMakeFiles/galvatron_parallel.dir/decision_tree.cc.o"
  "CMakeFiles/galvatron_parallel.dir/decision_tree.cc.o.d"
  "CMakeFiles/galvatron_parallel.dir/layer_cost_model.cc.o"
  "CMakeFiles/galvatron_parallel.dir/layer_cost_model.cc.o.d"
  "CMakeFiles/galvatron_parallel.dir/pipeline_partition.cc.o"
  "CMakeFiles/galvatron_parallel.dir/pipeline_partition.cc.o.d"
  "CMakeFiles/galvatron_parallel.dir/plan.cc.o"
  "CMakeFiles/galvatron_parallel.dir/plan.cc.o.d"
  "CMakeFiles/galvatron_parallel.dir/strategy.cc.o"
  "CMakeFiles/galvatron_parallel.dir/strategy.cc.o.d"
  "CMakeFiles/galvatron_parallel.dir/transformation.cc.o"
  "CMakeFiles/galvatron_parallel.dir/transformation.cc.o.d"
  "libgalvatron_parallel.a"
  "libgalvatron_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/galvatron_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
