file(REMOVE_RECURSE
  "libgalvatron_util.a"
)
