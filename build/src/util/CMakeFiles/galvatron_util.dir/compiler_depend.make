# Empty compiler generated dependencies file for galvatron_util.
# This may be replaced when dependencies are built.
