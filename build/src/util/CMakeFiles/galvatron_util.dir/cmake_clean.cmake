file(REMOVE_RECURSE
  "CMakeFiles/galvatron_util.dir/logging.cc.o"
  "CMakeFiles/galvatron_util.dir/logging.cc.o.d"
  "CMakeFiles/galvatron_util.dir/math_util.cc.o"
  "CMakeFiles/galvatron_util.dir/math_util.cc.o.d"
  "CMakeFiles/galvatron_util.dir/status.cc.o"
  "CMakeFiles/galvatron_util.dir/status.cc.o.d"
  "CMakeFiles/galvatron_util.dir/string_util.cc.o"
  "CMakeFiles/galvatron_util.dir/string_util.cc.o.d"
  "CMakeFiles/galvatron_util.dir/table_printer.cc.o"
  "CMakeFiles/galvatron_util.dir/table_printer.cc.o.d"
  "libgalvatron_util.a"
  "libgalvatron_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/galvatron_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
