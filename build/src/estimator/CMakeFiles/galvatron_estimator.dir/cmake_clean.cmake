file(REMOVE_RECURSE
  "CMakeFiles/galvatron_estimator.dir/cost_estimator.cc.o"
  "CMakeFiles/galvatron_estimator.dir/cost_estimator.cc.o.d"
  "CMakeFiles/galvatron_estimator.dir/profiler.cc.o"
  "CMakeFiles/galvatron_estimator.dir/profiler.cc.o.d"
  "libgalvatron_estimator.a"
  "libgalvatron_estimator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/galvatron_estimator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
