# Empty compiler generated dependencies file for galvatron_estimator.
# This may be replaced when dependencies are built.
