file(REMOVE_RECURSE
  "libgalvatron_estimator.a"
)
