file(REMOVE_RECURSE
  "libgalvatron_workload.a"
)
