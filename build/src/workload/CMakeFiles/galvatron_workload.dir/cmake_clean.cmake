file(REMOVE_RECURSE
  "CMakeFiles/galvatron_workload.dir/workload.cc.o"
  "CMakeFiles/galvatron_workload.dir/workload.cc.o.d"
  "libgalvatron_workload.a"
  "libgalvatron_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/galvatron_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
