# Empty dependencies file for galvatron_workload.
# This may be replaced when dependencies are built.
