file(REMOVE_RECURSE
  "CMakeFiles/galvatron.dir/galvatron.cc.o"
  "CMakeFiles/galvatron.dir/galvatron.cc.o.d"
  "CMakeFiles/galvatron.dir/plan_io.cc.o"
  "CMakeFiles/galvatron.dir/plan_io.cc.o.d"
  "CMakeFiles/galvatron.dir/plan_render.cc.o"
  "CMakeFiles/galvatron.dir/plan_render.cc.o.d"
  "libgalvatron.a"
  "libgalvatron.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/galvatron.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
