# Empty compiler generated dependencies file for galvatron.
# This may be replaced when dependencies are built.
