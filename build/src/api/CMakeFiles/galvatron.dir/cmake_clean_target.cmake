file(REMOVE_RECURSE
  "libgalvatron.a"
)
