file(REMOVE_RECURSE
  "CMakeFiles/memory_budget_sweep.dir/memory_budget_sweep.cc.o"
  "CMakeFiles/memory_budget_sweep.dir/memory_budget_sweep.cc.o.d"
  "memory_budget_sweep"
  "memory_budget_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_budget_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
