# Empty compiler generated dependencies file for memory_budget_sweep.
# This may be replaced when dependencies are built.
