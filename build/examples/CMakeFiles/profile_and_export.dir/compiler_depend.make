# Empty compiler generated dependencies file for profile_and_export.
# This may be replaced when dependencies are built.
