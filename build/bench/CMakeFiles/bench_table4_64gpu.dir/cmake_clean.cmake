file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_64gpu.dir/bench_table4_64gpu.cc.o"
  "CMakeFiles/bench_table4_64gpu.dir/bench_table4_64gpu.cc.o.d"
  "bench_table4_64gpu"
  "bench_table4_64gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_64gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
