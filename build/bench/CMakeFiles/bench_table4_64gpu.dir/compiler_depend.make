# Empty compiler generated dependencies file for bench_table4_64gpu.
# This may be replaced when dependencies are built.
