# Empty dependencies file for bench_scalability_curve.
# This may be replaced when dependencies are built.
