file(REMOVE_RECURSE
  "CMakeFiles/bench_scalability_curve.dir/bench_scalability_curve.cc.o"
  "CMakeFiles/bench_scalability_curve.dir/bench_scalability_curve.cc.o.d"
  "bench_scalability_curve"
  "bench_scalability_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scalability_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
