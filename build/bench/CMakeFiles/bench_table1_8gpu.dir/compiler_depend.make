# Empty compiler generated dependencies file for bench_table1_8gpu.
# This may be replaced when dependencies are built.
