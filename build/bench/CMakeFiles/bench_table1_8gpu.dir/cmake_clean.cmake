file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_8gpu.dir/bench_table1_8gpu.cc.o"
  "CMakeFiles/bench_table1_8gpu.dir/bench_table1_8gpu.cc.o.d"
  "bench_table1_8gpu"
  "bench_table1_8gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_8gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
