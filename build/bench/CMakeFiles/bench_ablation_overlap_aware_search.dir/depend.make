# Empty dependencies file for bench_ablation_overlap_aware_search.
# This may be replaced when dependencies are built.
