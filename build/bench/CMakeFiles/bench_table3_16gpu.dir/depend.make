# Empty dependencies file for bench_table3_16gpu.
# This may be replaced when dependencies are built.
