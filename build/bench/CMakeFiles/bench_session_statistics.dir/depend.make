# Empty dependencies file for bench_session_statistics.
# This may be replaced when dependencies are built.
