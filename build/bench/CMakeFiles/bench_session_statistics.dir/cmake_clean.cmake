file(REMOVE_RECURSE
  "CMakeFiles/bench_session_statistics.dir/bench_session_statistics.cc.o"
  "CMakeFiles/bench_session_statistics.dir/bench_session_statistics.cc.o.d"
  "bench_session_statistics"
  "bench_session_statistics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_session_statistics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
