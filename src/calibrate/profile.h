#ifndef GALVATRON_CALIBRATE_PROFILE_H_
#define GALVATRON_CALIBRATE_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/link.h"
#include "comm/collective.h"
#include "util/json.h"
#include "util/result.h"

namespace galvatron {
namespace calibrate {

/// One fitted correction group: every observed collective of `kind` over a
/// bottleneck link of class `link_class` whose payload falls in the log2
/// size bucket. `scale` multiplies the estimator's analytic time for
/// matching comm tasks (measured / predicted, robustly fitted);
/// `sample_count` and `rel_residual` (mean |measured/(scale*predicted) - 1|
/// after the fit) record fit quality for observability.
struct CalibrationGroup {
  LinkClass link_class = LinkClass::kPcie3;
  CollectiveKind kind = CollectiveKind::kAllReduce;
  int bucket = 0;  // SizeBucket(payload bytes)
  double scale = 1.0;
  int64_t sample_count = 0;
  double rel_residual = 0.0;
};

/// Fitted scales outside this range are rejected at parse time (and clamped
/// by the fitter): a >16x correction means the analytic model or the trace
/// is broken, not miscalibrated, and silently applying it would corrupt
/// every search that keys on the profile.
inline constexpr double kMinCalibrationScale = 1.0 / 16.0;
inline constexpr double kMaxCalibrationScale = 16.0;

/// Accepted range for a fitted overlap slowdown (1 = no contention; the
/// paper measures ~1.3; beyond 8x the trace is attributing something other
/// than SM contention).
inline constexpr double kMinOverlapSlowdown = 1.0;
inline constexpr double kMaxOverlapSlowdown = 8.0;

/// The log2 message-size bucket of a payload: floor(log2(bytes)) clamped to
/// [0, 62]. Bandwidth efficiency on real links varies with message size
/// (latency-bound small messages vs streaming large ones), so coefficients
/// are fitted per bucket rather than per link.
int SizeBucket(int64_t bytes);

/// A versioned, trace-fitted override layer for the cost estimator's
/// communication model (see docs/calibration.md). An empty profile — or no
/// profile at all — leaves every estimate byte-identical to the analytic
/// model (fuzz-enforced, FuzzCheck::kCalibrationIdentity).
struct CalibrationProfile {
  /// Format version; 1 is the only accepted value.
  int version = 1;
  /// Total observations behind the fit (provenance, not used in lookups).
  int64_t fitted_events = 0;
  /// Fitted compute/comm contention slowdown for the estimator's backward
  /// overlap combine; 0 keeps the estimator's configured value.
  double overlap_slowdown = 0.0;
  /// Sorted by (link_class, kind, bucket); unique keys.
  std::vector<CalibrationGroup> groups;

  bool empty() const { return groups.empty() && overlap_slowdown == 0.0; }

  /// The group matching (cls, kind, bucket) exactly, or nullptr.
  const CalibrationGroup* Find(LinkClass cls, CollectiveKind kind,
                               int bucket) const;

  /// Comm-time multiplier for a collective of `kind` over a `cls`-class
  /// link moving `bytes`: the exact bucket's scale, else the nearest fitted
  /// bucket of the same (cls, kind) — bandwidth efficiency varies smoothly
  /// in log-size, so the neighbour generalizes — else exactly 1.0.
  double CommScale(LinkClass cls, CollectiveKind kind, int64_t bytes) const;

  /// Canonicalizes group order and returns an error on invalid contents
  /// (bad version, non-finite or out-of-range coefficients, duplicate
  /// keys). Serializers call this on both directions.
  Status Validate();
};

/// Serializes a profile to canonical JSON (sorted keys, %.17g numbers):
///
///   {"format": "galvatron-calibration", "version": 1,
///    "fitted_events": 1234, "overlap_slowdown": 1.29,
///    "groups": [{"link": "PCIe3", "kind": "AllReduce", "bucket": 24,
///                "scale": 1.31, "samples": 96, "rel_residual": 0.04}, ...]}
///
/// Round-trips bit-exactly through ParseCalibrationProfileJson.
std::string CalibrationProfileToJson(const CalibrationProfile& profile);

/// Parses and validates a profile document. Strict: malformed JSON, wrong
/// format tag or version, NaN/infinite/out-of-range coefficients and
/// duplicate group keys are InvalidArgument errors.
Result<CalibrationProfile> ParseCalibrationProfileJson(
    const std::string& json);

/// Same, from an already-parsed document — for embedding profiles inside
/// larger messages (the /v1/calibrate response carries one).
Result<CalibrationProfile> CalibrationProfileFromJsonValue(
    const JsonValue& root);

}  // namespace calibrate
}  // namespace galvatron

#endif  // GALVATRON_CALIBRATE_PROFILE_H_
