#include "calibrate/profile.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <tuple>

#include "util/string_util.h"

namespace galvatron {
namespace calibrate {

namespace {

constexpr char kFormatTag[] = "galvatron-calibration";

std::tuple<int, int, int> GroupKey(const CalibrationGroup& g) {
  return {static_cast<int>(g.link_class), static_cast<int>(g.kind), g.bucket};
}

}  // namespace

int SizeBucket(int64_t bytes) {
  if (bytes <= 1) return 0;
  int bucket = 0;
  uint64_t v = static_cast<uint64_t>(bytes);
  while (v > 1 && bucket < 62) {
    v >>= 1;
    ++bucket;
  }
  return bucket;
}

const CalibrationGroup* CalibrationProfile::Find(LinkClass cls,
                                                 CollectiveKind kind,
                                                 int bucket) const {
  for (const CalibrationGroup& group : groups) {
    if (group.link_class == cls && group.kind == kind &&
        group.bucket == bucket) {
      return &group;
    }
  }
  return nullptr;
}

double CalibrationProfile::CommScale(LinkClass cls, CollectiveKind kind,
                                     int64_t bytes) const {
  const int bucket = SizeBucket(bytes);
  const CalibrationGroup* best = nullptr;
  int best_distance = 0;
  for (const CalibrationGroup& group : groups) {
    if (group.link_class != cls || group.kind != kind) continue;
    const int distance = std::abs(group.bucket - bucket);
    if (distance == 0) return group.scale;
    // Nearest fitted bucket; ties resolve to the smaller bucket (groups are
    // sorted by bucket, so the first of a tied pair wins).
    if (best == nullptr || distance < best_distance) {
      best = &group;
      best_distance = distance;
    }
  }
  return best != nullptr ? best->scale : 1.0;
}

Status CalibrationProfile::Validate() {
  if (version != 1) {
    return Status::InvalidArgument(
        StrFormat("unsupported calibration profile version %d", version));
  }
  if (fitted_events < 0) {
    return Status::InvalidArgument("fitted_events must be >= 0");
  }
  if (overlap_slowdown != 0.0 &&
      (!std::isfinite(overlap_slowdown) ||
       overlap_slowdown < kMinOverlapSlowdown ||
       overlap_slowdown > kMaxOverlapSlowdown)) {
    return Status::InvalidArgument(StrFormat(
        "overlap_slowdown %g outside [%g, %g] (or 0 for unset)",
        overlap_slowdown, kMinOverlapSlowdown, kMaxOverlapSlowdown));
  }
  for (const CalibrationGroup& group : groups) {
    if (group.bucket < 0 || group.bucket > 62) {
      return Status::InvalidArgument(
          StrFormat("group bucket %d outside [0, 62]", group.bucket));
    }
    if (!std::isfinite(group.scale) || group.scale < kMinCalibrationScale ||
        group.scale > kMaxCalibrationScale) {
      return Status::InvalidArgument(StrFormat(
          "group scale %g outside [%g, %g]", group.scale,
          kMinCalibrationScale, kMaxCalibrationScale));
    }
    if (group.sample_count < 0) {
      return Status::InvalidArgument("group sample count must be >= 0");
    }
    if (!std::isfinite(group.rel_residual) || group.rel_residual < 0.0) {
      return Status::InvalidArgument(
          StrFormat("group rel_residual %g must be finite and >= 0",
                    group.rel_residual));
    }
  }
  std::sort(groups.begin(), groups.end(),
            [](const CalibrationGroup& a, const CalibrationGroup& b) {
              return GroupKey(a) < GroupKey(b);
            });
  for (size_t i = 1; i < groups.size(); ++i) {
    if (GroupKey(groups[i - 1]) == GroupKey(groups[i])) {
      return Status::InvalidArgument(StrFormat(
          "duplicate calibration group (%s, %s, bucket %d)",
          std::string(LinkClassToString(groups[i].link_class)).c_str(),
          std::string(CollectiveKindToString(groups[i].kind)).c_str(),
          groups[i].bucket));
    }
  }
  return Status::OK();
}

std::string CalibrationProfileToJson(const CalibrationProfile& profile) {
  // Build a util/json document so the output is canonical (sorted keys) and
  // every number round-trips through ParseJson bit-exactly.
  JsonValue root;
  root.kind = JsonValue::Kind::kObject;
  auto set_string = [](JsonValue& obj, const std::string& key,
                       const std::string& value) {
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    v.string = value;
    obj.object.emplace(key, std::move(v));
  };
  auto set_number = [](JsonValue& obj, const std::string& key, double value) {
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = value;
    obj.object.emplace(key, std::move(v));
  };
  auto set_int64 = [](JsonValue& obj, const std::string& key, int64_t value) {
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = static_cast<double>(value);
    v.number_token = StrFormat("%lld", static_cast<long long>(value));
    obj.object.emplace(key, std::move(v));
  };
  set_string(root, "format", kFormatTag);
  set_int64(root, "version", profile.version);
  set_int64(root, "fitted_events", profile.fitted_events);
  set_number(root, "overlap_slowdown", profile.overlap_slowdown);
  JsonValue groups;
  groups.kind = JsonValue::Kind::kArray;
  for (const CalibrationGroup& group : profile.groups) {
    JsonValue g;
    g.kind = JsonValue::Kind::kObject;
    set_string(g, "link", std::string(LinkClassToString(group.link_class)));
    set_string(g, "kind", std::string(CollectiveKindToString(group.kind)));
    set_int64(g, "bucket", group.bucket);
    set_number(g, "scale", group.scale);
    set_int64(g, "samples", group.sample_count);
    set_number(g, "rel_residual", group.rel_residual);
    groups.array.push_back(std::move(g));
  }
  root.object.emplace("groups", std::move(groups));
  return WriteJson(root);
}

Result<CalibrationProfile> CalibrationProfileFromJsonValue(
    const JsonValue& root) {
  if (root.kind != JsonValue::Kind::kObject) {
    return Status::InvalidArgument("calibration profile must be an object");
  }
  GALVATRON_ASSIGN_OR_RETURN(std::string format, GetString(root, "format"));
  if (format != kFormatTag) {
    return Status::InvalidArgument(
        StrFormat("not a calibration profile (format '%s')", format.c_str()));
  }
  CalibrationProfile profile;
  GALVATRON_ASSIGN_OR_RETURN(profile.version,
                             GetInt(root, "version", /*min_value=*/1));
  GALVATRON_ASSIGN_OR_RETURN(
      profile.fitted_events,
      GetInt64(root, "fitted_events", /*min_value=*/0));
  GALVATRON_ASSIGN_OR_RETURN(profile.overlap_slowdown,
                             GetDouble(root, "overlap_slowdown"));
  GALVATRON_ASSIGN_OR_RETURN(const JsonValue* groups,
                             GetMember(root, "groups",
                                       JsonValue::Kind::kArray));
  for (const JsonValue& entry : groups->array) {
    if (entry.kind != JsonValue::Kind::kObject) {
      return Status::InvalidArgument("calibration group must be an object");
    }
    CalibrationGroup group;
    GALVATRON_ASSIGN_OR_RETURN(std::string link, GetString(entry, "link"));
    GALVATRON_ASSIGN_OR_RETURN(group.link_class, LinkClassFromString(link));
    GALVATRON_ASSIGN_OR_RETURN(std::string kind, GetString(entry, "kind"));
    GALVATRON_ASSIGN_OR_RETURN(group.kind, CollectiveKindFromString(kind));
    GALVATRON_ASSIGN_OR_RETURN(group.bucket,
                               GetInt(entry, "bucket", /*min_value=*/0));
    GALVATRON_ASSIGN_OR_RETURN(group.scale, GetDouble(entry, "scale"));
    GALVATRON_ASSIGN_OR_RETURN(group.sample_count,
                               GetInt64(entry, "samples", /*min_value=*/0));
    GALVATRON_ASSIGN_OR_RETURN(group.rel_residual,
                               GetDouble(entry, "rel_residual"));
    profile.groups.push_back(group);
  }
  GALVATRON_RETURN_IF_ERROR(profile.Validate());
  return profile;
}

Result<CalibrationProfile> ParseCalibrationProfileJson(
    const std::string& json) {
  GALVATRON_ASSIGN_OR_RETURN(JsonValue root, ParseJson(json));
  return CalibrationProfileFromJsonValue(root);
}

}  // namespace calibrate
}  // namespace galvatron
