#ifndef GALVATRON_CALIBRATE_FIT_H_
#define GALVATRON_CALIBRATE_FIT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "calibrate/profile.h"
#include "trace/trace.h"
#include "util/result.h"

namespace galvatron {
namespace calibrate {

/// One observed collective: the estimator-side analytic prediction paired
/// with the wall time the trace measured (jitter + contention included),
/// keyed the same way the estimator keys its comm tasks.
struct CommObservation {
  LinkClass link_class = LinkClass::kPcie3;
  CollectiveKind kind = CollectiveKind::kAllReduce;
  int64_t bytes = 0;
  int group_size = 0;
  double predicted_sec = 0.0;  // pre-jitter analytic duration
  double measured_sec = 0.0;   // observed wall time
};

/// Pulls every comm task out of a recorded trace as a fit observation
/// (events with comm_group_size == 0 — compute, transformation, init — are
/// skipped, as are degenerate samples with a non-positive prediction).
std::vector<CommObservation> ExtractObservations(
    const trace::ExecutionTrace& trace);

/// Estimates the compute/comm contention slowdown k from a trace: a task
/// fully contended for its duration satisfies lost = (k - 1) * work, and
/// partial contention only lowers the ratio, so the max of
/// 1 + lost_sec / work_sec over comm tasks is a tight-from-below estimate.
/// Returns 0 (unset) when no comm task shows contention. The result is
/// clamped to [kMinOverlapSlowdown, kMaxOverlapSlowdown].
double EstimateOverlapSlowdown(const trace::ExecutionTrace& trace);

struct FitOptions {
  /// IRLS (iteratively reweighted least squares) refinements after the
  /// initial unweighted ratio fit. Each pass recomputes Huber weights from
  /// relative residuals, shrinking the pull of outlier samples (a collective
  /// that straddled a pipeline stall).
  int huber_iterations = 4;
  /// Relative residual at which a sample stops counting quadratically.
  double huber_delta = 0.25;
  /// Groups with fewer samples than this are dropped — one noisy
  /// observation should not steer a coefficient.
  int min_group_samples = 2;
};

/// Robust per-group ratio fit: for each (link class, collective kind, size
/// bucket) group, the scale minimizing sum w * (measured - scale *
/// predicted)^2 with Huber reweighting, clamped to the profile's accepted
/// range. `overlap_slowdown_estimate` (0 = unset, e.g. from
/// EstimateOverlapSlowdown) is validated and recorded on the profile.
/// Errors when no group survives min_group_samples.
Result<CalibrationProfile> FitCalibrationProfile(
    const std::vector<CommObservation>& observations,
    double overlap_slowdown_estimate = 0.0, const FitOptions& options = {});

/// Convenience: extract + estimate + fit from recorded traces.
Result<CalibrationProfile> CalibrateFromTraces(
    const std::vector<trace::ExecutionTrace>& traces,
    const FitOptions& options = {});

/// Parsed "comm_samples" section of an attribution report (see
/// docs/tracing.md): the offline ingestion path of `galvatron_cli
/// --calibrate <reports...>`.
struct AttributionSamples {
  std::vector<CommObservation> observations;
  /// The report's "overlap_slowdown_estimate", 0 when absent.
  double overlap_slowdown_estimate = 0.0;
};

/// Reads the comm samples out of an attribution JSON document produced by
/// trace::ToAttributionJson. Reports without a "comm_samples" member are
/// InvalidArgument (they predate calibration — re-record the trace).
Result<AttributionSamples> ParseAttributionSamples(const std::string& json);

}  // namespace calibrate
}  // namespace galvatron

#endif  // GALVATRON_CALIBRATE_FIT_H_
