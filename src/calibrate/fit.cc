#include "calibrate/fit.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <tuple>

#include "util/json.h"
#include "util/string_util.h"

namespace galvatron {
namespace calibrate {

namespace {

using GroupKey = std::tuple<int, int, int>;  // (link class, kind, bucket)

GroupKey KeyOf(const CommObservation& obs) {
  return {static_cast<int>(obs.link_class), static_cast<int>(obs.kind),
          SizeBucket(obs.bytes)};
}

}  // namespace

std::vector<CommObservation> ExtractObservations(
    const trace::ExecutionTrace& trace) {
  std::vector<CommObservation> observations;
  for (const trace::TraceEvent& event : trace.events) {
    if (event.comm_group_size < 2) continue;
    if (!(event.analytic_sec > 0.0)) continue;
    CommObservation obs;
    obs.link_class = event.comm_link;
    obs.kind = event.comm_kind;
    obs.bytes = event.comm_bytes;
    obs.group_size = event.comm_group_size;
    obs.predicted_sec = event.analytic_sec;
    obs.measured_sec = event.elapsed_sec();
    observations.push_back(obs);
  }
  return observations;
}

double EstimateOverlapSlowdown(const trace::ExecutionTrace& trace) {
  double best = 0.0;
  for (const trace::TraceEvent& event : trace.events) {
    if (event.comm_group_size < 2) continue;
    if (!(event.work_sec > 0.0) || !(event.lost_sec > 0.0)) continue;
    best = std::max(best, 1.0 + event.lost_sec / event.work_sec);
  }
  if (best == 0.0) return 0.0;
  return std::clamp(best, kMinOverlapSlowdown, kMaxOverlapSlowdown);
}

Result<CalibrationProfile> FitCalibrationProfile(
    const std::vector<CommObservation>& observations,
    double overlap_slowdown_estimate, const FitOptions& options) {
  std::map<GroupKey, std::vector<const CommObservation*>> grouped;
  for (const CommObservation& obs : observations) {
    if (!(obs.predicted_sec > 0.0) || !std::isfinite(obs.predicted_sec) ||
        !(obs.measured_sec >= 0.0) || !std::isfinite(obs.measured_sec)) {
      continue;
    }
    grouped[KeyOf(obs)].push_back(&obs);
  }

  CalibrationProfile profile;
  profile.overlap_slowdown = overlap_slowdown_estimate;
  for (const auto& [key, samples] : grouped) {
    if (static_cast<int>(samples.size()) <
        std::max(1, options.min_group_samples)) {
      continue;
    }
    // Weighted ratio fit: scale = sum w*p*m / sum w*p^2 minimizes
    // sum w*(m - scale*p)^2. Start unweighted, then Huber-reweight on the
    // relative residual so one outlier sample cannot steer the group.
    std::vector<double> weights(samples.size(), 1.0);
    double scale = 1.0;
    for (int pass = 0; pass <= options.huber_iterations; ++pass) {
      double num = 0.0;
      double den = 0.0;
      for (size_t i = 0; i < samples.size(); ++i) {
        const double p = samples[i]->predicted_sec;
        num += weights[i] * p * samples[i]->measured_sec;
        den += weights[i] * p * p;
      }
      if (!(den > 0.0)) break;
      scale = num / den;
      if (!(scale > 0.0)) break;
      if (pass == options.huber_iterations) break;
      for (size_t i = 0; i < samples.size(); ++i) {
        const double rel = std::abs(
            samples[i]->measured_sec / (scale * samples[i]->predicted_sec) -
            1.0);
        weights[i] =
            rel <= options.huber_delta ? 1.0 : options.huber_delta / rel;
      }
    }
    if (!std::isfinite(scale) || !(scale > 0.0)) continue;
    scale = std::clamp(scale, kMinCalibrationScale, kMaxCalibrationScale);

    CalibrationGroup group;
    group.link_class = static_cast<LinkClass>(std::get<0>(key));
    group.kind = static_cast<CollectiveKind>(std::get<1>(key));
    group.bucket = std::get<2>(key);
    group.scale = scale;
    group.sample_count = static_cast<int64_t>(samples.size());
    double residual_sum = 0.0;
    for (const CommObservation* obs : samples) {
      residual_sum +=
          std::abs(obs->measured_sec / (scale * obs->predicted_sec) - 1.0);
    }
    group.rel_residual = residual_sum / static_cast<double>(samples.size());
    profile.groups.push_back(group);
    profile.fitted_events += group.sample_count;
  }
  if (profile.groups.empty()) {
    return Status::Infeasible(StrFormat(
        "no calibration group reached %d samples (%d observations)",
        options.min_group_samples, static_cast<int>(observations.size())));
  }
  GALVATRON_RETURN_IF_ERROR(profile.Validate());
  return profile;
}

Result<CalibrationProfile> CalibrateFromTraces(
    const std::vector<trace::ExecutionTrace>& traces,
    const FitOptions& options) {
  std::vector<CommObservation> observations;
  double overlap = 0.0;
  for (const trace::ExecutionTrace& trace : traces) {
    std::vector<CommObservation> extracted = ExtractObservations(trace);
    observations.insert(observations.end(), extracted.begin(),
                        extracted.end());
    overlap = std::max(overlap, EstimateOverlapSlowdown(trace));
  }
  return FitCalibrationProfile(observations, overlap, options);
}

Result<AttributionSamples> ParseAttributionSamples(const std::string& json) {
  GALVATRON_ASSIGN_OR_RETURN(JsonValue root, ParseJson(json));
  if (root.kind != JsonValue::Kind::kObject) {
    return Status::InvalidArgument("attribution report must be an object");
  }
  const JsonValue* samples = FindMember(root, "comm_samples");
  if (samples == nullptr || samples->kind != JsonValue::Kind::kArray) {
    return Status::InvalidArgument(
        "attribution report has no comm_samples array — re-record the "
        "trace with a calibration-aware build");
  }
  AttributionSamples out;
  if (FindMember(root, "overlap_slowdown_estimate") != nullptr) {
    GALVATRON_ASSIGN_OR_RETURN(
        out.overlap_slowdown_estimate,
        GetDouble(root, "overlap_slowdown_estimate"));
    if (out.overlap_slowdown_estimate != 0.0 &&
        (out.overlap_slowdown_estimate < kMinOverlapSlowdown ||
         out.overlap_slowdown_estimate > kMaxOverlapSlowdown)) {
      return Status::InvalidArgument(StrFormat(
          "overlap_slowdown_estimate %g outside [%g, %g]",
          out.overlap_slowdown_estimate, kMinOverlapSlowdown,
          kMaxOverlapSlowdown));
    }
  }
  for (const JsonValue& entry : samples->array) {
    if (entry.kind != JsonValue::Kind::kObject) {
      return Status::InvalidArgument("comm_samples entry must be an object");
    }
    CommObservation obs;
    GALVATRON_ASSIGN_OR_RETURN(std::string link, GetString(entry, "link"));
    GALVATRON_ASSIGN_OR_RETURN(obs.link_class, LinkClassFromString(link));
    GALVATRON_ASSIGN_OR_RETURN(std::string kind, GetString(entry, "kind"));
    GALVATRON_ASSIGN_OR_RETURN(obs.kind, CollectiveKindFromString(kind));
    GALVATRON_ASSIGN_OR_RETURN(obs.bytes,
                               GetInt64(entry, "bytes", /*min_value=*/0));
    GALVATRON_ASSIGN_OR_RETURN(
        obs.group_size, GetInt(entry, "group_size", /*min_value=*/2));
    GALVATRON_ASSIGN_OR_RETURN(obs.predicted_sec,
                               GetDouble(entry, "predicted_sec"));
    GALVATRON_ASSIGN_OR_RETURN(obs.measured_sec,
                               GetDouble(entry, "measured_sec"));
    if (obs.predicted_sec < 0.0 || obs.measured_sec < 0.0) {
      return Status::InvalidArgument(
          "comm_samples entry has a negative duration");
    }
    out.observations.push_back(obs);
  }
  return out;
}

}  // namespace calibrate
}  // namespace galvatron
