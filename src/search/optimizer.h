#ifndef GALVATRON_SEARCH_OPTIMIZER_H_
#define GALVATRON_SEARCH_OPTIMIZER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "cluster/cluster.h"
#include "estimator/cost_estimator.h"
#include "ir/model.h"
#include "parallel/decision_tree.h"
#include "parallel/pipeline_partition.h"
#include "parallel/plan.h"
#include "search/dp_search.h"
#include "util/result.h"

namespace galvatron {

/// Knobs of the Algorithm-1 optimization workflow.
struct OptimizerOptions {
  DecisionTreeOptions tree;
  PartitionPolicy partition_policy = PartitionPolicy::kFlops;
  EstimatorOptions estimator;
  int64_t memory_granularity = int64_t{32} * 1024 * 1024;

  /// Batch sweep: B = batch_step, 2*batch_step, ... until every PP degree
  /// is out of memory (Algorithm 1's loop) or max_batch is hit.
  int batch_step = 8;
  int max_batch = 4096;

  /// PP degrees to explore; empty means all powers of two dividing the
  /// device count (Algorithm 1 line 4). {1} disables PP — the paper's
  /// DP+TP auxiliary mode.
  std::vector<int> pp_degrees;

  /// Micro-batch counts tried per PP degree ("we manually tune the number
  /// of micro-batches", Sec 5.1). Multipliers of the PP degree; 4x is the
  /// classic GPipe bubble sweet spot.
  std::vector<int> micro_batch_multipliers = {1, 2, 4, 8};

  /// Pipeline schedule for the produced plans. GPipe is the paper's
  /// default; 1F1B caps in-flight micro-batches and frees memory for
  /// deeper pipelines (the paper's PipeDream future-work direction).
  PipelineSchedule schedule = PipelineSchedule::kGPipe;

  /// Let the per-layer search also choose activation checkpointing
  /// (doubles the option space; off to match the paper's setup).
  bool allow_recompute = false;

  /// On heterogeneous clusters (mixed device generations or an attached
  /// TopologyGraph), additionally sweep island-proportional uneven stage
  /// splits: stage device counts track each island's aggregate throughput
  /// instead of forcing num_devices/pp everywhere. No effect on uniform
  /// clusters — the equal-split enumeration is untouched either way.
  bool allow_uneven_stages = true;

  /// Per-stage DP kernel selection (see DpSearchOptions::use_sparse_dp):
  /// sparse Pareto-frontier kernel by default, dense table sweep when
  /// false. Plans are byte-identical either way.
  bool use_sparse_dp = true;

  /// Alpa/Unity-style co-optimization rounds (Sec 3.3: "it is also possible
  /// to co-optimize by repeatedly interacting with the search inside each
  /// stage"): after the sweep, re-partition the pipeline using the winning
  /// plan's own per-layer times and re-run the per-stage search, keeping
  /// improvements. 0 reproduces the paper's one-shot workflow.
  int co_optimize_rounds = 0;

  /// Worker threads for the strategy sweep. The independent (PP degree,
  /// micro-batch count) configurations of each batch wave fan out across
  /// this many threads; 1 keeps the sweep serial, 0 uses the machine's
  /// hardware concurrency, and a negative value makes Optimize return
  /// InvalidArgument (it is a caller bug, not a request for serial
  /// search). The result is bit-identical for every valid value — outcomes
  /// are merged in enumeration order with total-order tie-breaking, never
  /// first-finished-wins.
  int search_threads = 1;
};

/// Telemetry of one optimizer run (Figure 4 reports search time).
struct SearchStats {
  double search_seconds = 0.0;
  int configs_explored = 0;        // (B, P, m) triples evaluated
  /// DP states materialized across all per-stage searches: dense-kernel
  /// table cells, or sparse-kernel Pareto breakpoints (see DpSearchResult).
  int64_t dp_states_explored = 0;
  /// Sparse-kernel telemetry, summed over per-stage searches: breakpoints
  /// emitted onto frontiers and per-layer options dropped by the
  /// same-strategy domination prune. Zero when use_sparse_dp is false.
  int64_t dp_breakpoints_emitted = 0;
  int64_t dp_options_pruned = 0;
  int num_candidate_strategies = 0;

  /// Wall time per phase: candidate/partition enumeration, the batch/degree
  /// sweep (the parallel part), and co-optimization rounds.
  double enumerate_seconds = 0.0;
  double sweep_seconds = 0.0;
  double co_optimize_seconds = 0.0;

  /// Shared cost-cache counters, summed over layer and transformation
  /// lookups. A miss is one estimator invocation. These are per-call deltas:
  /// with an external cache (see Optimizer::Optimize below) they count only
  /// this run's lookups, so a fully warm cache shows misses == 0.
  int64_t cost_cache_hits = 0;
  int64_t cost_cache_misses = 0;

  /// Cumulative counters of the cost cache at the end of this run. Equal to
  /// the per-call deltas for the run-local cache; monotone across runs for
  /// an external cache (the serving /metrics endpoint exports them).
  int64_t cost_cache_lifetime_hits = 0;
  int64_t cost_cache_lifetime_misses = 0;

  /// DP frontier-cache counters for this run: per-stage searches answered
  /// by replaying a cached Pareto frontier vs. searches that ran the cold
  /// kernel. With a caller-provided frontier cache these span requests (a
  /// warm-start serving request shows hits ~= the per-stage search count);
  /// without one, the sparse sweep still uses a run-local cache, so the
  /// identical pipeline stages of one configuration — and repeated
  /// signatures across configurations — run the cold kernel once and
  /// replay everywhere else.
  int64_t dp_frontier_hits = 0;
  int64_t dp_frontier_misses = 0;

  /// Allocation telemetry (counted by util/alloc_counter, per worker
  /// thread, summed deterministically at the merge): heap allocations
  /// performed inside DpSearch::Run across all per-stage searches, and
  /// across entire configuration evaluations (DP + plan estimation +
  /// bookkeeping). The perf tripwires bound these: a warm sweep's DP path
  /// must stay allocation-free up to the returned result vectors.
  int64_t dp_allocations = 0;
  int64_t sweep_allocations = 0;

  /// True when the run reused a caller-provided SharedCostCache instead of
  /// building its own.
  bool used_external_cost_cache = false;

  /// Worker threads the sweep actually used: search_threads with 0
  /// resolved to the hardware concurrency, then capped at the hardware
  /// concurrency (an oversized pool cannot help a CPU-bound sweep).
  int search_threads_used = 1;
};

/// A plan with its estimated performance. `alternates` holds the best plan
/// of every other explored PP degree (estimation error is a few percent, so
/// callers with a measurement channel — the simulator here, profiling runs
/// in the paper's setting — can re-rank the finalists).
struct OptimizationResult {
  TrainingPlan plan;
  PlanCost estimated;
  SearchStats stats;
  std::vector<TrainingPlan> alternates;
};

/// Algorithm 1: sweep batch size and PP degree, partition the model,
/// enumerate the per-stage decision tree, run the per-stage DP search, and
/// keep the plan with the highest estimated throughput B / C_opt.
class Optimizer {
 public:
  /// `cluster` must outlive this object.
  Optimizer(const ClusterSpec* cluster, OptimizerOptions options = {});

  /// Finds the best plan for `model` on the cluster. Returns Infeasible if
  /// no batch size / strategy combination fits the memory budget.
  Result<OptimizationResult> Optimize(const ModelSpec& model) const;

  /// Same, with serving hooks.
  ///
  /// `shared_cache` (optional) is a caller-owned cost cache reused across
  /// runs — the cross-request warm path of the plan-serving daemon. The
  /// cache's estimator/model must describe the same model, cluster topology
  /// and estimator options as this optimizer's; cached entries are keyed by
  /// batch/micro/strategy/topology but NOT by memory budget, so budget-only
  /// variations share entries by design. Thread-safe: concurrent Optimize
  /// runs may share one cache.
  ///
  /// `cancel_check` (optional) is polled between configuration evaluations
  /// and pipeline stages; once it returns true the sweep stops and the run
  /// returns Status::Cancelled. Used for per-request deadlines.
  Result<OptimizationResult> Optimize(
      const ModelSpec& model, SharedCostCache* shared_cache,
      const std::function<bool()>& cancel_check = {}) const;

  /// Same, plus a caller-owned DP frontier cache (see DpFrontierCache):
  /// per-stage searches whose signature already has a cached Pareto
  /// frontier at a covering budget replay the answer instead of running
  /// the kernel — the serving daemon's warm-start path for requests that
  /// differ only in memory budget or batch envelope. The frontier cache
  /// must be scoped with the cost cache (same model / cluster topology /
  /// estimator). Thread-safe like `shared_cache`.
  Result<OptimizationResult> Optimize(
      const ModelSpec& model, SharedCostCache* shared_cache,
      DpFrontierCache* frontier_cache,
      const std::function<bool()>& cancel_check = {}) const;

 private:
  const ClusterSpec* cluster_;
  OptimizerOptions options_;
  CostEstimator estimator_;
};

}  // namespace galvatron

#endif  // GALVATRON_SEARCH_OPTIMIZER_H_
