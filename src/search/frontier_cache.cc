#include "search/frontier_cache.h"

namespace galvatron {

std::shared_ptr<const DpFrontierEntry> DpFrontierCache::Lookup(
    const std::string& key) {
  if (capacity_ == 0) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second;
}

void DpFrontierCache::Insert(const std::string& key,
                             std::shared_ptr<const DpFrontierEntry> entry) {
  if (capacity_ == 0 || entry == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Concurrent cold Runs over the same signature are deterministic, so
    // entries at the same budget are interchangeable; keep the wider one.
    if (it->second->second->budget_units >= entry->budget_units) return;
    it->second->second = std::move(entry);
    lru_.splice(lru_.begin(), lru_, it->second);
    ++insertions_;
    return;
  }
  lru_.emplace_front(key, std::move(entry));
  index_[key] = lru_.begin();
  ++insertions_;
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
  }
}

DpFrontierCacheStats DpFrontierCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  DpFrontierCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.insertions = insertions_;
  s.evictions = evictions_;
  s.size = lru_.size();
  s.capacity = capacity_;
  return s;
}

}  // namespace galvatron
