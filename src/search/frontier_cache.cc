#include "search/frontier_cache.h"

namespace galvatron {

namespace {

/// SplitMix64-style mixing of one more word into a running hash — the same
/// scheme the shared cost cache uses, so both key families disperse alike.
inline size_t HashCombine(size_t h, uint64_t v) {
  v += 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ULL;
  v = (v ^ (v >> 27)) * 0x94d049bb133111ebULL;
  return static_cast<size_t>(v ^ (v >> 31)) ^ h;
}

uint64_t NextCacheSerial() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

void DpFrontierKey::Finalize() {
  size_t h = HashCombine(0, words.size());
  size_t i = 0;
  for (; i + 1 < words.size(); i += 2) {
    h = HashCombine(
        h, (static_cast<uint64_t>(static_cast<uint32_t>(words[i])) << 32) |
               static_cast<uint32_t>(words[i + 1]));
  }
  if (i < words.size()) {
    h = HashCombine(h, static_cast<uint32_t>(words[i]));
  }
  hash = h;
}

DpFrontierKey DpFrontierKey::FromString(const std::string& text) {
  DpFrontierKey key;
  key.words.reserve(2 + text.size() / 4 + 1);
  key.Append(1);  // tag: string-packed, disjoint from structural keys
  key.Append(static_cast<int32_t>(text.size()));
  uint32_t word = 0;
  int filled = 0;
  for (const char c : text) {
    word = (word << 8) | static_cast<unsigned char>(c);
    if (++filled == 4) {
      key.Append(static_cast<int32_t>(word));
      word = 0;
      filled = 0;
    }
  }
  if (filled > 0) key.Append(static_cast<int32_t>(word));
  key.Finalize();
  return key;
}

DpFrontierCache::DpFrontierCache(size_t capacity)
    : serial_(NextCacheSerial()), capacity_(capacity) {}

std::shared_ptr<const DpFrontierEntry> DpFrontierCache::Lookup(
    const DpFrontierKey& key) {
  if (capacity_ == 0) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second;
}

void DpFrontierCache::Insert(const DpFrontierKey& key,
                             std::shared_ptr<const DpFrontierEntry> entry) {
  if (capacity_ == 0 || entry == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Concurrent cold Runs over the same signature are deterministic, so
    // entries at the same budget are interchangeable; keep the wider one.
    if (it->second->second->budget_units >= entry->budget_units) return;
    it->second->second = std::move(entry);
    lru_.splice(lru_.begin(), lru_, it->second);
    ++insertions_;
    return;
  }
  lru_.emplace_front(key, std::move(entry));
  index_[lru_.front().first] = lru_.begin();
  ++insertions_;
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
  }
}

std::shared_ptr<const DpFrontierEntry> DpFrontierCache::Lookup(
    const std::string& key) {
  return Lookup(DpFrontierKey::FromString(key));
}

void DpFrontierCache::Insert(const std::string& key,
                             std::shared_ptr<const DpFrontierEntry> entry) {
  Insert(DpFrontierKey::FromString(key), std::move(entry));
}

int32_t DpFrontierCache::Intern(const std::string& text) {
  std::lock_guard<std::mutex> lock(intern_mu_);
  auto [it, inserted] =
      intern_ids_.emplace(text, static_cast<int32_t>(intern_ids_.size()));
  return it->second;
}

DpFrontierCacheStats DpFrontierCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  DpFrontierCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.insertions = insertions_;
  s.evictions = evictions_;
  s.size = lru_.size();
  s.capacity = capacity_;
  return s;
}

}  // namespace galvatron
