#include "search/optimizer.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <set>
#include <utility>

#include "search/cost_cache.h"
#include "util/alloc_counter.h"
#include "util/logging.h"
#include "util/math_util.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace galvatron {

namespace {

/// PP degrees to try: powers of two dividing the device count, capped by
/// the layer count (stages must be non-empty).
std::vector<int> DefaultPipelineDegrees(int num_devices, int num_layers) {
  std::vector<int> degrees;
  for (int p = 1; p <= num_devices; p *= 2) {
    if (num_devices % p == 0 && p <= num_layers) degrees.push_back(p);
  }
  return degrees;
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Everything the sweep needs per PP degree, enumerated once up front
/// (B-independent): the stage geometry, per-stage candidate strategies,
/// the pipeline partition, and pre-built uniform single-strategy plan
/// templates. Equal-split degrees share one candidate vector across all
/// stages; uneven degrees (heterogeneous islands) carry one per width.
struct PerDegree {
  int pp = 1;
  /// Device block of each stage. Equal-split entries use {s*span, span};
  /// island-proportional entries may differ per stage.
  std::vector<StageGeometry> geometry;
  /// Candidate strategies per stage, shared between stages of one width.
  std::vector<std::shared_ptr<const std::vector<HybridStrategy>>>
      stage_candidates;
  std::vector<int> stage_sizes;
  /// Rank of the DP plan within a configuration: after every uniform
  /// candidate (the widest stage's count on uneven entries).
  int dp_rank = 0;
  /// True when every stage is num_devices/pp wide — the only shape
  /// MakeUniformPlan templates cover.
  bool equal_split = true;
  /// (candidate index, fully-built uniform plan) per structurally valid
  /// candidate. Built once per degree; the per-configuration loop patches
  /// the batch fields into a thread-local scratch copy instead of
  /// re-allocating every stage's strategy vector for every configuration.
  std::vector<std::pair<int, TrainingPlan>> uniform_templates;
};

/// One pipeline stage of a DP result, as indices into the owning
/// PerDegree's candidate vector. Two ints per layer instead of a
/// materialized HybridStrategy — the sweep ranks thousands of these and
/// materializes only the single committed winner.
struct StageDraft {
  int first_layer = 0;
  int num_layers = 0;
  std::vector<int32_t> options;    // candidate strategy index per layer
  std::vector<uint8_t> recompute;  // empty unless allow_recompute
};

/// A configuration's winning plan by reference: the degree it came from,
/// the batch shape, the shared cost entry, and either a uniform-template
/// index or a draft of candidate indices. No TrainingPlan is materialized
/// until the sweep commits its single winner (and the per-degree
/// alternates) — comparison needs only the cached cost and the ordinals.
struct RankedPlan {
  const PerDegree* degree = nullptr;
  int batch = 1;
  int micro = 1;
  int pp = 1;
  std::shared_ptr<const PlanCost> cost;
  /// Within one configuration: uniform single-strategy candidates get their
  /// enumeration index, the DP plan gets candidates.size() — matching the
  /// order the serial sweep considered them in.
  int candidate_rank = 0;
  /// Global enumeration ordinal of the (batch, degree, micro) configuration.
  int config_ordinal = 0;
  /// >= 0: the winner is degree->uniform_templates[uniform_template] with
  /// the batch fields patched; -1: the DP plan described by `stages`.
  int uniform_template = -1;
  std::vector<StageDraft> stages;
};

/// Total order over plans: higher estimated throughput wins; exact ties
/// resolve to the lower PP degree, then the earlier-enumerated
/// configuration, then the earlier-considered candidate. Because no term
/// depends on evaluation timing, the merged winner is byte-identical
/// whether configurations were evaluated serially or by racing workers.
bool BetterPlan(const RankedPlan& a, const RankedPlan& b) {
  if (a.cost->throughput_samples_per_sec !=
      b.cost->throughput_samples_per_sec) {
    return a.cost->throughput_samples_per_sec >
           b.cost->throughput_samples_per_sec;
  }
  if (a.pp != b.pp) return a.pp < b.pp;
  if (a.config_ordinal != b.config_ordinal) {
    return a.config_ordinal < b.config_ordinal;
  }
  return a.candidate_rank < b.candidate_rank;
}

/// Everything one worker produces for one configuration. Merged serially in
/// ordinal order after each wave.
struct ConfigOutcome {
  bool feasible = false;  // at least one plan passed EstimatePlan
  bool has_best = false;
  RankedPlan best;
  int64_t dp_states = 0;
  int64_t dp_breakpoints = 0;
  int64_t dp_pruned = 0;
  int64_t dp_frontier_hits = 0;    // stage searches replayed from cache
  int64_t dp_frontier_misses = 0;  // stage searches that ran cold
  int64_t dp_allocations = 0;      // heap allocations inside DpSearch::Run
  int64_t sweep_allocations = 0;   // heap allocations of the whole evaluate
  Status error;  // non-OK only on fatal (non-OOM, non-infeasible) errors
};

/// Appends one stage's identity to a plan-cost memo key. Strategy levels
/// encode structurally — NOT via InternStrategy: interning formats the
/// strategy string first, and that formatting dominated the whole warm
/// sweep when profiled. Consecutive layers with one (strategy, recompute)
/// pair compress to a single run — uniform plans, the bulk of the sweep's
/// evaluations, shrink from O(layers) to O(1) words. Maximal runs partition
/// a stage's layers deterministically, so the encoding stays injective.
///
/// `layer(l)` returns (strategy pointer, recompute flag) for stage-local
/// layer l; runs compare strategies by VALUE, so a key built from a
/// StageDraft's candidate indices and one built from a materialized plan's
/// layer_strategies are word-identical — the draft path and the plan path
/// share one memo.
template <typename LayerFn>
void AppendStageKey(PlanCostKey& key, int first_device, int num_devices,
                    int first_layer, int num_layers, const LayerFn& layer) {
  key.words.push_back(first_device);
  key.words.push_back(num_devices);
  key.words.push_back(first_layer);
  key.words.push_back(num_layers);
  for (int l = 0; l < num_layers;) {
    const auto [strat, recompute] = layer(l);
    int run = l + 1;
    while (run < num_layers) {
      const auto [next, next_recompute] = layer(run);
      if (!(*next == *strat) || next_recompute != recompute) break;
      ++run;
    }
    key.words.push_back(run - l);
    key.words.push_back((strat->num_levels() << 1) | recompute);
    for (const ParallelComponent& level : strat->levels()) {
      key.words.push_back((static_cast<int32_t>(level.dim) << 16) |
                          level.degree);
    }
    l = run;
  }
}

}  // namespace

Optimizer::Optimizer(const ClusterSpec* cluster, OptimizerOptions options)
    : cluster_(cluster),
      options_(std::move(options)),
      estimator_(cluster, options_.estimator) {
  GALVATRON_CHECK(cluster != nullptr);
}

Result<OptimizationResult> Optimizer::Optimize(const ModelSpec& model) const {
  return Optimize(model, /*shared_cache=*/nullptr);
}

Result<OptimizationResult> Optimizer::Optimize(
    const ModelSpec& model, SharedCostCache* shared_cache,
    const std::function<bool()>& cancel_check) const {
  return Optimize(model, shared_cache, /*frontier_cache=*/nullptr,
                  cancel_check);
}

Result<OptimizationResult> Optimizer::Optimize(
    const ModelSpec& model, SharedCostCache* shared_cache,
    DpFrontierCache* frontier_cache,
    const std::function<bool()>& cancel_check) const {
  // Options validation. A negative thread count is a caller bug, not a
  // request for serial search — clamping it silently used to mask e.g.
  // sign errors in CLI/serve plumbing.
  if (options_.search_threads < 0) {
    return Status::InvalidArgument(StrFormat(
        "search_threads must be >= 0 (0 = all hardware threads), got %d",
        options_.search_threads));
  }
  const auto start = std::chrono::steady_clock::now();
  const int num_devices = cluster_->num_devices();
  const auto cancelled = [&cancel_check] {
    return cancel_check && cancel_check();
  };

  std::vector<int> pp_degrees = options_.pp_degrees;
  if (pp_degrees.empty()) {
    pp_degrees = DefaultPipelineDegrees(num_devices, model.num_layers());
  }

  DpSearchOptions dp_options;
  dp_options.memory_granularity = options_.memory_granularity;
  dp_options.allow_recompute = options_.allow_recompute;
  dp_options.use_sparse_dp = options_.use_sparse_dp;
  // The sweep ranks results by index chains and materializes only the
  // committed winners (see MaterializeDpSearchResult calls below).
  dp_options.materialize_plans = false;
  DpSearch search(&estimator_, dp_options);

  // Sweep-wide memo over the estimator: every stage search of every
  // configuration (and every worker thread) shares it, so a repeated
  // Transformer block is estimated once per distinct shape per sweep. A
  // caller-provided cache extends the sharing across runs (the serving
  // daemon's warm path); its entries carry no memory budget, so reuse
  // across budget variants is sound.
  SharedCostCache local_cache(&estimator_, &model);
  SharedCostCache* cache = shared_cache != nullptr ? shared_cache
                                                   : &local_cache;
  const CostCacheStats cache_stats_before = cache->stats();

  // Run-local frontier sharing: even with no caller-provided cache, the
  // sparse sweep keeps one for the duration of this run. Under GPipe every
  // stage of a configuration holds the same resident micro-batch count, so
  // the P stages of a P-deep pipeline share one Run signature per distinct
  // layer block — one cold kernel run serves all of them, and repeated
  // signatures across (batch, micro) configurations replay too (the
  // frontier prefix property keeps the answers byte-identical; see
  // frontier_cache.h). Warm replays report zero states/breakpoints, so the
  // sparse-vs-dense telemetry invariants are unaffected.
  std::unique_ptr<DpFrontierCache> local_frontier;
  if (frontier_cache == nullptr && options_.use_sparse_dp) {
    local_frontier = std::make_unique<DpFrontierCache>();
  }
  DpFrontierCache* fcache =
      frontier_cache != nullptr ? frontier_cache : local_frontier.get();

  std::vector<PerDegree> degrees;
  // batch=1/micro=1 satisfies every batch-dependent Validate check, so a
  // template failure here is structural and holds for every configuration.
  auto build_uniform_templates = [&](PerDegree& d) {
    if (!d.equal_split) return;  // templates require equal stage widths
    const std::vector<HybridStrategy>& candidates = *d.stage_candidates.front();
    for (size_t c = 0; c < candidates.size(); ++c) {
      auto uniform = MakeUniformPlan(model, num_devices, d.pp, d.stage_sizes,
                                     candidates[c], /*global_batch=*/1,
                                     /*num_micro_batches=*/1);
      if (!uniform.ok()) continue;
      uniform->schedule = options_.schedule;
      d.uniform_templates.emplace_back(static_cast<int>(c),
                                       *std::move(uniform));
    }
  };
  std::set<std::string> candidate_names;
  // Candidate sets are pure functions of the stage width; uneven degrees
  // revisit widths, so enumerate each width once.
  std::map<int, std::shared_ptr<const std::vector<HybridStrategy>>>
      width_candidates;
  auto candidates_for_width = [&](int width)
      -> Result<std::shared_ptr<const std::vector<HybridStrategy>>> {
    auto it = width_candidates.find(width);
    if (it != width_candidates.end()) return it->second;
    GALVATRON_ASSIGN_OR_RETURN(
        std::vector<HybridStrategy> enumerated,
        EnumerateSingleLayerStrategies(width, options_.tree));
    auto shared = std::make_shared<const std::vector<HybridStrategy>>(
        std::move(enumerated));
    for (const HybridStrategy& s : *shared) {
      candidate_names.insert(s.ToString());
    }
    width_candidates.emplace(width, shared);
    return shared;
  };
  for (int pp : pp_degrees) {
    if (pp < 1 || num_devices % pp != 0 || pp > model.num_layers()) continue;
    PerDegree d;
    d.pp = pp;
    const int span = num_devices / pp;
    GALVATRON_ASSIGN_OR_RETURN(
        std::shared_ptr<const std::vector<HybridStrategy>> candidates,
        candidates_for_width(span));
    d.geometry.reserve(static_cast<size_t>(pp));
    for (int s = 0; s < pp; ++s) {
      d.geometry.push_back(StageGeometry{s * span, span});
    }
    d.stage_candidates.assign(static_cast<size_t>(pp), candidates);
    d.dp_rank = static_cast<int>(candidates->size());
    GALVATRON_ASSIGN_OR_RETURN(
        d.stage_sizes,
        PartitionPipeline(model, pp, options_.partition_policy));
    // Heterogeneous clusters: also try a capacity-aware partition that
    // hands roomier islands proportionally more layers.
    if (pp > 1 && !cluster_->HasUniformMemory()) {
      PerDegree hetero = d;
      std::vector<double> capacities;
      for (int s = 0; s < pp; ++s) {
        capacities.push_back(static_cast<double>(
            cluster_->MinMemoryInRange(s * span, span)));
      }
      auto sizes = PartitionPipelineHeterogeneous(
          model, options_.partition_policy, capacities);
      if (sizes.ok() && *sizes != d.stage_sizes) {
        hetero.stage_sizes = *std::move(sizes);
        build_uniform_templates(hetero);
        degrees.push_back(std::move(hetero));
      }
    }
    build_uniform_templates(d);
    degrees.push_back(std::move(d));
  }
  // Mixed-generation (or graph-backed) clusters: island-proportional
  // uneven stage splits, appended after the equal-split entries so
  // homogeneous enumeration ordinals are untouched. Faster islands get
  // more stages (and the layer partition then weighs stages by their
  // block's throughput), which no equal split can express when islands
  // differ in width or speed.
  const bool graph_or_mixed =
      cluster_->topology() != nullptr || !cluster_->HasUniformCompute();
  if (options_.allow_uneven_stages && graph_or_mixed) {
    const std::vector<DeviceIsland> islands = cluster_->ComputeIslands();
    if (islands.size() > 1) {
      std::set<int> uneven_pps(pp_degrees.begin(), pp_degrees.end());
      uneven_pps.insert(static_cast<int>(islands.size()));
      for (const int pp : uneven_pps) {
        if (pp < 2 || pp > model.num_layers() || pp > num_devices) continue;
        auto geo = ProportionalStageGeometry(islands, pp);
        if (!geo.ok()) continue;
        PerDegree d;
        d.pp = pp;
        d.geometry = *std::move(geo);
        d.equal_split =
            num_devices % pp == 0 &&
            std::all_of(d.geometry.begin(), d.geometry.end(),
                        [&](const StageGeometry& g) {
                          return g.num_devices == num_devices / pp;
                        });
        bool enumerated_ok = true;
        std::vector<double> capacities;
        for (const StageGeometry& g : d.geometry) {
          auto candidates = candidates_for_width(g.num_devices);
          if (!candidates.ok()) {
            enumerated_ok = false;
            break;
          }
          d.stage_candidates.push_back(*std::move(candidates));
          d.dp_rank = std::max(
              d.dp_rank,
              static_cast<int>(d.stage_candidates.back()->size()));
          capacities.push_back(
              g.num_devices *
              cluster_->MinSustainedFlopsInRange(g.first_device,
                                                 g.num_devices));
        }
        if (!enumerated_ok) continue;
        auto sizes = PartitionPipelineHeterogeneous(
            model, options_.partition_policy, capacities);
        if (!sizes.ok()) {
          sizes = PartitionPipeline(model, pp, options_.partition_policy);
        }
        if (!sizes.ok()) continue;
        d.stage_sizes = *std::move(sizes);
        const bool duplicate = std::any_of(
            degrees.begin(), degrees.end(), [&](const PerDegree& existing) {
              return existing.pp == d.pp &&
                     existing.geometry == d.geometry &&
                     existing.stage_sizes == d.stage_sizes;
            });
        if (duplicate) continue;
        build_uniform_templates(d);
        degrees.push_back(std::move(d));
      }
    }
  }
  if (degrees.empty()) {
    return Status::InvalidArgument("no valid pipeline degrees");
  }

  SearchStats stats;
  stats.num_candidate_strategies = static_cast<int>(candidate_names.size());
  stats.enumerate_seconds = SecondsSince(start);

  int threads = options_.search_threads;
  if (threads == 0) threads = ThreadPool::HardwareThreads();
  // The sweep is CPU-bound, so a pool wider than the physical core count
  // only buys thread start-up and context-switch cost; cap it so asking
  // for 4 threads on a smaller host is never slower than asking for 1.
  threads = std::min(threads, ThreadPool::HardwareThreads());
  stats.search_threads_used = threads;
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);

  // Whole-plan cost memo. EstimatePlan is budget-independent except for
  // the per-stage peak-vs-budget comparison, so the cost is computed once
  // with the check deferred, published to the (possibly cross-request)
  // cache, and the comparison re-applied here per call — with the same
  // stage order, short-circuiting, and error text as the checked call.
  // Keys are built into thread-local scratch (one sweep issues hundreds of
  // lookups, mostly hits, which need no owned copy) via AppendStageKey,
  // from a materialized plan or straight from a StageDraft's candidate
  // indices — both spell identical keys.
  auto plan_cost_key = [&](const TrainingPlan& plan) -> const PlanCostKey& {
    thread_local PlanCostKey key;
    key.words.clear();
    key.words.push_back(static_cast<int32_t>(plan.schedule));
    key.words.push_back(plan.global_batch);
    key.words.push_back(plan.num_micro_batches);
    for (const StagePlan& stage : plan.stages) {
      AppendStageKey(
          key, stage.first_device, stage.num_devices, stage.first_layer,
          stage.num_layers, [&](int l) {
            return std::pair<const HybridStrategy*, int32_t>(
                &stage.layer_strategies[static_cast<size_t>(l)],
                !stage.recompute.empty() &&
                        stage.recompute[static_cast<size_t>(l)] != 0
                    ? 1
                    : 0);
          });
    }
    key.Finalize();
    return key;
  };
  auto draft_cost_key = [&](const PerDegree& degree, int batch, int micro,
                            const std::vector<StageDraft>& stages)
      -> const PlanCostKey& {
    thread_local PlanCostKey key;
    key.words.clear();
    key.words.push_back(static_cast<int32_t>(options_.schedule));
    key.words.push_back(batch);
    key.words.push_back(micro);
    for (size_t s = 0; s < stages.size(); ++s) {
      const StageDraft& d = stages[s];
      const StageGeometry& geom = degree.geometry[s];
      const std::vector<HybridStrategy>& candidates =
          *degree.stage_candidates[s];
      AppendStageKey(
          key, geom.first_device, geom.num_devices, d.first_layer,
          d.num_layers, [&](int l) {
            return std::pair<const HybridStrategy*, int32_t>(
                &candidates[static_cast<size_t>(
                    d.options[static_cast<size_t>(l)])],
                !d.recompute.empty() &&
                        d.recompute[static_cast<size_t>(l)] != 0
                    ? 1
                    : 0);
          });
    }
    key.Finalize();
    return key;
  };
  auto lookup_or_estimate = [&](const PlanCostKey& key,
                                const TrainingPlan& plan)
      -> Result<std::shared_ptr<const PlanCost>> {
    std::shared_ptr<const PlanCost> cost = cache->LookupPlan(key);
    if (cost == nullptr) {
      auto unchecked =
          estimator_.EstimatePlan(model, plan, /*check_memory=*/false);
      // Estimation errors stay uncached and are re-raised through the
      // checked call, so failure semantics match the unmemoized path.
      if (!unchecked.ok()) {
        auto checked = estimator_.EstimatePlan(model, plan);
        if (!checked.ok()) return checked.status();
        return std::shared_ptr<const PlanCost>(
            std::make_shared<PlanCost>(*std::move(checked)));
      }
      cost = cache->InsertPlan(key, *std::move(unchecked));
    }
    return cost;
  };
  auto check_plan_memory = [&](const TrainingPlan& plan,
                               const PlanCost& cost) -> Status {
    for (size_t i = 0; i < plan.stages.size(); ++i) {
      const StagePlan& stage = plan.stages[i];
      const int64_t budget = cluster_->MinMemoryInRange(
          stage.first_device, stage.layer_strategies.front().TotalDegree());
      const int64_t peak = cost.stages[i].peak_memory_bytes;
      if (peak > budget) {
        return Status::OutOfMemory(StrFormat(
            "stage needs %s but budget is %s",
            HumanBytes(static_cast<double>(peak)).c_str(),
            HumanBytes(static_cast<double>(budget)).c_str()));
      }
    }
    return Status::OK();
  };
  auto estimate_plan = [&](const TrainingPlan& plan)
      -> Result<std::shared_ptr<const PlanCost>> {
    GALVATRON_ASSIGN_OR_RETURN(
        std::shared_ptr<const PlanCost> cost,
        lookup_or_estimate(plan_cost_key(plan), plan));
    GALVATRON_RETURN_IF_ERROR(check_plan_memory(plan, *cost));
    return cost;
  };

  // Materializes a draft into `plan`, reusing its nested buffers — the
  // only place full strategy vectors are built for DP plans, reached on a
  // plan-memo miss and when the sweep commits a winner.
  auto materialize_draft = [&](const PerDegree& degree, int batch, int micro,
                               const std::vector<StageDraft>& stages,
                               TrainingPlan& plan) {
    plan.model_name = model.name();
    plan.global_batch = batch;
    plan.num_micro_batches = micro;
    plan.schedule = options_.schedule;
    plan.stages.resize(stages.size());
    for (size_t s = 0; s < stages.size(); ++s) {
      const StageDraft& d = stages[s];
      StagePlan& stage = plan.stages[s];
      const StageGeometry& geom = degree.geometry[s];
      const std::vector<HybridStrategy>& candidates =
          *degree.stage_candidates[s];
      stage.first_device = geom.first_device;
      stage.num_devices = geom.num_devices;
      stage.first_layer = d.first_layer;
      stage.num_layers = d.num_layers;
      stage.layer_strategies.clear();
      stage.layer_strategies.reserve(d.options.size());
      for (const int32_t o : d.options) {
        stage.layer_strategies.push_back(candidates[static_cast<size_t>(o)]);
      }
      stage.recompute.assign(d.recompute.begin(), d.recompute.end());
    }
  };
  // Estimates a DP draft without materializing it: the memo key comes
  // straight from the candidate indices, so a sweep whose plan costs are
  // already memoized never copies a strategy at all. Only a memo miss
  // materializes the draft, into a thread-local scratch plan whose buffers
  // are reused across configurations. The memory check reads each stage's
  // leading strategy (its TotalDegree picks the budget row) and the cached
  // per-stage peaks — same order, short-circuiting, and message as
  // check_plan_memory.
  auto estimate_draft = [&](const PerDegree& degree, int batch, int micro,
                            const std::vector<StageDraft>& stages)
      -> Result<std::shared_ptr<const PlanCost>> {
    const PlanCostKey& key = draft_cost_key(degree, batch, micro, stages);
    std::shared_ptr<const PlanCost> cost = cache->LookupPlan(key);
    if (cost == nullptr) {
      static thread_local TrainingPlan scratch;
      materialize_draft(degree, batch, micro, stages, scratch);
      GALVATRON_ASSIGN_OR_RETURN(cost, lookup_or_estimate(key, scratch));
    }
    for (size_t s = 0; s < stages.size(); ++s) {
      const StageDraft& d = stages[s];
      const int64_t budget = cluster_->MinMemoryInRange(
          degree.geometry[s].first_device,
          (*degree.stage_candidates[s])[static_cast<size_t>(
                                            d.options.front())]
              .TotalDegree());
      const int64_t peak = cost->stages[s].peak_memory_bytes;
      if (peak > budget) {
        return Status::OutOfMemory(StrFormat(
            "stage needs %s but budget is %s",
            HumanBytes(static_cast<double>(peak)).c_str(),
            HumanBytes(static_cast<double>(budget)).c_str()));
      }
    }
    return cost;
  };

  // Evaluates one (batch, degree, micro) configuration. Pure function of
  // its arguments plus the (thread-safe, const) estimator and shared
  // caches — safe to run on any worker.
  auto evaluate = [&](const PerDegree& degree, int batch, int micro,
                      int config_ordinal) -> ConfigOutcome {
    ConfigOutcome out;
    if (cancelled()) {
      out.error = Status::Cancelled("strategy sweep cancelled");
      return out;
    }
    // Best plan of THIS configuration, tracked without materializing
    // anything: a uniform-template index or a draft of candidate indices,
    // plus the shared cost entry. Within one configuration the PP degree
    // and ordinal are fixed, so BetterPlan reduces to strictly higher
    // throughput (earlier candidates keep ties); nothing is deep-copied —
    // the sweep materializes only its single committed winner.
    std::shared_ptr<const PlanCost> best_cost;
    int best_rank = 0;
    int best_template = -1;
    std::vector<StageDraft> draft;
    auto commit_best = [&] {
      if (best_cost == nullptr) return;
      out.best.degree = &degree;
      out.best.batch = batch;
      out.best.micro = micro;
      out.best.pp = degree.pp;
      out.best.cost = std::move(best_cost);
      out.best.candidate_rank = best_rank;
      out.best.config_ordinal = config_ordinal;
      out.best.uniform_template = best_template;
      if (best_template < 0) out.best.stages = std::move(draft);
      out.has_best = true;
    };
    // Uniform single-strategy plans first: they are points of the same
    // search space, and evaluating them through the exact estimator
    // guarantees the search never loses to a pure baseline because of
    // DP-table memory quantization. The structure comes from the pre-built
    // per-degree template; only the batch fields differ per configuration,
    // patched into a thread-local scratch whose nested vectors are reused
    // across configurations. The guard reproduces exactly the
    // batch-dependent Validate failures MakeUniformPlan would hit.
    if (batch >= 1 && micro >= 1 && micro <= batch) {
      static thread_local TrainingPlan uniform_scratch;
      for (size_t t = 0; t < degree.uniform_templates.size(); ++t) {
        uniform_scratch = degree.uniform_templates[t].second;
        uniform_scratch.global_batch = batch;
        uniform_scratch.num_micro_batches = micro;
        auto uniform_cost = estimate_plan(uniform_scratch);
        if (!uniform_cost.ok()) continue;
        out.feasible = true;
        if (best_cost == nullptr ||
            (*uniform_cost)->throughput_samples_per_sec >
                best_cost->throughput_samples_per_sec) {
          best_cost = *std::move(uniform_cost);
          best_rank = degree.uniform_templates[t].first;
          best_template = static_cast<int>(t);
        }
      }
    }

    // Per-stage DP, collected as a draft of candidate indices (the kernel
    // runs with materialize_plans off and returns index chains only). The
    // probe plan carries just the schedule shape InFlightForDegree reads.
    TrainingPlan probe;
    probe.global_batch = batch;
    probe.num_micro_batches = micro;
    probe.schedule = options_.schedule;

    bool oom = false;
    int first_layer = 0;
    draft.reserve(static_cast<size_t>(degree.pp));
    for (int s = 0; s < degree.pp && !oom; ++s) {
      if (cancelled()) {
        out.error = Status::Cancelled("strategy sweep cancelled");
        return out;
      }
      const int stage_layers = degree.stage_sizes[static_cast<size_t>(s)];
      const StageGeometry& geom = degree.geometry[static_cast<size_t>(s)];
      const int64_t stage_budget =
          cluster_->MinMemoryInRange(geom.first_device, geom.num_devices);
      auto result = search.Run(model, first_layer, stage_layers,
                               *degree.stage_candidates[static_cast<size_t>(s)],
                               geom.first_device,
                               batch, micro, stage_budget,
                               probe.InFlightForDegree(degree.pp, s),
                               cache, fcache, &cancel_check);
      if (fcache != nullptr) {
        // Warm infeasible answers are invisible here (no DpSearchResult to
        // carry the flag) and count as misses; the cache's own stats()
        // still record them as hits.
        if (result.ok() && result->frontier_hit) {
          ++out.dp_frontier_hits;
        } else {
          ++out.dp_frontier_misses;
        }
      }
      if (!result.ok()) {
        if (result.status().IsInfeasible() ||
            result.status().IsOutOfMemory()) {
          oom = true;
          break;
        }
        out.error = result.status();
        return out;
      }
      out.dp_states += result->states_explored;
      out.dp_breakpoints += result->breakpoints_emitted;
      out.dp_pruned += result->options_pruned;
      out.dp_allocations += result->allocations;
      StageDraft d;
      d.first_layer = first_layer;
      d.num_layers = stage_layers;
      d.options = std::move(result->per_layer_option);
      if (options_.allow_recompute) {
        d.recompute = std::move(result->per_layer_recompute);
      }
      draft.push_back(std::move(d));
      first_layer += stage_layers;
    }
    if (oom) {
      commit_best();
      return out;
    }

    auto cost = estimate_draft(degree, batch, micro, draft);
    if (!cost.ok()) {
      if (!cost.status().IsOutOfMemory()) out.error = cost.status();
      commit_best();
      return out;
    }
    out.feasible = true;
    // The DP plan carries the highest candidate rank, so it too replaces
    // only on strictly higher throughput.
    if (best_cost == nullptr ||
        (*cost)->throughput_samples_per_sec >
            best_cost->throughput_samples_per_sec) {
      best_cost = *std::move(cost);
      best_rank = degree.dp_rank;
      best_template = -1;
    }
    commit_best();
    return out;
  };

  // Materializes a RankedPlan into a full TrainingPlan — called once for
  // the winner and once per alternate, after the sweep has settled.
  auto materialize_plan = [&](const RankedPlan& ranked) -> TrainingPlan {
    TrainingPlan plan;
    if (ranked.uniform_template >= 0) {
      plan = ranked.degree
                 ->uniform_templates[static_cast<size_t>(
                     ranked.uniform_template)]
                 .second;
      plan.global_batch = ranked.batch;
      plan.num_micro_batches = ranked.micro;
      return plan;
    }
    materialize_draft(*ranked.degree, ranked.batch, ranked.micro,
                      ranked.stages, plan);
    return plan;
  };

  RankedPlan best;
  bool have_best = false;
  // Best plan per PP degree, kept as alternates.
  std::map<int, RankedPlan> best_per_degree;
  int next_ordinal = 0;

  // Wave dispatch is adaptive: handing a wave to the pool costs futex
  // round-trips that dwarf a fully warm wave's compute (frontier + plan
  // memos make it microseconds), so a wave that finishes under the
  // threshold runs the NEXT wave inline, and a slow inline wave switches
  // back. Only latency changes — the ordinal-ordered merge below makes the
  // result identical however a wave was executed.
  constexpr double kInlineWaveSeconds = 250e-6;
  bool wave_inline = false;

  // Algorithm 1: grow the batch until every PP degree is out of memory.
  // The batch loop stays serial (its exit condition depends on this wave's
  // feasibility); within a wave, the independent (degree, micro)
  // configurations fan out across the pool and are merged in enumeration
  // order below.
  for (int batch = options_.batch_step;
       batch <= options_.max_batch; batch += options_.batch_step) {
    if (cancelled()) return Status::Cancelled("strategy sweep cancelled");
    bool any_pending = false;  // degrees whose pipelines the batch can't fill yet
    struct ConfigTask {
      const PerDegree* degree;
      int micro;
      int ordinal;
    };
    std::vector<ConfigTask> tasks;
    for (const PerDegree& degree : degrees) {
      // Micro-batch counts: 1 for the non-pipelined case, else multiples of
      // the stage count (GPipe needs m >= P to fill the pipe).
      std::vector<int> micro_counts;
      if (degree.pp == 1) {
        micro_counts.push_back(1);
      } else {
        for (int mult : options_.micro_batch_multipliers) {
          const int m = degree.pp * mult;
          if (m <= batch) micro_counts.push_back(m);
        }
        if (micro_counts.empty() && degree.pp <= batch) {
          micro_counts.push_back(degree.pp);
        }
        if (micro_counts.empty()) any_pending = true;
      }
      for (int micro : micro_counts) {
        tasks.push_back(ConfigTask{&degree, micro, next_ordinal++});
      }
    }

    std::vector<ConfigOutcome> outcomes(tasks.size());
    const auto wave_start = std::chrono::steady_clock::now();
    ParallelFor(wave_inline ? nullptr : pool.get(),
                static_cast<int>(tasks.size()), [&](int i) {
      const ConfigTask& task = tasks[static_cast<size_t>(i)];
      ConfigOutcome& out = outcomes[static_cast<size_t>(i)];
      // Allocation telemetry: evaluate runs entirely on this worker, so a
      // thread-local counter delta captures its heap traffic exactly.
      const int64_t allocs_before = CurrentThreadAllocCount();
      out = evaluate(*task.degree, batch, task.micro, task.ordinal);
      out.sweep_allocations = CurrentThreadAllocCount() - allocs_before;
    });
    wave_inline = SecondsSince(wave_start) < kInlineWaveSeconds;

    // Deterministic merge: walk outcomes in enumeration order; the first
    // fatal error (by ordinal) is returned, exactly as the serial sweep
    // would have surfaced it.
    bool any_feasible = false;
    for (ConfigOutcome& out : outcomes) {
      if (!out.error.ok()) return out.error;
      ++stats.configs_explored;
      stats.dp_states_explored += out.dp_states;
      stats.dp_breakpoints_emitted += out.dp_breakpoints;
      stats.dp_options_pruned += out.dp_pruned;
      stats.dp_frontier_hits += out.dp_frontier_hits;
      stats.dp_frontier_misses += out.dp_frontier_misses;
      stats.dp_allocations += out.dp_allocations;
      stats.sweep_allocations += out.sweep_allocations;
      any_feasible = any_feasible || out.feasible;
      if (!out.has_best) continue;
      const int pp = out.best.pp;
      auto it = best_per_degree.find(pp);
      if (it == best_per_degree.end() || BetterPlan(out.best, it->second)) {
        best_per_degree[pp] = out.best;
      }
      if (!have_best || BetterPlan(out.best, best)) {
        best = std::move(out.best);
        have_best = true;
      }
    }
    if (!any_feasible && !any_pending) {
      break;  // larger batches only use more memory
    }
  }
  stats.sweep_seconds = SecondsSince(start) - stats.enumerate_seconds;

  if (!have_best) {
    return Status::Infeasible(StrFormat(
        "%s does not fit %d devices with %s each", model.name().c_str(),
        num_devices,
        HumanBytes(static_cast<double>(
                       cluster_->MinMemoryInRange(0, num_devices)))
            .c_str()));
  }

  OptimizationResult result;
  result.plan = materialize_plan(best);
  result.estimated = PlanCost(*best.cost);

  // Co-optimization: feed the winning plan's measured per-layer times back
  // into the pipeline partitioner and re-search each stage.
  const auto co_optimize_start = std::chrono::steady_clock::now();
  for (int round = 0;
       round < options_.co_optimize_rounds && result.plan.pp_degree() > 1 &&
       !cancelled();
       ++round) {
    const int pp = result.plan.pp_degree();
    std::vector<double> layer_seconds;
    bool measured = true;
    for (const StagePlan& stage : result.plan.stages) {
      auto cost = estimator_.EstimateStage(
          model, stage.first_layer, stage.num_layers, stage.layer_strategies,
          stage.first_device, result.plan.global_batch,
          result.plan.num_micro_batches, stage.recompute,
          result.plan.InFlightMicroBatches(
              static_cast<int>(&stage - result.plan.stages.data())));
      if (!cost.ok()) {
        measured = false;
        break;
      }
      layer_seconds.insert(layer_seconds.end(),
                           cost->per_layer_seconds.begin(),
                           cost->per_layer_seconds.end());
    }
    if (!measured) break;
    Result<std::vector<int>> sizes = Status::Internal("unset");
    if (!graph_or_mixed) {
      sizes = PartitionByWeights(layer_seconds, pp);
    } else {
      // Mixed compute: weigh each layer by the throughput of the stage it
      // ran on (seconds x FLOP/s = flop-equivalents) and partition against
      // per-stage block throughput, so faster blocks absorb more layers.
      std::vector<double> capacities;
      std::vector<double> weights = layer_seconds;
      size_t l = 0;
      for (const StagePlan& stage : result.plan.stages) {
        const double throughput =
            stage.num_devices *
            cluster_->MinSustainedFlopsInRange(stage.first_device,
                                               stage.num_devices);
        capacities.push_back(throughput);
        for (int i = 0; i < stage.num_layers; ++i) {
          weights[l++] *= throughput;
        }
      }
      sizes = PartitionByWeightsWithCapacities(weights, capacities);
    }
    if (!sizes.ok()) break;
    bool same = true;
    for (int s = 0; s < pp; ++s) {
      if ((*sizes)[static_cast<size_t>(s)] !=
          result.plan.stages[static_cast<size_t>(s)].num_layers) {
        same = false;
      }
    }
    if (same) break;

    TrainingPlan refined;
    refined.model_name = model.name();
    refined.global_batch = result.plan.global_batch;
    refined.num_micro_batches = result.plan.num_micro_batches;
    refined.schedule = result.plan.schedule;
    int first_layer = 0;
    bool oom = false;
    for (int s = 0; s < pp && !oom; ++s) {
      // Device blocks come from the winning plan itself — uneven splits
      // keep their geometry across co-optimization rounds.
      const StagePlan& block = result.plan.stages[static_cast<size_t>(s)];
      auto candidates = candidates_for_width(block.num_devices);
      if (!candidates.ok()) {
        oom = true;
        break;
      }
      const int stage_layers = (*sizes)[static_cast<size_t>(s)];
      const int64_t stage_budget = cluster_->MinMemoryInRange(
          block.first_device, block.num_devices);
      auto stage_result =
          search.Run(model, first_layer, stage_layers, **candidates,
                     block.first_device, refined.global_batch,
                     refined.num_micro_batches, stage_budget,
                     refined.InFlightForDegree(pp, s), cache, fcache,
                     &cancel_check);
      if (!stage_result.ok()) {
        oom = true;
        break;
      }
      // The sweep-wide search runs with materialize_plans off; this stage
      // is being committed, so fill per_layer from the index chain.
      MaterializeDpSearchResult(**candidates, &*stage_result);
      StagePlan stage;
      stage.first_device = block.first_device;
      stage.num_devices = block.num_devices;
      stage.first_layer = first_layer;
      stage.num_layers = stage_layers;
      stage.layer_strategies = std::move(stage_result->per_layer);
      if (options_.allow_recompute) {
        stage.recompute = std::move(stage_result->per_layer_recompute);
      }
      refined.stages.push_back(std::move(stage));
      first_layer += stage_layers;
    }
    if (oom) break;
    auto cost = estimator_.EstimatePlan(model, refined);
    if (!cost.ok() || cost->throughput_samples_per_sec <=
                          result.estimated.throughput_samples_per_sec) {
      break;
    }
    result.plan = std::move(refined);
    result.estimated = *std::move(cost);
  }
  stats.co_optimize_seconds = SecondsSince(co_optimize_start);

  for (const auto& [pp, entry] : best_per_degree) {
    if (pp != result.plan.pp_degree()) {
      result.alternates.push_back(materialize_plan(entry));
    }
  }
  const CostCacheStats cache_stats = cache->stats();
  stats.cost_cache_hits = cache_stats.hits() - cache_stats_before.hits();
  stats.cost_cache_misses =
      cache_stats.misses() - cache_stats_before.misses();
  stats.cost_cache_lifetime_hits = cache_stats.hits();
  stats.cost_cache_lifetime_misses = cache_stats.misses();
  stats.used_external_cost_cache = shared_cache != nullptr;
  stats.search_seconds = SecondsSince(start);
  result.stats = stats;
  return result;
}

}  // namespace galvatron
