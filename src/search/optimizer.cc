#include "search/optimizer.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <set>
#include <utility>

#include "util/logging.h"
#include "util/math_util.h"
#include "util/string_util.h"

namespace galvatron {

namespace {

/// PP degrees to try: powers of two dividing the device count, capped by
/// the layer count (stages must be non-empty).
std::vector<int> DefaultPipelineDegrees(int num_devices, int num_layers) {
  std::vector<int> degrees;
  for (int p = 1; p <= num_devices; p *= 2) {
    if (num_devices % p == 0 && p <= num_layers) degrees.push_back(p);
  }
  return degrees;
}

}  // namespace

Optimizer::Optimizer(const ClusterSpec* cluster, OptimizerOptions options)
    : cluster_(cluster),
      options_(std::move(options)),
      estimator_(cluster, options_.estimator) {
  GALVATRON_CHECK(cluster != nullptr);
}

Result<OptimizationResult> Optimizer::Optimize(const ModelSpec& model) const {
  const auto start = std::chrono::steady_clock::now();
  const int num_devices = cluster_->num_devices();

  std::vector<int> pp_degrees = options_.pp_degrees;
  if (pp_degrees.empty()) {
    pp_degrees = DefaultPipelineDegrees(num_devices, model.num_layers());
  }

  DpSearchOptions dp_options;
  dp_options.memory_granularity = options_.memory_granularity;
  dp_options.allow_recompute = options_.allow_recompute;
  DpSearch search(&estimator_, dp_options);

  // Pre-enumerate candidates and partitions per PP degree (B-independent).
  struct PerDegree {
    int pp = 1;
    std::vector<HybridStrategy> candidates;
    std::vector<int> stage_sizes;
  };
  std::vector<PerDegree> degrees;
  std::set<std::string> candidate_names;
  for (int pp : pp_degrees) {
    if (pp < 1 || num_devices % pp != 0 || pp > model.num_layers()) continue;
    PerDegree d;
    d.pp = pp;
    GALVATRON_ASSIGN_OR_RETURN(
        d.candidates,
        EnumerateSingleLayerStrategies(num_devices / pp, options_.tree));
    GALVATRON_ASSIGN_OR_RETURN(
        d.stage_sizes,
        PartitionPipeline(model, pp, options_.partition_policy));
    for (const HybridStrategy& s : d.candidates) {
      candidate_names.insert(s.ToString());
    }
    // Heterogeneous clusters: also try a capacity-aware partition that
    // hands roomier islands proportionally more layers.
    if (pp > 1 && !cluster_->HasUniformMemory()) {
      PerDegree hetero = d;
      std::vector<double> capacities;
      const int span = num_devices / pp;
      for (int s = 0; s < pp; ++s) {
        capacities.push_back(static_cast<double>(
            cluster_->MinMemoryInRange(s * span, span)));
      }
      auto sizes = PartitionPipelineHeterogeneous(
          model, options_.partition_policy, capacities);
      if (sizes.ok() && *sizes != d.stage_sizes) {
        hetero.stage_sizes = *std::move(sizes);
        degrees.push_back(std::move(hetero));
      }
    }
    degrees.push_back(std::move(d));
  }
  if (degrees.empty()) {
    return Status::InvalidArgument("no valid pipeline degrees");
  }

  OptimizationResult best;
  bool have_best = false;
  SearchStats stats;
  stats.num_candidate_strategies = static_cast<int>(candidate_names.size());
  // Best (plan, estimated throughput) per PP degree, kept as alternates.
  std::map<int, std::pair<TrainingPlan, double>> best_per_degree;

  auto consider = [&](TrainingPlan plan, PlanCost cost) {
    const double tput = cost.throughput_samples_per_sec;
    auto it = best_per_degree.find(plan.pp_degree());
    if (it == best_per_degree.end() || tput > it->second.second) {
      best_per_degree[plan.pp_degree()] = {plan, tput};
    }
    if (!have_best ||
        tput > best.estimated.throughput_samples_per_sec) {
      best.plan = std::move(plan);
      best.estimated = std::move(cost);
      have_best = true;
    }
  };

  // Algorithm 1: grow the batch until every PP degree is out of memory.
  for (int batch = options_.batch_step;
       batch <= options_.max_batch; batch += options_.batch_step) {
    bool any_feasible = false;
    bool any_pending = false;  // degrees whose pipelines the batch can't fill yet
    for (const PerDegree& degree : degrees) {
      // Micro-batch counts: 1 for the non-pipelined case, else multiples of
      // the stage count (GPipe needs m >= P to fill the pipe).
      std::vector<int> micro_counts;
      if (degree.pp == 1) {
        micro_counts.push_back(1);
      } else {
        for (int mult : options_.micro_batch_multipliers) {
          const int m = degree.pp * mult;
          if (m <= batch) micro_counts.push_back(m);
        }
        if (micro_counts.empty() && degree.pp <= batch) {
          micro_counts.push_back(degree.pp);
        }
        if (micro_counts.empty()) any_pending = true;
      }

      for (int micro : micro_counts) {
        ++stats.configs_explored;

        // Uniform single-strategy plans first: they are points of the same
        // search space, and evaluating them through the exact estimator
        // guarantees the search never loses to a pure baseline because of
        // DP-table memory quantization.
        for (const HybridStrategy& candidate : degree.candidates) {
          auto uniform =
              MakeUniformPlan(model, num_devices, degree.pp,
                              degree.stage_sizes, candidate, batch, micro);
          if (!uniform.ok()) continue;
          uniform->schedule = options_.schedule;
          auto uniform_cost = estimator_.EstimatePlan(model, *uniform);
          if (!uniform_cost.ok()) continue;
          any_feasible = true;
          consider(*std::move(uniform), *std::move(uniform_cost));
        }

        TrainingPlan plan;
        plan.model_name = model.name();
        plan.global_batch = batch;
        plan.num_micro_batches = micro;
        plan.schedule = options_.schedule;

        bool oom = false;
        int first_layer = 0;
        const int devices_per_stage = num_devices / degree.pp;
        for (int s = 0; s < degree.pp && !oom; ++s) {
          const int stage_layers =
              degree.stage_sizes[static_cast<size_t>(s)];
          const int64_t stage_budget = cluster_->MinMemoryInRange(
              s * devices_per_stage, devices_per_stage);
          auto result = search.Run(model, first_layer, stage_layers,
                                   degree.candidates,
                                   s * devices_per_stage, batch, micro,
                                   stage_budget,
                                   plan.InFlightForDegree(degree.pp, s));
          if (!result.ok()) {
            if (result.status().IsInfeasible() ||
                result.status().IsOutOfMemory()) {
              oom = true;
              break;
            }
            return result.status();
          }
          stats.dp_states_explored += result->states_explored;
          StagePlan stage;
          stage.first_device = s * devices_per_stage;
          stage.num_devices = devices_per_stage;
          stage.first_layer = first_layer;
          stage.num_layers = stage_layers;
          stage.layer_strategies = std::move(result->per_layer);
          if (options_.allow_recompute) {
            stage.recompute = std::move(result->per_layer_recompute);
          }
          plan.stages.push_back(std::move(stage));
          first_layer += stage_layers;
        }
        if (oom) continue;

        auto cost = estimator_.EstimatePlan(model, plan);
        if (!cost.ok()) {
          if (cost.status().IsOutOfMemory()) continue;
          return cost.status();
        }
        any_feasible = true;
        consider(std::move(plan), *std::move(cost));
      }
    }
    if (!any_feasible && !any_pending) {
      break;  // larger batches only use more memory
    }
  }

  if (!have_best) {
    return Status::Infeasible(StrFormat(
        "%s does not fit %d devices with %s each", model.name().c_str(),
        num_devices,
        HumanBytes(static_cast<double>(cluster_->device_memory_bytes()))
            .c_str()));
  }
  // Co-optimization: feed the winning plan's measured per-layer times back
  // into the pipeline partitioner and re-search each stage.
  for (int round = 0;
       round < options_.co_optimize_rounds && best.plan.pp_degree() > 1;
       ++round) {
    const int pp = best.plan.pp_degree();
    const int devices_per_stage = num_devices / pp;
    std::vector<double> layer_seconds;
    bool measured = true;
    for (const StagePlan& stage : best.plan.stages) {
      auto cost = estimator_.EstimateStage(
          model, stage.first_layer, stage.num_layers, stage.layer_strategies,
          stage.first_device, best.plan.global_batch,
          best.plan.num_micro_batches, stage.recompute,
          best.plan.InFlightMicroBatches(
              static_cast<int>(&stage - best.plan.stages.data())));
      if (!cost.ok()) {
        measured = false;
        break;
      }
      layer_seconds.insert(layer_seconds.end(),
                           cost->per_layer_seconds.begin(),
                           cost->per_layer_seconds.end());
    }
    if (!measured) break;
    auto sizes = PartitionByWeights(layer_seconds, pp);
    if (!sizes.ok()) break;
    bool same = true;
    for (int s = 0; s < pp; ++s) {
      if ((*sizes)[static_cast<size_t>(s)] !=
          best.plan.stages[static_cast<size_t>(s)].num_layers) {
        same = false;
      }
    }
    if (same) break;

    auto candidates = EnumerateSingleLayerStrategies(devices_per_stage,
                                                     options_.tree);
    if (!candidates.ok()) break;
    TrainingPlan refined;
    refined.model_name = model.name();
    refined.global_batch = best.plan.global_batch;
    refined.num_micro_batches = best.plan.num_micro_batches;
    refined.schedule = best.plan.schedule;
    int first_layer = 0;
    bool oom = false;
    for (int s = 0; s < pp && !oom; ++s) {
      const int stage_layers = (*sizes)[static_cast<size_t>(s)];
      const int64_t stage_budget = cluster_->MinMemoryInRange(
          s * devices_per_stage, devices_per_stage);
      auto result = search.Run(model, first_layer, stage_layers, *candidates,
                               s * devices_per_stage, refined.global_batch,
                               refined.num_micro_batches, stage_budget,
                               refined.InFlightForDegree(pp, s));
      if (!result.ok()) {
        oom = true;
        break;
      }
      StagePlan stage;
      stage.first_device = s * devices_per_stage;
      stage.num_devices = devices_per_stage;
      stage.first_layer = first_layer;
      stage.num_layers = stage_layers;
      stage.layer_strategies = std::move(result->per_layer);
      if (options_.allow_recompute) {
        stage.recompute = std::move(result->per_layer_recompute);
      }
      refined.stages.push_back(std::move(stage));
      first_layer += stage_layers;
    }
    if (oom) break;
    auto cost = estimator_.EstimatePlan(model, refined);
    if (!cost.ok() || cost->throughput_samples_per_sec <=
                          best.estimated.throughput_samples_per_sec) {
      break;
    }
    best.plan = std::move(refined);
    best.estimated = *std::move(cost);
  }

  for (auto& [pp, entry] : best_per_degree) {
    if (pp != best.plan.pp_degree()) {
      best.alternates.push_back(std::move(entry.first));
    }
  }
  stats.search_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  best.stats = stats;
  return best;
}

}  // namespace galvatron
