#include "search/optimizer.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <set>
#include <utility>

#include "search/cost_cache.h"
#include "util/logging.h"
#include "util/math_util.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace galvatron {

namespace {

/// PP degrees to try: powers of two dividing the device count, capped by
/// the layer count (stages must be non-empty).
std::vector<int> DefaultPipelineDegrees(int num_devices, int num_layers) {
  std::vector<int> degrees;
  for (int p = 1; p <= num_devices; p *= 2) {
    if (num_devices % p == 0 && p <= num_layers) degrees.push_back(p);
  }
  return degrees;
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// A plan plus the bookkeeping that makes selection a total order.
struct RankedPlan {
  TrainingPlan plan;
  PlanCost cost;
  /// Within one configuration: uniform single-strategy candidates get their
  /// enumeration index, the DP plan gets candidates.size() — matching the
  /// order the serial sweep considered them in.
  int candidate_rank = 0;
  /// Global enumeration ordinal of the (batch, degree, micro) configuration.
  int config_ordinal = 0;
};

/// Total order over plans: higher estimated throughput wins; exact ties
/// resolve to the lower PP degree, then the earlier-enumerated
/// configuration, then the earlier-considered candidate. Because no term
/// depends on evaluation timing, the merged winner is byte-identical
/// whether configurations were evaluated serially or by racing workers.
bool BetterPlan(const RankedPlan& a, const RankedPlan& b) {
  if (a.cost.throughput_samples_per_sec != b.cost.throughput_samples_per_sec) {
    return a.cost.throughput_samples_per_sec >
           b.cost.throughput_samples_per_sec;
  }
  if (a.plan.pp_degree() != b.plan.pp_degree()) {
    return a.plan.pp_degree() < b.plan.pp_degree();
  }
  if (a.config_ordinal != b.config_ordinal) {
    return a.config_ordinal < b.config_ordinal;
  }
  return a.candidate_rank < b.candidate_rank;
}

/// Everything one worker produces for one configuration. Merged serially in
/// ordinal order after each wave.
struct ConfigOutcome {
  bool feasible = false;  // at least one plan passed EstimatePlan
  bool has_best = false;
  RankedPlan best;
  int64_t dp_states = 0;
  int64_t dp_breakpoints = 0;
  int64_t dp_pruned = 0;
  int64_t dp_frontier_hits = 0;    // stage searches replayed from cache
  int64_t dp_frontier_misses = 0;  // stage searches that ran cold
  Status error;  // non-OK only on fatal (non-OOM, non-infeasible) errors
};

}  // namespace

Optimizer::Optimizer(const ClusterSpec* cluster, OptimizerOptions options)
    : cluster_(cluster),
      options_(std::move(options)),
      estimator_(cluster, options_.estimator) {
  GALVATRON_CHECK(cluster != nullptr);
}

Result<OptimizationResult> Optimizer::Optimize(const ModelSpec& model) const {
  return Optimize(model, /*shared_cache=*/nullptr);
}

Result<OptimizationResult> Optimizer::Optimize(
    const ModelSpec& model, SharedCostCache* shared_cache,
    const std::function<bool()>& cancel_check) const {
  return Optimize(model, shared_cache, /*frontier_cache=*/nullptr,
                  cancel_check);
}

Result<OptimizationResult> Optimizer::Optimize(
    const ModelSpec& model, SharedCostCache* shared_cache,
    DpFrontierCache* frontier_cache,
    const std::function<bool()>& cancel_check) const {
  // Options validation. A negative thread count is a caller bug, not a
  // request for serial search — clamping it silently used to mask e.g.
  // sign errors in CLI/serve plumbing.
  if (options_.search_threads < 0) {
    return Status::InvalidArgument(StrFormat(
        "search_threads must be >= 0 (0 = all hardware threads), got %d",
        options_.search_threads));
  }
  const auto start = std::chrono::steady_clock::now();
  const int num_devices = cluster_->num_devices();
  const auto cancelled = [&cancel_check] {
    return cancel_check && cancel_check();
  };

  std::vector<int> pp_degrees = options_.pp_degrees;
  if (pp_degrees.empty()) {
    pp_degrees = DefaultPipelineDegrees(num_devices, model.num_layers());
  }

  DpSearchOptions dp_options;
  dp_options.memory_granularity = options_.memory_granularity;
  dp_options.allow_recompute = options_.allow_recompute;
  dp_options.use_sparse_dp = options_.use_sparse_dp;
  DpSearch search(&estimator_, dp_options);

  // Sweep-wide memo over the estimator: every stage search of every
  // configuration (and every worker thread) shares it, so a repeated
  // Transformer block is estimated once per distinct shape per sweep. A
  // caller-provided cache extends the sharing across runs (the serving
  // daemon's warm path); its entries carry no memory budget, so reuse
  // across budget variants is sound.
  SharedCostCache local_cache(&estimator_, &model);
  SharedCostCache* cache = shared_cache != nullptr ? shared_cache
                                                   : &local_cache;
  const CostCacheStats cache_stats_before = cache->stats();

  // Pre-enumerate candidates and partitions per PP degree (B-independent).
  struct PerDegree {
    int pp = 1;
    std::vector<HybridStrategy> candidates;
    std::vector<int> stage_sizes;
    /// (candidate index, fully-built uniform plan) per structurally valid
    /// candidate. Built once per degree; the per-configuration loop patches
    /// the batch fields into a thread-local scratch copy instead of
    /// re-allocating every stage's strategy vector for every configuration.
    std::vector<std::pair<int, TrainingPlan>> uniform_templates;
  };
  std::vector<PerDegree> degrees;
  // batch=1/micro=1 satisfies every batch-dependent Validate check, so a
  // template failure here is structural and holds for every configuration.
  auto build_uniform_templates = [&](PerDegree& d) {
    for (size_t c = 0; c < d.candidates.size(); ++c) {
      auto uniform = MakeUniformPlan(model, num_devices, d.pp, d.stage_sizes,
                                     d.candidates[c], /*global_batch=*/1,
                                     /*num_micro_batches=*/1);
      if (!uniform.ok()) continue;
      uniform->schedule = options_.schedule;
      d.uniform_templates.emplace_back(static_cast<int>(c),
                                       *std::move(uniform));
    }
  };
  std::set<std::string> candidate_names;
  for (int pp : pp_degrees) {
    if (pp < 1 || num_devices % pp != 0 || pp > model.num_layers()) continue;
    PerDegree d;
    d.pp = pp;
    GALVATRON_ASSIGN_OR_RETURN(
        d.candidates,
        EnumerateSingleLayerStrategies(num_devices / pp, options_.tree));
    GALVATRON_ASSIGN_OR_RETURN(
        d.stage_sizes,
        PartitionPipeline(model, pp, options_.partition_policy));
    for (const HybridStrategy& s : d.candidates) {
      candidate_names.insert(s.ToString());
    }
    // Heterogeneous clusters: also try a capacity-aware partition that
    // hands roomier islands proportionally more layers.
    if (pp > 1 && !cluster_->HasUniformMemory()) {
      PerDegree hetero = d;
      std::vector<double> capacities;
      const int span = num_devices / pp;
      for (int s = 0; s < pp; ++s) {
        capacities.push_back(static_cast<double>(
            cluster_->MinMemoryInRange(s * span, span)));
      }
      auto sizes = PartitionPipelineHeterogeneous(
          model, options_.partition_policy, capacities);
      if (sizes.ok() && *sizes != d.stage_sizes) {
        hetero.stage_sizes = *std::move(sizes);
        build_uniform_templates(hetero);
        degrees.push_back(std::move(hetero));
      }
    }
    build_uniform_templates(d);
    degrees.push_back(std::move(d));
  }
  if (degrees.empty()) {
    return Status::InvalidArgument("no valid pipeline degrees");
  }

  SearchStats stats;
  stats.num_candidate_strategies = static_cast<int>(candidate_names.size());
  stats.enumerate_seconds = SecondsSince(start);

  int threads = options_.search_threads;
  if (threads == 0) threads = ThreadPool::HardwareThreads();
  // The sweep is CPU-bound, so a pool wider than the physical core count
  // only buys thread start-up and context-switch cost; cap it so asking
  // for 4 threads on a smaller host is never slower than asking for 1.
  threads = std::min(threads, ThreadPool::HardwareThreads());
  stats.search_threads_used = threads;
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);

  // Whole-plan cost memo. EstimatePlan is budget-independent except for
  // the per-stage peak-vs-budget comparison, so the cost is computed once
  // with the check deferred, published to the (possibly cross-request)
  // cache, and the comparison re-applied here per call — with the same
  // stage order, short-circuiting, and error text as the checked call.
  // Builds the memo key into a thread-local scratch (one sweep issues
  // hundreds of lookups, mostly hits, which need no owned copy). Strategy
  // levels encode structurally — NOT via InternStrategy: interning formats
  // the strategy string first, and that formatting dominated the whole
  // warm sweep when profiled. Consecutive layers with one (strategy,
  // recompute) pair compress to a single run — uniform plans, the bulk of
  // the sweep's evaluations, shrink from O(layers) to O(1) words. Maximal
  // runs partition a stage's layers deterministically, so the encoding
  // stays injective.
  auto plan_cost_key =
      [&](const TrainingPlan& plan) -> const PlanCostKey& {
    thread_local PlanCostKey key;
    key.words.clear();
    key.words.push_back(static_cast<int32_t>(plan.schedule));
    key.words.push_back(plan.global_batch);
    key.words.push_back(plan.num_micro_batches);
    for (const StagePlan& stage : plan.stages) {
      key.words.push_back(stage.first_device);
      key.words.push_back(stage.num_devices);
      key.words.push_back(stage.first_layer);
      key.words.push_back(stage.num_layers);
      const size_t n = stage.layer_strategies.size();
      for (size_t l = 0; l < n;) {
        const HybridStrategy& strat = stage.layer_strategies[l];
        const int32_t recompute =
            !stage.recompute.empty() && stage.recompute[l] != 0 ? 1 : 0;
        size_t run = l + 1;
        while (run < n && stage.layer_strategies[run] == strat &&
               (!stage.recompute.empty() && stage.recompute[run] != 0 ? 1
                                                                      : 0) ==
                   recompute) {
          ++run;
        }
        key.words.push_back(static_cast<int32_t>(run - l));
        key.words.push_back((strat.num_levels() << 1) | recompute);
        for (const ParallelComponent& level : strat.levels()) {
          key.words.push_back((static_cast<int32_t>(level.dim) << 16) |
                              level.degree);
        }
        l = run;
      }
    }
    key.Finalize();
    return key;
  };
  auto check_plan_memory = [&](const TrainingPlan& plan,
                               const PlanCost& cost) -> Status {
    for (size_t i = 0; i < plan.stages.size(); ++i) {
      const StagePlan& stage = plan.stages[i];
      const int64_t budget = cluster_->MinMemoryInRange(
          stage.first_device, stage.layer_strategies.front().TotalDegree());
      const int64_t peak = cost.stages[i].peak_memory_bytes;
      if (peak > budget) {
        return Status::OutOfMemory(StrFormat(
            "stage needs %s but budget is %s",
            HumanBytes(static_cast<double>(peak)).c_str(),
            HumanBytes(static_cast<double>(budget)).c_str()));
      }
    }
    return Status::OK();
  };
  auto estimate_plan =
      [&](const TrainingPlan& plan)
      -> Result<std::shared_ptr<const PlanCost>> {
    const PlanCostKey& key = plan_cost_key(plan);
    std::shared_ptr<const PlanCost> cost = cache->LookupPlan(key);
    if (cost == nullptr) {
      auto unchecked =
          estimator_.EstimatePlan(model, plan, /*check_memory=*/false);
      // Estimation errors stay uncached and are re-raised through the
      // checked call, so failure semantics match the unmemoized path.
      if (!unchecked.ok()) {
        auto checked = estimator_.EstimatePlan(model, plan);
        if (!checked.ok()) return checked.status();
        return std::shared_ptr<const PlanCost>(
            std::make_shared<PlanCost>(*std::move(checked)));
      }
      cost = cache->InsertPlan(key, *std::move(unchecked));
    }
    GALVATRON_RETURN_IF_ERROR(check_plan_memory(plan, *cost));
    return cost;
  };

  // Evaluates one (batch, degree, micro) configuration. Pure function of
  // its arguments plus the (thread-safe, const) estimator and shared cache
  // — safe to run on any worker.
  auto evaluate = [&](const PerDegree& degree, int batch, int micro,
                      int config_ordinal) -> ConfigOutcome {
    ConfigOutcome out;
    if (cancelled()) {
      out.error = Status::Cancelled("strategy sweep cancelled");
      return out;
    }
    // Best plan of THIS configuration, tracked without materializing a
    // RankedPlan per feasible candidate: within one configuration the PP
    // degree and ordinal are fixed, so BetterPlan reduces to strictly
    // higher throughput (earlier candidates keep ties), and the shared
    // cost entry is only deep-copied once on commit below.
    TrainingPlan best_plan;
    std::shared_ptr<const PlanCost> best_cost;
    int best_rank = 0;
    auto commit_best = [&] {
      if (best_cost == nullptr) return;
      out.best = RankedPlan{std::move(best_plan), PlanCost(*best_cost),
                            best_rank, config_ordinal};
      out.has_best = true;
    };
    // Uniform single-strategy plans first: they are points of the same
    // search space, and evaluating them through the exact estimator
    // guarantees the search never loses to a pure baseline because of
    // DP-table memory quantization. The structure comes from the pre-built
    // per-degree template; only the batch fields differ per configuration,
    // patched into a thread-local scratch whose nested vectors are reused
    // across configurations. The guard reproduces exactly the
    // batch-dependent Validate failures MakeUniformPlan would hit.
    if (batch >= 1 && micro >= 1 && micro <= batch) {
      static thread_local TrainingPlan uniform_scratch;
      for (const auto& [c, tmpl] : degree.uniform_templates) {
        uniform_scratch = tmpl;
        uniform_scratch.global_batch = batch;
        uniform_scratch.num_micro_batches = micro;
        auto uniform_cost = estimate_plan(uniform_scratch);
        if (!uniform_cost.ok()) continue;
        out.feasible = true;
        if (best_cost == nullptr ||
            (*uniform_cost)->throughput_samples_per_sec >
                best_cost->throughput_samples_per_sec) {
          best_plan = uniform_scratch;
          best_cost = *std::move(uniform_cost);
          best_rank = c;
        }
      }
    }

    TrainingPlan plan;
    plan.model_name = model.name();
    plan.global_batch = batch;
    plan.num_micro_batches = micro;
    plan.schedule = options_.schedule;

    bool oom = false;
    int first_layer = 0;
    const int devices_per_stage = num_devices / degree.pp;
    for (int s = 0; s < degree.pp && !oom; ++s) {
      if (cancelled()) {
        out.error = Status::Cancelled("strategy sweep cancelled");
        return out;
      }
      const int stage_layers = degree.stage_sizes[static_cast<size_t>(s)];
      const int64_t stage_budget = cluster_->MinMemoryInRange(
          s * devices_per_stage, devices_per_stage);
      auto result = search.Run(model, first_layer, stage_layers,
                               degree.candidates, s * devices_per_stage,
                               batch, micro, stage_budget,
                               plan.InFlightForDegree(degree.pp, s),
                               cache, frontier_cache, &cancel_check);
      if (frontier_cache != nullptr) {
        // Warm infeasible answers are invisible here (no DpSearchResult to
        // carry the flag) and count as misses; the cache's own stats()
        // still record them as hits.
        if (result.ok() && result->frontier_hit) {
          ++out.dp_frontier_hits;
        } else {
          ++out.dp_frontier_misses;
        }
      }
      if (!result.ok()) {
        if (result.status().IsInfeasible() ||
            result.status().IsOutOfMemory()) {
          oom = true;
          break;
        }
        out.error = result.status();
        return out;
      }
      out.dp_states += result->states_explored;
      out.dp_breakpoints += result->breakpoints_emitted;
      out.dp_pruned += result->options_pruned;
      StagePlan stage;
      stage.first_device = s * devices_per_stage;
      stage.num_devices = devices_per_stage;
      stage.first_layer = first_layer;
      stage.num_layers = stage_layers;
      stage.layer_strategies = std::move(result->per_layer);
      if (options_.allow_recompute) {
        stage.recompute = std::move(result->per_layer_recompute);
      }
      plan.stages.push_back(std::move(stage));
      first_layer += stage_layers;
    }
    if (oom) {
      commit_best();
      return out;
    }

    auto cost = estimate_plan(plan);
    if (!cost.ok()) {
      if (!cost.status().IsOutOfMemory()) out.error = cost.status();
      commit_best();
      return out;
    }
    out.feasible = true;
    // The DP plan carries the highest candidate rank, so it too replaces
    // only on strictly higher throughput.
    if (best_cost == nullptr ||
        (*cost)->throughput_samples_per_sec >
            best_cost->throughput_samples_per_sec) {
      best_plan = std::move(plan);
      best_cost = *std::move(cost);
      best_rank = static_cast<int>(degree.candidates.size());
    }
    commit_best();
    return out;
  };

  RankedPlan best;
  bool have_best = false;
  // Best plan per PP degree, kept as alternates.
  std::map<int, RankedPlan> best_per_degree;
  int next_ordinal = 0;

  // Wave dispatch is adaptive: handing a wave to the pool costs futex
  // round-trips that dwarf a fully warm wave's compute (frontier + plan
  // memos make it microseconds), so a wave that finishes under the
  // threshold runs the NEXT wave inline, and a slow inline wave switches
  // back. Only latency changes — the ordinal-ordered merge below makes the
  // result identical however a wave was executed.
  constexpr double kInlineWaveSeconds = 250e-6;
  bool wave_inline = false;

  // Algorithm 1: grow the batch until every PP degree is out of memory.
  // The batch loop stays serial (its exit condition depends on this wave's
  // feasibility); within a wave, the independent (degree, micro)
  // configurations fan out across the pool and are merged in enumeration
  // order below.
  for (int batch = options_.batch_step;
       batch <= options_.max_batch; batch += options_.batch_step) {
    if (cancelled()) return Status::Cancelled("strategy sweep cancelled");
    bool any_pending = false;  // degrees whose pipelines the batch can't fill yet
    struct ConfigTask {
      const PerDegree* degree;
      int micro;
      int ordinal;
    };
    std::vector<ConfigTask> tasks;
    for (const PerDegree& degree : degrees) {
      // Micro-batch counts: 1 for the non-pipelined case, else multiples of
      // the stage count (GPipe needs m >= P to fill the pipe).
      std::vector<int> micro_counts;
      if (degree.pp == 1) {
        micro_counts.push_back(1);
      } else {
        for (int mult : options_.micro_batch_multipliers) {
          const int m = degree.pp * mult;
          if (m <= batch) micro_counts.push_back(m);
        }
        if (micro_counts.empty() && degree.pp <= batch) {
          micro_counts.push_back(degree.pp);
        }
        if (micro_counts.empty()) any_pending = true;
      }
      for (int micro : micro_counts) {
        tasks.push_back(ConfigTask{&degree, micro, next_ordinal++});
      }
    }

    std::vector<ConfigOutcome> outcomes(tasks.size());
    const auto wave_start = std::chrono::steady_clock::now();
    ParallelFor(wave_inline ? nullptr : pool.get(),
                static_cast<int>(tasks.size()), [&](int i) {
      const ConfigTask& task = tasks[static_cast<size_t>(i)];
      outcomes[static_cast<size_t>(i)] =
          evaluate(*task.degree, batch, task.micro, task.ordinal);
    });
    wave_inline = SecondsSince(wave_start) < kInlineWaveSeconds;

    // Deterministic merge: walk outcomes in enumeration order; the first
    // fatal error (by ordinal) is returned, exactly as the serial sweep
    // would have surfaced it.
    bool any_feasible = false;
    for (ConfigOutcome& out : outcomes) {
      if (!out.error.ok()) return out.error;
      ++stats.configs_explored;
      stats.dp_states_explored += out.dp_states;
      stats.dp_breakpoints_emitted += out.dp_breakpoints;
      stats.dp_options_pruned += out.dp_pruned;
      stats.dp_frontier_hits += out.dp_frontier_hits;
      stats.dp_frontier_misses += out.dp_frontier_misses;
      any_feasible = any_feasible || out.feasible;
      if (!out.has_best) continue;
      const int pp = out.best.plan.pp_degree();
      auto it = best_per_degree.find(pp);
      if (it == best_per_degree.end() || BetterPlan(out.best, it->second)) {
        best_per_degree[pp] = out.best;
      }
      if (!have_best || BetterPlan(out.best, best)) {
        best = std::move(out.best);
        have_best = true;
      }
    }
    if (!any_feasible && !any_pending) {
      break;  // larger batches only use more memory
    }
  }
  stats.sweep_seconds = SecondsSince(start) - stats.enumerate_seconds;

  if (!have_best) {
    return Status::Infeasible(StrFormat(
        "%s does not fit %d devices with %s each", model.name().c_str(),
        num_devices,
        HumanBytes(static_cast<double>(cluster_->device_memory_bytes()))
            .c_str()));
  }

  OptimizationResult result;
  result.plan = std::move(best.plan);
  result.estimated = std::move(best.cost);

  // Co-optimization: feed the winning plan's measured per-layer times back
  // into the pipeline partitioner and re-search each stage.
  const auto co_optimize_start = std::chrono::steady_clock::now();
  for (int round = 0;
       round < options_.co_optimize_rounds && result.plan.pp_degree() > 1 &&
       !cancelled();
       ++round) {
    const int pp = result.plan.pp_degree();
    const int devices_per_stage = num_devices / pp;
    std::vector<double> layer_seconds;
    bool measured = true;
    for (const StagePlan& stage : result.plan.stages) {
      auto cost = estimator_.EstimateStage(
          model, stage.first_layer, stage.num_layers, stage.layer_strategies,
          stage.first_device, result.plan.global_batch,
          result.plan.num_micro_batches, stage.recompute,
          result.plan.InFlightMicroBatches(
              static_cast<int>(&stage - result.plan.stages.data())));
      if (!cost.ok()) {
        measured = false;
        break;
      }
      layer_seconds.insert(layer_seconds.end(),
                           cost->per_layer_seconds.begin(),
                           cost->per_layer_seconds.end());
    }
    if (!measured) break;
    auto sizes = PartitionByWeights(layer_seconds, pp);
    if (!sizes.ok()) break;
    bool same = true;
    for (int s = 0; s < pp; ++s) {
      if ((*sizes)[static_cast<size_t>(s)] !=
          result.plan.stages[static_cast<size_t>(s)].num_layers) {
        same = false;
      }
    }
    if (same) break;

    auto candidates = EnumerateSingleLayerStrategies(devices_per_stage,
                                                     options_.tree);
    if (!candidates.ok()) break;
    TrainingPlan refined;
    refined.model_name = model.name();
    refined.global_batch = result.plan.global_batch;
    refined.num_micro_batches = result.plan.num_micro_batches;
    refined.schedule = result.plan.schedule;
    int first_layer = 0;
    bool oom = false;
    for (int s = 0; s < pp && !oom; ++s) {
      const int stage_layers = (*sizes)[static_cast<size_t>(s)];
      const int64_t stage_budget = cluster_->MinMemoryInRange(
          s * devices_per_stage, devices_per_stage);
      auto stage_result =
          search.Run(model, first_layer, stage_layers, *candidates,
                     s * devices_per_stage, refined.global_batch,
                     refined.num_micro_batches, stage_budget,
                     refined.InFlightForDegree(pp, s), cache, frontier_cache,
                     &cancel_check);
      if (!stage_result.ok()) {
        oom = true;
        break;
      }
      StagePlan stage;
      stage.first_device = s * devices_per_stage;
      stage.num_devices = devices_per_stage;
      stage.first_layer = first_layer;
      stage.num_layers = stage_layers;
      stage.layer_strategies = std::move(stage_result->per_layer);
      if (options_.allow_recompute) {
        stage.recompute = std::move(stage_result->per_layer_recompute);
      }
      refined.stages.push_back(std::move(stage));
      first_layer += stage_layers;
    }
    if (oom) break;
    auto cost = estimator_.EstimatePlan(model, refined);
    if (!cost.ok() || cost->throughput_samples_per_sec <=
                          result.estimated.throughput_samples_per_sec) {
      break;
    }
    result.plan = std::move(refined);
    result.estimated = *std::move(cost);
  }
  stats.co_optimize_seconds = SecondsSince(co_optimize_start);

  for (auto& [pp, entry] : best_per_degree) {
    if (pp != result.plan.pp_degree()) {
      result.alternates.push_back(std::move(entry.plan));
    }
  }
  const CostCacheStats cache_stats = cache->stats();
  stats.cost_cache_hits = cache_stats.hits() - cache_stats_before.hits();
  stats.cost_cache_misses =
      cache_stats.misses() - cache_stats_before.misses();
  stats.cost_cache_lifetime_hits = cache_stats.hits();
  stats.cost_cache_lifetime_misses = cache_stats.misses();
  stats.used_external_cost_cache = shared_cache != nullptr;
  stats.search_seconds = SecondsSince(start);
  result.stats = stats;
  return result;
}

}  // namespace galvatron
