#ifndef GALVATRON_SEARCH_FRONTIER_CACHE_H_
#define GALVATRON_SEARCH_FRONTIER_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace galvatron {

/// One step of a (layer, option) column's cost-vs-budget function: for
/// budgets in [units, next breakpoint's units), the best achievable cost is
/// `cost`, reached through predecessor option `parent` (-1 at layer 0).
/// Within a frontier, units strictly increase and cost never increases;
/// equal-cost entries record a handoff to a LOWER predecessor option index
/// (the dense kernel's tie-break), so reconstruction at any budget returns
/// exactly the dense parent.
struct DpBreakpoint {
  int units = 0;
  double cost = 0.0;
  int32_t parent = -1;
};

/// Addresses one (layer, option) column inside a shared breakpoint arena.
struct DpColumnSpan {
  int64_t begin = 0;
  int64_t size = 0;
};

/// The complete frontier state of one sparse DpSearch::Run, cached so a
/// later Run over the same (layer range, candidates, batch, micro) signature
/// can answer directly from the frontiers instead of re-estimating costs and
/// re-merging columns.
///
/// The prefix property makes this exact: a Pareto column built at budget B
/// truncated to units <= U is identical — costs, parents, tie-breaks — to
/// the column built directly at any budget U <= B, because the merge never
/// lets a higher budget level influence a lower one. So one entry, stored at
/// the largest budget ever searched, serves every smaller budget with a
/// byte-identical plan (the serving daemon's near-miss workload: identical
/// requests except for the per-device memory budget).
struct DpFrontierEntry {
  /// Budget (in granules, after transient headroom) the frontiers were
  /// built at. Lookups at most this many units reconstruct exactly.
  int budget_units = 0;
  /// Budget-independent transient headroom (2x the largest transient any
  /// option needs); re-derives budget_units for a new memory budget.
  int64_t max_transient = 0;
  int num_layers = 0;
  int num_candidates = 0;  // expanded options, recompute variants included
  /// Per expanded option: the candidate strategy index and whether the
  /// option checkpoints activations.
  std::vector<int> option_strategy;
  std::vector<uint8_t> option_recompute;
  /// Per (layer, option): quantized resident memory granules.
  std::vector<std::vector<int>> units;
  /// All frontier columns, addressed by spans[layer * num_candidates + s].
  std::vector<DpBreakpoint> arena;
  std::vector<DpColumnSpan> spans;
  /// Telemetry carried over from the cold run that built the entry.
  int64_t options_pruned = 0;
};

struct DpFrontierCacheStats {
  int64_t hits = 0;        // lookups answered from a cached frontier
  int64_t misses = 0;      // lookups that ran (or re-ran) the cold kernel
  int64_t insertions = 0;  // entries stored or widened to a larger budget
  int64_t evictions = 0;
  size_t size = 0;
  size_t capacity = 0;
};

/// Thread-safe LRU cache of DpFrontierEntry keyed by the Run signature
/// (layer range, candidate set, batch/micro shape, granularity — everything
/// EXCEPT the memory budget; see DpFrontierEntry). Entries are immutable
/// once published, handed out as shared_ptr so concurrent Runs read them
/// lock-free after the map lookup.
///
/// The cache knows nothing about models or clusters: the caller (a
/// PlanningContext) must only share one cache across Runs whose model,
/// cluster topology and estimator agree — the same contract SharedCostCache
/// documents. Only budget-like cluster differences (per-device memory) are
/// safe to vary, because per-layer costs never depend on the budget.
class DpFrontierCache {
 public:
  /// Default sized for a full Algorithm-1 sweep: one sweep issues a few
  /// hundred to ~2000 distinct Run signatures (per batch wave, PP degree,
  /// micro count and stage), and a near-miss request replays the same set.
  explicit DpFrontierCache(size_t capacity = 4096) : capacity_(capacity) {}

  DpFrontierCache(const DpFrontierCache&) = delete;
  DpFrontierCache& operator=(const DpFrontierCache&) = delete;

  /// Returns the entry for `key`, or nullptr. Does not count hit/miss —
  /// whether the entry is usable depends on the requested budget, which
  /// only the caller can check; it reports back via CountHit/CountMiss.
  std::shared_ptr<const DpFrontierEntry> Lookup(const std::string& key);

  /// Publishes `entry` under `key`. Keeps whichever of the existing and the
  /// new entry covers the larger budget (frontiers only ever widen).
  void Insert(const std::string& key,
              std::shared_ptr<const DpFrontierEntry> entry);

  void CountHit() { hits_.fetch_add(1, std::memory_order_relaxed); }
  void CountMiss() { misses_.fetch_add(1, std::memory_order_relaxed); }

  DpFrontierCacheStats stats() const;

 private:
  using Entry =
      std::pair<std::string, std::shared_ptr<const DpFrontierEntry>>;

  mutable std::mutex mu_;
  size_t capacity_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  int64_t insertions_ = 0;
  int64_t evictions_ = 0;
};

}  // namespace galvatron

#endif  // GALVATRON_SEARCH_FRONTIER_CACHE_H_
