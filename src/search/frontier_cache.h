#ifndef GALVATRON_SEARCH_FRONTIER_CACHE_H_
#define GALVATRON_SEARCH_FRONTIER_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace galvatron {

/// Addresses one (layer, option) column inside the shared breakpoint arrays.
struct DpColumnSpan {
  int64_t begin = 0;
  int64_t size = 0;
};

/// The complete frontier state of one sparse DpSearch::Run, cached so a
/// later Run over the same (layer range, candidates, batch, micro) signature
/// can answer directly from the frontiers instead of re-estimating costs and
/// re-merging columns.
///
/// The prefix property makes this exact: a Pareto column built at budget B
/// truncated to units <= U is identical — costs, parents, tie-breaks — to
/// the column built directly at any budget U <= B, because the merge never
/// lets a higher budget level influence a lower one. So one entry, stored at
/// the largest budget ever searched, serves every smaller budget with a
/// byte-identical plan (the serving daemon's near-miss workload: identical
/// requests except for the per-device memory budget).
///
/// Frontier columns are stored structure-of-arrays: entry i of column
/// spans[layer * num_candidates + option] lives at arena index
/// spans[...].begin + i across bp_units / bp_cost / bp_parent. Within a
/// column, units strictly increase and cost never increases; for budgets in
/// [bp_units[i], bp_units[i+1]) the best achievable cost is bp_cost[i],
/// reached through predecessor option bp_parent[i] (-1 at layer 0).
/// Equal-cost entries record a handoff to a LOWER predecessor option index
/// (the dense kernel's tie-break), so reconstruction at any budget returns
/// exactly the dense parent. The split layout lets the merge kernel stream
/// each array with unit-stride loads instead of gathering 16-byte structs.
struct DpFrontierEntry {
  /// Budget (in granules, after transient headroom) the frontiers were
  /// built at. Lookups at most this many units reconstruct exactly.
  int budget_units = 0;
  /// Budget-independent transient headroom (2x the largest transient any
  /// option needs); re-derives budget_units for a new memory budget.
  int64_t max_transient = 0;
  int num_layers = 0;
  /// Candidate strategies before recompute expansion. The expanded option
  /// list needs no table: option o maps to strategy o < num_strategies
  /// ? o : o - num_strategies, with recompute set iff o >= num_strategies
  /// (ExpandOptions' fixed order).
  int num_strategies = 0;
  int num_candidates = 0;  // expanded options, recompute variants included
  /// Per (layer, option): quantized resident memory granules, flat
  /// [layer * num_candidates + option].
  std::vector<int32_t> units;
  /// Frontier columns (see above).
  std::vector<int32_t> bp_units;
  std::vector<double> bp_cost;
  std::vector<int32_t> bp_parent;
  std::vector<DpColumnSpan> spans;
  /// Telemetry carried over from the cold run that built the entry.
  int64_t options_pruned = 0;
};

/// A Run signature as a packed word sequence: everything that determines the
/// frontiers EXCEPT the memory budget (see DpFrontierEntry). Built once into
/// thread-local scratch by DpSearch::Run — no strings, no per-lookup heap.
///
/// words[0] is a format tag: 0 for the structural encoding Run emits,
/// 1 for keys packed from a caller-supplied string (the test-facing string
/// overloads), so the two namespaces can never collide.
struct DpFrontierKey {
  std::vector<int32_t> words;
  size_t hash = 0;

  void Clear() {
    words.clear();
    hash = 0;
  }
  void Append(int32_t w) { words.push_back(w); }
  /// Computes the stored hash; call after the last Append and before any
  /// Lookup/Insert. (SplitMix64-style mix per word, matching the cost-cache
  /// keys' scheme.)
  void Finalize();

  /// Packs an arbitrary string under tag 1 (4 bytes per word, length first).
  static DpFrontierKey FromString(const std::string& text);

  friend bool operator==(const DpFrontierKey& a, const DpFrontierKey& b) {
    return a.hash == b.hash && a.words == b.words;
  }
};

struct DpFrontierKeyHash {
  size_t operator()(const DpFrontierKey& key) const { return key.hash; }
};

struct DpFrontierCacheStats {
  int64_t hits = 0;        // lookups answered from a cached frontier
  int64_t misses = 0;      // lookups that ran (or re-ran) the cold kernel
  int64_t insertions = 0;  // entries stored or widened to a larger budget
  int64_t evictions = 0;
  size_t size = 0;
  size_t capacity = 0;
};

/// Thread-safe LRU cache of DpFrontierEntry keyed by the Run signature
/// (layer range, candidate set, batch/micro shape, granularity — everything
/// EXCEPT the memory budget; see DpFrontierEntry). Entries are immutable
/// once published, handed out as shared_ptr so concurrent Runs read them
/// lock-free after the map lookup.
///
/// The cache knows nothing about models or clusters: the caller (a
/// PlanningContext) must only share one cache across Runs whose model,
/// cluster topology and estimator agree — the same contract SharedCostCache
/// documents. Only budget-like cluster differences (per-device memory) are
/// safe to vary, because per-layer costs never depend on the budget.
///
/// The cache also interns the per-layer signature strings Run folds into its
/// keys (Intern below): ids are stable for the lifetime of one cache, and
/// serial() lets Run keep a thread-local id memo that self-invalidates when
/// it meets a different cache instance.
class DpFrontierCache {
 public:
  /// Default sized for a full Algorithm-1 sweep: one sweep issues a few
  /// hundred to ~2000 distinct Run signatures (per batch wave, PP degree,
  /// micro count and stage), and a near-miss request replays the same set.
  explicit DpFrontierCache(size_t capacity = 4096);

  DpFrontierCache(const DpFrontierCache&) = delete;
  DpFrontierCache& operator=(const DpFrontierCache&) = delete;

  /// Returns the entry for `key`, or nullptr. Does not count hit/miss —
  /// whether the entry is usable depends on the requested budget, which
  /// only the caller can check; it reports back via CountHit/CountMiss.
  std::shared_ptr<const DpFrontierEntry> Lookup(const DpFrontierKey& key);

  /// Publishes `entry` under `key`. Keeps whichever of the existing and the
  /// new entry covers the larger budget (frontiers only ever widen).
  void Insert(const DpFrontierKey& key,
              std::shared_ptr<const DpFrontierEntry> entry);

  /// String-keyed conveniences for tests and tooling; they pack `key` with
  /// DpFrontierKey::FromString, so they share the LRU with structural keys
  /// but can never alias them.
  std::shared_ptr<const DpFrontierEntry> Lookup(const std::string& key);
  void Insert(const std::string& key,
              std::shared_ptr<const DpFrontierEntry> entry);

  /// Interns `text`, returning an id unique per distinct string within this
  /// cache instance (dense, starting at 0). Ids from different cache
  /// instances are incomparable — callers memoizing string->id must key the
  /// memo on serial().
  int32_t Intern(const std::string& text);

  /// Process-unique id of this cache instance (never reused).
  uint64_t serial() const { return serial_; }

  void CountHit() { hits_.fetch_add(1, std::memory_order_relaxed); }
  void CountMiss() { misses_.fetch_add(1, std::memory_order_relaxed); }

  DpFrontierCacheStats stats() const;

 private:
  using Entry =
      std::pair<DpFrontierKey, std::shared_ptr<const DpFrontierEntry>>;

  const uint64_t serial_;
  mutable std::mutex mu_;
  size_t capacity_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<DpFrontierKey, std::list<Entry>::iterator,
                     DpFrontierKeyHash>
      index_;
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  int64_t insertions_ = 0;
  int64_t evictions_ = 0;

  std::mutex intern_mu_;
  std::unordered_map<std::string, int32_t> intern_ids_;
};

}  // namespace galvatron

#endif  // GALVATRON_SEARCH_FRONTIER_CACHE_H_
