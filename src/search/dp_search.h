#ifndef GALVATRON_SEARCH_DP_SEARCH_H_
#define GALVATRON_SEARCH_DP_SEARCH_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "estimator/cost_estimator.h"
#include "ir/model.h"
#include "parallel/strategy.h"
#include "search/cost_cache.h"
#include "search/frontier_cache.h"
#include "util/result.h"

namespace galvatron {

/// Knobs of the dynamic-programming search (Sec 3.3).
struct DpSearchOptions {
  /// Memory quantization E is bucketed by. Coarser is faster, finer is
  /// tighter; Sec 3.3's complexity note suggests "large memory granularity"
  /// as the lever for huge budgets.
  int64_t memory_granularity = int64_t{32} * 1024 * 1024;
  /// Add per-layer activation checkpointing as a second search dimension
  /// (doubles the option count per layer). Off by default — the paper
  /// disables recompute (Sec 5.1) and leaves it as future work.
  bool allow_recompute = false;
  /// Run the sparse Pareto-frontier DP kernel (default) instead of the
  /// dense table sweep. Both kernels return byte-identical plans (the
  /// differential fuzz check and the dense-vs-sparse property tests prove
  /// it); the sparse kernel's work scales with the number of DISTINCT cost
  /// levels per budget column instead of with the granule count, which is
  /// 10-100x fewer states on realistic budgets. The dense path is kept as
  /// the executable specification.
  bool use_sparse_dp = true;
  /// Fill DpSearchResult::per_layer with materialized HybridStrategy
  /// copies (the historical behavior). Sweep callers that rank thousands
  /// of results and commit one turn this off and call
  /// MaterializeDpSearchResult on the winners only; per_layer_option is
  /// always filled either way and identifies the plan completely. The
  /// dense kernel ignores this and always materializes — it is the
  /// copying-reconstruction executable specification the index path is
  /// checked against.
  bool materialize_plans = true;
};

/// Output of one per-stage search: the per-layer strategies minimizing the
/// stage execution time under the memory budget.
struct DpSearchResult {
  double stage_seconds = 0.0;  // sum of c(l, s) + transformation costs
  /// Materialized per-layer strategies. Filled by the dense kernel and by
  /// sparse runs with DpSearchOptions::materialize_plans (the default);
  /// empty otherwise — per_layer_option carries the same information
  /// without the copies, and MaterializeDpSearchResult fills this on
  /// demand.
  std::vector<HybridStrategy> per_layer;
  /// Per layer: the index into the Run's `candidates` of the chosen
  /// strategy. Always filled (both kernels, warm and cold paths); together
  /// with per_layer_recompute it identifies the plan completely.
  std::vector<int32_t> per_layer_option;
  /// Per-layer checkpointing choice (empty unless allow_recompute).
  std::vector<uint8_t> per_layer_recompute;
  int64_t resident_memory_bytes = 0;
  /// DP states materialized (Fig 4 metric). Dense kernel: table cells
  /// touched. Sparse kernel: Pareto breakpoints emitted — by construction
  /// never more than the dense cell count on the same inputs (each
  /// breakpoint is a distinct budget level of one dense column).
  int64_t states_explored = 0;
  /// Sparse kernel only: breakpoints emitted across all layer/option
  /// frontiers (== states_explored there), candidate breakpoints scanned
  /// while merging frontiers (the true work measure), and per-layer options
  /// dropped because their (units, seconds) were dominated by a
  /// lower-index variant of the same strategy. All zero on the dense path.
  int64_t breakpoints_emitted = 0;
  int64_t breakpoints_scanned = 0;
  int64_t options_pruned = 0;
  /// True when the answer was reconstructed from a cached frontier (see
  /// DpFrontierCache) instead of a fresh kernel run. Warm answers report
  /// zero new states/breakpoints: nothing was materialized.
  bool frontier_hit = false;
  /// Heap allocations the Run performed on the calling thread (operator
  /// new calls, counted by util/alloc_counter). Telemetry for the
  /// allocation-budget tripwire: a warm sparse Run should stay within a
  /// small fixed budget (the result's own vectors), independent of model
  /// size or budget.
  int64_t allocations = 0;
};

/// Fills `result->per_layer` from `result->per_layer_option`, copying out
/// of the same `candidates` vector the producing Run was given. Sweep
/// callers run with DpSearchOptions::materialize_plans off and call this
/// only for the handful of results they commit; the output is byte-identical
/// to what a materializing Run would have returned (the index chain IS the
/// dense reconstruction, minus the copies).
void MaterializeDpSearchResult(const std::vector<HybridStrategy>& candidates,
                               DpSearchResult* result);

/// The dynamic-programming search of Eq. (1):
///
///   C(L, E) = min_{S_j} { C(L-1, E - O(L, S_j)) + c(L, S_j) + R(L, S_i, S_j) }
///
/// Because the transformation term R couples neighbouring layers, the state
/// carries the previous layer's strategy: C(L, E, S). Memory is quantized
/// into `memory_granularity` buckets; per-layer costs and R entries are
/// memoized by layer signature so models with repeated blocks (all of the
/// paper's models) pay the estimator only once per distinct shape, and the
/// R matrix of a boundary is built once per distinct signature pair per Run
/// and reused across repeated identical block boundaries.
///
/// Two kernels compute the same recurrence (selected by
/// DpSearchOptions::use_sparse_dp):
///
/// - The dense kernel sweeps every (budget granule, option) cell:
///   O(L * E * S^2) with E = budget / granularity.
/// - The sparse kernel exploits that C(L, e, S) is a non-increasing step
///   function of the budget e: each (layer, option) column is a Pareto
///   frontier of (units, cost, parent) breakpoints, and layer l is computed
///   by merging the shifted frontiers of layer l-1. Work is
///   O(L * S * sum_s |frontier_s| * log) with |frontier| bounded by the
///   number of distinct cost levels (<= E, typically orders of magnitude
///   less).
///
/// Returns Infeasible when no assignment fits the budget (Algorithm 1
/// treats that as C = infinity).
class DpSearch {
 public:
  /// `estimator` and `model` must outlive this object.
  DpSearch(const CostEstimator* estimator, DpSearchOptions options = {});

  /// Searches layers [first_layer, first_layer + num_layers) of `model`
  /// running on the stage block starting at `stage_first_device`, with the
  /// stage processing `batch_per_group` samples in `micro_batches`
  /// micro-batches, under `memory_budget` bytes per device.
  /// `resident_micro_batches`: how many micro-batches' activations the
  /// pipeline schedule keeps live on this stage (-1 = all, i.e. GPipe).
  /// `shared_cache` (optional): a sweep-wide memo over the estimator so
  /// repeated layer signatures are estimated once per sweep instead of
  /// once per Run; it must wrap the same estimator and model. Run is const
  /// and thread-safe, so independent configurations may Run concurrently
  /// against one shared cache.
  ///
  /// Tie-breaking is deterministic: on equal cost the DP keeps the lowest
  /// option index (lowest strategy index, recompute variants after plain
  /// ones), so the returned plan is byte-stable across runs, thread counts
  /// and kernels (the sparse kernel reproduces the dense tie-breaking
  /// exactly, including equal-cost parent handoffs to lower option
  /// indices).
  ///
  /// Returns InvalidArgument when the expanded option count exceeds
  /// INT16_MAX — the dense kernel's parent table stores int16 indices, and
  /// both kernels share the limit so their feasibility envelopes stay
  /// identical.
  ///
  /// `frontier_cache` (optional, sparse kernel only): a caller-owned cache
  /// of completed Pareto frontiers. When it holds this Run's signature at a
  /// budget >= the requested one, the answer is reconstructed directly from
  /// the cached columns — no estimator calls, no merging — and is
  /// byte-identical to a cold run (the frontier prefix property; see
  /// frontier_cache.h). Cold runs publish their frontiers back. The cache
  /// must only be shared across Runs whose model, cluster topology and
  /// estimator agree (the PlanningContext contract).
  ///
  /// `cancel_check` (optional) is polled between layer columns in both
  /// kernels and between layers of the cost-estimation pass; once it
  /// returns true the Run stops with Status::Cancelled. Serving threads a
  /// per-request deadline through it so an expired request stops burning a
  /// worker mid-DP instead of completing the full table.
  Result<DpSearchResult> Run(const ModelSpec& model, int first_layer,
                             int num_layers,
                             const std::vector<HybridStrategy>& candidates,
                             int stage_first_device, int batch_per_group,
                             int micro_batches, int64_t memory_budget,
                             int resident_micro_batches = -1,
                             SharedCostCache* shared_cache = nullptr,
                             DpFrontierCache* frontier_cache = nullptr,
                             const std::function<bool()>* cancel_check =
                                 nullptr) const;

 private:
  const CostEstimator* estimator_;
  DpSearchOptions options_;
};

/// Reference searcher: exhaustively enumerates all assignments over the
/// same option space as DpSearch (every candidate strategy, plus its
/// checkpointed variant when `options.allow_recompute`) with identical
/// cost accounting — including the budget quantization, which rounds the
/// effective budget up with CeilDiv exactly like DpSearch::Run, so the two
/// searchers explore the same feasible set at marginal budgets.
/// Exponential — tests only.
Result<DpSearchResult> BruteForceSearch(
    const CostEstimator& estimator, const ModelSpec& model, int first_layer,
    int num_layers, const std::vector<HybridStrategy>& candidates,
    int stage_first_device, int batch_per_group, int micro_batches,
    int64_t memory_budget, DpSearchOptions options = {},
    SharedCostCache* shared_cache = nullptr);

}  // namespace galvatron

#endif  // GALVATRON_SEARCH_DP_SEARCH_H_
