#include "search/dp_search.h"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "parallel/transformation.h"
#include "util/logging.h"
#include "util/math_util.h"
#include "util/string_util.h"

namespace galvatron {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Per-Run L1 over the sweep-wide SharedCostCache. At construction it
/// interns the run's layer signatures, candidate strategy texts and block
/// fingerprints (once per Run, not once per lookup), dedupes the layer
/// range to its distinct signatures, and then serves:
///
/// - per-layer costs from a flat slot array indexed by
///   (distinct signature, strategy, recompute) — repeated identical
///   Transformer blocks resolve without hashing anything;
/// - transformation matrices built once per distinct
///   (predecessor-signature, successor-signature) boundary and shared by
///   every repeated identical block boundary of the run.
///
/// First touches fall through to the shared cache (which memoizes across
/// Runs, stages, configurations and threads) with pre-interned integer
/// keys; only a shared-cache miss reaches the estimator.
class RunCostCache {
 public:
  RunCostCache(const CostEstimator* estimator, const ModelSpec* model,
               const std::vector<HybridStrategy>* candidates, int first_layer,
               int num_layers, int stage_first_device, int batch_per_group,
               int micro_batches, int resident_micro_batches,
               SharedCostCache* shared)
      : model_(model),
        candidates_(candidates),
        first_layer_(first_layer),
        stage_first_device_(stage_first_device),
        batch_per_group_(batch_per_group),
        micro_batches_(micro_batches),
        resident_micro_batches_(resident_micro_batches),
        shared_(shared) {
    if (shared_ == nullptr) {
      owned_ = std::make_unique<SharedCostCache>(estimator, model);
      shared_ = owned_.get();
    }
    mb_size_ = static_cast<int>(CeilDiv(batch_per_group_, micro_batches_));
    num_strategies_ = static_cast<int>(candidates_->size());
    strategy_ids_.reserve(candidates_->size());
    fp_ids_.reserve(candidates_->size());
    for (const HybridStrategy& s : *candidates_) {
      strategy_ids_.push_back(shared_->InternStrategy(s));
      fp_ids_.push_back(shared_->InternFingerprint(
          stage_first_device_, s.TotalDegree() > 0 ? s.TotalDegree() : 1));
    }
    // Dedupe the layer range to distinct signatures: a 24-layer model with
    // one repeated block shape costs one slot row, not 24.
    local_sig_.resize(static_cast<size_t>(num_layers));
    std::unordered_map<std::string, int> sig_to_local;
    for (int l = 0; l < num_layers; ++l) {
      const std::string& sig = model_->layer(first_layer + l).signature();
      auto [it, inserted] = sig_to_local.emplace(
          sig, static_cast<int>(shared_sig_ids_.size()));
      if (inserted) shared_sig_ids_.push_back(shared_->Intern(sig));
      local_sig_[static_cast<size_t>(l)] = it->second;
    }
    layer_slots_.resize(shared_sig_ids_.size() *
                        static_cast<size_t>(num_strategies_) * 2);
  }

  /// c(l, s) pieces; slotted by (distinct signature, strategy, recompute).
  Result<LayerCost> Layer(int layer_index, int strategy_index,
                          bool recompute = false) {
    const int sig = local_sig_[static_cast<size_t>(layer_index - first_layer_)];
    const size_t slot =
        (static_cast<size_t>(sig) * static_cast<size_t>(num_strategies_) +
         static_cast<size_t>(strategy_index)) *
            2 +
        (recompute ? 1 : 0);
    if (layer_slots_[slot].has_value()) return *layer_slots_[slot];
    LayerCostKey key;
    key.layer_sig = shared_sig_ids_[static_cast<size_t>(sig)];
    key.strategy = strategy_ids_[static_cast<size_t>(strategy_index)];
    key.fingerprint = fp_ids_[static_cast<size_t>(strategy_index)];
    key.batch_per_group = batch_per_group_;
    key.micro_batches = micro_batches_;
    key.resident_micro_batches = resident_micro_batches_;
    key.recompute = recompute ? 1 : 0;
    GALVATRON_ASSIGN_OR_RETURN(
        LayerCost cost,
        shared_->Layer(key, layer_index,
                       (*candidates_)[static_cast<size_t>(strategy_index)],
                       stage_first_device_));
    layer_slots_[slot] = cost;
    return cost;
  }

  /// R(l, s_prev, s): Slice-Gather between layer_index-1 and layer_index,
  /// applied forward + backward per micro-batch, for candidate STRATEGY
  /// indices. One element of the boundary's matrix, filled lazily (the
  /// brute-force searcher probes single elements).
  Result<double> TransformSeconds(int layer_index, int prev_strategy,
                                  int strategy) {
    Boundary& boundary = BoundaryFor(layer_index);
    const size_t e = static_cast<size_t>(prev_strategy) *
                         static_cast<size_t>(num_strategies_) +
                     static_cast<size_t>(strategy);
    if (!boundary.filled[e]) {
      GALVATRON_RETURN_IF_ERROR(
          FillElement(boundary, layer_index, prev_strategy, strategy));
    }
    return boundary.r[e];
  }

  /// The full R matrix of the boundary entering `layer_index`, indexed by
  /// (prev strategy * num_strategies + strategy). Built once per distinct
  /// (predecessor, successor) signature pair per Run — the repeated
  /// identical block boundaries of a Transformer stack all share one
  /// matrix. The pointer stays valid for this cache's lifetime.
  Result<const std::vector<double>*> BoundaryMatrix(int layer_index) {
    Boundary& boundary = BoundaryFor(layer_index);
    if (!boundary.complete) {
      for (int sp = 0; sp < num_strategies_; ++sp) {
        for (int s = 0; s < num_strategies_; ++s) {
          if (!boundary.filled[static_cast<size_t>(sp) *
                                   static_cast<size_t>(num_strategies_) +
                               static_cast<size_t>(s)]) {
            GALVATRON_RETURN_IF_ERROR(
                FillElement(boundary, layer_index, sp, s));
          }
        }
      }
      boundary.complete = true;
    }
    return &boundary.r;
  }

  const CostEstimator& estimator() const { return shared_->estimator(); }

 private:
  struct Boundary {
    std::vector<double> r;        // scaled seconds, strategy-pair indexed
    std::vector<uint8_t> filled;  // per-element fill flags
    bool complete = false;
  };

  Boundary& BoundaryFor(int layer_index) {
    const int l = layer_index - first_layer_;
    const std::pair<int, int> key(local_sig_[static_cast<size_t>(l - 1)],
                                  local_sig_[static_cast<size_t>(l)]);
    auto [it, inserted] =
        boundary_index_.emplace(key, static_cast<int>(boundaries_.size()));
    if (inserted) {
      // Deque-like stability is not needed: no Boundary reference is held
      // across a BoundaryFor call.
      boundaries_.emplace_back(std::make_unique<Boundary>());
      Boundary& b = *boundaries_.back();
      const size_t n = static_cast<size_t>(num_strategies_) *
                       static_cast<size_t>(num_strategies_);
      b.r.assign(n, 0.0);
      b.filled.assign(n, 0);
    }
    return *boundaries_[static_cast<size_t>(it->second)];
  }

  Status FillElement(Boundary& boundary, int layer_index, int prev_strategy,
                     int strategy) {
    const int l = layer_index - first_layer_;
    TransformCostKey key;
    key.prev_sig = shared_sig_ids_[static_cast<size_t>(
        local_sig_[static_cast<size_t>(l - 1)])];
    key.next_sig =
        shared_sig_ids_[static_cast<size_t>(local_sig_[static_cast<size_t>(l)])];
    key.prev_strategy = strategy_ids_[static_cast<size_t>(prev_strategy)];
    key.next_strategy = strategy_ids_[static_cast<size_t>(strategy)];
    key.fingerprint = fp_ids_[static_cast<size_t>(prev_strategy)];
    key.mb_size = mb_size_;
    GALVATRON_ASSIGN_OR_RETURN(
        double once,
        shared_->TransformSeconds(
            key, layer_index,
            (*candidates_)[static_cast<size_t>(prev_strategy)],
            (*candidates_)[static_cast<size_t>(strategy)],
            stage_first_device_));
    const size_t e = static_cast<size_t>(prev_strategy) *
                         static_cast<size_t>(num_strategies_) +
                     static_cast<size_t>(strategy);
    boundary.r[e] = 2.0 * micro_batches_ * once;
    boundary.filled[e] = 1;
    return Status::OK();
  }

  const ModelSpec* model_;
  const std::vector<HybridStrategy>* candidates_;
  int first_layer_;
  int stage_first_device_;
  int batch_per_group_;
  int micro_batches_;
  int resident_micro_batches_;
  int mb_size_ = 1;
  int num_strategies_ = 0;

  SharedCostCache* shared_;
  std::unique_ptr<SharedCostCache> owned_;

  std::vector<int32_t> strategy_ids_;   // per candidate
  std::vector<int32_t> fp_ids_;         // per candidate
  std::vector<int> local_sig_;          // per layer in range -> distinct id
  std::vector<int32_t> shared_sig_ids_; // distinct id -> shared intern id

  std::vector<std::optional<LayerCost>> layer_slots_;
  std::map<std::pair<int, int>, int> boundary_index_;
  std::vector<std::unique_ptr<Boundary>> boundaries_;
};

/// One per-layer option of the DP: a candidate strategy, possibly with
/// activation checkpointing. Plain strategies come first in option order,
/// checkpointed variants after — ties prefer the lower option index, so a
/// recompute variant never displaces an equal-cost plain strategy.
struct LayerOption {
  int strategy_index = 0;
  bool recompute = false;
};

std::vector<LayerOption> ExpandOptions(int num_strategies,
                                       bool allow_recompute) {
  std::vector<LayerOption> option_list;
  for (int s = 0; s < num_strategies; ++s) {
    option_list.push_back(LayerOption{s, false});
  }
  if (allow_recompute) {
    for (int s = 0; s < num_strategies; ++s) {
      option_list.push_back(LayerOption{s, true});
    }
  }
  return option_list;
}

/// Everything both kernels need, precomputed identically so they explore
/// the same quantized feasible set.
struct DpWork {
  std::vector<LayerOption> option_list;
  std::vector<int> strat_of_option;  // option index -> strategy index
  int num_candidates = 0;
  int num_strategies = 0;
  int num_layers = 0;
  int first_layer = 0;
  int budget_units = 0;
  int64_t gran = 0;
  int micro_batches = 0;
  // Per (layer, option): quantized resident memory and scalar cost;
  // infeasible options (estimator errors other than OOM propagate) get
  // +inf seconds.
  std::vector<std::vector<int>> units;
  std::vector<std::vector<double>> seconds;
};

/// Polled between layer columns: a serving deadline that expires mid-DP
/// stops the kernel within one column instead of finishing the table.
bool CancelRequested(const std::function<bool()>* cancel) {
  return cancel != nullptr && *cancel && (*cancel)();
}

/// The dense reference kernel: sweeps every (budget granule, option) cell.
/// dp[e][s]: min cost of the layers so far using <= e units, last layer on
/// strategy s. parent[l][e][s]: the previous layer's option index.
Result<DpSearchResult> RunDenseKernel(const DpWork& w, RunCostCache& cache,
                                      const std::vector<HybridStrategy>&
                                          candidates,
                                      int64_t memory_budget,
                                      const std::function<bool()>* cancel) {
  const int num_candidates = w.num_candidates;
  const int num_layers = w.num_layers;
  const int budget_units = w.budget_units;
  DpSearchResult result;

  const size_t row = static_cast<size_t>(budget_units + 1) *
                     static_cast<size_t>(num_candidates);
  std::vector<double> prev_dp(row, kInf);
  std::vector<double> cur_dp(row, kInf);
  std::vector<int16_t> parent(static_cast<size_t>(num_layers) * row, -1);
  auto idx = [&](int e, int s) {
    return static_cast<size_t>(e) * static_cast<size_t>(num_candidates) +
           static_cast<size_t>(s);
  };

  // Layer 0: no transformation, no predecessor. Options whose seconds are
  // +inf never seed a state (and are not counted) — matching the skip the
  // l>=1 loop applies.
  for (int s = 0; s < num_candidates; ++s) {
    const double c = w.seconds[0][static_cast<size_t>(s)];
    if (c == kInf) continue;
    const int o = w.units[0][static_cast<size_t>(s)];
    for (int e = o; e <= budget_units; ++e) {
      if (c < prev_dp[idx(e, s)]) {
        prev_dp[idx(e, s)] = c;
      }
    }
    result.states_explored += std::max(0, budget_units - o + 1);
  }

  for (int l = 1; l < num_layers; ++l) {
    if (CancelRequested(cancel)) {
      return Status::Cancelled("per-stage DP cancelled");
    }
    std::fill(cur_dp.begin(), cur_dp.end(), kInf);
    // The boundary's transformation matrix, shared across the run's
    // repeated identical boundaries; indexed by strategy pair (recompute
    // variants share their plain twin's entries).
    GALVATRON_ASSIGN_OR_RETURN(const std::vector<double>* transform,
                               cache.BoundaryMatrix(w.first_layer + l));
    for (int s = 0; s < num_candidates; ++s) {
      const int o = w.units[static_cast<size_t>(l)][static_cast<size_t>(s)];
      const double c =
          w.seconds[static_cast<size_t>(l)][static_cast<size_t>(s)];
      if (c == kInf) continue;
      const int cs = w.strat_of_option[static_cast<size_t>(s)];
      for (int e = o; e <= budget_units; ++e) {
        const int pe = e - o;
        double best = kInf;
        int best_sp = -1;
        // Strict < keeps the LOWEST predecessor option index on equal
        // cost: deterministic tie-breaking so the reconstructed plan is
        // byte-stable across runs and thread counts.
        for (int sp = 0; sp < num_candidates; ++sp) {
          const double prior = prev_dp[idx(pe, sp)];
          if (prior == kInf) continue;
          const double candidate =
              prior + c +
              (*transform)[static_cast<size_t>(
                               w.strat_of_option[static_cast<size_t>(sp)]) *
                               static_cast<size_t>(w.num_strategies) +
                           static_cast<size_t>(cs)];
          if (candidate < best) {
            best = candidate;
            best_sp = sp;
          }
        }
        ++result.states_explored;
        if (best < kInf) {
          cur_dp[idx(e, s)] = best;
          parent[static_cast<size_t>(l) * row + idx(e, s)] =
              static_cast<int16_t>(best_sp);
        }
      }
    }
    std::swap(prev_dp, cur_dp);
  }

  // Answer: best over strategies at the full budget. Strict < again keeps
  // the lowest option index on ties.
  double best = kInf;
  int best_s = -1;
  for (int s = 0; s < num_candidates; ++s) {
    if (prev_dp[idx(budget_units, s)] < best) {
      best = prev_dp[idx(budget_units, s)];
      best_s = s;
    }
  }
  if (best_s < 0) {
    return Status::Infeasible(StrFormat(
        "no strategy assignment fits %s per device",
        HumanBytes(static_cast<double>(memory_budget)).c_str()));
  }

  // Reconstruct: walk parents backwards. dp uses "<= e" semantics, so the
  // exact units consumed by the suffix are recovered by subtracting each
  // chosen layer's units from the running budget.
  result.stage_seconds = best;
  result.per_layer.assign(static_cast<size_t>(num_layers), HybridStrategy());
  result.per_layer_recompute.assign(static_cast<size_t>(num_layers), 0);
  int e = budget_units;
  int s = best_s;
  for (int l = num_layers - 1; l >= 0; --l) {
    const LayerOption& option = w.option_list[static_cast<size_t>(s)];
    result.per_layer[static_cast<size_t>(l)] =
        candidates[static_cast<size_t>(option.strategy_index)];
    result.per_layer_recompute[static_cast<size_t>(l)] =
        option.recompute ? 1 : 0;
    result.resident_memory_bytes +=
        static_cast<int64_t>(
            w.units[static_cast<size_t>(l)][static_cast<size_t>(s)]) *
        w.gran;
    if (l > 0) {
      const int sp = parent[static_cast<size_t>(l) * row + idx(e, s)];
      GALVATRON_CHECK_GE(sp, 0);
      e -= w.units[static_cast<size_t>(l)][static_cast<size_t>(s)];
      s = sp;
    }
  }
  return result;
}

// Breakpoint/span types live in frontier_cache.h so completed frontiers
// can be cached and replayed across Runs.
using Breakpoint = DpBreakpoint;
using Span = DpColumnSpan;

/// The frontier columns of one sparse run, before any answer is extracted:
/// exactly what DpFrontierCache stores.
struct SparseFrontiers {
  std::vector<Breakpoint> arena;
  std::vector<Span> spans;
  int64_t breakpoints_emitted = 0;
  int64_t breakpoints_scanned = 0;
  int64_t options_pruned = 0;
};

/// The sparse Pareto-frontier kernel's build phase. Exploits that dp[e][s]
/// is a non-increasing step function of the budget e: each column keeps
/// only its breakpoints, and layer l is computed by merging layer l-1's
/// frontiers shifted by the option's units and biased by c(l, s) + R(sp,
/// s). Work scales with the number of DISTINCT cost levels instead of the
/// granule count. The produced columns yield plans byte-identical to
/// RunDenseKernel — at w.budget_units AND at every smaller budget (the
/// prefix property AnswerFromFrontiers and the frontier cache rely on).
Result<SparseFrontiers> BuildSparseFrontiers(
    const DpWork& w, RunCostCache& cache,
    const std::function<bool()>* cancel) {
  const int num_candidates = w.num_candidates;
  const int num_strategies = w.num_strategies;
  const int num_layers = w.num_layers;
  const int budget_units = w.budget_units;
  SparseFrontiers result;

  // A recompute variant dominated by its plain twin in BOTH quantized
  // units and seconds can never appear in an optimal assignment: the twin
  // has the same strategy index (so identical R rows and columns), a lower
  // option index (so it wins every exact tie), and a pointwise no-worse
  // column. Dropping the variant preserves byte-identical plans.
  auto dominated = [&](int l, int s) {
    if (s < num_strategies) return false;  // plain options are never pruned
    const int plain = s - num_strategies;
    return w.units[static_cast<size_t>(l)][static_cast<size_t>(s)] >=
               w.units[static_cast<size_t>(l)][static_cast<size_t>(plain)] &&
           w.seconds[static_cast<size_t>(l)][static_cast<size_t>(s)] >=
               w.seconds[static_cast<size_t>(l)][static_cast<size_t>(plain)];
  };

  // Breakpoint columns live in one contiguous arena, addressed by
  // (begin, size) spans per (layer, option): columns are built strictly
  // one at a time, so appends are always at the arena's end, and the
  // thousands of per-column vector allocations the nested-vector layout
  // paid (plus their cache-hostile scatter) collapse into one
  // geometrically-grown buffer that reads sequentially during merges.
  std::vector<Breakpoint>& arena = result.arena;
  arena.reserve(static_cast<size_t>(num_candidates) *
                static_cast<size_t>(std::min(num_layers, 8)));
  result.spans.assign(static_cast<size_t>(num_layers) *
                          static_cast<size_t>(num_candidates),
                      Span{});
  std::vector<Span>& spans = result.spans;
  auto span_of = [&](int l, int s) -> Span& {
    return spans[static_cast<size_t>(l) * static_cast<size_t>(num_candidates) +
                 static_cast<size_t>(s)];
  };

  // Layer 0: one breakpoint per feasible option — the cost is constant in
  // the budget, so the dense row [o, budget] collapses to a single step.
  for (int s = 0; s < num_candidates; ++s) {
    const double c = w.seconds[0][static_cast<size_t>(s)];
    if (c == kInf) continue;
    if (dominated(0, s)) {
      ++result.options_pruned;
      continue;
    }
    const int o = w.units[0][static_cast<size_t>(s)];
    if (o > budget_units) continue;
    Span& span = span_of(0, s);
    span.begin = static_cast<int64_t>(arena.size());
    span.size = 1;
    arena.push_back(Breakpoint{o, c, -1});
    ++result.breakpoints_emitted;
  }

  // Merge scratch, shared by every column: per-units best candidate,
  // lazily reset via generation stamps so clearing costs nothing. A column
  // never emits more than one breakpoint per distinct units value, and the
  // one it emits is the (cost, parent)-lexicographic minimum among that
  // units level's candidates — so bucketing candidates by units and
  // keeping the per-bucket minimum replaces a comparison sort of (units,
  // cost, parent) structs with one integer sort of the touched units.
  std::vector<double> slot_cost(static_cast<size_t>(budget_units) + 1);
  std::vector<int32_t> slot_parent(static_cast<size_t>(budget_units) + 1);
  std::vector<int32_t> slot_gen(static_cast<size_t>(budget_units) + 1, 0);
  std::vector<int> touched;
  int32_t generation = 0;

  for (int l = 1; l < num_layers; ++l) {
    if (CancelRequested(cancel)) {
      return Status::Cancelled("per-stage DP cancelled");
    }
    GALVATRON_ASSIGN_OR_RETURN(const std::vector<double>* transform,
                               cache.BoundaryMatrix(w.first_layer + l));
    for (int s = 0; s < num_candidates; ++s) {
      const double c =
          w.seconds[static_cast<size_t>(l)][static_cast<size_t>(s)];
      if (c == kInf) continue;
      if (dominated(l, s)) {
        ++result.options_pruned;
        continue;
      }
      const int o = w.units[static_cast<size_t>(l)][static_cast<size_t>(s)];
      if (o > budget_units) continue;
      const int cs = w.strat_of_option[static_cast<size_t>(s)];

      ++generation;
      touched.clear();
      for (int sp = 0; sp < num_candidates; ++sp) {
        const Span prev = span_of(l - 1, sp);
        if (prev.size == 0) continue;
        const double r =
            (*transform)[static_cast<size_t>(
                             w.strat_of_option[static_cast<size_t>(sp)]) *
                             static_cast<size_t>(num_strategies) +
                         static_cast<size_t>(cs)];
        // No appends happen during this scan phase, so raw pointers into
        // the arena are stable here.
        const Breakpoint* begin = arena.data() + prev.begin;
        const Breakpoint* end = begin + prev.size;
        for (const Breakpoint* bp = begin; bp != end; ++bp) {
          const size_t u = static_cast<size_t>(bp->units + o);
          if (bp->units + o > budget_units) break;  // units ascend in a frontier
          // Same association as the dense kernel's prior + c + R, so the
          // costs are bit-identical, not merely equal in exact arithmetic.
          const double cost = (bp->cost + c) + r;
          ++result.breakpoints_scanned;
          if (slot_gen[u] != generation) {
            slot_gen[u] = generation;
            slot_cost[u] = cost;
            slot_parent[u] = static_cast<int32_t>(sp);
            touched.push_back(bp->units + o);
          } else if (cost < slot_cost[u] ||
                     (cost == slot_cost[u] &&
                      sp < slot_parent[u])) {
            slot_cost[u] = cost;
            slot_parent[u] = static_cast<int32_t>(sp);
          }
        }
      }

      // Lower envelope over ascending units: a units level extends the
      // frontier iff its best candidate strictly improves the running best
      // cost, or matches it through a lower predecessor option index — the
      // latter reproduces the dense kernel's lowest-index tie-break at
      // every budget, not just where the cost changes.
      std::sort(touched.begin(), touched.end());
      Span& out = span_of(l, s);
      out.begin = static_cast<int64_t>(arena.size());
      double best_cost = kInf;
      int32_t best_parent = std::numeric_limits<int32_t>::max();
      for (const int u : touched) {
        const double cost = slot_cost[static_cast<size_t>(u)];
        const int32_t parent = slot_parent[static_cast<size_t>(u)];
        if (cost < best_cost ||
            (cost == best_cost && parent < best_parent)) {
          best_cost = cost;
          best_parent = parent;
          arena.push_back(Breakpoint{u, cost, parent});
        }
      }
      out.size = static_cast<int64_t>(arena.size()) - out.begin;
      result.breakpoints_emitted += out.size;
    }
  }
  return result;
}

/// Extracts the optimal assignment at `budget_units` from built frontier
/// columns. `budget_units` may be SMALLER than the budget the columns were
/// built at: truncating a Pareto column to units <= U is identical to
/// building it at U directly (no merge decision at a level ever depends on
/// a higher level), so the answer — costs, parents, tie-breaks — is
/// byte-identical to a cold run at `budget_units`. This one routine serves
/// both the cold path (budget == build budget, where upper_bound lands on
/// the last breakpoint) and frontier-cache warm hits at near-miss budgets.
Result<DpSearchResult> AnswerFromFrontiers(
    const std::vector<Breakpoint>& arena, const std::vector<Span>& spans,
    int num_layers, int num_candidates,
    const std::vector<std::vector<int>>& units,
    const std::vector<int>& strat_of_option,
    const std::vector<uint8_t>& recompute_of_option, int64_t gran,
    const std::vector<HybridStrategy>& candidates, int budget_units,
    int64_t memory_budget) {
  auto span_of = [&](int l, int s) -> const Span& {
    return spans[static_cast<size_t>(l) * static_cast<size_t>(num_candidates) +
                 static_cast<size_t>(s)];
  };
  // Last breakpoint with units <= e, or nullptr when even the column's
  // cheapest step is over budget.
  auto active_breakpoint = [&](const Span& f, int e) -> const Breakpoint* {
    const Breakpoint* begin = arena.data() + f.begin;
    const Breakpoint* end = begin + f.size;
    const Breakpoint* it = std::upper_bound(
        begin, end, e,
        [](int value, const Breakpoint& bp) { return value < bp.units; });
    return it == begin ? nullptr : it - 1;
  };

  // Answer: best final-layer column at the budget. Strict < keeps the
  // lowest option index on ties, like the dense kernel.
  DpSearchResult result;
  double best = kInf;
  int best_s = -1;
  for (int s = 0; s < num_candidates; ++s) {
    const Span f = span_of(num_layers - 1, s);
    if (f.size == 0) continue;
    const Breakpoint* bp = active_breakpoint(f, budget_units);
    if (bp == nullptr) continue;
    if (bp->cost < best) {
      best = bp->cost;
      best_s = s;
    }
  }
  if (best_s < 0) {
    return Status::Infeasible(StrFormat(
        "no strategy assignment fits %s per device",
        HumanBytes(static_cast<double>(memory_budget)).c_str()));
  }

  // Reconstruct: at each layer, the breakpoint active at the remaining
  // budget names the predecessor option; subtracting the layer's units
  // recovers the exact budget the prefix ran under ("<= e" semantics).
  result.stage_seconds = best;
  result.per_layer.assign(static_cast<size_t>(num_layers), HybridStrategy());
  result.per_layer_recompute.assign(static_cast<size_t>(num_layers), 0);
  int e = budget_units;
  int s = best_s;
  for (int l = num_layers - 1; l >= 0; --l) {
    result.per_layer[static_cast<size_t>(l)] =
        candidates[static_cast<size_t>(strat_of_option[static_cast<size_t>(s)])];
    result.per_layer_recompute[static_cast<size_t>(l)] =
        recompute_of_option[static_cast<size_t>(s)];
    result.resident_memory_bytes +=
        static_cast<int64_t>(
            units[static_cast<size_t>(l)][static_cast<size_t>(s)]) *
        gran;
    if (l > 0) {
      // The chosen breakpoint was generated from a predecessor breakpoint
      // at exactly (units - this layer's units), so the walk never falls
      // off a column's front even at truncated budgets.
      const Breakpoint* bp = active_breakpoint(span_of(l, s), e);
      GALVATRON_CHECK(bp != nullptr);
      e -= units[static_cast<size_t>(l)][static_cast<size_t>(s)];
      s = bp->parent;
    }
  }
  return result;
}

/// The cache key of one sparse Run: everything that shapes the frontiers
/// except the memory budget (model/cluster/estimator identity is the cache
/// owner's contract — see DpFrontierCache).
std::string FrontierKey(const std::vector<HybridStrategy>& candidates,
                        int first_layer, int num_layers,
                        int stage_first_device, int batch_per_group,
                        int micro_batches, int resident_micro_batches,
                        int64_t gran, bool allow_recompute) {
  // Built by hand, not StrFormat: the key is remade on every Run, and on a
  // fully warm sweep the vsnprintf round-trips outweighed the lookups they
  // fed. Candidates append structurally for the same reason — their
  // ToString() strings are equal iff the level lists are.
  std::string key;
  key.reserve(16 + 8 * candidates.size());
  auto append_int = [&key](int64_t v) {
    key += std::to_string(v);
    key += '|';
  };
  append_int(first_layer);
  append_int(num_layers);
  append_int(stage_first_device);
  append_int(batch_per_group);
  append_int(micro_batches);
  append_int(resident_micro_batches);
  append_int(gran);
  append_int(allow_recompute ? 1 : 0);
  for (const HybridStrategy& s : candidates) {
    for (const ParallelComponent& level : s.levels()) {
      key += static_cast<char>('a' + static_cast<int>(level.dim));
      key += std::to_string(level.degree);
    }
    key += ';';
  }
  return key;
}

}  // namespace

DpSearch::DpSearch(const CostEstimator* estimator, DpSearchOptions options)
    : estimator_(estimator), options_(options) {
  GALVATRON_CHECK(estimator != nullptr);
  GALVATRON_CHECK_GT(options_.memory_granularity, 0);
}

Result<DpSearchResult> DpSearch::Run(
    const ModelSpec& model, int first_layer, int num_layers,
    const std::vector<HybridStrategy>& candidates, int stage_first_device,
    int batch_per_group, int micro_batches, int64_t memory_budget,
    int resident_micro_batches, SharedCostCache* shared_cache,
    DpFrontierCache* frontier_cache,
    const std::function<bool()>* cancel_check) const {
  if (num_layers < 1 || first_layer < 0 ||
      first_layer + num_layers > model.num_layers()) {
    return Status::InvalidArgument("layer range out of bounds");
  }
  if (candidates.empty()) {
    return Status::InvalidArgument("no candidate strategies");
  }
  DpWork w;
  // Expand the per-layer option space: every strategy, and (optionally) its
  // checkpointed variant.
  w.option_list = ExpandOptions(static_cast<int>(candidates.size()),
                                options_.allow_recompute);
  w.num_candidates = static_cast<int>(w.option_list.size());
  w.num_strategies = static_cast<int>(candidates.size());
  // The dense kernel's parent table stores int16 option indices; both
  // kernels share the limit so their feasibility envelopes stay identical.
  if (w.num_candidates > std::numeric_limits<int16_t>::max()) {
    return Status::InvalidArgument(StrFormat(
        "%d expanded options exceed the DP parent table's int16 range (%d)",
        w.num_candidates,
        static_cast<int>(std::numeric_limits<int16_t>::max())));
  }
  w.strat_of_option.reserve(static_cast<size_t>(w.num_candidates));
  std::vector<uint8_t> recompute_of_option;
  recompute_of_option.reserve(static_cast<size_t>(w.num_candidates));
  for (const LayerOption& option : w.option_list) {
    w.strat_of_option.push_back(option.strategy_index);
    recompute_of_option.push_back(option.recompute ? 1 : 0);
  }
  w.num_layers = num_layers;
  w.first_layer = first_layer;
  w.gran = options_.memory_granularity;
  w.micro_batches = micro_batches;

  // Warm path: a cached frontier for this signature at a budget >= the
  // requested one answers without touching the estimator or the kernel —
  // the repeated-near-miss serving workload (identical request, different
  // memory budget) skips the entire cold pipeline.
  std::string frontier_key;
  const bool cacheable = frontier_cache != nullptr && options_.use_sparse_dp;
  if (cacheable) {
    frontier_key = FrontierKey(candidates, first_layer, num_layers,
                               stage_first_device, batch_per_group,
                               micro_batches, resident_micro_batches, w.gran,
                               options_.allow_recompute);
    std::shared_ptr<const DpFrontierEntry> entry =
        frontier_cache->Lookup(frontier_key);
    if (entry != nullptr) {
      GALVATRON_CHECK_EQ(entry->num_candidates, w.num_candidates);
      const int64_t effective = memory_budget - entry->max_transient;
      const int budget_units =
          effective > 0 ? static_cast<int>(CeilDiv(effective, w.gran)) : -1;
      if (budget_units < 0) {
        frontier_cache->CountHit();
        return Status::Infeasible("memory budget below transient headroom");
      }
      if (budget_units <= entry->budget_units) {
        frontier_cache->CountHit();
        Result<DpSearchResult> out = AnswerFromFrontiers(
            entry->arena, entry->spans, entry->num_layers,
            entry->num_candidates, entry->units, entry->option_strategy,
            entry->option_recompute, w.gran, candidates, budget_units,
            memory_budget);
        if (out.ok()) out->frontier_hit = true;
        return out;
      }
      // Budget grew past the cached frontier: fall through to a cold run,
      // which republishes the wider entry.
    }
    frontier_cache->CountMiss();
  }

  RunCostCache cache(estimator_, &model, &candidates, first_layer, num_layers,
                     stage_first_device, batch_per_group, micro_batches,
                     resident_micro_batches, shared_cache);

  // Reserve headroom for the largest transient (SDP weight gather) any
  // candidate might need; the remaining budget is then purely additive in
  // per-layer resident memory, which is what the DP quantizes.
  int64_t max_transient = 0;
  w.units.assign(static_cast<size_t>(num_layers),
                 std::vector<int>(static_cast<size_t>(w.num_candidates), 0));
  w.seconds.assign(
      static_cast<size_t>(num_layers),
      std::vector<double>(static_cast<size_t>(w.num_candidates), kInf));
  for (int l = 0; l < num_layers; ++l) {
    if (CancelRequested(cancel_check)) {
      return Status::Cancelled("per-stage search cancelled");
    }
    for (int s = 0; s < w.num_candidates; ++s) {
      const LayerOption& option = w.option_list[static_cast<size_t>(s)];
      GALVATRON_ASSIGN_OR_RETURN(
          LayerCost cost, cache.Layer(first_layer + l, option.strategy_index,
                                      option.recompute));
      // x2: ZeRO-3 prefetch holds two layers' gathered weights.
      max_transient = std::max(max_transient, 2 * cost.transient_memory_bytes);
      w.units[static_cast<size_t>(l)][static_cast<size_t>(s)] =
          static_cast<int>((cost.resident_memory_bytes + w.gran / 2) /
                           w.gran);
      w.seconds[static_cast<size_t>(l)][static_cast<size_t>(s)] =
          cost.IterationSeconds(micro_batches, estimator_->options());
    }
  }
  const int64_t effective_budget = memory_budget - max_transient;
  // Round the budget up: marginal acceptances are re-validated exactly by
  // the optimizer's EstimatePlan pass, so optimism here is safe while
  // pessimism would shrink the search space below the baselines'.
  // BruteForceSearch applies the same CeilDiv so both searchers explore
  // the same feasible set at granule-straddling budgets.
  w.budget_units =
      effective_budget > 0
          ? static_cast<int>(CeilDiv(effective_budget, w.gran))
          : -1;
  if (w.budget_units < 0) {
    return Status::Infeasible("memory budget below transient headroom");
  }

  if (!options_.use_sparse_dp) {
    return RunDenseKernel(w, cache, candidates, memory_budget, cancel_check);
  }

  GALVATRON_ASSIGN_OR_RETURN(SparseFrontiers frontiers,
                             BuildSparseFrontiers(w, cache, cancel_check));
  if (cacheable) {
    // Publish even when the answer below is Infeasible: the frontiers are
    // valid for every budget up to w.budget_units, and a warm infeasible
    // replay is as cheap as a warm feasible one.
    auto entry = std::make_shared<DpFrontierEntry>();
    entry->budget_units = w.budget_units;
    entry->max_transient = max_transient;
    entry->num_layers = num_layers;
    entry->num_candidates = w.num_candidates;
    entry->option_strategy = w.strat_of_option;
    entry->option_recompute = recompute_of_option;
    entry->units = w.units;
    entry->arena = frontiers.arena;
    entry->spans = frontiers.spans;
    entry->options_pruned = frontiers.options_pruned;
    frontier_cache->Insert(frontier_key, std::move(entry));
  }
  Result<DpSearchResult> out = AnswerFromFrontiers(
      frontiers.arena, frontiers.spans, num_layers, w.num_candidates, w.units,
      w.strat_of_option, recompute_of_option, w.gran, candidates,
      w.budget_units, memory_budget);
  if (out.ok()) {
    out->states_explored = frontiers.breakpoints_emitted;
    out->breakpoints_emitted = frontiers.breakpoints_emitted;
    out->breakpoints_scanned = frontiers.breakpoints_scanned;
    out->options_pruned = frontiers.options_pruned;
  }
  return out;
}

Result<DpSearchResult> BruteForceSearch(
    const CostEstimator& estimator, const ModelSpec& model, int first_layer,
    int num_layers, const std::vector<HybridStrategy>& candidates,
    int stage_first_device, int batch_per_group, int micro_batches,
    int64_t memory_budget, DpSearchOptions options,
    SharedCostCache* shared_cache) {
  if (num_layers < 1 || candidates.empty()) {
    return Status::InvalidArgument("empty search");
  }
  if (options.memory_granularity <= 0) {
    return Status::InvalidArgument("memory granularity must be positive");
  }
  if (first_layer < 0 || first_layer + num_layers > model.num_layers()) {
    return Status::InvalidArgument("layer range out of bounds");
  }
  // Same option expansion as DpSearch: strategies, then (optionally) their
  // checkpointed variants.
  const std::vector<LayerOption> option_list = ExpandOptions(
      static_cast<int>(candidates.size()), options.allow_recompute);
  const int num_candidates = static_cast<int>(option_list.size());
  // Matches DpSearch's quantized accounting exactly so tests can compare.
  const int64_t gran = options.memory_granularity;

  RunCostCache cache(&estimator, &model, &candidates, first_layer, num_layers,
                     stage_first_device, batch_per_group, micro_batches,
                     /*resident_micro_batches=*/-1, shared_cache);
  int64_t max_transient = 0;
  std::vector<std::vector<int>> units(
      static_cast<size_t>(num_layers),
      std::vector<int>(static_cast<size_t>(num_candidates), 0));
  std::vector<std::vector<double>> seconds(
      static_cast<size_t>(num_layers),
      std::vector<double>(static_cast<size_t>(num_candidates), kInf));
  for (int l = 0; l < num_layers; ++l) {
    for (int s = 0; s < num_candidates; ++s) {
      const LayerOption& option = option_list[static_cast<size_t>(s)];
      GALVATRON_ASSIGN_OR_RETURN(
          LayerCost cost, cache.Layer(first_layer + l, option.strategy_index,
                                      option.recompute));
      max_transient =
          std::max(max_transient, 2 * cost.transient_memory_bytes);
      units[static_cast<size_t>(l)][static_cast<size_t>(s)] =
          static_cast<int>((cost.resident_memory_bytes + gran / 2) / gran);
      seconds[static_cast<size_t>(l)][static_cast<size_t>(s)] =
          cost.IterationSeconds(micro_batches, estimator.options());
    }
  }
  const int64_t effective_budget = memory_budget - max_transient;
  // CeilDiv, exactly like DpSearch::Run: flooring here would admit one
  // granule less than the DP at budgets that straddle a granule boundary,
  // making the two searchers disagree at marginal budgets.
  const int budget_units =
      effective_budget > 0 ? static_cast<int>(CeilDiv(effective_budget, gran))
                           : -1;
  if (budget_units < 0) {
    return Status::Infeasible("memory budget below transient headroom");
  }

  DpSearchResult best;
  best.stage_seconds = kInf;
  std::vector<int> assignment(static_cast<size_t>(num_layers), 0);
  std::vector<int> best_assignment;

  // Depth-first enumeration with cost/memory pruning. The >= prune keeps
  // the first optimum in option order — the lexicographically smallest
  // assignment, mirroring the DP's lowest-index tie-breaking.
  std::function<Status(int, int, double)> recurse =
      [&](int l, int used, double cost) -> Status {
    if (cost >= best.stage_seconds) return Status::OK();  // prune
    if (l == num_layers) {
      best.stage_seconds = cost;
      best_assignment = assignment;
      return Status::OK();
    }
    for (int s = 0; s < num_candidates; ++s) {
      const int o = units[static_cast<size_t>(l)][static_cast<size_t>(s)];
      if (used + o > budget_units) continue;
      double step = seconds[static_cast<size_t>(l)][static_cast<size_t>(s)];
      if (l > 0) {
        const int prev_option = assignment[static_cast<size_t>(l) - 1];
        auto r = cache.TransformSeconds(
            first_layer + l,
            option_list[static_cast<size_t>(prev_option)].strategy_index,
            option_list[static_cast<size_t>(s)].strategy_index);
        if (!r.ok()) return r.status();
        step += *r;
      }
      assignment[static_cast<size_t>(l)] = s;
      GALVATRON_RETURN_IF_ERROR(recurse(l + 1, used + o, cost + step));
    }
    return Status::OK();
  };
  GALVATRON_RETURN_IF_ERROR(recurse(0, 0, 0.0));

  if (best_assignment.empty()) {
    return Status::Infeasible("no assignment fits the budget");
  }
  for (int l = 0; l < num_layers; ++l) {
    const int s = best_assignment[static_cast<size_t>(l)];
    const LayerOption& option = option_list[static_cast<size_t>(s)];
    best.per_layer.push_back(
        candidates[static_cast<size_t>(option.strategy_index)]);
    best.per_layer_recompute.push_back(option.recompute ? 1 : 0);
    best.resident_memory_bytes +=
        static_cast<int64_t>(
            units[static_cast<size_t>(l)][static_cast<size_t>(s)]) *
        gran;
  }
  return best;
}

}  // namespace galvatron
