#include "search/dp_search.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <tuple>

#include "parallel/transformation.h"
#include "util/logging.h"
#include "util/math_util.h"
#include "util/string_util.h"

namespace galvatron {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Per-Run L1 over the sweep-wide SharedCostCache: repeated lookups inside
/// one Run resolve through cheap signature-tuple keys without touching the
/// shared table's locks; first touches fall through to the shared cache
/// (which memoizes across Runs, stages, configurations and threads) and
/// only a shared-cache miss reaches the estimator.
class RunCostCache {
 public:
  RunCostCache(const CostEstimator* estimator, const ModelSpec* model,
               const std::vector<HybridStrategy>* candidates,
               int stage_first_device, int batch_per_group, int micro_batches,
               int resident_micro_batches, SharedCostCache* shared)
      : model_(model),
        candidates_(candidates),
        stage_first_device_(stage_first_device),
        batch_per_group_(batch_per_group),
        micro_batches_(micro_batches),
        resident_micro_batches_(resident_micro_batches),
        shared_(shared) {
    if (shared_ == nullptr) {
      owned_ = std::make_unique<SharedCostCache>(estimator, model);
      shared_ = owned_.get();
    }
  }

  /// c(l, s) pieces; cached by (signature, strategy index, recompute).
  Result<LayerCost> Layer(int layer_index, int strategy_index,
                          bool recompute = false) {
    const LayerSpec& layer = model_->layer(layer_index);
    const std::tuple<std::string, int, bool> key(layer.signature(),
                                                 strategy_index, recompute);
    auto it = layer_cache_.find(key);
    if (it != layer_cache_.end()) return it->second;
    GALVATRON_ASSIGN_OR_RETURN(
        LayerCost cost,
        shared_->Layer(layer_index,
                       (*candidates_)[static_cast<size_t>(strategy_index)],
                       stage_first_device_, batch_per_group_, micro_batches_,
                       recompute, resident_micro_batches_));
    layer_cache_.emplace(key, cost);
    return cost;
  }

  /// R(l, s_prev, s): Slice-Gather between layer_index-1 and layer_index,
  /// applied forward + backward per micro-batch. Keyed by BOTH boundary
  /// layers' signatures — the predecessor alone aliases boundaries whose
  /// successor layers differ in input shape.
  Result<double> TransformSeconds(int layer_index, int prev_strategy,
                                  int strategy) {
    const std::tuple<std::string, std::string, int, int> key(
        model_->layer(layer_index - 1).signature(),
        model_->layer(layer_index).signature(), prev_strategy, strategy);
    auto it = transform_cache_.find(key);
    if (it != transform_cache_.end()) return it->second;
    const int mb_size =
        static_cast<int>(CeilDiv(batch_per_group_, micro_batches_));
    GALVATRON_ASSIGN_OR_RETURN(
        double once,
        shared_->TransformSeconds(
            layer_index, (*candidates_)[static_cast<size_t>(prev_strategy)],
            (*candidates_)[static_cast<size_t>(strategy)],
            stage_first_device_, mb_size));
    const double seconds = 2.0 * micro_batches_ * once;
    transform_cache_.emplace(key, seconds);
    return seconds;
  }

  const CostEstimator& estimator() const { return shared_->estimator(); }

 private:
  const ModelSpec* model_;
  const std::vector<HybridStrategy>* candidates_;
  int stage_first_device_;
  int batch_per_group_;
  int micro_batches_;
  int resident_micro_batches_;

  SharedCostCache* shared_;
  std::unique_ptr<SharedCostCache> owned_;

  std::map<std::tuple<std::string, int, bool>, LayerCost> layer_cache_;
  std::map<std::tuple<std::string, std::string, int, int>, double>
      transform_cache_;
};

/// One per-layer option of the DP: a candidate strategy, possibly with
/// activation checkpointing. Plain strategies come first in option order,
/// checkpointed variants after — ties prefer the lower option index, so a
/// recompute variant never displaces an equal-cost plain strategy.
struct LayerOption {
  int strategy_index = 0;
  bool recompute = false;
};

std::vector<LayerOption> ExpandOptions(int num_strategies,
                                       bool allow_recompute) {
  std::vector<LayerOption> option_list;
  for (int s = 0; s < num_strategies; ++s) {
    option_list.push_back(LayerOption{s, false});
  }
  if (allow_recompute) {
    for (int s = 0; s < num_strategies; ++s) {
      option_list.push_back(LayerOption{s, true});
    }
  }
  return option_list;
}

}  // namespace

DpSearch::DpSearch(const CostEstimator* estimator, DpSearchOptions options)
    : estimator_(estimator), options_(options) {
  GALVATRON_CHECK(estimator != nullptr);
  GALVATRON_CHECK_GT(options_.memory_granularity, 0);
}

Result<DpSearchResult> DpSearch::Run(
    const ModelSpec& model, int first_layer, int num_layers,
    const std::vector<HybridStrategy>& candidates, int stage_first_device,
    int batch_per_group, int micro_batches, int64_t memory_budget,
    int resident_micro_batches, SharedCostCache* shared_cache) const {
  if (num_layers < 1 || first_layer < 0 ||
      first_layer + num_layers > model.num_layers()) {
    return Status::InvalidArgument("layer range out of bounds");
  }
  if (candidates.empty()) {
    return Status::InvalidArgument("no candidate strategies");
  }
  // Expand the per-layer option space: every strategy, and (optionally) its
  // checkpointed variant.
  const std::vector<LayerOption> option_list = ExpandOptions(
      static_cast<int>(candidates.size()), options_.allow_recompute);
  const int num_candidates = static_cast<int>(option_list.size());
  const int64_t gran = options_.memory_granularity;

  RunCostCache cache(estimator_, &model, &candidates, stage_first_device,
                     batch_per_group, micro_batches, resident_micro_batches,
                     shared_cache);

  // Reserve headroom for the largest transient (SDP weight gather) any
  // candidate might need; the remaining budget is then purely additive in
  // per-layer resident memory, which is what the DP quantizes.
  int64_t max_transient = 0;
  // Per (layer, strategy): memory units and scalar cost; infeasible
  // strategies (estimator errors other than OOM propagate) get +inf.
  std::vector<std::vector<int>> units(
      static_cast<size_t>(num_layers),
      std::vector<int>(static_cast<size_t>(num_candidates), 0));
  std::vector<std::vector<double>> seconds(
      static_cast<size_t>(num_layers),
      std::vector<double>(static_cast<size_t>(num_candidates), kInf));
  for (int l = 0; l < num_layers; ++l) {
    for (int s = 0; s < num_candidates; ++s) {
      const LayerOption& option = option_list[static_cast<size_t>(s)];
      GALVATRON_ASSIGN_OR_RETURN(
          LayerCost cost,
          cache.Layer(first_layer + l, option.strategy_index,
                      option.recompute));
      // x2: ZeRO-3 prefetch holds two layers' gathered weights.
      max_transient =
          std::max(max_transient, 2 * cost.transient_memory_bytes);
      units[static_cast<size_t>(l)][static_cast<size_t>(s)] =
          static_cast<int>((cost.resident_memory_bytes + gran / 2) / gran);
      seconds[static_cast<size_t>(l)][static_cast<size_t>(s)] =
          cost.IterationSeconds(micro_batches, estimator_->options());
    }
  }
  const int64_t effective_budget = memory_budget - max_transient;
  // Round the budget up: marginal acceptances are re-validated exactly by
  // the optimizer's EstimatePlan pass, so optimism here is safe while
  // pessimism would shrink the search space below the baselines'.
  // BruteForceSearch applies the same CeilDiv so both searchers explore
  // the same feasible set at granule-straddling budgets.
  const int budget_units =
      effective_budget > 0 ? static_cast<int>(CeilDiv(effective_budget, gran))
                           : -1;
  if (budget_units < 0) {
    return Status::Infeasible("memory budget below transient headroom");
  }

  DpSearchResult result;

  // dp[e][s]: min cost of the layers so far using <= e units, last layer on
  // strategy s. parent[l][e][s]: the previous layer's strategy index.
  const size_t row = static_cast<size_t>(budget_units + 1) *
                     static_cast<size_t>(num_candidates);
  std::vector<double> prev_dp(row, kInf);
  std::vector<double> cur_dp(row, kInf);
  std::vector<int16_t> parent(static_cast<size_t>(num_layers) * row, -1);
  auto idx = [&](int e, int s) {
    return static_cast<size_t>(e) * static_cast<size_t>(num_candidates) +
           static_cast<size_t>(s);
  };

  // Layer 0: no transformation, no predecessor.
  for (int s = 0; s < num_candidates; ++s) {
    const int o = units[0][static_cast<size_t>(s)];
    const double c = seconds[0][static_cast<size_t>(s)];
    for (int e = o; e <= budget_units; ++e) {
      if (c < prev_dp[idx(e, s)]) {
        prev_dp[idx(e, s)] = c;
      }
    }
    result.states_explored += std::max(0, budget_units - o + 1);
  }

  // Precompute R for all (s_prev, s) pairs per distinct predecessor layer
  // signature — done lazily through the cache inside the loop.
  for (int l = 1; l < num_layers; ++l) {
    std::fill(cur_dp.begin(), cur_dp.end(), kInf);
    // Transformation matrix for this boundary.
    std::vector<double> transform(
        static_cast<size_t>(num_candidates) *
            static_cast<size_t>(num_candidates),
        0.0);
    for (int sp = 0; sp < num_candidates; ++sp) {
      for (int s = 0; s < num_candidates; ++s) {
        GALVATRON_ASSIGN_OR_RETURN(
            double r,
            cache.TransformSeconds(
                first_layer + l,
                option_list[static_cast<size_t>(sp)].strategy_index,
                option_list[static_cast<size_t>(s)].strategy_index));
        transform[static_cast<size_t>(sp) *
                      static_cast<size_t>(num_candidates) +
                  static_cast<size_t>(s)] = r;
      }
    }
    for (int s = 0; s < num_candidates; ++s) {
      const int o = units[static_cast<size_t>(l)][static_cast<size_t>(s)];
      const double c = seconds[static_cast<size_t>(l)][static_cast<size_t>(s)];
      if (c == kInf) continue;
      for (int e = o; e <= budget_units; ++e) {
        const int pe = e - o;
        double best = kInf;
        int best_sp = -1;
        // Strict < keeps the LOWEST predecessor option index on equal
        // cost: deterministic tie-breaking so the reconstructed plan is
        // byte-stable across runs and thread counts.
        for (int sp = 0; sp < num_candidates; ++sp) {
          const double prior = prev_dp[idx(pe, sp)];
          if (prior == kInf) continue;
          const double candidate =
              prior + c +
              transform[static_cast<size_t>(sp) *
                            static_cast<size_t>(num_candidates) +
                        static_cast<size_t>(s)];
          if (candidate < best) {
            best = candidate;
            best_sp = sp;
          }
        }
        ++result.states_explored;
        if (best < kInf) {
          cur_dp[idx(e, s)] = best;
          parent[static_cast<size_t>(l) * row + idx(e, s)] =
              static_cast<int16_t>(best_sp);
        }
      }
    }
    std::swap(prev_dp, cur_dp);
  }

  // Answer: best over strategies at the full budget. Strict < again keeps
  // the lowest option index on ties.
  double best = kInf;
  int best_s = -1;
  for (int s = 0; s < num_candidates; ++s) {
    if (prev_dp[idx(budget_units, s)] < best) {
      best = prev_dp[idx(budget_units, s)];
      best_s = s;
    }
  }
  if (best_s < 0) {
    return Status::Infeasible(StrFormat(
        "no strategy assignment fits %s per device",
        HumanBytes(static_cast<double>(memory_budget)).c_str()));
  }

  // Reconstruct: walk parents backwards. dp uses "<= e" semantics, so the
  // exact units consumed by the suffix are recovered by subtracting each
  // chosen layer's units from the running budget.
  result.stage_seconds = best;
  result.per_layer.assign(static_cast<size_t>(num_layers), HybridStrategy());
  result.per_layer_recompute.assign(static_cast<size_t>(num_layers), 0);
  int e = budget_units;
  int s = best_s;
  for (int l = num_layers - 1; l >= 0; --l) {
    const LayerOption& option = option_list[static_cast<size_t>(s)];
    result.per_layer[static_cast<size_t>(l)] =
        candidates[static_cast<size_t>(option.strategy_index)];
    result.per_layer_recompute[static_cast<size_t>(l)] =
        option.recompute ? 1 : 0;
    result.resident_memory_bytes +=
        static_cast<int64_t>(
            units[static_cast<size_t>(l)][static_cast<size_t>(s)]) *
        gran;
    if (l > 0) {
      const int sp =
          parent[static_cast<size_t>(l) * row + idx(e, s)];
      GALVATRON_CHECK_GE(sp, 0);
      e -= units[static_cast<size_t>(l)][static_cast<size_t>(s)];
      s = sp;
    }
  }
  return result;
}

Result<DpSearchResult> BruteForceSearch(
    const CostEstimator& estimator, const ModelSpec& model, int first_layer,
    int num_layers, const std::vector<HybridStrategy>& candidates,
    int stage_first_device, int batch_per_group, int micro_batches,
    int64_t memory_budget, DpSearchOptions options,
    SharedCostCache* shared_cache) {
  if (num_layers < 1 || candidates.empty()) {
    return Status::InvalidArgument("empty search");
  }
  if (options.memory_granularity <= 0) {
    return Status::InvalidArgument("memory granularity must be positive");
  }
  // Same option expansion as DpSearch: strategies, then (optionally) their
  // checkpointed variants.
  const std::vector<LayerOption> option_list = ExpandOptions(
      static_cast<int>(candidates.size()), options.allow_recompute);
  const int num_candidates = static_cast<int>(option_list.size());
  // Matches DpSearch's quantized accounting exactly so tests can compare.
  const int64_t gran = options.memory_granularity;

  RunCostCache cache(&estimator, &model, &candidates, stage_first_device,
                     batch_per_group, micro_batches,
                     /*resident_micro_batches=*/-1, shared_cache);
  int64_t max_transient = 0;
  std::vector<std::vector<int>> units(
      static_cast<size_t>(num_layers),
      std::vector<int>(static_cast<size_t>(num_candidates), 0));
  std::vector<std::vector<double>> seconds(
      static_cast<size_t>(num_layers),
      std::vector<double>(static_cast<size_t>(num_candidates), kInf));
  for (int l = 0; l < num_layers; ++l) {
    for (int s = 0; s < num_candidates; ++s) {
      const LayerOption& option = option_list[static_cast<size_t>(s)];
      GALVATRON_ASSIGN_OR_RETURN(
          LayerCost cost, cache.Layer(first_layer + l, option.strategy_index,
                                      option.recompute));
      max_transient =
          std::max(max_transient, 2 * cost.transient_memory_bytes);
      units[static_cast<size_t>(l)][static_cast<size_t>(s)] =
          static_cast<int>((cost.resident_memory_bytes + gran / 2) / gran);
      seconds[static_cast<size_t>(l)][static_cast<size_t>(s)] =
          cost.IterationSeconds(micro_batches, estimator.options());
    }
  }
  const int64_t effective_budget = memory_budget - max_transient;
  // CeilDiv, exactly like DpSearch::Run: flooring here would admit one
  // granule less than the DP at budgets that straddle a granule boundary,
  // making the two searchers disagree at marginal budgets.
  const int budget_units =
      effective_budget > 0 ? static_cast<int>(CeilDiv(effective_budget, gran))
                           : -1;
  if (budget_units < 0) {
    return Status::Infeasible("memory budget below transient headroom");
  }

  DpSearchResult best;
  best.stage_seconds = kInf;
  std::vector<int> assignment(static_cast<size_t>(num_layers), 0);
  std::vector<int> best_assignment;

  // Depth-first enumeration with cost/memory pruning. The >= prune keeps
  // the first optimum in option order — the lexicographically smallest
  // assignment, mirroring the DP's lowest-index tie-breaking.
  std::function<Status(int, int, double)> recurse =
      [&](int l, int used, double cost) -> Status {
    if (cost >= best.stage_seconds) return Status::OK();  // prune
    if (l == num_layers) {
      best.stage_seconds = cost;
      best_assignment = assignment;
      return Status::OK();
    }
    for (int s = 0; s < num_candidates; ++s) {
      const int o = units[static_cast<size_t>(l)][static_cast<size_t>(s)];
      if (used + o > budget_units) continue;
      double step = seconds[static_cast<size_t>(l)][static_cast<size_t>(s)];
      if (l > 0) {
        const int prev_option = assignment[static_cast<size_t>(l) - 1];
        auto r = cache.TransformSeconds(
            first_layer + l,
            option_list[static_cast<size_t>(prev_option)].strategy_index,
            option_list[static_cast<size_t>(s)].strategy_index);
        if (!r.ok()) return r.status();
        step += *r;
      }
      assignment[static_cast<size_t>(l)] = s;
      GALVATRON_RETURN_IF_ERROR(recurse(l + 1, used + o, cost + step));
    }
    return Status::OK();
  };
  GALVATRON_RETURN_IF_ERROR(recurse(0, 0, 0.0));

  if (best_assignment.empty()) {
    return Status::Infeasible("no assignment fits the budget");
  }
  for (int l = 0; l < num_layers; ++l) {
    const int s = best_assignment[static_cast<size_t>(l)];
    const LayerOption& option = option_list[static_cast<size_t>(s)];
    best.per_layer.push_back(
        candidates[static_cast<size_t>(option.strategy_index)]);
    best.per_layer_recompute.push_back(option.recompute ? 1 : 0);
    best.resident_memory_bytes +=
        static_cast<int64_t>(
            units[static_cast<size_t>(l)][static_cast<size_t>(s)]) *
        gran;
  }
  return best;
}

}  // namespace galvatron
