#include "search/dp_search.h"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "parallel/transformation.h"
#include "util/alloc_counter.h"
#include "util/logging.h"
#include "util/math_util.h"
#include "util/string_util.h"

namespace galvatron {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Per-Run L1 over the sweep-wide SharedCostCache. At construction it
/// interns the run's layer signatures, candidate strategy texts and block
/// fingerprints (once per Run, not once per lookup), dedupes the layer
/// range to its distinct signatures, and then serves:
///
/// - per-layer costs from a flat slot array indexed by
///   (distinct signature, strategy, recompute) — repeated identical
///   Transformer blocks resolve without hashing anything;
/// - transformation matrices built once per distinct
///   (predecessor-signature, successor-signature) boundary and shared by
///   every repeated identical block boundary of the run.
///
/// First touches fall through to the shared cache (which memoizes across
/// Runs, stages, configurations and threads) with pre-interned integer
/// keys; only a shared-cache miss reaches the estimator.
class RunCostCache {
 public:
  RunCostCache(const CostEstimator* estimator, const ModelSpec* model,
               const std::vector<HybridStrategy>* candidates, int first_layer,
               int num_layers, int stage_first_device, int batch_per_group,
               int micro_batches, int resident_micro_batches,
               SharedCostCache* shared)
      : model_(model),
        candidates_(candidates),
        first_layer_(first_layer),
        stage_first_device_(stage_first_device),
        batch_per_group_(batch_per_group),
        micro_batches_(micro_batches),
        resident_micro_batches_(resident_micro_batches),
        shared_(shared) {
    if (shared_ == nullptr) {
      owned_ = std::make_unique<SharedCostCache>(estimator, model);
      shared_ = owned_.get();
    }
    mb_size_ = static_cast<int>(CeilDiv(batch_per_group_, micro_batches_));
    num_strategies_ = static_cast<int>(candidates_->size());
    strategy_ids_.reserve(candidates_->size());
    fp_ids_.reserve(candidates_->size());
    for (const HybridStrategy& s : *candidates_) {
      strategy_ids_.push_back(shared_->InternStrategy(s));
      fp_ids_.push_back(shared_->InternFingerprint(
          stage_first_device_, s.TotalDegree() > 0 ? s.TotalDegree() : 1));
    }
    // Dedupe the layer range to distinct signatures: a 24-layer model with
    // one repeated block shape costs one slot row, not 24.
    local_sig_.resize(static_cast<size_t>(num_layers));
    std::unordered_map<std::string, int> sig_to_local;
    for (int l = 0; l < num_layers; ++l) {
      const std::string& sig = model_->layer(first_layer + l).signature();
      auto [it, inserted] = sig_to_local.emplace(
          sig, static_cast<int>(shared_sig_ids_.size()));
      if (inserted) shared_sig_ids_.push_back(shared_->Intern(sig));
      local_sig_[static_cast<size_t>(l)] = it->second;
    }
    layer_slots_.resize(shared_sig_ids_.size() *
                        static_cast<size_t>(num_strategies_) * 2);
  }

  /// c(l, s) pieces; slotted by (distinct signature, strategy, recompute).
  Result<LayerCost> Layer(int layer_index, int strategy_index,
                          bool recompute = false) {
    const int sig = local_sig_[static_cast<size_t>(layer_index - first_layer_)];
    const size_t slot =
        (static_cast<size_t>(sig) * static_cast<size_t>(num_strategies_) +
         static_cast<size_t>(strategy_index)) *
            2 +
        (recompute ? 1 : 0);
    if (layer_slots_[slot].has_value()) return *layer_slots_[slot];
    LayerCostKey key;
    key.layer_sig = shared_sig_ids_[static_cast<size_t>(sig)];
    key.strategy = strategy_ids_[static_cast<size_t>(strategy_index)];
    key.fingerprint = fp_ids_[static_cast<size_t>(strategy_index)];
    key.batch_per_group = batch_per_group_;
    key.micro_batches = micro_batches_;
    key.resident_micro_batches = resident_micro_batches_;
    key.recompute = recompute ? 1 : 0;
    GALVATRON_ASSIGN_OR_RETURN(
        LayerCost cost,
        shared_->Layer(key, layer_index,
                       (*candidates_)[static_cast<size_t>(strategy_index)],
                       stage_first_device_));
    layer_slots_[slot] = cost;
    return cost;
  }

  /// R(l, s_prev, s): Slice-Gather between layer_index-1 and layer_index,
  /// applied forward + backward per micro-batch, for candidate STRATEGY
  /// indices. One element of the boundary's matrix, filled lazily (the
  /// brute-force searcher probes single elements).
  Result<double> TransformSeconds(int layer_index, int prev_strategy,
                                  int strategy) {
    Boundary& boundary = BoundaryFor(layer_index);
    const size_t e = static_cast<size_t>(prev_strategy) *
                         static_cast<size_t>(num_strategies_) +
                     static_cast<size_t>(strategy);
    if (!boundary.filled[e]) {
      GALVATRON_RETURN_IF_ERROR(
          FillElement(boundary, layer_index, prev_strategy, strategy));
    }
    return boundary.r[e];
  }

  /// The full R matrix of the boundary entering `layer_index`, indexed by
  /// (prev strategy * num_strategies + strategy). Built once per distinct
  /// (predecessor, successor) signature pair per Run — the repeated
  /// identical block boundaries of a Transformer stack all share one
  /// matrix. The pointer stays valid for this cache's lifetime.
  Result<const std::vector<double>*> BoundaryMatrix(int layer_index) {
    Boundary& boundary = BoundaryFor(layer_index);
    if (!boundary.complete) {
      for (int sp = 0; sp < num_strategies_; ++sp) {
        for (int s = 0; s < num_strategies_; ++s) {
          if (!boundary.filled[static_cast<size_t>(sp) *
                                   static_cast<size_t>(num_strategies_) +
                               static_cast<size_t>(s)]) {
            GALVATRON_RETURN_IF_ERROR(
                FillElement(boundary, layer_index, sp, s));
          }
        }
      }
      boundary.complete = true;
    }
    return &boundary.r;
  }

  const CostEstimator& estimator() const { return shared_->estimator(); }

 private:
  struct Boundary {
    std::vector<double> r;        // scaled seconds, strategy-pair indexed
    std::vector<uint8_t> filled;  // per-element fill flags
    bool complete = false;
  };

  Boundary& BoundaryFor(int layer_index) {
    const int l = layer_index - first_layer_;
    const std::pair<int, int> key(local_sig_[static_cast<size_t>(l - 1)],
                                  local_sig_[static_cast<size_t>(l)]);
    auto [it, inserted] =
        boundary_index_.emplace(key, static_cast<int>(boundaries_.size()));
    if (inserted) {
      // Deque-like stability is not needed: no Boundary reference is held
      // across a BoundaryFor call.
      boundaries_.emplace_back(std::make_unique<Boundary>());
      Boundary& b = *boundaries_.back();
      const size_t n = static_cast<size_t>(num_strategies_) *
                       static_cast<size_t>(num_strategies_);
      b.r.assign(n, 0.0);
      b.filled.assign(n, 0);
    }
    return *boundaries_[static_cast<size_t>(it->second)];
  }

  Status FillElement(Boundary& boundary, int layer_index, int prev_strategy,
                     int strategy) {
    const int l = layer_index - first_layer_;
    TransformCostKey key;
    key.prev_sig = shared_sig_ids_[static_cast<size_t>(
        local_sig_[static_cast<size_t>(l - 1)])];
    key.next_sig =
        shared_sig_ids_[static_cast<size_t>(local_sig_[static_cast<size_t>(l)])];
    // Keyed by transformation CLASS, not strategy identity: equal
    // (degree, batch-split) pairs share one estimator call (the
    // ComputeTransformationCost contract; see transformation.h).
    key.prev_strategy =
        TransformClassOf((*candidates_)[static_cast<size_t>(prev_strategy)]);
    key.next_strategy =
        TransformClassOf((*candidates_)[static_cast<size_t>(strategy)]);
    key.fingerprint = fp_ids_[static_cast<size_t>(prev_strategy)];
    key.mb_size = mb_size_;
    GALVATRON_ASSIGN_OR_RETURN(
        double once,
        shared_->TransformSeconds(
            key, layer_index,
            (*candidates_)[static_cast<size_t>(prev_strategy)],
            (*candidates_)[static_cast<size_t>(strategy)],
            stage_first_device_));
    const size_t e = static_cast<size_t>(prev_strategy) *
                         static_cast<size_t>(num_strategies_) +
                     static_cast<size_t>(strategy);
    boundary.r[e] = 2.0 * micro_batches_ * once;
    boundary.filled[e] = 1;
    return Status::OK();
  }

  const ModelSpec* model_;
  const std::vector<HybridStrategy>* candidates_;
  int first_layer_;
  int stage_first_device_;
  int batch_per_group_;
  int micro_batches_;
  int resident_micro_batches_;
  int mb_size_ = 1;
  int num_strategies_ = 0;

  SharedCostCache* shared_;
  std::unique_ptr<SharedCostCache> owned_;

  std::vector<int32_t> strategy_ids_;   // per candidate
  std::vector<int32_t> fp_ids_;         // per candidate
  std::vector<int> local_sig_;          // per layer in range -> distinct id
  std::vector<int32_t> shared_sig_ids_; // distinct id -> shared intern id

  std::vector<std::optional<LayerCost>> layer_slots_;
  std::map<std::pair<int, int>, int> boundary_index_;
  std::vector<std::unique_ptr<Boundary>> boundaries_;
};

/// The per-layer option space: every candidate strategy as-is, then
/// (when allow_recompute) every strategy's checkpointed variant. The order
/// is a convention, not a table — plain options occupy [0, num_strategies)
/// and recompute variants [num_strategies, 2 * num_strategies), so ties
/// preferring the lower option index never let a recompute variant
/// displace an equal-cost plain strategy, and option decoding is two
/// inlined expressions instead of an allocated LayerOption list.
inline int ExpandedOptionCount(int num_strategies, bool allow_recompute) {
  return allow_recompute ? 2 * num_strategies : num_strategies;
}
inline int OptionStrategy(int option, int num_strategies) {
  return option < num_strategies ? option : option - num_strategies;
}
inline bool OptionRecompute(int option, int num_strategies) {
  return option >= num_strategies;
}

/// Everything both kernels need, precomputed identically so they explore
/// the same quantized feasible set. The per-(layer, option) cost tables
/// are flat [layer * num_candidates + option] views into thread-local
/// scratch (see DpScratch) — no nested vectors, no per-Run table
/// allocations once a thread is warm.
struct DpWork {
  int num_candidates = 0;
  int num_strategies = 0;
  int num_layers = 0;
  int first_layer = 0;
  int budget_units = 0;
  int64_t gran = 0;
  int micro_batches = 0;
  // Quantized resident memory and scalar cost per (layer, option);
  // infeasible options (estimator errors other than OOM propagate) get
  // +inf seconds.
  const int32_t* units = nullptr;
  const double* seconds = nullptr;
};

/// Polled between layer columns: a serving deadline that expires mid-DP
/// stops the kernel within one column instead of finishing the table.
bool CancelRequested(const std::function<bool()>* cancel) {
  return cancel != nullptr && *cancel && (*cancel)();
}

/// Reusable per-thread workspace of the sparse kernel. Every buffer keeps
/// its capacity across Runs, so a warm thread's Run performs no heap
/// allocations on the DP path: the cost tables, the merge slots, the
/// touched list, the frontier arrays and the cache key all reuse prior
/// capacity. DpSearch::Run is const and thread-safe; the scratch is
/// thread-local, never shared.
struct DpScratch {
  // Flat cost tables [layer * num_candidates + option].
  std::vector<int32_t> units;
  std::vector<double> seconds;
  // Merge slots, lazily reset via generation stamps (see
  // BuildSparseFrontiers). slot_cost/slot_parent hold garbage from prior
  // generations by design — reads are gated on slot_gen.
  std::vector<double> slot_cost;
  std::vector<int32_t> slot_parent;
  std::vector<uint32_t> slot_gen;
  uint32_t generation = 0;
  std::vector<int32_t> touched;
  // Frontier columns under construction, structure-of-arrays (the layout
  // DpFrontierEntry stores — a cold publish is three flat copies).
  std::vector<int32_t> bp_units;
  std::vector<double> bp_cost;
  std::vector<int32_t> bp_parent;
  std::vector<DpColumnSpan> spans;
  // Transformation-class grouping and the per-class combined frontiers of
  // one boundary (see BuildSparseFrontiers): class_of maps a strategy to
  // its class, class_rep holds one representative strategy per class, and
  // the w_* arrays are the class frontiers' own arena, rebuilt per layer.
  std::vector<int32_t> class_of;
  std::vector<int32_t> class_words;
  std::vector<int32_t> class_rep;
  std::vector<uint8_t> class_used;
  std::vector<DpColumnSpan> class_spans;
  std::vector<int32_t> w_units;
  std::vector<double> w_cost;
  std::vector<int32_t> w_parent;
  // Frontier-cache key scratch and the signature-id memo in front of
  // DpFrontierCache::Intern, keyed by the cache's serial so meeting a
  // different cache instance drops the stale ids.
  DpFrontierKey key;
  std::vector<int32_t> distinct_spans;
  uint64_t intern_serial = 0;
  std::unordered_map<std::string, int32_t> intern_ids;
};

DpScratch& ScratchForThisThread() {
  thread_local DpScratch scratch;
  return scratch;
}

int32_t InternSignature(DpFrontierCache* cache, DpScratch& scratch,
                        const std::string& sig) {
  if (scratch.intern_serial != cache->serial()) {
    scratch.intern_ids.clear();
    scratch.intern_serial = cache->serial();
  }
  auto it = scratch.intern_ids.find(sig);
  if (it != scratch.intern_ids.end()) return it->second;
  const int32_t id = cache->Intern(sig);
  scratch.intern_ids.emplace(sig, id);
  return id;
}

/// Builds the cache key of one sparse Run into scratch.key: everything that
/// shapes the frontiers except the memory budget (model/cluster/estimator
/// identity is the cache owner's contract — see DpFrontierCache).
///
/// Two deliberate generalizations over the raw Run arguments widen sharing
/// without losing exactness:
///
/// - The layer range appends as a run-length encoding of layer-SIGNATURE
///   ids, not as (first_layer, num_layers): per-layer and transformation
///   costs are memoized by signature (the SharedCostCache contract), so two
///   ranges with the same signature sequence build identical frontiers.
///   Every pipeline stage of a uniform Transformer stack collapses to one
///   encoding.
/// - The stage's position appends as the block FINGERPRINT of each distinct
///   candidate footprint (per topology level: -1 when
///   [first_device, first_device + span) sits inside one level block, else
///   first_device mod the level span), not as stage_first_device: all cost
///   lookups depend on the device block only through this fingerprint
///   (SharedCostCache::BlockFingerprint), so stages whose blocks see the
///   same links at every group shape — e.g. all P stages of an even split
///   across uniform islands — share one key and therefore one cold DP run
///   per sweep.
void BuildFrontierKey(DpScratch& scratch, DpFrontierCache* cache,
                      const ModelSpec& model, const ClusterSpec& cluster,
                      const std::vector<HybridStrategy>& candidates,
                      int first_layer, int num_layers, int stage_first_device,
                      int batch_per_group, int micro_batches,
                      int resident_micro_batches, int64_t gran,
                      bool allow_recompute) {
  DpFrontierKey& key = scratch.key;
  key.Clear();
  key.Append(0);  // tag: structural (1 is reserved for string-packed keys)
  key.Append(batch_per_group);
  key.Append(micro_batches);
  key.Append(resident_micro_batches);
  key.Append(static_cast<int32_t>(gran & 0xffffffff));
  key.Append(static_cast<int32_t>(gran >> 32));
  key.Append(allow_recompute ? 1 : 0);
  key.Append(num_layers);

  // Layer signatures, run-length encoded; count first.
  const size_t run_count_pos = key.words.size();
  key.Append(0);
  int32_t num_runs = 0;
  int32_t run_sig = -1;
  int32_t run_len = 0;
  for (int l = 0; l < num_layers; ++l) {
    const int32_t sig = InternSignature(
        cache, scratch, model.layer(first_layer + l).signature());
    if (sig == run_sig) {
      ++run_len;
      continue;
    }
    if (run_len > 0) {
      key.Append(run_sig);
      key.Append(run_len);
      ++num_runs;
    }
    run_sig = sig;
    run_len = 1;
  }
  if (run_len > 0) {
    key.Append(run_sig);
    key.Append(run_len);
    ++num_runs;
  }
  key.words[run_count_pos] = num_runs;

  // Candidates, structurally: equal level lists <=> equal cost behavior.
  key.Append(static_cast<int32_t>(candidates.size()));
  for (const HybridStrategy& s : candidates) {
    key.Append(s.num_levels());
    for (const ParallelComponent& level : s.levels()) {
      key.Append((static_cast<int32_t>(level.dim) << 16) | level.degree);
    }
  }

  // Block fingerprints of the distinct candidate footprints (ascending).
  std::vector<int32_t>& spans = scratch.distinct_spans;
  spans.clear();
  for (const HybridStrategy& s : candidates) {
    spans.push_back(s.TotalDegree() > 0 ? s.TotalDegree() : 1);
  }
  std::sort(spans.begin(), spans.end());
  spans.erase(std::unique(spans.begin(), spans.end()), spans.end());
  key.Append(static_cast<int32_t>(spans.size()));
  key.Append(static_cast<int32_t>(cluster.levels().size()));
  for (const int32_t span : spans) {
    key.Append(span);
    for (const TopologyLevel& level : cluster.levels()) {
      const int offset = stage_first_device % level.span;
      key.Append(offset + span <= level.span ? -1 : offset);
    }
  }
  // Heterogeneous or graph-priced clusters: the level fingerprint no longer
  // determines the costs (device throughput and graph contention depend on
  // the absolute position), so the stage position itself joins the key.
  // Homogeneous level-priced clusters keep the positionless key — their
  // cross-stage sharing is exactly why the fingerprint exists.
  if (cluster.topology() != nullptr || !cluster.HasUniformCompute()) {
    key.Append(-2);
    key.Append(stage_first_device);
  }
  key.Finalize();
}

/// The dense reference kernel: sweeps every (budget granule, option) cell.
/// dp[e][s]: min cost of the layers so far using <= e units, last layer on
/// strategy s. parent[l][e][s]: the previous layer's option index. This is
/// the executable specification — it always materializes per_layer with
/// direct copying reconstruction, which the sparse kernel's index-based
/// assembly is checked against byte-for-byte.
Result<DpSearchResult> RunDenseKernel(const DpWork& w, RunCostCache& cache,
                                      const std::vector<HybridStrategy>&
                                          candidates,
                                      int64_t memory_budget,
                                      const std::function<bool()>* cancel) {
  const int num_candidates = w.num_candidates;
  const int num_layers = w.num_layers;
  const int budget_units = w.budget_units;
  DpSearchResult result;

  const size_t row = static_cast<size_t>(budget_units + 1) *
                     static_cast<size_t>(num_candidates);
  std::vector<double> prev_dp(row, kInf);
  std::vector<double> cur_dp(row, kInf);
  std::vector<int16_t> parent(static_cast<size_t>(num_layers) * row, -1);
  auto idx = [&](int e, int s) {
    return static_cast<size_t>(e) * static_cast<size_t>(num_candidates) +
           static_cast<size_t>(s);
  };
  auto cell = [&](int l, int s) {
    return static_cast<size_t>(l) * static_cast<size_t>(num_candidates) +
           static_cast<size_t>(s);
  };

  // Layer 0: no transformation, no predecessor. Options whose seconds are
  // +inf never seed a state (and are not counted) — matching the skip the
  // l>=1 loop applies.
  for (int s = 0; s < num_candidates; ++s) {
    const double c = w.seconds[cell(0, s)];
    if (c == kInf) continue;
    const int o = w.units[cell(0, s)];
    for (int e = o; e <= budget_units; ++e) {
      if (c < prev_dp[idx(e, s)]) {
        prev_dp[idx(e, s)] = c;
      }
    }
    result.states_explored += std::max(0, budget_units - o + 1);
  }

  for (int l = 1; l < num_layers; ++l) {
    if (CancelRequested(cancel)) {
      return Status::Cancelled("per-stage DP cancelled");
    }
    std::fill(cur_dp.begin(), cur_dp.end(), kInf);
    // The boundary's transformation matrix, shared across the run's
    // repeated identical boundaries; indexed by strategy pair (recompute
    // variants share their plain twin's entries).
    GALVATRON_ASSIGN_OR_RETURN(const std::vector<double>* transform,
                               cache.BoundaryMatrix(w.first_layer + l));
    for (int s = 0; s < num_candidates; ++s) {
      const int o = w.units[cell(l, s)];
      const double c = w.seconds[cell(l, s)];
      if (c == kInf) continue;
      const int cs = OptionStrategy(s, w.num_strategies);
      for (int e = o; e <= budget_units; ++e) {
        const int pe = e - o;
        double best = kInf;
        int best_sp = -1;
        // The predecessor argmin compares prior + R; the layer's own cost
        // c is added AFTER the winner is chosen. The sparse kernel's
        // class-combined merge compares candidates at exactly this stage
        // (before + c), so the two kernels agree bit-for-bit even where
        // rounding of the final sum would collapse a strict ordering.
        // Strict < keeps the LOWEST predecessor option index on equal
        // cost: deterministic tie-breaking so the reconstructed plan is
        // byte-stable across runs and thread counts.
        for (int sp = 0; sp < num_candidates; ++sp) {
          const double prior = prev_dp[idx(pe, sp)];
          if (prior == kInf) continue;
          const double candidate =
              prior +
              (*transform)[static_cast<size_t>(
                               OptionStrategy(sp, w.num_strategies)) *
                               static_cast<size_t>(w.num_strategies) +
                           static_cast<size_t>(cs)];
          if (candidate < best) {
            best = candidate;
            best_sp = sp;
          }
        }
        ++result.states_explored;
        if (best < kInf) {
          cur_dp[idx(e, s)] = best + c;
          parent[static_cast<size_t>(l) * row + idx(e, s)] =
              static_cast<int16_t>(best_sp);
        }
      }
    }
    std::swap(prev_dp, cur_dp);
  }

  // Answer: best over strategies at the full budget. Strict < again keeps
  // the lowest option index on ties.
  double best = kInf;
  int best_s = -1;
  for (int s = 0; s < num_candidates; ++s) {
    if (prev_dp[idx(budget_units, s)] < best) {
      best = prev_dp[idx(budget_units, s)];
      best_s = s;
    }
  }
  if (best_s < 0) {
    return Status::Infeasible(StrFormat(
        "no strategy assignment fits %s per device",
        HumanBytes(static_cast<double>(memory_budget)).c_str()));
  }

  // Reconstruct: walk parents backwards. dp uses "<= e" semantics, so the
  // exact units consumed by the suffix are recovered by subtracting each
  // chosen layer's units from the running budget.
  result.stage_seconds = best;
  result.per_layer.assign(static_cast<size_t>(num_layers), HybridStrategy());
  result.per_layer_option.assign(static_cast<size_t>(num_layers), 0);
  result.per_layer_recompute.assign(static_cast<size_t>(num_layers), 0);
  int e = budget_units;
  int s = best_s;
  for (int l = num_layers - 1; l >= 0; --l) {
    const int strategy = OptionStrategy(s, w.num_strategies);
    result.per_layer[static_cast<size_t>(l)] =
        candidates[static_cast<size_t>(strategy)];
    result.per_layer_option[static_cast<size_t>(l)] = strategy;
    result.per_layer_recompute[static_cast<size_t>(l)] =
        OptionRecompute(s, w.num_strategies) ? 1 : 0;
    result.resident_memory_bytes +=
        static_cast<int64_t>(w.units[cell(l, s)]) * w.gran;
    if (l > 0) {
      const int sp = parent[static_cast<size_t>(l) * row + idx(e, s)];
      GALVATRON_CHECK_GE(sp, 0);
      e -= w.units[cell(l, s)];
      s = sp;
    }
  }
  return result;
}

struct SparseStats {
  int64_t breakpoints_emitted = 0;
  int64_t breakpoints_scanned = 0;
  int64_t options_pruned = 0;
};

/// The sparse Pareto-frontier kernel's build phase. Exploits that dp[e][s]
/// is a non-increasing step function of the budget e: each column keeps
/// only its breakpoints, and layer l is computed from layer l-1's
/// frontiers combined per transformation class (bias R(sp, class)), then
/// shifted by the option's units and biased by its layer cost c(l, s).
/// Work scales with the number of DISTINCT cost levels instead of the
/// granule count. The produced columns (written into scratch's
/// structure-of-arrays buffers) yield plans byte-identical to
/// RunDenseKernel — at w.budget_units AND at every smaller budget (the
/// prefix property AnswerFromFrontiers and the frontier cache rely on).
Result<SparseStats> BuildSparseFrontiers(
    const DpWork& w, RunCostCache& cache,
    const std::vector<HybridStrategy>& candidates, DpScratch& scratch,
    const std::function<bool()>* cancel) {
  const int num_candidates = w.num_candidates;
  const int num_strategies = w.num_strategies;
  const int num_layers = w.num_layers;
  const int budget_units = w.budget_units;
  SparseStats stats;

  // A recompute variant dominated by its plain twin in BOTH quantized
  // units and seconds can never appear in an optimal assignment: the twin
  // has the same strategy index (so identical R rows and columns), a lower
  // option index (so it wins every exact tie), and a pointwise no-worse
  // column. Dropping the variant preserves byte-identical plans.
  auto cell = [&](int l, int s) {
    return static_cast<size_t>(l) * static_cast<size_t>(num_candidates) +
           static_cast<size_t>(s);
  };
  auto dominated = [&](int l, int s) {
    if (s < num_strategies) return false;  // plain options are never pruned
    const size_t plain = cell(l, s - num_strategies);
    return w.units[cell(l, s)] >= w.units[plain] &&
           w.seconds[cell(l, s)] >= w.seconds[plain];
  };

  // Breakpoint columns live in contiguous structure-of-arrays buffers,
  // addressed by (begin, size) spans per (layer, option): columns are
  // built strictly one at a time, so appends are always at the end, the
  // merge streams each array with unit-stride loads, and warm threads
  // reuse the buffers' capacity outright.
  scratch.bp_units.clear();
  scratch.bp_cost.clear();
  scratch.bp_parent.clear();
  scratch.spans.assign(static_cast<size_t>(num_layers) *
                           static_cast<size_t>(num_candidates),
                       DpColumnSpan{});
  auto span_of = [&](int l, int s) -> DpColumnSpan& {
    return scratch.spans[cell(l, s)];
  };

  // Layer 0: one breakpoint per feasible option — the cost is constant in
  // the budget, so the dense row [o, budget] collapses to a single step.
  for (int s = 0; s < num_candidates; ++s) {
    const double c = w.seconds[cell(0, s)];
    if (c == kInf) continue;
    if (dominated(0, s)) {
      ++stats.options_pruned;
      continue;
    }
    const int o = w.units[cell(0, s)];
    if (o > budget_units) continue;
    DpColumnSpan& span = span_of(0, s);
    span.begin = static_cast<int64_t>(scratch.bp_units.size());
    span.size = 1;
    scratch.bp_units.push_back(o);
    scratch.bp_cost.push_back(c);
    scratch.bp_parent.push_back(-1);
    ++stats.breakpoints_emitted;
  }

  // Merge scratch, shared by every column: per-units best candidate,
  // lazily reset via generation stamps so clearing costs nothing. A column
  // never emits more than one breakpoint per distinct units value, and the
  // one it emits is the (cost, parent)-lexicographic minimum among that
  // units level's candidates — so bucketing candidates by units and
  // keeping the per-bucket minimum replaces a comparison sort of (units,
  // cost, parent) structs with an ordering pass over the touched units.
  const size_t num_slots = static_cast<size_t>(budget_units) + 1;
  if (scratch.slot_gen.size() < num_slots) {
    scratch.slot_cost.resize(num_slots);
    scratch.slot_parent.resize(num_slots);
    scratch.slot_gen.resize(num_slots, 0);
    scratch.touched.resize(num_slots);
  }
  double* const slot_cost = scratch.slot_cost.data();
  int32_t* const slot_parent = scratch.slot_parent.data();
  uint32_t* const slot_gen = scratch.slot_gen.data();
  int32_t* const touched = scratch.touched.data();

  // Per layer, the merge runs in two phases instead of one merge per
  // option. Phase 1 exploits that the bias R[sp][s] depends on s only
  // through its transformation CLASS: the boundary matrix is filled from
  // cache entries keyed by (class(sp), class(s)) (RunCostCache::
  // FillElement), so strategies of equal TransformClassOf hold
  // bitwise-equal matrix columns by construction — and by the
  // ComputeTransformationCost contract (transformation.h) when no shared
  // cache is attached. All predecessor columns are combined ONCE per
  // class into a frontier of lex-minimal (prior + R, sp) pairs. Phase 2
  // derives every option's column from its class frontier by shifting
  // units by o and adding the layer cost c — V_s(e) = W_class(s)(e - o)
  // + c holds exactly, so no second envelope pass is needed. This turns
  // the S columns x S predecessors quadratic merge into K combines + S
  // copies (K = distinct classes, typically the few distinct batch-split
  // degrees).
  //
  // Bit-identity with the dense kernel: both kernels compare predecessor
  // candidates as prior + R (the class frontier's stored cost) and add c
  // only after the argmin, so ordering never depends on how the final sum
  // rounds. The class frontier keeps an entry on equal cost with a lower
  // sp as well — that reproduces the dense lowest-index tie-break at every
  // budget, and duplicate-cost entries after + c are kept deliberately:
  // they mark budgets where the dense parent changes while the value does
  // not.
  // The class grouping is a function of the candidate set alone, so it is
  // computed once per Run, not per boundary.
  scratch.class_of.assign(static_cast<size_t>(num_strategies), -1);
  scratch.class_words.clear();
  scratch.class_rep.clear();
  int num_classes = 0;
  for (int cs = 0; cs < num_strategies; ++cs) {
    const int32_t word = TransformClassOf(candidates[static_cast<size_t>(cs)]);
    int k = 0;
    for (; k < num_classes; ++k) {
      if (scratch.class_words[static_cast<size_t>(k)] == word) break;
    }
    if (k == num_classes) {
      scratch.class_words.push_back(word);
      scratch.class_rep.push_back(cs);
      ++num_classes;
    }
    scratch.class_of[static_cast<size_t>(cs)] = k;
  }

  for (int l = 1; l < num_layers; ++l) {
    if (CancelRequested(cancel)) {
      return Status::Cancelled("per-stage DP cancelled");
    }
    GALVATRON_ASSIGN_OR_RETURN(const std::vector<double>* transform,
                               cache.BoundaryMatrix(w.first_layer + l));
    const double* const m = transform->data();

    // Only classes with at least one admissible option this layer are
    // combined. The admissibility tests mirror phase 2 exactly, but the
    // pruned counter is phase 2's — counting here would double it.
    scratch.class_used.assign(static_cast<size_t>(num_classes), 0);
    for (int s = 0; s < num_candidates; ++s) {
      if (w.seconds[cell(l, s)] == kInf) continue;
      if (dominated(l, s)) continue;
      if (w.units[cell(l, s)] > budget_units) continue;
      scratch.class_used[static_cast<size_t>(
          scratch.class_of[static_cast<size_t>(
              OptionStrategy(s, num_strategies))])] = 1;
    }

    // Phase 1: one combined frontier per used class, into the w_* arena
    // (rebuilt per layer, capacity reused). The main arena is only
    // appended to in phase 2, so raw pointers into it are stable here.
    scratch.w_units.clear();
    scratch.w_cost.clear();
    scratch.w_parent.clear();
    scratch.class_spans.assign(static_cast<size_t>(num_classes),
                               DpColumnSpan{});
    const int32_t* const arena_units = scratch.bp_units.data();
    const double* const arena_cost = scratch.bp_cost.data();
    for (int k = 0; k < num_classes; ++k) {
      if (scratch.class_used[static_cast<size_t>(k)] == 0) continue;
      const int rep = scratch.class_rep[static_cast<size_t>(k)];
      if (scratch.generation == std::numeric_limits<uint32_t>::max()) {
        std::fill(scratch.slot_gen.begin(), scratch.slot_gen.end(), 0);
        scratch.generation = 0;
      }
      const uint32_t gen = ++scratch.generation;
      int tc = 0;
      int32_t min_u = std::numeric_limits<int32_t>::max();
      int32_t max_u = -1;
      for (int sp = 0; sp < num_candidates; ++sp) {
        const DpColumnSpan prev = span_of(l - 1, sp);
        if (prev.size == 0) continue;
        const double r =
            m[static_cast<size_t>(OptionStrategy(sp, num_strategies)) *
                  static_cast<size_t>(num_strategies) +
              static_cast<size_t>(rep)];
        const int32_t* const pu = arena_units + prev.begin;
        const double* const pc = arena_cost + prev.begin;
        stats.breakpoints_scanned += prev.size;
        // Branchless inner loop: no data-dependent branches, so the
        // compiler can unroll/vectorize and the hard-to-predict
        // cost-comparison branch the profile was dominated by is gone.
        //
        // Two invariants make the simplified update exact:
        // - `fresh` forces `better`, so the stale slot_cost read (prior
        //   generations' leftovers, gated off by slot_gen) never affects
        //   the outcome;
        // - sp strictly ascends and each u appears at most once per sp
        //   (units are unique within a frontier), so an equal-cost
        //   candidate can never carry a LOWER parent than the slot —
        //   the dense tie-break needs no equality arm here.
        for (int64_t i = 0; i < prev.size; ++i) {
          const int32_t u = pu[i];
          const double cost = pc[i] + r;
          const bool fresh = slot_gen[u] != gen;
          const bool better = fresh | (cost < slot_cost[u]);
          slot_gen[u] = gen;
          touched[tc] = u;
          tc += fresh;
          slot_cost[u] = better ? cost : slot_cost[u];
          slot_parent[u] = better ? sp : slot_parent[u];
          min_u = u < min_u ? u : min_u;
          max_u = u > max_u ? u : max_u;
        }
      }

      // Lower envelope over ascending units: a units level extends the
      // class frontier iff its best candidate strictly improves the
      // running best cost, or matches it through a lower predecessor
      // option index — the latter reproduces the dense kernel's
      // lowest-index tie-break at every budget, not just where the cost
      // changes.
      DpColumnSpan& out = scratch.class_spans[static_cast<size_t>(k)];
      out.begin = static_cast<int64_t>(scratch.w_units.size());
      double best_cost = kInf;
      int32_t best_parent = std::numeric_limits<int32_t>::max();
      auto emit = [&](int32_t u) {
        const double cost = slot_cost[u];
        const int32_t parent = slot_parent[u];
        if (cost < best_cost ||
            (cost == best_cost && parent < best_parent)) {
          best_cost = cost;
          best_parent = parent;
          scratch.w_units.push_back(u);
          scratch.w_cost.push_back(cost);
          scratch.w_parent.push_back(parent);
        }
      };
      if (tc > 0) {
        // Ascending order, two ways: when the touched units are dense in
        // [min_u, max_u], sweeping the range and testing generation stamps
        // is branch-friendlier and cheaper than sorting; a sparse spread
        // falls back to sorting the touched list.
        if (static_cast<int64_t>(max_u) - min_u <
            static_cast<int64_t>(tc) * 4) {
          for (int32_t u = min_u; u <= max_u; ++u) {
            if (slot_gen[u] == gen) emit(u);
          }
        } else {
          std::sort(touched, touched + tc);
          for (int i = 0; i < tc; ++i) emit(touched[i]);
        }
      }
      out.size = static_cast<int64_t>(scratch.w_units.size()) - out.begin;
    }

    // Phase 2: every option's column is its class frontier, shifted by the
    // option's units and biased by its layer cost. The over-budget tail is
    // one upper_bound (units ascend strictly within a frontier).
    for (int s = 0; s < num_candidates; ++s) {
      const double c = w.seconds[cell(l, s)];
      if (c == kInf) continue;
      if (dominated(l, s)) {
        ++stats.options_pruned;
        continue;
      }
      const int o = w.units[cell(l, s)];
      if (o > budget_units) continue;
      const DpColumnSpan klass = scratch.class_spans[static_cast<size_t>(
          scratch.class_of[static_cast<size_t>(
              OptionStrategy(s, num_strategies))])];
      const int32_t* const wu = scratch.w_units.data() + klass.begin;
      const double* const wc = scratch.w_cost.data() + klass.begin;
      const int32_t* const wp = scratch.w_parent.data() + klass.begin;
      const int64_t cut =
          std::upper_bound(wu, wu + klass.size, budget_units - o) - wu;
      DpColumnSpan& out = span_of(l, s);
      out.begin = static_cast<int64_t>(scratch.bp_units.size());
      out.size = cut;
      for (int64_t i = 0; i < cut; ++i) {
        scratch.bp_units.push_back(wu[i] + o);
        scratch.bp_cost.push_back(wc[i] + c);
        scratch.bp_parent.push_back(wp[i]);
      }
      stats.breakpoints_emitted += cut;
    }
  }
  return stats;
}

/// A read-only view over built frontier columns — either this thread's
/// scratch (cold run) or a cached DpFrontierEntry (warm hit); both store
/// the same structure-of-arrays layout.
struct FrontierView {
  const int32_t* bp_units = nullptr;
  const double* bp_cost = nullptr;
  const int32_t* bp_parent = nullptr;
  const DpColumnSpan* spans = nullptr;
  const int32_t* units = nullptr;  // flat [layer * num_candidates + option]
  int num_layers = 0;
  int num_strategies = 0;
  int num_candidates = 0;
};

/// Extracts the optimal assignment at `budget_units` from built frontier
/// columns. `budget_units` may be SMALLER than the budget the columns were
/// built at: truncating a Pareto column to units <= U is identical to
/// building it at U directly (no merge decision at a level ever depends on
/// a higher level), so the answer — costs, parents, tie-breaks — is
/// byte-identical to a cold run at `budget_units`. This one routine serves
/// both the cold path (budget == build budget, where upper_bound lands on
/// the last breakpoint) and frontier-cache warm hits at near-miss budgets.
///
/// Assembly is index-based: the walk down the (breakpoint, parent) chain
/// records candidate INDICES into per_layer_option; no HybridStrategy is
/// copied here. MaterializeDpSearchResult turns the indices into the
/// per_layer vector for the results a caller actually commits.
Result<DpSearchResult> AnswerFromFrontiers(const FrontierView& v, int64_t gran,
                                           int budget_units,
                                           int64_t memory_budget) {
  const int num_candidates = v.num_candidates;
  const int num_layers = v.num_layers;
  auto cell = [&](int l, int s) {
    return static_cast<size_t>(l) * static_cast<size_t>(num_candidates) +
           static_cast<size_t>(s);
  };
  // Arena index of the last breakpoint with units <= e, or -1 when even
  // the column's cheapest step is over budget.
  auto active_breakpoint = [&](const DpColumnSpan& f, int e) -> int64_t {
    const int32_t* begin = v.bp_units + f.begin;
    const int32_t* it = std::upper_bound(begin, begin + f.size, e);
    return it == begin ? -1 : f.begin + (it - begin) - 1;
  };

  // Answer: best final-layer column at the budget. Strict < keeps the
  // lowest option index on ties, like the dense kernel.
  DpSearchResult result;
  double best = kInf;
  int best_s = -1;
  for (int s = 0; s < num_candidates; ++s) {
    const DpColumnSpan f = v.spans[cell(num_layers - 1, s)];
    if (f.size == 0) continue;
    const int64_t bp = active_breakpoint(f, budget_units);
    if (bp < 0) continue;
    if (v.bp_cost[bp] < best) {
      best = v.bp_cost[bp];
      best_s = s;
    }
  }
  if (best_s < 0) {
    return Status::Infeasible(StrFormat(
        "no strategy assignment fits %s per device",
        HumanBytes(static_cast<double>(memory_budget)).c_str()));
  }

  // Reconstruct: at each layer, the breakpoint active at the remaining
  // budget names the predecessor option; subtracting the layer's units
  // recovers the exact budget the prefix ran under ("<= e" semantics).
  result.stage_seconds = best;
  result.per_layer_option.assign(static_cast<size_t>(num_layers), 0);
  result.per_layer_recompute.assign(static_cast<size_t>(num_layers), 0);
  int e = budget_units;
  int s = best_s;
  for (int l = num_layers - 1; l >= 0; --l) {
    result.per_layer_option[static_cast<size_t>(l)] =
        OptionStrategy(s, v.num_strategies);
    result.per_layer_recompute[static_cast<size_t>(l)] =
        OptionRecompute(s, v.num_strategies) ? 1 : 0;
    result.resident_memory_bytes +=
        static_cast<int64_t>(v.units[cell(l, s)]) * gran;
    if (l > 0) {
      // The chosen breakpoint was generated from a predecessor breakpoint
      // at exactly (units - this layer's units), so the walk never falls
      // off a column's front even at truncated budgets.
      const int64_t bp = active_breakpoint(v.spans[cell(l, s)], e);
      GALVATRON_CHECK_GE(bp, 0);
      e -= v.units[cell(l, s)];
      s = v.bp_parent[bp];
    }
  }
  return result;
}

}  // namespace

void MaterializeDpSearchResult(const std::vector<HybridStrategy>& candidates,
                               DpSearchResult* result) {
  result->per_layer.resize(result->per_layer_option.size());
  for (size_t l = 0; l < result->per_layer_option.size(); ++l) {
    result->per_layer[l] =
        candidates[static_cast<size_t>(result->per_layer_option[l])];
  }
}

DpSearch::DpSearch(const CostEstimator* estimator, DpSearchOptions options)
    : estimator_(estimator), options_(options) {
  GALVATRON_CHECK(estimator != nullptr);
  GALVATRON_CHECK_GT(options_.memory_granularity, 0);
}

Result<DpSearchResult> DpSearch::Run(
    const ModelSpec& model, int first_layer, int num_layers,
    const std::vector<HybridStrategy>& candidates, int stage_first_device,
    int batch_per_group, int micro_batches, int64_t memory_budget,
    int resident_micro_batches, SharedCostCache* shared_cache,
    DpFrontierCache* frontier_cache,
    const std::function<bool()>* cancel_check) const {
  const int64_t alloc_start = CurrentThreadAllocCount();
  if (num_layers < 1 || first_layer < 0 ||
      first_layer + num_layers > model.num_layers()) {
    return Status::InvalidArgument("layer range out of bounds");
  }
  if (candidates.empty()) {
    return Status::InvalidArgument("no candidate strategies");
  }
  const int num_strategies = static_cast<int>(candidates.size());
  const int num_candidates =
      ExpandedOptionCount(num_strategies, options_.allow_recompute);
  // The dense kernel's parent table stores int16 option indices; both
  // kernels share the limit so their feasibility envelopes stay identical.
  if (num_candidates > std::numeric_limits<int16_t>::max()) {
    return Status::InvalidArgument(StrFormat(
        "%d expanded options exceed the DP parent table's int16 range (%d)",
        num_candidates,
        static_cast<int>(std::numeric_limits<int16_t>::max())));
  }
  DpScratch& scratch = ScratchForThisThread();

  // Warm path: a cached frontier for this signature at a budget >= the
  // requested one answers without touching the estimator or the kernel —
  // the repeated-near-miss serving workload (identical request, different
  // memory budget) and the repeated identical pipeline stages of one sweep
  // skip the entire cold pipeline.
  const bool cacheable = frontier_cache != nullptr && options_.use_sparse_dp;
  if (cacheable) {
    BuildFrontierKey(scratch, frontier_cache, model, estimator_->cluster(),
                     candidates, first_layer, num_layers, stage_first_device,
                     batch_per_group, micro_batches, resident_micro_batches,
                     options_.memory_granularity, options_.allow_recompute);
    std::shared_ptr<const DpFrontierEntry> entry =
        frontier_cache->Lookup(scratch.key);
    if (entry != nullptr) {
      GALVATRON_CHECK_EQ(entry->num_candidates, num_candidates);
      GALVATRON_CHECK_EQ(entry->num_strategies, num_strategies);
      const int64_t effective = memory_budget - entry->max_transient;
      const int budget_units =
          effective > 0
              ? static_cast<int>(CeilDiv(effective, options_.memory_granularity))
              : -1;
      if (budget_units < 0) {
        frontier_cache->CountHit();
        return Status::Infeasible("memory budget below transient headroom");
      }
      if (budget_units <= entry->budget_units) {
        frontier_cache->CountHit();
        FrontierView view;
        view.bp_units = entry->bp_units.data();
        view.bp_cost = entry->bp_cost.data();
        view.bp_parent = entry->bp_parent.data();
        view.spans = entry->spans.data();
        view.units = entry->units.data();
        view.num_layers = entry->num_layers;
        view.num_strategies = entry->num_strategies;
        view.num_candidates = entry->num_candidates;
        Result<DpSearchResult> out = AnswerFromFrontiers(
            view, options_.memory_granularity, budget_units, memory_budget);
        if (out.ok()) {
          out->frontier_hit = true;
          if (options_.materialize_plans) {
            MaterializeDpSearchResult(candidates, &*out);
          }
          out->allocations = CurrentThreadAllocCount() - alloc_start;
        }
        return out;
      }
      // Budget grew past the cached frontier: fall through to a cold run,
      // which republishes the wider entry.
    }
    frontier_cache->CountMiss();
  }

  RunCostCache cache(estimator_, &model, &candidates, first_layer, num_layers,
                     stage_first_device, batch_per_group, micro_batches,
                     resident_micro_batches, shared_cache);

  // Reserve headroom for the largest transient (SDP weight gather) any
  // candidate might need; the remaining budget is then purely additive in
  // per-layer resident memory, which is what the DP quantizes.
  int64_t max_transient = 0;
  const size_t table = static_cast<size_t>(num_layers) *
                       static_cast<size_t>(num_candidates);
  scratch.units.assign(table, 0);
  scratch.seconds.assign(table, kInf);
  for (int l = 0; l < num_layers; ++l) {
    if (CancelRequested(cancel_check)) {
      return Status::Cancelled("per-stage search cancelled");
    }
    for (int s = 0; s < num_candidates; ++s) {
      GALVATRON_ASSIGN_OR_RETURN(
          LayerCost cost,
          cache.Layer(first_layer + l, OptionStrategy(s, num_strategies),
                      OptionRecompute(s, num_strategies)));
      // x2: ZeRO-3 prefetch holds two layers' gathered weights.
      max_transient = std::max(max_transient, 2 * cost.transient_memory_bytes);
      const size_t e = static_cast<size_t>(l) *
                           static_cast<size_t>(num_candidates) +
                       static_cast<size_t>(s);
      scratch.units[e] = static_cast<int32_t>(
          (cost.resident_memory_bytes + options_.memory_granularity / 2) /
          options_.memory_granularity);
      scratch.seconds[e] =
          cost.IterationSeconds(micro_batches, estimator_->effective_options());
    }
  }
  const int64_t effective_budget = memory_budget - max_transient;
  // Round the budget up: marginal acceptances are re-validated exactly by
  // the optimizer's EstimatePlan pass, so optimism here is safe while
  // pessimism would shrink the search space below the baselines'.
  // BruteForceSearch applies the same CeilDiv so both searchers explore
  // the same feasible set at granule-straddling budgets.
  const int budget_units =
      effective_budget > 0
          ? static_cast<int>(
                CeilDiv(effective_budget, options_.memory_granularity))
          : -1;
  if (budget_units < 0) {
    return Status::Infeasible("memory budget below transient headroom");
  }

  DpWork w;
  w.num_candidates = num_candidates;
  w.num_strategies = num_strategies;
  w.num_layers = num_layers;
  w.first_layer = first_layer;
  w.budget_units = budget_units;
  w.gran = options_.memory_granularity;
  w.micro_batches = micro_batches;
  w.units = scratch.units.data();
  w.seconds = scratch.seconds.data();

  if (!options_.use_sparse_dp) {
    Result<DpSearchResult> out =
        RunDenseKernel(w, cache, candidates, memory_budget, cancel_check);
    if (out.ok()) out->allocations = CurrentThreadAllocCount() - alloc_start;
    return out;
  }

  GALVATRON_ASSIGN_OR_RETURN(
      SparseStats stats,
      BuildSparseFrontiers(w, cache, candidates, scratch, cancel_check));
  if (cacheable) {
    // Publish even when the answer below is Infeasible: the frontiers are
    // valid for every budget up to w.budget_units, and a warm infeasible
    // replay is as cheap as a warm feasible one.
    auto entry = std::make_shared<DpFrontierEntry>();
    entry->budget_units = w.budget_units;
    entry->max_transient = max_transient;
    entry->num_layers = num_layers;
    entry->num_strategies = num_strategies;
    entry->num_candidates = num_candidates;
    entry->units = scratch.units;
    entry->bp_units = scratch.bp_units;
    entry->bp_cost = scratch.bp_cost;
    entry->bp_parent = scratch.bp_parent;
    entry->spans = scratch.spans;
    entry->options_pruned = stats.options_pruned;
    frontier_cache->Insert(scratch.key, std::move(entry));
  }
  FrontierView view;
  view.bp_units = scratch.bp_units.data();
  view.bp_cost = scratch.bp_cost.data();
  view.bp_parent = scratch.bp_parent.data();
  view.spans = scratch.spans.data();
  view.units = scratch.units.data();
  view.num_layers = num_layers;
  view.num_strategies = num_strategies;
  view.num_candidates = num_candidates;
  Result<DpSearchResult> out =
      AnswerFromFrontiers(view, w.gran, w.budget_units, memory_budget);
  if (out.ok()) {
    out->states_explored = stats.breakpoints_emitted;
    out->breakpoints_emitted = stats.breakpoints_emitted;
    out->breakpoints_scanned = stats.breakpoints_scanned;
    out->options_pruned = stats.options_pruned;
    if (options_.materialize_plans) {
      MaterializeDpSearchResult(candidates, &*out);
    }
    out->allocations = CurrentThreadAllocCount() - alloc_start;
  }
  return out;
}

Result<DpSearchResult> BruteForceSearch(
    const CostEstimator& estimator, const ModelSpec& model, int first_layer,
    int num_layers, const std::vector<HybridStrategy>& candidates,
    int stage_first_device, int batch_per_group, int micro_batches,
    int64_t memory_budget, DpSearchOptions options,
    SharedCostCache* shared_cache) {
  if (num_layers < 1 || candidates.empty()) {
    return Status::InvalidArgument("empty search");
  }
  if (options.memory_granularity <= 0) {
    return Status::InvalidArgument("memory granularity must be positive");
  }
  if (first_layer < 0 || first_layer + num_layers > model.num_layers()) {
    return Status::InvalidArgument("layer range out of bounds");
  }
  // Same option expansion as DpSearch: strategies, then (optionally) their
  // checkpointed variants.
  const int num_strategies = static_cast<int>(candidates.size());
  const int num_candidates =
      ExpandedOptionCount(num_strategies, options.allow_recompute);
  // Matches DpSearch's quantized accounting exactly so tests can compare.
  const int64_t gran = options.memory_granularity;

  RunCostCache cache(&estimator, &model, &candidates, first_layer, num_layers,
                     stage_first_device, batch_per_group, micro_batches,
                     /*resident_micro_batches=*/-1, shared_cache);
  int64_t max_transient = 0;
  const size_t table = static_cast<size_t>(num_layers) *
                       static_cast<size_t>(num_candidates);
  std::vector<int32_t> units(table, 0);
  std::vector<double> seconds(table, kInf);
  auto cell = [&](int l, int s) {
    return static_cast<size_t>(l) * static_cast<size_t>(num_candidates) +
           static_cast<size_t>(s);
  };
  for (int l = 0; l < num_layers; ++l) {
    for (int s = 0; s < num_candidates; ++s) {
      GALVATRON_ASSIGN_OR_RETURN(
          LayerCost cost,
          cache.Layer(first_layer + l, OptionStrategy(s, num_strategies),
                      OptionRecompute(s, num_strategies)));
      max_transient =
          std::max(max_transient, 2 * cost.transient_memory_bytes);
      units[cell(l, s)] = static_cast<int32_t>(
          (cost.resident_memory_bytes + gran / 2) / gran);
      seconds[cell(l, s)] =
          cost.IterationSeconds(micro_batches, estimator.effective_options());
    }
  }
  const int64_t effective_budget = memory_budget - max_transient;
  // CeilDiv, exactly like DpSearch::Run: flooring here would admit one
  // granule less than the DP at budgets that straddle a granule boundary,
  // making the two searchers disagree at marginal budgets.
  const int budget_units =
      effective_budget > 0 ? static_cast<int>(CeilDiv(effective_budget, gran))
                           : -1;
  if (budget_units < 0) {
    return Status::Infeasible("memory budget below transient headroom");
  }

  DpSearchResult best;
  best.stage_seconds = kInf;
  std::vector<int> assignment(static_cast<size_t>(num_layers), 0);
  std::vector<int> best_assignment;

  // Depth-first enumeration with cost/memory pruning. The >= prune keeps
  // the first optimum in option order — the lexicographically smallest
  // assignment, mirroring the DP's lowest-index tie-breaking.
  std::function<Status(int, int, double)> recurse =
      [&](int l, int used, double cost) -> Status {
    if (cost >= best.stage_seconds) return Status::OK();  // prune
    if (l == num_layers) {
      best.stage_seconds = cost;
      best_assignment = assignment;
      return Status::OK();
    }
    for (int s = 0; s < num_candidates; ++s) {
      const int o = units[cell(l, s)];
      if (used + o > budget_units) continue;
      double step = seconds[cell(l, s)];
      if (l > 0) {
        const int prev_option = assignment[static_cast<size_t>(l) - 1];
        auto r = cache.TransformSeconds(
            first_layer + l, OptionStrategy(prev_option, num_strategies),
            OptionStrategy(s, num_strategies));
        if (!r.ok()) return r.status();
        step += *r;
      }
      assignment[static_cast<size_t>(l)] = s;
      GALVATRON_RETURN_IF_ERROR(recurse(l + 1, used + o, cost + step));
    }
    return Status::OK();
  };
  GALVATRON_RETURN_IF_ERROR(recurse(0, 0, 0.0));

  if (best_assignment.empty()) {
    return Status::Infeasible("no assignment fits the budget");
  }
  for (int l = 0; l < num_layers; ++l) {
    const int s = best_assignment[static_cast<size_t>(l)];
    const int strategy = OptionStrategy(s, num_strategies);
    best.per_layer.push_back(candidates[static_cast<size_t>(strategy)]);
    best.per_layer_option.push_back(strategy);
    best.per_layer_recompute.push_back(
        OptionRecompute(s, num_strategies) ? 1 : 0);
    best.resident_memory_bytes +=
        static_cast<int64_t>(units[cell(l, s)]) * gran;
  }
  return best;
}

}  // namespace galvatron
