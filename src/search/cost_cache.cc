#include "search/cost_cache.h"

#include <functional>

#include "parallel/transformation.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace galvatron {

SharedCostCache::SharedCostCache(const CostEstimator* estimator,
                                 const ModelSpec* model)
    : estimator_(estimator), model_(model) {
  GALVATRON_CHECK(estimator != nullptr);
  GALVATRON_CHECK(model != nullptr);
}

SharedCostCache::Shard& SharedCostCache::ShardFor(const std::string& key) {
  const size_t h = std::hash<std::string>{}(key);
  return shards_[h % static_cast<size_t>(kNumShards)];
}

std::string SharedCostCache::BlockFingerprint(const ClusterSpec& cluster,
                                              int first_device, int span) {
  // Per hierarchy level, the block either lies inside one level block
  // ("u") or crosses boundaries whose in-block positions are determined by
  // first_device mod the level span. Equal fingerprints => the blocks see
  // the same link at every group shape a strategy can form.
  std::string fp;
  for (const TopologyLevel& level : cluster.levels()) {
    const int offset = first_device % level.span;
    if (offset + span <= level.span) {
      fp += "u;";
    } else {
      fp += StrFormat("o%d;", offset);
    }
  }
  return fp;
}

Result<LayerCost> SharedCostCache::Layer(int layer_index,
                                         const HybridStrategy& strategy,
                                         int stage_first_device,
                                         int batch_per_group,
                                         int micro_batches, bool recompute,
                                         int resident_micro_batches) {
  const LayerSpec& layer = model_->layer(layer_index);
  const std::string key = StrFormat(
      "%s|%s|%d|%d|%d|%d|%s", layer.signature().c_str(),
      strategy.ToString().c_str(), recompute ? 1 : 0, batch_per_group,
      micro_batches, resident_micro_batches,
      BlockFingerprint(estimator_->cluster(), stage_first_device,
                       strategy.TotalDegree() > 0 ? strategy.TotalDegree() : 1)
          .c_str());
  Shard& shard = ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.layers.find(key);
    if (it != shard.layers.end()) {
      layer_hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  layer_misses_.fetch_add(1, std::memory_order_relaxed);
  GALVATRON_ASSIGN_OR_RETURN(
      LayerCost cost,
      estimator_->EstimateLayer(layer, strategy, stage_first_device,
                                batch_per_group, micro_batches, recompute,
                                resident_micro_batches));
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.layers.emplace(key, cost);
  }
  return cost;
}

Result<double> SharedCostCache::TransformSeconds(
    int layer_index, const HybridStrategy& prev_strategy,
    const HybridStrategy& next_strategy, int stage_first_device,
    int mb_size) {
  GALVATRON_CHECK_GT(layer_index, 0);
  const LayerSpec& prev_layer = model_->layer(layer_index - 1);
  const LayerSpec& next_layer = model_->layer(layer_index);
  const std::string key = StrFormat(
      "%s>%s|%s>%s|%d|%s", prev_layer.signature().c_str(),
      next_layer.signature().c_str(), prev_strategy.ToString().c_str(),
      next_strategy.ToString().c_str(), mb_size,
      BlockFingerprint(estimator_->cluster(), stage_first_device,
                       prev_strategy.TotalDegree() > 0
                           ? prev_strategy.TotalDegree()
                           : 1)
          .c_str());
  Shard& shard = ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.transforms.find(key);
    if (it != shard.transforms.end()) {
      transform_hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  transform_misses_.fetch_add(1, std::memory_order_relaxed);
  GALVATRON_ASSIGN_OR_RETURN(
      TransformationCost cost,
      ComputeTransformationCost(prev_layer, next_layer, prev_strategy,
                                next_strategy, stage_first_device, mb_size,
                                estimator_->cluster()));
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.transforms.emplace(key, cost.seconds);
  }
  return cost.seconds;
}

CostCacheStats SharedCostCache::stats() const {
  CostCacheStats stats;
  stats.layer_hits = layer_hits_.load(std::memory_order_relaxed);
  stats.layer_misses = layer_misses_.load(std::memory_order_relaxed);
  stats.transform_hits = transform_hits_.load(std::memory_order_relaxed);
  stats.transform_misses = transform_misses_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace galvatron
