#include "search/cost_cache.h"

#include <functional>
#include <vector>

#include "parallel/transformation.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace galvatron {

namespace {

/// SplitMix64-style mixing of one more word into a running hash. Cheap,
/// well-dispersed, and deterministic across platforms.
inline size_t HashCombine(size_t h, uint64_t v) {
  v += 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ULL;
  v = (v ^ (v >> 27)) * 0x94d049bb133111ebULL;
  return static_cast<size_t>(v ^ (v >> 31)) ^ h;
}

/// Thread-local read-through L1 in front of the shared shards. Direct-
/// mapped (one slot per hash bucket, newest wins): no probing, no
/// eviction bookkeeping, and a warm sweep hits the same few hundred keys
/// over and over. Entries are validated against the full key, so a
/// collision costs one shard lookup, never a wrong value.
constexpr size_t kThreadCacheSlots = 1024;  // power of two

struct ThreadCache {
  uint64_t serial = 0;  // which SharedCostCache these entries belong to

  std::vector<LayerCostKey> layer_keys;
  std::vector<LayerCost> layer_values;
  std::vector<uint8_t> layer_valid;

  std::vector<TransformCostKey> transform_keys;
  std::vector<double> transform_values;
  std::vector<uint8_t> transform_valid;

  std::unordered_map<std::string, int32_t> interned;
};

/// The calling thread's L1 for the cache with this serial. Serials are
/// process-unique, so a mismatch (first use, or the thread moved to a
/// different cache) resets the L1 instead of ever serving stale entries.
ThreadCache& LocalCacheFor(uint64_t serial) {
  thread_local ThreadCache cache;
  if (cache.serial != serial) {
    cache.serial = serial;
    cache.layer_keys.assign(kThreadCacheSlots, LayerCostKey());
    cache.layer_values.assign(kThreadCacheSlots, LayerCost());
    cache.layer_valid.assign(kThreadCacheSlots, 0);
    cache.transform_keys.assign(kThreadCacheSlots, TransformCostKey());
    cache.transform_values.assign(kThreadCacheSlots, 0.0);
    cache.transform_valid.assign(kThreadCacheSlots, 0);
    cache.interned.clear();
  }
  return cache;
}

uint64_t NextCacheSerial() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

size_t LayerCostKeyHash::operator()(const LayerCostKey& k) const {
  size_t h = HashCombine(0, (static_cast<uint64_t>(
                                 static_cast<uint32_t>(k.layer_sig))
                             << 32) |
                                static_cast<uint32_t>(k.strategy));
  h = HashCombine(h, (static_cast<uint64_t>(
                          static_cast<uint32_t>(k.fingerprint))
                      << 32) |
                         static_cast<uint32_t>(k.batch_per_group));
  h = HashCombine(h, (static_cast<uint64_t>(
                          static_cast<uint32_t>(k.micro_batches))
                      << 32) |
                         static_cast<uint32_t>(k.resident_micro_batches));
  return HashCombine(h, static_cast<uint32_t>(k.recompute));
}

void PlanCostKey::Finalize() {
  // Two words per mixing round: plan keys run ~100 words and every sweep
  // evaluation builds one, so the hash is on the warm-serving hot path.
  size_t h = HashCombine(0, words.size());
  size_t i = 0;
  for (; i + 1 < words.size(); i += 2) {
    h = HashCombine(
        h, (static_cast<uint64_t>(static_cast<uint32_t>(words[i])) << 32) |
               static_cast<uint32_t>(words[i + 1]));
  }
  if (i < words.size()) {
    h = HashCombine(h, static_cast<uint32_t>(words[i]));
  }
  hash = h;
}

size_t TransformCostKeyHash::operator()(const TransformCostKey& k) const {
  size_t h = HashCombine(
      0, (static_cast<uint64_t>(static_cast<uint32_t>(k.prev_sig)) << 32) |
             static_cast<uint32_t>(k.next_sig));
  h = HashCombine(h, (static_cast<uint64_t>(
                          static_cast<uint32_t>(k.prev_strategy))
                      << 32) |
                         static_cast<uint32_t>(k.next_strategy));
  return HashCombine(h, (static_cast<uint64_t>(
                             static_cast<uint32_t>(k.fingerprint))
                         << 32) |
                            static_cast<uint32_t>(k.mb_size));
}

SharedCostCache::SharedCostCache(const CostEstimator* estimator,
                                 const ModelSpec* model)
    : estimator_(estimator), model_(model), serial_(NextCacheSerial()) {
  GALVATRON_CHECK(estimator != nullptr);
  GALVATRON_CHECK(model != nullptr);
}

std::string SharedCostCache::BlockFingerprint(const ClusterSpec& cluster,
                                              int first_device, int span) {
  // Per hierarchy level, the block either lies inside one level block
  // ("u") or crosses boundaries whose in-block positions are determined by
  // first_device mod the level span. Equal fingerprints => the blocks see
  // the same link at every group shape a strategy can form.
  std::string fp;
  for (const TopologyLevel& level : cluster.levels()) {
    const int offset = first_device % level.span;
    if (offset + span <= level.span) {
      fp += "u;";
    } else {
      fp += StrFormat("o%d;", offset);
    }
  }
  // Mixed-generation or graph-priced clusters: costs depend on the absolute
  // device position (per-range throughput, graph contention), not just the
  // level offsets — pin the fingerprint to the position so distinct blocks
  // never alias. Homogeneous level-priced clusters keep sharing.
  if (cluster.topology() != nullptr || !cluster.HasUniformCompute()) {
    fp += StrFormat("@%d;", first_device);
  }
  return fp;
}

int32_t SharedCostCache::Intern(const std::string& text) {
  ThreadCache& local = LocalCacheFor(serial_);
  auto cached = local.interned.find(text);
  if (cached != local.interned.end()) return cached->second;

  InternShard& shard =
      intern_shards_[std::hash<std::string>{}(text) %
                     static_cast<size_t>(kNumInternShards)];
  int32_t id;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto [it, inserted] = shard.ids.emplace(text, 0);
    if (inserted) {
      it->second = next_intern_id_.fetch_add(1, std::memory_order_relaxed);
    }
    id = it->second;
  }
  local.interned.emplace(text, id);
  return id;
}

int32_t SharedCostCache::InternSignature(int layer_index) {
  return Intern(model_->layer(layer_index).signature());
}

int32_t SharedCostCache::InternStrategy(const HybridStrategy& strategy) {
  return Intern(strategy.ToString());
}

int32_t SharedCostCache::InternFingerprint(int first_device, int span) {
  return Intern(
      BlockFingerprint(estimator_->cluster(), first_device, span));
}

Result<LayerCost> SharedCostCache::Layer(const LayerCostKey& key,
                                         int layer_index,
                                         const HybridStrategy& strategy,
                                         int stage_first_device) {
  const size_t hash = LayerCostKeyHash{}(key);
  ThreadCache& local = LocalCacheFor(serial_);
  const size_t slot = hash & (kThreadCacheSlots - 1);
  if (local.layer_valid[slot] && local.layer_keys[slot] == key) {
    layer_hits_.fetch_add(1, std::memory_order_relaxed);
    return local.layer_values[slot];
  }
  Shard& shard = ShardFor(hash);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.layers.find(key);
    if (it != shard.layers.end()) {
      layer_hits_.fetch_add(1, std::memory_order_relaxed);
      local.layer_keys[slot] = key;
      local.layer_values[slot] = it->second;
      local.layer_valid[slot] = 1;
      return it->second;
    }
  }
  layer_misses_.fetch_add(1, std::memory_order_relaxed);
  GALVATRON_ASSIGN_OR_RETURN(
      LayerCost cost,
      estimator_->EstimateLayer(model_->layer(layer_index), strategy,
                                stage_first_device, key.batch_per_group,
                                key.micro_batches, key.recompute != 0,
                                key.resident_micro_batches));
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.layers.emplace(key, cost);
  }
  local.layer_keys[slot] = key;
  local.layer_values[slot] = cost;
  local.layer_valid[slot] = 1;
  return cost;
}

Result<LayerCost> SharedCostCache::Layer(int layer_index,
                                         const HybridStrategy& strategy,
                                         int stage_first_device,
                                         int batch_per_group,
                                         int micro_batches, bool recompute,
                                         int resident_micro_batches) {
  LayerCostKey key;
  key.layer_sig = InternSignature(layer_index);
  key.strategy = InternStrategy(strategy);
  key.fingerprint = InternFingerprint(
      stage_first_device,
      strategy.TotalDegree() > 0 ? strategy.TotalDegree() : 1);
  key.batch_per_group = batch_per_group;
  key.micro_batches = micro_batches;
  key.resident_micro_batches = resident_micro_batches;
  key.recompute = recompute ? 1 : 0;
  return Layer(key, layer_index, strategy, stage_first_device);
}

Result<double> SharedCostCache::TransformSeconds(
    const TransformCostKey& key, int layer_index,
    const HybridStrategy& prev_strategy, const HybridStrategy& next_strategy,
    int stage_first_device) {
  GALVATRON_CHECK_GT(layer_index, 0);
  const size_t hash = TransformCostKeyHash{}(key);
  ThreadCache& local = LocalCacheFor(serial_);
  const size_t slot = hash & (kThreadCacheSlots - 1);
  if (local.transform_valid[slot] && local.transform_keys[slot] == key) {
    transform_hits_.fetch_add(1, std::memory_order_relaxed);
    return local.transform_values[slot];
  }
  Shard& shard = ShardFor(hash);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.transforms.find(key);
    if (it != shard.transforms.end()) {
      transform_hits_.fetch_add(1, std::memory_order_relaxed);
      local.transform_keys[slot] = key;
      local.transform_values[slot] = it->second;
      local.transform_valid[slot] = 1;
      return it->second;
    }
  }
  transform_misses_.fetch_add(1, std::memory_order_relaxed);
  GALVATRON_ASSIGN_OR_RETURN(
      TransformationCost cost,
      ComputeTransformationCost(model_->layer(layer_index - 1),
                                model_->layer(layer_index), prev_strategy,
                                next_strategy, stage_first_device,
                                key.mb_size, estimator_->cluster()));
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.transforms.emplace(key, cost.seconds);
  }
  local.transform_keys[slot] = key;
  local.transform_values[slot] = cost.seconds;
  local.transform_valid[slot] = 1;
  return cost.seconds;
}

Result<double> SharedCostCache::TransformSeconds(
    int layer_index, const HybridStrategy& prev_strategy,
    const HybridStrategy& next_strategy, int stage_first_device,
    int mb_size) {
  GALVATRON_CHECK_GT(layer_index, 0);
  TransformCostKey key;
  key.prev_sig = InternSignature(layer_index - 1);
  key.next_sig = InternSignature(layer_index);
  key.prev_strategy = TransformClassOf(prev_strategy);
  key.next_strategy = TransformClassOf(next_strategy);
  key.fingerprint = InternFingerprint(
      stage_first_device,
      prev_strategy.TotalDegree() > 0 ? prev_strategy.TotalDegree() : 1);
  key.mb_size = mb_size;
  return TransformSeconds(key, layer_index, prev_strategy, next_strategy,
                          stage_first_device);
}

std::shared_ptr<const PlanCost> SharedCostCache::LookupPlan(
    const PlanCostKey& key) {
  Shard& shard = ShardFor(key.hash);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.plans.find(key);
    if (it != shard.plans.end()) {
      plan_hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  plan_misses_.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

std::shared_ptr<const PlanCost> SharedCostCache::InsertPlan(PlanCostKey key,
                                                            PlanCost cost) {
  Shard& shard = ShardFor(key.hash);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto [it, inserted] = shard.plans.try_emplace(std::move(key), nullptr);
  if (inserted) {
    it->second = std::make_shared<const PlanCost>(std::move(cost));
  }
  return it->second;
}

CostCacheStats SharedCostCache::stats() const {
  CostCacheStats stats;
  stats.layer_hits = layer_hits_.load(std::memory_order_relaxed);
  stats.layer_misses = layer_misses_.load(std::memory_order_relaxed);
  stats.transform_hits = transform_hits_.load(std::memory_order_relaxed);
  stats.transform_misses = transform_misses_.load(std::memory_order_relaxed);
  stats.plan_hits = plan_hits_.load(std::memory_order_relaxed);
  stats.plan_misses = plan_misses_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace galvatron
