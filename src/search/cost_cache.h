#ifndef GALVATRON_SEARCH_COST_CACHE_H_
#define GALVATRON_SEARCH_COST_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "estimator/cost_estimator.h"
#include "ir/model.h"
#include "parallel/strategy.h"
#include "util/result.h"

namespace galvatron {

/// Hit/miss counters of a SharedCostCache (SearchStats reports the sums).
struct CostCacheStats {
  int64_t layer_hits = 0;
  int64_t layer_misses = 0;
  int64_t transform_hits = 0;
  int64_t transform_misses = 0;
  /// Whole-plan memo counters (LookupPlan/InsertPlan). Kept out of
  /// hits()/misses(), which count per-layer estimator lookups only.
  int64_t plan_hits = 0;
  int64_t plan_misses = 0;

  int64_t hits() const { return layer_hits + transform_hits; }
  int64_t misses() const { return layer_misses + transform_misses; }
};

/// Interned composite key of a memoized per-layer cost c(l, s). The
/// string-valued parts (layer signature, strategy text, block fingerprint)
/// are interned to dense ids via SharedCostCache::Intern* — once per
/// DpSearch::Run, not once per lookup — so the hot path hashes a handful of
/// ints instead of formatting and hashing a composite string.
struct LayerCostKey {
  int32_t layer_sig = -1;
  int32_t strategy = -1;
  int32_t fingerprint = -1;
  int32_t batch_per_group = 0;
  int32_t micro_batches = 0;
  int32_t resident_micro_batches = 0;
  int32_t recompute = 0;

  friend bool operator==(const LayerCostKey&, const LayerCostKey&) = default;
};

/// Interned key of a memoized transformation cost R(L, S_prev, S_next).
/// Carries BOTH boundary layers' signatures — the predecessor alone aliases
/// boundaries whose successor layers differ in input shape. The strategies
/// enter NOT by identity but as their transformation class
/// (TotalDegree << 16) | BatchSplit — ComputeTransformationCost's
/// documented contract is that R depends on nothing else of a strategy, so
/// the S^2 strategy pairs of a candidate set collapse to the few distinct
/// (degree, batch-split) class pairs and the estimator runs once per class.
struct TransformCostKey {
  int32_t prev_sig = -1;
  int32_t next_sig = -1;
  int32_t prev_strategy = -1;  // transformation class of S_prev (see above)
  int32_t next_strategy = -1;  // transformation class of S_next
  int32_t fingerprint = -1;
  int32_t mb_size = 0;

  friend bool operator==(const TransformCostKey&,
                         const TransformCostKey&) = default;
};

/// The transformation class word TransformCostKey stores per strategy.
inline int32_t TransformClassOf(const HybridStrategy& s) {
  const int32_t degree = s.TotalDegree() > 0 ? s.TotalDegree() : 1;
  return (degree << 16) | static_cast<int32_t>(s.BatchSplit());
}

struct LayerCostKeyHash {
  size_t operator()(const LayerCostKey& k) const;
};
struct TransformCostKeyHash {
  size_t operator()(const TransformCostKey& k) const;
};

/// Key of a memoized whole-plan cost (CostEstimator::EstimatePlan with the
/// memory check deferred — see LookupPlan). A flat word vector: schedule,
/// batch, micro-batch count, then per stage its device/layer extent and
/// its layer strategies as maximal runs of (run length, level count +
/// recompute bit, one (dim, degree) word per level) — encoded
/// STRUCTURALLY rather than as interned string ids: formatting the
/// strategy string per layer per plan dominated the warm sweep when
/// profiled. The model and cluster topology
/// are fixed per cache, so they are not part of the key; the memory budget
/// is deliberately NOT part of the key either — plan costs never depend
/// on it.
struct PlanCostKey {
  std::vector<int32_t> words;
  /// Hash of `words`, filled by Finalize(). Stored so a lookup hashes the
  /// key once (at build) instead of once per probe, and mismatched keys
  /// reject on one integer compare.
  size_t hash = 0;

  /// Computes `hash` from `words`. Call after the last word is pushed and
  /// before the key is used.
  void Finalize();

  friend bool operator==(const PlanCostKey& a, const PlanCostKey& b) {
    return a.hash == b.hash && a.words == b.words;
  }
};

struct PlanCostKeyHash {
  size_t operator()(const PlanCostKey& k) const { return k.hash; }
};

/// A sweep-wide, thread-safe memoization layer over the cost estimator.
///
/// One instance lives for a whole Optimizer::Optimize call and is shared by
/// every DpSearch::Run it issues (across PP degrees, batches, micro-batch
/// counts, pipeline stages, worker threads and co-optimization rounds), so
/// a repeated Transformer block is estimated once per distinct
///   (layer signature, strategy, recompute, batch_per_group, micro_batches,
///    resident_micro_batches)
/// combination per sweep instead of once per Run. Transformation costs
/// R(L, S_i, S_j) are keyed by BOTH boundary layers' signatures — keying on
/// the predecessor alone aliases boundaries whose successor layers differ
/// in input shape.
///
/// Keys additionally carry a topology fingerprint of the stage's device
/// block, so stages whose blocks are topologically isomorphic (all aligned
/// equal-span blocks of the hierarchical clusters here) share entries while
/// blocks that straddle interconnect boundaries differently do not.
///
/// The table is keyed by interned ids (LayerCostKey / TransformCostKey) in
/// flat unordered_maps. Callers on the hot path (RunCostCache inside
/// DpSearch::Run) intern the string parts once per Run and pass ready-made
/// keys; the string-based overloads below intern on every call and exist
/// for one-off lookups and tests.
///
/// Thread-safety: all methods may be called concurrently; the table is
/// sharded by key hash, each shard behind its own mutex, the interner is
/// sharded the same way (ids come off a global atomic counter, so equal
/// strings always intern to equal ids but no single mutex serializes every
/// sweep thread), and the estimator is never invoked under a lock.
/// Concurrent misses on one key may estimate it twice; the estimator is
/// deterministic, so both writers store the same value. Estimator errors
/// are returned uncached.
///
/// Hot-path locking: every thread additionally keeps a small thread-local
/// read-through L1 (direct-mapped, keyed by this cache's unique serial) in
/// front of the shards, for both cost lookups and interning. Repeat
/// lookups of warm keys — the overwhelming majority once a sweep is under
/// way — touch no mutex at all; only L1 misses reach a shard, and only
/// shard misses reach the estimator. Hit/miss counters stay exact (every
/// lookup is counted exactly once, via relaxed atomics).
class SharedCostCache {
 public:
  /// `estimator` and `model` must outlive this object, and the estimator's
  /// configuration (options, profile table) must not change while searches
  /// are running against this cache.
  SharedCostCache(const CostEstimator* estimator, const ModelSpec* model);

  SharedCostCache(const SharedCostCache&) = delete;
  SharedCostCache& operator=(const SharedCostCache&) = delete;

  const CostEstimator& estimator() const { return *estimator_; }
  const ModelSpec& model() const { return *model_; }

  /// Interns an arbitrary string to a small integer id, stable for this
  /// cache's lifetime. Equal strings always receive equal ids (distinct
  /// strings distinct ids); the id VALUES depend on interleaving and must
  /// only be compared for equality. Thread-safe and lock-free for strings
  /// this thread has interned before.
  int32_t Intern(const std::string& text);

  /// Convenience interners for the three string-valued key parts.
  int32_t InternSignature(int layer_index);
  int32_t InternStrategy(const HybridStrategy& strategy);
  int32_t InternFingerprint(int first_device, int span);

  /// Memoized c(l, s) with a caller-built interned key. The key must have
  /// been built with this cache's Intern* ids and must describe the same
  /// (layer, strategy, ...) tuple as the explicit arguments.
  Result<LayerCost> Layer(const LayerCostKey& key, int layer_index,
                          const HybridStrategy& strategy,
                          int stage_first_device);

  /// Memoized c(l, s): interns the key parts, then looks up as above.
  Result<LayerCost> Layer(int layer_index, const HybridStrategy& strategy,
                          int stage_first_device, int batch_per_group,
                          int micro_batches, bool recompute,
                          int resident_micro_batches);

  /// Memoized R(L, S_prev, S_next) with a caller-built interned key, for
  /// the boundary entering layer `layer_index` (its predecessor is
  /// layer_index - 1), for ONE application at the key's mb_size. Callers
  /// scale by 2 * micro_batches (forward + mirrored backward, per
  /// micro-batch).
  Result<double> TransformSeconds(const TransformCostKey& key,
                                  int layer_index,
                                  const HybridStrategy& prev_strategy,
                                  const HybridStrategy& next_strategy,
                                  int stage_first_device);

  /// Memoized R: interns the key parts, then looks up as above.
  Result<double> TransformSeconds(int layer_index,
                                  const HybridStrategy& prev_strategy,
                                  const HybridStrategy& next_strategy,
                                  int stage_first_device, int mb_size);

  /// Memoized whole-plan cost, computed with EstimatePlan's per-stage
  /// memory checks DEFERRED (check_memory = false): peaks are recorded but
  /// never compared, so one entry is valid for every memory budget and the
  /// caller re-applies the comparison against its own cluster. Returns the
  /// immutable shared entry on a hit (no deep copy — hot sweeps hit
  /// hundreds of times per run), nullptr on a miss.
  std::shared_ptr<const PlanCost> LookupPlan(const PlanCostKey& key);

  /// Publishes an unchecked plan cost for `key` and returns the stored
  /// entry. Concurrent inserts of one key store the same deterministic
  /// value; the first insert wins and later callers get its entry.
  std::shared_ptr<const PlanCost> InsertPlan(PlanCostKey key, PlanCost cost);

  CostCacheStats stats() const;

  /// Canonical interconnect fingerprint of the device block
  /// [first_device, first_device + span): two blocks with equal
  /// fingerprints see identical link hierarchies, so per-layer and
  /// transformation costs on them are identical.
  static std::string BlockFingerprint(const ClusterSpec& cluster,
                                      int first_device, int span);

 private:
  static constexpr int kNumShards = 16;
  static constexpr int kNumInternShards = 8;

  struct Shard {
    std::mutex mu;
    std::unordered_map<LayerCostKey, LayerCost, LayerCostKeyHash> layers;
    std::unordered_map<TransformCostKey, double, TransformCostKeyHash>
        transforms;
    std::unordered_map<PlanCostKey, std::shared_ptr<const PlanCost>,
                       PlanCostKeyHash>
        plans;
  };

  /// The interner, sharded by string hash like the cost tables. Ids are
  /// drawn from next_intern_id_ under the owning shard's mutex, so equal
  /// strings race to one shard and always resolve to one id.
  struct InternShard {
    std::mutex mu;
    std::unordered_map<std::string, int32_t> ids;
  };

  Shard& ShardFor(size_t hash) {
    return shards_[hash % static_cast<size_t>(kNumShards)];
  }

  const CostEstimator* estimator_;
  const ModelSpec* model_;
  /// Process-unique id of this instance; keys the thread-local L1s so an
  /// entry cached against a destroyed cache can never serve a new one.
  const uint64_t serial_;
  Shard shards_[kNumShards];

  InternShard intern_shards_[kNumInternShards];
  std::atomic<int32_t> next_intern_id_{0};

  std::atomic<int64_t> layer_hits_{0};
  std::atomic<int64_t> layer_misses_{0};
  std::atomic<int64_t> transform_hits_{0};
  std::atomic<int64_t> transform_misses_{0};
  std::atomic<int64_t> plan_hits_{0};
  std::atomic<int64_t> plan_misses_{0};
};

}  // namespace galvatron

#endif  // GALVATRON_SEARCH_COST_CACHE_H_
