#ifndef GALVATRON_SEARCH_COST_CACHE_H_
#define GALVATRON_SEARCH_COST_CACHE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "estimator/cost_estimator.h"
#include "ir/model.h"
#include "parallel/strategy.h"
#include "util/result.h"

namespace galvatron {

/// Hit/miss counters of a SharedCostCache (SearchStats reports the sums).
struct CostCacheStats {
  int64_t layer_hits = 0;
  int64_t layer_misses = 0;
  int64_t transform_hits = 0;
  int64_t transform_misses = 0;

  int64_t hits() const { return layer_hits + transform_hits; }
  int64_t misses() const { return layer_misses + transform_misses; }
};

/// A sweep-wide, thread-safe memoization layer over the cost estimator.
///
/// One instance lives for a whole Optimizer::Optimize call and is shared by
/// every DpSearch::Run it issues (across PP degrees, batches, micro-batch
/// counts, pipeline stages, worker threads and co-optimization rounds), so
/// a repeated Transformer block is estimated once per distinct
///   (layer signature, strategy, recompute, batch_per_group, micro_batches,
///    resident_micro_batches)
/// combination per sweep instead of once per Run. Transformation costs
/// R(L, S_i, S_j) are keyed by BOTH boundary layers' signatures — keying on
/// the predecessor alone aliases boundaries whose successor layers differ
/// in input shape.
///
/// Keys additionally carry a topology fingerprint of the stage's device
/// block, so stages whose blocks are topologically isomorphic (all aligned
/// equal-span blocks of the hierarchical clusters here) share entries while
/// blocks that straddle interconnect boundaries differently do not.
///
/// Thread-safety: Layer/TransformSeconds may be called concurrently; the
/// table is sharded by key hash, each shard behind its own mutex, and the
/// estimator is never invoked under a lock. Concurrent misses on one key
/// may estimate it twice; the estimator is deterministic, so both writers
/// store the same value. Estimator errors are returned uncached.
class SharedCostCache {
 public:
  /// `estimator` and `model` must outlive this object, and the estimator's
  /// configuration (options, profile table) must not change while searches
  /// are running against this cache.
  SharedCostCache(const CostEstimator* estimator, const ModelSpec* model);

  SharedCostCache(const SharedCostCache&) = delete;
  SharedCostCache& operator=(const SharedCostCache&) = delete;

  const CostEstimator& estimator() const { return *estimator_; }
  const ModelSpec& model() const { return *model_; }

  /// Memoized c(l, s): EstimateLayer for model layer `layer_index`.
  Result<LayerCost> Layer(int layer_index, const HybridStrategy& strategy,
                          int stage_first_device, int batch_per_group,
                          int micro_batches, bool recompute,
                          int resident_micro_batches);

  /// Memoized R(L, S_prev, S_next) for the boundary entering layer
  /// `layer_index` (its predecessor is layer_index - 1), for ONE
  /// application at micro-batch size `mb_size`. Callers scale by
  /// 2 * micro_batches (forward + mirrored backward, per micro-batch).
  Result<double> TransformSeconds(int layer_index,
                                  const HybridStrategy& prev_strategy,
                                  const HybridStrategy& next_strategy,
                                  int stage_first_device, int mb_size);

  CostCacheStats stats() const;

  /// Canonical interconnect fingerprint of the device block
  /// [first_device, first_device + span): two blocks with equal
  /// fingerprints see identical link hierarchies, so per-layer and
  /// transformation costs on them are identical.
  static std::string BlockFingerprint(const ClusterSpec& cluster,
                                      int first_device, int span);

 private:
  static constexpr int kNumShards = 16;

  struct Shard {
    std::mutex mu;
    std::unordered_map<std::string, LayerCost> layers;
    std::unordered_map<std::string, double> transforms;
  };

  Shard& ShardFor(const std::string& key);

  const CostEstimator* estimator_;
  const ModelSpec* model_;
  Shard shards_[kNumShards];
  std::atomic<int64_t> layer_hits_{0};
  std::atomic<int64_t> layer_misses_{0};
  std::atomic<int64_t> transform_hits_{0};
  std::atomic<int64_t> transform_misses_{0};
};

}  // namespace galvatron

#endif  // GALVATRON_SEARCH_COST_CACHE_H_
