#ifndef GALVATRON_TESTING_INVARIANT_CHECKS_H_
#define GALVATRON_TESTING_INVARIANT_CHECKS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "testing/fuzz_generators.h"
#include "util/result.h"

namespace galvatron {

/// The eight differential checks (see docs/fuzzing.md):
///   kPlanValidity      — generated plans Validate, render, and their
///                        strategies parse back (generator + plan layer).
///   kSearchEquivalence — DP search == brute force on small instances:
///                        same feasibility verdict, same optimal cost.
///   kMemoryModel       — estimator per-stage peak memory agrees with the
///                        simulator's stage_peak_memory_bytes within a
///                        documented tolerance, and OOM verdicts match
///                        whenever the peaks sit clear of the budget line.
///   kJsonRoundTrip     — PlanToJson -> ParsePlanJson -> PlanToJson is
///                        bit-exact and field-exact, hostile names included.
///   kSpecJsonRoundTrip — ModelSpecToJson / ClusterSpecToJson ->
///                        Parse*SpecJson -> *ToJson is bit-exact and
///                        field-exact over the hostile generators; the
///                        serving wire format rides on these serializers.
///   kTraceConservation — a traced simulation's time attribution conserves:
///                        per stream, Σ(category busy) + idle == makespan
///                        and work + lost == elapsed per task (within
///                        1e-9 x makespan); the critical path tiles
///                        [0, makespan] exactly; and recording the trace
///                        leaves SimMetrics byte-identical to the untraced
///                        run.
///   kTopologyIdentity  — the heterogeneous machinery collapses exactly on
///                        homogeneous inputs: CollectiveLink equals the old
///                        two-endpoint bottleneck on level-priced clusters,
///                        per-range throughput queries match a device-table
///                        scan, the mirror TopologyGraph prices ranges
///                        identically to the levels whenever bandwidths are
///                        outward non-increasing (and latencies
///                        non-decreasing), and whole-plan estimates are
///                        byte-identical legacy-vs-mirror when no
///                        collective sees uplink contention.
///   kCalibrationIdentity — the calibration layer (src/calibrate/) is
///                        invisible until a profile says otherwise: plan
///                        estimates are byte-identical with no profile, an
///                        empty profile and an all-ones identity profile;
///                        randomly generated valid profiles (hostile-float
///                        coefficients included) survive
///                        CalibrationProfileToJson -> Parse -> ToJson
///                        bit-exactly; and on monotone contention-free
///                        hierarchies a profile applies identically to the
///                        level-priced cluster and its mirror-graph twin.
enum class FuzzCheck {
  kPlanValidity,
  kSearchEquivalence,
  kMemoryModel,
  kJsonRoundTrip,
  kSpecJsonRoundTrip,
  kTraceConservation,
  kTopologyIdentity,
  kCalibrationIdentity,
};

inline constexpr int kNumFuzzChecks = 8;

std::string_view FuzzCheckToString(FuzzCheck check);
Result<FuzzCheck> FuzzCheckFromString(const std::string& text);

/// Tolerances and generator knobs shared by all checks.
struct CheckOptions {
  GeneratorOptions generator;
  /// DP vs brute force optimal cost: relative (the two searchers sum the
  /// same per-layer terms in different association orders, so they agree
  /// only to floating-point rounding).
  double cost_rel_tolerance = 1e-9;
  /// Estimator vs simulator peak memory: relative slack on top of the
  /// structural slack of 2x the largest layer transient (the estimator
  /// reserves the ZeRO-3 double-buffered gather for every layer; the
  /// simulator charges the transients it actually schedules).
  double memory_rel_tolerance = 0.02;
};

/// One reproducible failure. `seed` replays the exact iteration through
/// RunCheck; `repro_json` is a self-contained dump (check, seed, detail and
/// the offending plan when one exists) suitable for writing to disk.
struct CheckFailure {
  FuzzCheck check = FuzzCheck::kPlanValidity;
  uint64_t seed = 0;
  std::string detail;
  std::string repro_json;
};

/// The per-iteration seed for (base seed, check, iteration) — a stateless
/// hash, so any reported seed replays its iteration directly via
/// RunCheck(check, seed) without re-running the campaign.
uint64_t MixSeed(uint64_t base_seed, uint64_t check_index, uint64_t iteration);

/// Runs one iteration of `check` with `seed`. Deterministic: same
/// (check, seed, options) always yields the same outcome. Internal errors
/// (a generator or subsystem returning an unexpected Status) are reported
/// as failures, not thrown.
std::optional<CheckFailure> RunCheck(FuzzCheck check, uint64_t seed,
                                     const CheckOptions& options = {});

/// A fuzz campaign: `iterations` per selected check.
struct FuzzOptions {
  uint64_t seed = 1;
  int iterations = 100;
  /// Empty = all eight checks.
  std::vector<FuzzCheck> checks;
  /// Stop collecting per check after this many failures (the campaign
  /// still finishes the other checks).
  int max_failures_per_check = 10;
  CheckOptions check_options;
};

struct FuzzReport {
  int iterations_run = 0;  // total check-iterations executed
  std::vector<CheckFailure> failures;
  bool ok() const { return failures.empty(); }
};

FuzzReport RunFuzz(const FuzzOptions& options);

}  // namespace galvatron

#endif  // GALVATRON_TESTING_INVARIANT_CHECKS_H_
