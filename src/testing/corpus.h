#ifndef GALVATRON_TESTING_CORPUS_H_
#define GALVATRON_TESTING_CORPUS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "testing/invariant_checks.h"

namespace galvatron {

/// One pinned differential-check iteration. Entries are added when a fuzz
/// campaign finds a divergence: the seed that exposed the bug goes here so
/// the fix is regression-locked (it failed before the fix, passes after),
/// plus a handful of ordinary seeds per check that pin current behaviour.
struct CorpusEntry {
  FuzzCheck check;
  uint64_t seed;
  const char* note;
};

/// One pinned raw-JSON case for ParsePlanJson. These cover parser bugs a
/// serialized well-formed plan can never reach (duplicate keys, malformed
/// numbers, hostile literals): before the PR-2 parser fixes every
/// `expect_ok == false` entry parsed successfully.
struct JsonRegression {
  std::string json;
  bool expect_ok;
  const char* note;
};

const std::vector<CorpusEntry>& SeedCorpus();
const std::vector<JsonRegression>& JsonCorpus();

/// Runs the whole fixed corpus: every seed entry through RunCheck, every
/// JSON entry through ParsePlanJson (checking the expected verdict, and for
/// accepted documents that re-serialization is stable). Returns the
/// failures; empty means the corpus is clean.
std::vector<CheckFailure> RunCorpus(const CheckOptions& options = {});

}  // namespace galvatron

#endif  // GALVATRON_TESTING_CORPUS_H_
