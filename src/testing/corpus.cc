#include "testing/corpus.h"

#include <string>

#include "api/plan_io.h"
#include "util/string_util.h"

namespace galvatron {

namespace {

/// A minimal well-formed plan document with `fields` spliced into the top
/// level and `stage_fields` into the single stage, used to build focused
/// malformed variants without repeating the whole schema.
std::string PlanDoc(const std::string& fields,
                    const std::string& stage_fields) {
  return std::string("{") + fields +
         "\"schedule\":\"gpipe\",\"stages\":[{" + stage_fields +
         "\"layers\":[{\"strategy\":\"serial\",\"recompute\":false}]}]}";
}

const char kTopFields[] =
    "\"model\":\"m\",\"global_batch\":4,\"micro_batches\":2,";
const char kStageFields[] =
    "\"first_device\":0,\"num_devices\":1,\"first_layer\":0,"
    "\"num_layers\":1,";

}  // namespace

const std::vector<CorpusEntry>& SeedCorpus() {
  // Seeds are per-iteration seeds (see MixSeed): `galvatron_fuzz
  // --repro=<check>:<seed>` replays any entry directly.
  static const std::vector<CorpusEntry>* const kCorpus =
      new std::vector<CorpusEntry>{
          // Simulator divergences found by the initial memory-model
          // campaign: the comm stream front-ran the pipeline and piled up
          // one gathered SDP weight copy per queued micro-batch (sim peak
          // far above the estimate), and GPipe backwards drained before the
          // stage's own forward flush finished, so a stage never held all
          // m activations (sim peak far below the estimate).
          {FuzzCheck::kMemoryModel, 0x2405ad1d01fc4021ULL,
           "1f1b pp=1 sdp4: unbounded fwd SDP gather prefetch"},
          {FuzzCheck::kMemoryModel, 0x1f539d4a52bb4a82ULL,
           "gpipe 2-stage: backward drain started before the flush"},
          {FuzzCheck::kMemoryModel, 0xb5a0c0596417ed4aULL,
           "memory-model divergence, initial campaign"},
          {FuzzCheck::kMemoryModel, 0xbd76ea7fa35e520bULL,
           "memory-model divergence, initial campaign"},
          {FuzzCheck::kMemoryModel, 0x97e27d083d41145cULL,
           "memory-model divergence, initial campaign"},
          {FuzzCheck::kMemoryModel, 0x77d50cb309cf185eULL,
           "memory-model divergence, initial campaign"},
          {FuzzCheck::kMemoryModel, 0xb2083891facd855aULL,
           "memory-model divergence, initial campaign"},
          {FuzzCheck::kMemoryModel, 0xcf0401d7dab35e9eULL,
           "memory-model divergence, initial campaign"},
          // Round-trips whose generated model names carry control
          // characters the old EscapeJson emitted raw (invalid JSON).
          {FuzzCheck::kJsonRoundTrip, 0xa4ac2c9532a00b10ULL,
           "name with 0x01: old escaper emitted it raw"},
          {FuzzCheck::kJsonRoundTrip, 0x9fca48837d3735e2ULL,
           "name with newline: old escaper emitted it raw"},
          {FuzzCheck::kJsonRoundTrip, 0xdff1456e801b7dfeULL,
           "name with 0x1f: old escaper emitted it raw"},
          {FuzzCheck::kJsonRoundTrip, 0x2cbcfc3437f5979dULL,
           "name with 0x0b: old escaper emitted it raw"},
          // Ordinary pinning seeds so every check keeps fixed-seed
          // coverage in tier-1 even when the random campaign shrinks.
          {FuzzCheck::kPlanValidity, 0x11ULL, "pinning seed"},
          {FuzzCheck::kPlanValidity, 0x12ULL, "pinning seed"},
          {FuzzCheck::kSearchEquivalence, 0x21ULL, "pinning seed"},
          {FuzzCheck::kSearchEquivalence, 0x22ULL, "pinning seed"},
          {FuzzCheck::kMemoryModel, 0x31ULL, "pinning seed"},
          {FuzzCheck::kJsonRoundTrip, 0x41ULL, "pinning seed"},
          // Spec round-trip pins: hostile model names through the spec
          // serializers plus heterogeneous-memory clusters, whose budget
          // runs exercise the WithDeviceMemoryRange rebuild on parse.
          {FuzzCheck::kSpecJsonRoundTrip, 0x51ULL, "pinning seed"},
          {FuzzCheck::kSpecJsonRoundTrip, 0x52ULL, "pinning seed"},
          {FuzzCheck::kSpecJsonRoundTrip, 0x53ULL, "pinning seed"},
          // Trace-conservation pins: traced runs over generated plans must
          // keep per-stream attribution, per-task work+lost decomposition
          // and the back-chained critical path conservation-exact, and the
          // capture must not perturb SimMetrics.
          {FuzzCheck::kTraceConservation, 0x61ULL, "pinning seed"},
          {FuzzCheck::kTraceConservation, 0x62ULL, "pinning seed"},
          {FuzzCheck::kTraceConservation, 0x63ULL, "pinning seed"},
          // Heterogeneous pins: seeds verified to generate mixed-generation,
          // graph-backed (and some heterogeneous-memory) clusters, so every
          // check keeps fixed coverage of the topology-aware paths — graph
          // collective pricing, per-range throughput, island-aware caching,
          // and the topology JSON round-trip.
          {FuzzCheck::kPlanValidity, 0x2dd268fb94a4eb2fULL,
           "8 GPUs, mixed generations + mirror graph + squeezed memory"},
          {FuzzCheck::kSearchEquivalence, 0x33bd0e2ce4d7b693ULL,
           "DP == brute force on a mixed-generation graph-backed cluster"},
          {FuzzCheck::kMemoryModel, 0xe71a2d2744572ab0ULL,
           "estimator vs simulator peaks on a mixed-generation cluster"},
          {FuzzCheck::kSpecJsonRoundTrip, 0x5db9df1f42a391e1ULL,
           "topology + device-generation arrays through the serializers"},
          {FuzzCheck::kTraceConservation, 0x697fd7bb73061b98ULL,
           "traced run on a mixed-generation graph-backed cluster"},
          {FuzzCheck::kTopologyIdentity, 0xf1398b8613733828ULL,
           "8-GPU mixed cluster: graph pricing collapses to level pricing"},
          {FuzzCheck::kTopologyIdentity, 0xdf52c8bbc961610aULL,
           "4-GPU mixed cluster with squeezed memory"},
          // Calibration-identity pins: the no-profile/empty/identity
          // byte-identity contract, hostile-float profile round-trips and
          // the mirror-vs-level application identity keep fixed-seed
          // coverage in tier-1.
          {FuzzCheck::kCalibrationIdentity, 0x71ULL, "pinning seed"},
          {FuzzCheck::kCalibrationIdentity, 0x72ULL, "pinning seed"},
          {FuzzCheck::kCalibrationIdentity, 0x73ULL, "pinning seed"},
          // 1F1B in-flight band: interior stages whose downstream returns
          // backwards fast enough that the stage never stacks a second
          // micro-batch — the simulated peak sits at the one-micro-batch
          // floor, below the estimator's min(m, P-s) bound.
          {FuzzCheck::kMemoryModel, 0x503ca367df272103ULL,
           "1F1B stage holding one micro-batch on a graph-backed cluster"},
          {FuzzCheck::kMemoryModel, 0x94ce0def8cfad5e5ULL,
           "1F1B stage holding one micro-batch under the in-flight bound"},
      };
  return *kCorpus;
}

const std::vector<JsonRegression>& JsonCorpus() {
  static const std::vector<JsonRegression>* const kCorpus =
      new std::vector<JsonRegression>{
          {PlanDoc(kTopFields, kStageFields), true, "minimal valid plan"},
          {PlanDoc("\"model\":\"a\",\"model\":\"b\",\"global_batch\":4,"
                   "\"micro_batches\":2,",
                   kStageFields),
           false, "duplicate key at top level (emplace kept the first)"},
          {PlanDoc(kTopFields,
                   "\"first_device\":0,\"num_devices\":1,\"num_devices\":2,"
                   "\"first_layer\":0,\"num_layers\":1,"),
           false, "duplicate key inside a stage"},
          {PlanDoc("\"model\":\"m\",\"global_batch\":1e,"
                   "\"micro_batches\":1,",
                   kStageFields),
           false, "truncated exponent (atof parsed '1e' as 1)"},
          {PlanDoc("\"model\":\"m\",\"global_batch\":2.5,"
                   "\"micro_batches\":1,",
                   kStageFields),
           false, "non-integral count (old GetInt truncated silently)"},
          {PlanDoc("\"model\":\"m\",\"global_batch\":1e99,"
                   "\"micro_batches\":1,",
                   kStageFields),
           false, "count outside int range (old static_cast was UB)"},
          {PlanDoc("\"model\":\"m\",\"global_batch\":+4,"
                   "\"micro_batches\":1,",
                   kStageFields),
           false, "leading plus sign is not valid JSON"},
          {PlanDoc("\"model\":\"m\",\"global_batch\":08,"
                   "\"micro_batches\":1,",
                   kStageFields),
           false, "leading zero is not valid JSON (strtod accepts it)"},
          {PlanDoc(kTopFields,
                   "\"first_device\":0,\"num_devices\":-1,"
                   "\"first_layer\":0,\"num_layers\":1,"),
           false, "negative num_devices accepted before parse-time bounds"},
          {PlanDoc("\"model\":\"m\",\"global_batch\":0,"
                   "\"micro_batches\":1,",
                   kStageFields),
           false, "zero global_batch rejected at parse time"},
          {PlanDoc("\"model\":\"a\nb\",\"global_batch\":4,"
                   "\"micro_batches\":2,",
                   kStageFields),
           false, "raw control character inside a string literal"},
          {PlanDoc("\"model\":\"a\\u0007b\",\"global_batch\":4,"
                   "\"micro_batches\":2,",
                   kStageFields),
           true, "escaped control character is legal and round-trips"},
          {PlanDoc("\"model\":\"a\\ud800b\",\"global_batch\":4,"
                   "\"micro_batches\":2,",
                   kStageFields),
           false, "lone UTF-16 surrogate escape"},
          {PlanDoc("\"model\":\"a\\uZZ12\",\"global_batch\":4,"
                   "\"micro_batches\":2,",
                   kStageFields),
           false, "non-hex \\u escape"},
      };
  return *kCorpus;
}

std::vector<CheckFailure> RunCorpus(const CheckOptions& options) {
  std::vector<CheckFailure> failures;
  for (const CorpusEntry& entry : SeedCorpus()) {
    std::optional<CheckFailure> failure =
        RunCheck(entry.check, entry.seed, options);
    if (failure.has_value()) {
      failure->detail =
          StrFormat("[corpus: %s] %s", entry.note, failure->detail.c_str());
      failures.push_back(*std::move(failure));
    }
  }
  for (const JsonRegression& entry : JsonCorpus()) {
    Result<TrainingPlan> parsed = ParsePlanJson(entry.json);
    if (parsed.ok() != entry.expect_ok) {
      CheckFailure failure;
      failure.check = FuzzCheck::kJsonRoundTrip;
      failure.seed = 0;
      failure.detail = StrFormat(
          "[corpus: %s] ParsePlanJson %s but the corpus expects %s%s%s",
          entry.note, parsed.ok() ? "accepted" : "rejected",
          entry.expect_ok ? "acceptance" : "rejection",
          parsed.ok() ? "" : ": ",
          parsed.ok() ? "" : parsed.status().ToString().c_str());
      failure.repro_json = entry.json;
      failures.push_back(std::move(failure));
      continue;
    }
    if (parsed.ok()) {
      // Accepted documents must re-serialize stably.
      const std::string json1 = PlanToJson(*parsed);
      Result<TrainingPlan> reparsed = ParsePlanJson(json1);
      if (!reparsed.ok() || PlanToJson(*reparsed) != json1) {
        CheckFailure failure;
        failure.check = FuzzCheck::kJsonRoundTrip;
        failure.seed = 0;
        failure.detail = StrFormat(
            "[corpus: %s] accepted document does not round-trip stably",
            entry.note);
        failure.repro_json = json1;
        failures.push_back(std::move(failure));
      }
    }
  }
  return failures;
}

}  // namespace galvatron
