#include "testing/invariant_checks.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <sstream>
#include <utility>

#include "api/plan_io.h"
#include "calibrate/profile.h"
#include "estimator/cost_estimator.h"
#include "parallel/decision_tree.h"
#include "search/dp_search.h"
#include "sim/simulator.h"
#include "trace/analyzer.h"
#include "trace/trace.h"
#include "util/math_util.h"
#include "util/string_util.h"

namespace galvatron {

namespace {

std::string BuildRepro(FuzzCheck check, uint64_t seed,
                       const std::string& detail, const TrainingPlan* plan) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"check\": \"" << FuzzCheckToString(check) << "\",\n";
  os << "  \"seed\": " << seed << ",\n";
  os << "  \"detail\": \"" << EscapeJson(detail) << "\",\n";
  os << "  \"plan\": " << (plan ? PlanToJson(*plan) : std::string("null"))
     << "\n";
  os << "}\n";
  return os.str();
}

CheckFailure MakeFailure(FuzzCheck check, uint64_t seed, std::string detail,
                         const TrainingPlan* plan = nullptr) {
  CheckFailure failure;
  failure.check = check;
  failure.seed = seed;
  failure.repro_json = BuildRepro(check, seed, detail, plan);
  failure.detail = std::move(detail);
  return failure;
}

/// Check (a): the generators only emit plans that Validate against their
/// model/cluster, whose strategies survive a text round-trip, and whose
/// schedule bookkeeping (in-flight micro-batches, micro-batch size) is
/// internally consistent.
std::optional<CheckFailure> CheckPlanValidity(uint64_t seed,
                                              const CheckOptions& options) {
  const FuzzCheck kCheck = FuzzCheck::kPlanValidity;
  Rng rng(seed);
  const ModelSpec model = GenerateModel(&rng, options.generator);
  const ClusterSpec cluster = GenerateCluster(&rng, options.generator);
  Result<TrainingPlan> plan_or = GeneratePlan(&rng, model, cluster);
  if (!plan_or.ok()) {
    return MakeFailure(kCheck, seed,
                       StrFormat("generator emitted an invalid plan: %s",
                                 plan_or.status().ToString().c_str()));
  }
  const TrainingPlan& plan = *plan_or;

  const Status valid = plan.Validate(model, cluster.num_devices());
  if (!valid.ok()) {
    return MakeFailure(kCheck, seed,
                       StrFormat("plan fails Validate: %s",
                                 valid.ToString().c_str()),
                       &plan);
  }
  if (plan.ToString().empty()) {
    return MakeFailure(kCheck, seed, "plan renders to an empty string",
                       &plan);
  }
  const int mb_size = plan.MicroBatchSize();
  if (mb_size < 1 || mb_size * plan.num_micro_batches < plan.global_batch) {
    return MakeFailure(
        kCheck, seed,
        StrFormat("micro-batch size %d x %d does not cover global batch %d",
                  mb_size, plan.num_micro_batches, plan.global_batch),
        &plan);
  }
  for (size_t s = 0; s < plan.stages.size(); ++s) {
    const int in_flight = plan.InFlightMicroBatches(static_cast<int>(s));
    if (in_flight < 1 || in_flight > plan.num_micro_batches) {
      return MakeFailure(
          kCheck, seed,
          StrFormat("stage %d holds %d in-flight micro-batches of %d",
                    static_cast<int>(s), in_flight, plan.num_micro_batches),
          &plan);
    }
    for (const HybridStrategy& strategy : plan.stages[s].layer_strategies) {
      Result<HybridStrategy> reparsed =
          HybridStrategy::Parse(strategy.ToString());
      if (!reparsed.ok() || !(*reparsed == strategy)) {
        return MakeFailure(
            kCheck, seed,
            StrFormat("strategy '%s' does not survive Parse(ToString())",
                      strategy.ToString().c_str()),
            &plan);
      }
    }
  }
  return std::nullopt;
}

/// Check (b): DpSearch and BruteForceSearch agree on feasibility and on the
/// optimal stage cost for small instances. Kept exponential-safe: at most
/// 3 layers and 4 devices regardless of the configured generator sizes.
std::optional<CheckFailure> CheckSearchEquivalence(uint64_t seed,
                                                   const CheckOptions& options) {
  const FuzzCheck kCheck = FuzzCheck::kSearchEquivalence;
  Rng rng(seed);
  GeneratorOptions gen = options.generator;
  gen.max_devices = std::min(gen.max_devices, 4);
  gen.max_layers = 4;
  const ModelSpec model = GenerateModel(&rng, gen);
  const ClusterSpec cluster = GenerateCluster(&rng, gen);

  // A random stage block: power-of-two width, block-aligned first device.
  const std::vector<int> widths = PowerOfTwoDivisors(cluster.num_devices());
  const int width = widths[rng.NextBelow(widths.size())];
  const int first_device =
      width * static_cast<int>(rng.NextBelow(
                  static_cast<uint64_t>(cluster.num_devices() / width)));
  Result<std::vector<HybridStrategy>> candidates_or =
      EnumerateSingleLayerStrategies(width);
  if (!candidates_or.ok()) {
    return MakeFailure(kCheck, seed,
                       StrFormat("strategy enumeration failed: %s",
                                 candidates_or.status().ToString().c_str()));
  }

  // A random layer window of at most 3 layers (brute force is
  // options^layers).
  const int num_layers =
      1 + static_cast<int>(rng.NextBelow(
              static_cast<uint64_t>(std::min(3, model.num_layers()))));
  const int first_layer = static_cast<int>(
      rng.NextBelow(static_cast<uint64_t>(model.num_layers() - num_layers + 1)));

  const int micro_batches = 1 << rng.NextBelow(3);
  const int batch =
      micro_batches * (1 + static_cast<int>(rng.NextBelow(4)));

  DpSearchOptions search_options;
  static const int64_t kGranularities[] = {
      int64_t{1} << 20, int64_t{32} << 20, int64_t{256} << 20};
  search_options.memory_granularity = kGranularities[rng.NextBelow(3)];
  search_options.allow_recompute = rng.NextBelow(2) == 0;

  // Log-uniform budget across [64 MB, 32 GB]: small instances make that
  // range straddle the feasibility frontier, which is where the budget
  // quantization bugs of PR 1 lived.
  const double log_budget = rng.NextDouble(std::log(64.0 * (1 << 20)),
                                           std::log(32.0 * 1e9));
  const int64_t budget = static_cast<int64_t>(std::exp(log_budget));

  const CostEstimator estimator(&cluster);
  search_options.use_sparse_dp = true;
  const DpSearch dp(&estimator, search_options);
  DpSearchOptions dense_options = search_options;
  dense_options.use_sparse_dp = false;
  const DpSearch dense_dp(&estimator, dense_options);
  Result<DpSearchResult> dp_or =
      dp.Run(model, first_layer, num_layers, *candidates_or, first_device,
             batch, micro_batches, budget);
  Result<DpSearchResult> dense_or =
      dense_dp.Run(model, first_layer, num_layers, *candidates_or,
                   first_device, batch, micro_batches, budget);
  Result<DpSearchResult> bf_or = BruteForceSearch(
      estimator, model, first_layer, num_layers, *candidates_or, first_device,
      batch, micro_batches, budget, search_options);

  const std::string instance = StrFormat(
      "layers [%d,+%d) width %d@%d batch %d/%d budget %lld gran %lld%s",
      first_layer, num_layers, width, first_device, batch, micro_batches,
      static_cast<long long>(budget),
      static_cast<long long>(search_options.memory_granularity),
      search_options.allow_recompute ? " +recompute" : "");

  // The sparse and dense kernels claim BYTE-identical results, not merely
  // tolerance-equal ones: same feasibility verdict, bitwise-equal
  // stage_seconds, and identical per-layer strategy/recompute assignments.
  if (dp_or.ok() != dense_or.ok()) {
    return MakeFailure(
        kCheck, seed,
        StrFormat("sparse/dense feasibility diverges on %s: sparse=%s "
                  "dense=%s",
                  instance.c_str(),
                  dp_or.ok() ? "ok" : dp_or.status().ToString().c_str(),
                  dense_or.ok() ? "ok"
                                : dense_or.status().ToString().c_str()));
  }
  if (dp_or.ok()) {
    const bool identical =
        dp_or->stage_seconds == dense_or->stage_seconds &&
        dp_or->resident_memory_bytes == dense_or->resident_memory_bytes &&
        dp_or->per_layer.size() == dense_or->per_layer.size() &&
        std::equal(dp_or->per_layer.begin(), dp_or->per_layer.end(),
                   dense_or->per_layer.begin(),
                   [](const HybridStrategy& a, const HybridStrategy& b) {
                     return a.ToString() == b.ToString();
                   }) &&
        dp_or->per_layer_recompute == dense_or->per_layer_recompute;
    if (!identical) {
      return MakeFailure(
          kCheck, seed,
          StrFormat("sparse and dense plans differ on %s: sparse=%.17g "
                    "dense=%.17g",
                    instance.c_str(), dp_or->stage_seconds,
                    dense_or->stage_seconds));
    }
    // Index-based assembly: with materialize_plans off the sparse kernel
    // returns only the per_layer_option index chain; materializing it
    // afterwards must reproduce the copying reconstruction byte for byte.
    DpSearchOptions indexed_options = search_options;
    indexed_options.materialize_plans = false;
    const DpSearch indexed_dp(&estimator, indexed_options);
    Result<DpSearchResult> indexed_or =
        indexed_dp.Run(model, first_layer, num_layers, *candidates_or,
                       first_device, batch, micro_batches, budget);
    if (!indexed_or.ok()) {
      return MakeFailure(
          kCheck, seed,
          StrFormat("index-assembly run infeasible on feasible %s: %s",
                    instance.c_str(),
                    indexed_or.status().ToString().c_str()));
    }
    if (!indexed_or->per_layer.empty()) {
      return MakeFailure(
          kCheck, seed,
          StrFormat("materialize_plans=false still materialized on %s",
                    instance.c_str()));
    }
    MaterializeDpSearchResult(*candidates_or, &*indexed_or);
    const bool assembly_identical =
        indexed_or->stage_seconds == dense_or->stage_seconds &&
        indexed_or->per_layer_option == dp_or->per_layer_option &&
        indexed_or->per_layer.size() == dense_or->per_layer.size() &&
        std::equal(indexed_or->per_layer.begin(), indexed_or->per_layer.end(),
                   dense_or->per_layer.begin(),
                   [](const HybridStrategy& a, const HybridStrategy& b) {
                     return a.ToString() == b.ToString();
                   }) &&
        indexed_or->per_layer_recompute == dense_or->per_layer_recompute;
    if (!assembly_identical) {
      return MakeFailure(
          kCheck, seed,
          StrFormat("index assembly diverges from copying reconstruction "
                    "on %s",
                    instance.c_str()));
    }
  }
  if (dp_or.ok() != bf_or.ok()) {
    return MakeFailure(
        kCheck, seed,
        StrFormat("feasibility verdicts diverge on %s: dp=%s bf=%s",
                  instance.c_str(),
                  dp_or.ok() ? "ok" : dp_or.status().ToString().c_str(),
                  bf_or.ok() ? "ok" : bf_or.status().ToString().c_str()));
  }
  if (!dp_or.ok()) {
    // Both infeasible is agreement; anything else is a harness bug.
    if (!dp_or.status().IsInfeasible() || !bf_or.status().IsInfeasible()) {
      return MakeFailure(
          kCheck, seed,
          StrFormat("unexpected search error on %s: dp=%s bf=%s",
                    instance.c_str(), dp_or.status().ToString().c_str(),
                    bf_or.status().ToString().c_str()));
    }
    return std::nullopt;
  }
  const double dp_cost = dp_or->stage_seconds;
  const double bf_cost = bf_or->stage_seconds;
  const double tolerance =
      options.cost_rel_tolerance * std::max(1.0, std::abs(bf_cost));
  if (std::abs(dp_cost - bf_cost) > tolerance) {
    return MakeFailure(
        kCheck, seed,
        StrFormat("optimal costs diverge on %s: dp=%.12g bf=%.12g",
                  instance.c_str(), dp_cost, bf_cost));
  }
  return std::nullopt;
}

/// Check (c): the estimator's per-stage peak memory tracks the simulator's
/// stage_peak_memory_bytes, and the two subsystems issue the same OOM
/// verdict whenever the peaks sit clear of the budget line.
///
/// Documented tolerance: per stage,
///   |est_peak - sim_peak| <= memory_rel_tolerance * est_peak
///                            + 2 * max_layer_transient
/// The structural term exists because the estimator reserves the ZeRO-3
/// double-buffered weight gather (2x the largest transient) for every
/// stage unconditionally, while the simulator only charges transients its
/// timeline actually holds live. OOM verdicts may legitimately differ only
/// when a stage's peak (either model's) lands inside that same tolerance
/// band around the stage budget.
std::optional<CheckFailure> CheckMemoryModel(uint64_t seed,
                                             const CheckOptions& options) {
  const FuzzCheck kCheck = FuzzCheck::kMemoryModel;
  Rng rng(seed);
  const ModelSpec model = GenerateModel(&rng, options.generator);
  const ClusterSpec cluster = GenerateCluster(&rng, options.generator);
  Result<TrainingPlan> plan_or = GeneratePlan(&rng, model, cluster);
  if (!plan_or.ok()) {
    return MakeFailure(kCheck, seed,
                       StrFormat("generator emitted an invalid plan: %s",
                                 plan_or.status().ToString().c_str()));
  }
  const TrainingPlan& plan = *plan_or;

  // Lift the budget so both models report peaks even for OOM plans; memory
  // accounting is budget-independent in both subsystems.
  const ClusterSpec big = cluster.WithMemoryBudget(int64_t{1} << 55);
  const CostEstimator estimator(&big);
  Result<PlanCost> cost_or = estimator.EstimatePlan(model, plan);
  if (!cost_or.ok()) {
    return MakeFailure(kCheck, seed,
                       StrFormat("estimator failed under a 32 PiB budget: %s",
                                 cost_or.status().ToString().c_str()),
                       &plan);
  }
  const Simulator simulator(&big);
  Result<SimMetrics> metrics_or = simulator.Run(model, plan);
  if (!metrics_or.ok()) {
    return MakeFailure(kCheck, seed,
                       StrFormat("simulator failed under a 32 PiB budget: %s",
                                 metrics_or.status().ToString().c_str()),
                       &plan);
  }
  if (metrics_or->stage_peak_memory_bytes.size() != plan.stages.size()) {
    return MakeFailure(
        kCheck, seed,
        StrFormat("simulator reported %d stage peaks for %d stages",
                  static_cast<int>(metrics_or->stage_peak_memory_bytes.size()),
                  static_cast<int>(plan.stages.size())),
        &plan);
  }

  bool est_oom = false;
  bool verdict_ambiguous = false;
  const bool is_1f1b = plan.schedule == PipelineSchedule::k1F1B;
  for (size_t s = 0; s < plan.stages.size(); ++s) {
    const StagePlan& stage = plan.stages[s];
    const int64_t est_peak = cost_or->stages[s].peak_memory_bytes;
    const int64_t sim_peak =
        metrics_or->stage_peak_memory_bytes[s];

    // The structural slack: 2x the largest layer transient in the stage.
    // For 1F1B we also price the stage at one resident micro-batch: the
    // estimator charges the schedule's in-flight *bound* (min(m, P-s)
    // micro-batches), but the simulator measures actual holdings, and a
    // stage whose downstream returns backwards quickly may never stack a
    // second micro-batch. The simulated peak must then land in
    // [one-micro-batch floor, in-flight bound]; under GPipe every
    // micro-batch is provably held, so the check stays exactly two-sided.
    int64_t max_transient = 0;
    int64_t floor_resident = 0;
    for (int l = 0; l < stage.num_layers; ++l) {
      Result<LayerCost> layer_or = estimator.EstimateLayer(
          model.layer(stage.first_layer + l),
          stage.layer_strategies[static_cast<size_t>(l)], stage.first_device,
          plan.global_batch, plan.num_micro_batches, stage.RecomputeAt(l),
          plan.InFlightMicroBatches(static_cast<int>(s)));
      if (!layer_or.ok()) {
        return MakeFailure(kCheck, seed,
                           StrFormat("per-layer estimate failed: %s",
                                     layer_or.status().ToString().c_str()),
                           &plan);
      }
      max_transient =
          std::max(max_transient, layer_or->transient_memory_bytes);
      if (is_1f1b) {
        Result<LayerCost> floor_or = estimator.EstimateLayer(
            model.layer(stage.first_layer + l),
            stage.layer_strategies[static_cast<size_t>(l)],
            stage.first_device, plan.global_batch, plan.num_micro_batches,
            stage.RecomputeAt(l), /*in_flight_micro_batches=*/1);
        if (!floor_or.ok()) {
          return MakeFailure(kCheck, seed,
                             StrFormat("per-layer floor estimate failed: %s",
                                       floor_or.status().ToString().c_str()),
                             &plan);
        }
        floor_resident += floor_or->resident_memory_bytes;
      }
    }
    const int64_t tolerance =
        static_cast<int64_t>(options.memory_rel_tolerance *
                             static_cast<double>(est_peak)) +
        2 * max_transient;
    const bool in_1f1b_band = is_1f1b &&
                              sim_peak >= floor_resident - tolerance &&
                              sim_peak <= est_peak + tolerance;
    if (std::llabs(est_peak - sim_peak) > tolerance && !in_1f1b_band) {
      return MakeFailure(
          kCheck, seed,
          StrFormat("stage %d peak diverges: estimator %lld vs simulator "
                    "%lld (tolerance %lld%s)",
                    static_cast<int>(s), static_cast<long long>(est_peak),
                    static_cast<long long>(sim_peak),
                    static_cast<long long>(tolerance),
                    is_1f1b ? ", outside the 1F1B in-flight band" : ""),
          &plan);
    }

    const int64_t budget =
        cluster.MinMemoryInRange(stage.first_device, stage.num_devices);
    if (est_peak > budget) est_oom = true;
    if (std::llabs(est_peak - budget) <= tolerance ||
        std::llabs(sim_peak - budget) <= tolerance ||
        // A budget between the simulator's actual 1F1B peak and the
        // estimator's in-flight bound legitimately splits the verdicts.
        (is_1f1b && budget >= std::min(sim_peak, est_peak) - tolerance &&
         budget <= std::max(sim_peak, est_peak) + tolerance)) {
      verdict_ambiguous = true;
    }
  }

  // Public-API OOM verdicts on the real cluster. The estimator's status
  // must agree exactly with its own peaks (same numbers, same budgets);
  // estimator vs simulator must agree whenever no stage peak lands in the
  // tolerance band around its budget.
  const CostEstimator real_estimator(&cluster);
  Result<PlanCost> real_cost = real_estimator.EstimatePlan(model, plan);
  if (!real_cost.ok() && !real_cost.status().IsOutOfMemory()) {
    return MakeFailure(kCheck, seed,
                       StrFormat("estimator errored on the real cluster: %s",
                                 real_cost.status().ToString().c_str()),
                       &plan);
  }
  const bool est_api_oom = !real_cost.ok();
  if (est_api_oom != est_oom) {
    return MakeFailure(
        kCheck, seed,
        StrFormat("estimator OOM status (%s) contradicts its own stage "
                  "peaks (%s)",
                  est_api_oom ? "oom" : "fits", est_oom ? "oom" : "fits"),
        &plan);
  }
  const Simulator real_simulator(&cluster);
  Result<SimMetrics> real_metrics = real_simulator.Run(model, plan);
  if (!real_metrics.ok()) {
    return MakeFailure(kCheck, seed,
                       StrFormat("simulator errored on the real cluster: %s",
                                 real_metrics.status().ToString().c_str()),
                       &plan);
  }
  if (real_metrics->oom != est_api_oom && !verdict_ambiguous) {
    return MakeFailure(
        kCheck, seed,
        StrFormat("OOM verdicts diverge outside the tolerance band: "
                  "estimator says %s, simulator says %s",
                  est_api_oom ? "oom" : "fits",
                  real_metrics->oom ? "oom" : "fits"),
        &plan);
  }
  return std::nullopt;
}

/// Check (d): PlanToJson -> ParsePlanJson -> PlanToJson is bit-exact, and
/// the parsed plan is field-identical to the original — with generated
/// (often hostile) model names.
std::optional<CheckFailure> CheckJsonRoundTrip(uint64_t seed,
                                               const CheckOptions& options) {
  const FuzzCheck kCheck = FuzzCheck::kJsonRoundTrip;
  Rng rng(seed);
  const ModelSpec model = GenerateModel(&rng, options.generator);
  const ClusterSpec cluster = GenerateCluster(&rng, options.generator);
  Result<TrainingPlan> plan_or = GeneratePlan(&rng, model, cluster);
  if (!plan_or.ok()) {
    return MakeFailure(kCheck, seed,
                       StrFormat("generator emitted an invalid plan: %s",
                                 plan_or.status().ToString().c_str()));
  }
  const TrainingPlan& plan = *plan_or;

  const std::string json = PlanToJson(plan);
  Result<TrainingPlan> parsed_or = ParsePlanJson(json);
  if (!parsed_or.ok()) {
    return MakeFailure(kCheck, seed,
                       StrFormat("serialized plan does not re-parse: %s",
                                 parsed_or.status().ToString().c_str()),
                       &plan);
  }
  const TrainingPlan& parsed = *parsed_or;

  auto mismatch = [&](const std::string& what) {
    return MakeFailure(kCheck, seed,
                       StrFormat("round-trip changed %s", what.c_str()),
                       &plan);
  };
  if (parsed.model_name != plan.model_name) return mismatch("model_name");
  if (parsed.global_batch != plan.global_batch) return mismatch("global_batch");
  if (parsed.num_micro_batches != plan.num_micro_batches) {
    return mismatch("num_micro_batches");
  }
  if (parsed.schedule != plan.schedule) return mismatch("schedule");
  if (parsed.stages.size() != plan.stages.size()) return mismatch("stages");
  for (size_t s = 0; s < plan.stages.size(); ++s) {
    const StagePlan& a = plan.stages[s];
    const StagePlan& b = parsed.stages[s];
    const std::string where = StrFormat("stage %d", static_cast<int>(s));
    if (a.first_device != b.first_device || a.num_devices != b.num_devices ||
        a.first_layer != b.first_layer || a.num_layers != b.num_layers) {
      return mismatch(where + " geometry");
    }
    if (a.layer_strategies != b.layer_strategies) {
      return mismatch(where + " strategies");
    }
    for (int l = 0; l < a.num_layers; ++l) {
      // Recompute compares semantically: an absent vector means all-off.
      if (a.RecomputeAt(l) != b.RecomputeAt(l)) {
        return mismatch(where + " recompute flags");
      }
    }
  }

  const std::string json2 = PlanToJson(parsed);
  if (json2 != json) {
    return MakeFailure(kCheck, seed,
                       "PlanToJson(ParsePlanJson(json)) is not bit-exact",
                       &plan);
  }
  return std::nullopt;
}

/// Check (e): the spec serializers behind the serving wire format are an
/// exact bijection on generator output — hostile names included. Model and
/// cluster specs must re-parse field-identically (the LayerSpec constructor
/// re-derives every aggregate, so derived quantities are compared too) and
/// re-serialize bit-exactly.
std::optional<CheckFailure> CheckSpecJsonRoundTrip(uint64_t seed,
                                                   const CheckOptions& options) {
  const FuzzCheck kCheck = FuzzCheck::kSpecJsonRoundTrip;
  Rng rng(seed);
  const ModelSpec model = GenerateModel(&rng, options.generator);
  const ClusterSpec cluster = GenerateCluster(&rng, options.generator);

  const std::string model_json = ModelSpecToJson(model);
  Result<ModelSpec> model_or = ParseModelSpecJson(model_json);
  if (!model_or.ok()) {
    return MakeFailure(kCheck, seed,
                       StrFormat("serialized model does not re-parse: %s",
                                 model_or.status().ToString().c_str()));
  }
  const ModelSpec& parsed_model = *model_or;
  if (parsed_model.name() != model.name()) {
    return MakeFailure(kCheck, seed, "model round-trip changed the name");
  }
  if (parsed_model.num_layers() != model.num_layers()) {
    return MakeFailure(kCheck, seed,
                       "model round-trip changed the layer count");
  }
  if (parsed_model.TotalParams() != model.TotalParams()) {
    return MakeFailure(
        kCheck, seed,
        StrFormat("model round-trip changed TotalParams: %lld vs %lld",
                  static_cast<long long>(model.TotalParams()),
                  static_cast<long long>(parsed_model.TotalParams())));
  }
  for (int l = 0; l < model.num_layers(); ++l) {
    const LayerSpec& a = model.layer(l);
    const LayerSpec& b = parsed_model.layer(l);
    if (a.name() != b.name() || a.kind() != b.kind() ||
        a.input_bytes() != b.input_bytes() ||
        a.output_bytes() != b.output_bytes() ||
        a.ops().size() != b.ops().size()) {
      return MakeFailure(
          kCheck, seed,
          StrFormat("model round-trip changed layer %d primaries", l));
    }
    for (size_t o = 0; o < a.ops().size(); ++o) {
      const OpSpec& x = a.ops()[o];
      const OpSpec& y = b.ops()[o];
      if (x.name != y.name || x.kind != y.kind ||
          x.tp_pattern != y.tp_pattern || x.param_count != y.param_count ||
          x.fwd_flops != y.fwd_flops ||
          x.saved_activation_bytes != y.saved_activation_bytes ||
          x.output_bytes != y.output_bytes ||
          x.input_bytes != y.input_bytes ||
          x.tp_shards_saved_activation != y.tp_shards_saved_activation) {
        return MakeFailure(
            kCheck, seed,
            StrFormat("model round-trip changed layer %d op %d", l,
                      static_cast<int>(o)));
      }
    }
  }
  if (ModelSpecToJson(parsed_model) != model_json) {
    return MakeFailure(
        kCheck, seed,
        "ModelSpecToJson(ParseModelSpecJson(json)) is not bit-exact");
  }

  const std::string cluster_json = ClusterSpecToJson(cluster);
  Result<ClusterSpec> cluster_or = ParseClusterSpecJson(cluster_json);
  if (!cluster_or.ok()) {
    return MakeFailure(kCheck, seed,
                       StrFormat("serialized cluster does not re-parse: %s",
                                 cluster_or.status().ToString().c_str()));
  }
  const ClusterSpec& parsed_cluster = *cluster_or;
  if (parsed_cluster.name() != cluster.name() ||
      parsed_cluster.num_devices() != cluster.num_devices() ||
      parsed_cluster.kernel_launch_overhead_sec() !=
          cluster.kernel_launch_overhead_sec() ||
      parsed_cluster.small_batch_half_life() !=
          cluster.small_batch_half_life() ||
      parsed_cluster.pipeline_rpc_overhead_sec() !=
          cluster.pipeline_rpc_overhead_sec()) {
    return MakeFailure(kCheck, seed,
                       "cluster round-trip changed a scalar field");
  }
  for (int d = 0; d < cluster.num_devices(); ++d) {
    if (parsed_cluster.device(d).memory_bytes !=
        cluster.device(d).memory_bytes) {
      return MakeFailure(
          kCheck, seed,
          StrFormat("cluster round-trip changed device %d's budget "
                    "(heterogeneous-memory path)",
                    d));
    }
    if (parsed_cluster.device(d).sustained_flops !=
            cluster.device(d).sustained_flops ||
        parsed_cluster.device(d).small_batch_half_life !=
            cluster.device(d).small_batch_half_life) {
      return MakeFailure(
          kCheck, seed,
          StrFormat("cluster round-trip changed device %d's generation "
                    "(mixed-generation path)",
                    d));
    }
  }
  const bool had_graph = cluster.topology() != nullptr;
  const bool got_graph = parsed_cluster.topology() != nullptr;
  if (had_graph != got_graph ||
      (had_graph && !(*parsed_cluster.topology() == *cluster.topology()))) {
    return MakeFailure(kCheck, seed,
                       "cluster round-trip changed the attached topology");
  }
  if (parsed_cluster.levels().size() != cluster.levels().size()) {
    return MakeFailure(kCheck, seed,
                       "cluster round-trip changed the level count");
  }
  for (size_t i = 0; i < cluster.levels().size(); ++i) {
    const TopologyLevel& a = cluster.levels()[i];
    const TopologyLevel& b = parsed_cluster.levels()[i];
    if (a.span != b.span || a.link.cls != b.link.cls ||
        a.link.bandwidth_bytes_per_sec != b.link.bandwidth_bytes_per_sec ||
        a.link.latency_sec != b.link.latency_sec) {
      return MakeFailure(
          kCheck, seed,
          StrFormat("cluster round-trip changed level %d",
                    static_cast<int>(i)));
    }
  }
  if (ClusterSpecToJson(parsed_cluster) != cluster_json) {
    return MakeFailure(
        kCheck, seed,
        "ClusterSpecToJson(ParseClusterSpecJson(json)) is not bit-exact");
  }
  return std::nullopt;
}

/// Check (f): the trace subsystem's time attribution conserves. A traced
/// simulation of a generated plan must satisfy, within 1e-9 x makespan:
/// per stream Σ(elapsed) + idle == makespan; per task work + lost ==
/// elapsed; the engine's integrated busy seconds reconcile with the summed
/// trace events; and the back-chained critical path tiles [0, makespan]
/// exactly. Recording the trace must also leave SimMetrics byte-identical
/// to the untraced run (the capture is pure observation).
std::optional<CheckFailure> CheckTraceConservation(uint64_t seed,
                                                   const CheckOptions& options) {
  const FuzzCheck kCheck = FuzzCheck::kTraceConservation;
  Rng rng(seed);
  const ModelSpec model = GenerateModel(&rng, options.generator);
  const ClusterSpec cluster = GenerateCluster(&rng, options.generator);
  Result<TrainingPlan> plan_or = GeneratePlan(&rng, model, cluster);
  if (!plan_or.ok()) {
    return MakeFailure(kCheck, seed,
                       StrFormat("generator emitted an invalid plan: %s",
                                 plan_or.status().ToString().c_str()));
  }
  const TrainingPlan& plan = *plan_or;

  SimOptions traced_options;
  traced_options.record_trace = true;
  const Simulator traced_sim(&cluster, traced_options);
  SimTrace sim_trace;
  Result<SimMetrics> traced_or = traced_sim.Run(model, plan, &sim_trace);
  if (!traced_or.ok()) {
    return MakeFailure(kCheck, seed,
                       StrFormat("traced simulation failed: %s",
                                 traced_or.status().ToString().c_str()),
                       &plan);
  }
  Result<trace::ExecutionTrace> exec_or = trace::RecordTrace(sim_trace);
  if (!exec_or.ok()) {
    return MakeFailure(kCheck, seed,
                       StrFormat("RecordTrace rejected the capture: %s",
                                 exec_or.status().ToString().c_str()),
                       &plan);
  }
  Result<trace::AttributionReport> report_or = trace::Analyze(*exec_or);
  if (!report_or.ok()) {
    return MakeFailure(kCheck, seed,
                       StrFormat("Analyze failed: %s",
                                 report_or.status().ToString().c_str()),
                       &plan);
  }
  const trace::AttributionReport& report = *report_or;
  const double tolerance = 1e-9 * std::max(exec_or->makespan_sec, 1e-12);
  if (report.max_stream_conservation_error_sec > tolerance) {
    return MakeFailure(
        kCheck, seed,
        StrFormat("stream conservation violated: residual %.17g over "
                  "makespan %.17g",
                  report.max_stream_conservation_error_sec,
                  exec_or->makespan_sec),
        &plan);
  }
  if (report.max_task_decomposition_error_sec > tolerance) {
    return MakeFailure(
        kCheck, seed,
        StrFormat("work + lost != elapsed: residual %.17g over makespan "
                  "%.17g",
                  report.max_task_decomposition_error_sec,
                  exec_or->makespan_sec),
        &plan);
  }
  if (report.max_busy_reconciliation_error_sec > tolerance) {
    return MakeFailure(
        kCheck, seed,
        StrFormat("engine busy seconds disagree with summed trace events: "
                  "residual %.17g over makespan %.17g",
                  report.max_busy_reconciliation_error_sec,
                  exec_or->makespan_sec),
        &plan);
  }
  if (std::abs(report.critical_path_sec - exec_or->makespan_sec) >
      tolerance) {
    return MakeFailure(
        kCheck, seed,
        StrFormat("critical path %.17g does not tile the makespan %.17g",
                  report.critical_path_sec, exec_or->makespan_sec),
        &plan);
  }

  // Pure observation: the untraced run must yield byte-identical metrics.
  const Simulator plain_sim(&cluster);
  Result<SimMetrics> plain_or = plain_sim.Run(model, plan);
  if (!plain_or.ok()) {
    return MakeFailure(kCheck, seed,
                       StrFormat("untraced simulation failed: %s",
                                 plain_or.status().ToString().c_str()),
                       &plan);
  }
  const SimMetrics& a = *traced_or;
  const SimMetrics& b = *plain_or;
  const bool identical =
      a.iteration_seconds == b.iteration_seconds &&
      a.throughput_samples_per_sec == b.throughput_samples_per_sec &&
      a.oom == b.oom &&
      a.stage_peak_memory_bytes == b.stage_peak_memory_bytes &&
      a.max_peak_memory_bytes == b.max_peak_memory_bytes &&
      a.num_tasks == b.num_tasks && a.num_comm_groups == b.num_comm_groups &&
      a.compute_busy_sec == b.compute_busy_sec &&
      a.comm_busy_sec == b.comm_busy_sec &&
      a.stage_compute_busy_sec == b.stage_compute_busy_sec &&
      a.stage_comm_busy_sec == b.stage_comm_busy_sec;
  if (!identical) {
    return MakeFailure(
        kCheck, seed,
        StrFormat("recording the trace perturbed SimMetrics: traced "
                  "iteration %.17g vs untraced %.17g",
                  a.iteration_seconds, b.iteration_seconds),
        &plan);
  }
  return std::nullopt;
}

/// Check (g): the heterogeneous machinery is a strict generalization — on
/// homogeneous inputs it must collapse, bit for bit, to the legacy answers.
/// Four identities:
///   1. On a level-priced cluster, CollectiveLink(first, stride, degree,
///      width) == GroupBottleneckLink(first, first + (degree-1)*stride) for
///      every power-of-two group shape that fits.
///   2. MinSustainedFlopsInRange / SmallBatchHalfLifeInRange match a direct
///      device-table scan on arbitrary ranges, and the whole-cluster
///      sustained_flops() accessor agrees on uniform clusters.
///   3. The mirror TopologyGraph prices every pair and every contiguous
///      group exactly like the levels — whenever the level links are
///      outward-monotone (bandwidth non-increasing, latency non-decreasing;
///      non-monotone hierarchies are exactly where graph pricing is
///      *supposed* to diverge, toward the physically-true bottleneck).
///   4. When additionally no collective shape inside any stage sees uplink
///      contention, a whole-plan estimate on the mirror-backed cluster is
///      byte-identical to the legacy estimate.
std::optional<CheckFailure> CheckTopologyIdentity(uint64_t seed,
                                                  const CheckOptions& options) {
  const FuzzCheck kCheck = FuzzCheck::kTopologyIdentity;
  Rng rng(seed);
  GeneratorOptions gen = options.generator;
  gen.topology_graphs = false;  // this check attaches the mirror itself
  const ModelSpec model = GenerateModel(&rng, gen);
  const ClusterSpec cluster = GenerateCluster(&rng, gen);
  const int n = cluster.num_devices();

  // (1) Collective pricing on level clusters reduces to the old two-endpoint
  // bottleneck.
  for (int stride = 1; stride < n; stride *= 2) {
    for (int degree = 2; stride * degree <= n; degree *= 2) {
      for (int width = stride * degree; width <= n; width *= 2) {
        for (int first = 0; first + width <= n; first += width) {
          const LinkSpec got =
              cluster.CollectiveLink(first, stride, degree, width);
          const LinkSpec want = cluster.GroupBottleneckLink(
              first, first + (degree - 1) * stride);
          if (got != want) {
            return MakeFailure(
                kCheck, seed,
                StrFormat("CollectiveLink(%d, stride %d, degree %d, width "
                          "%d) diverges from the legacy group bottleneck: "
                          "%.17g B/s vs %.17g B/s",
                          first, stride, degree, width,
                          got.bandwidth_bytes_per_sec,
                          want.bandwidth_bytes_per_sec));
          }
        }
      }
    }
  }

  // (2) Range queries against a direct device-table scan.
  for (int trial = 0; trial < 8; ++trial) {
    const int count =
        1 + static_cast<int>(rng.NextBelow(static_cast<uint64_t>(n)));
    const int first = static_cast<int>(
        rng.NextBelow(static_cast<uint64_t>(n - count + 1)));
    double scan_flops = cluster.device(first).sustained_flops;
    double scan_half = 0.0;
    for (int d = first; d < first + count; ++d) {
      scan_flops = std::min(scan_flops, cluster.device(d).sustained_flops);
      const double half = cluster.device(d).small_batch_half_life == 0.0
                              ? cluster.small_batch_half_life()
                              : cluster.device(d).small_batch_half_life;
      scan_half = std::max(scan_half, half);
    }
    if (cluster.MinSustainedFlopsInRange(first, count) != scan_flops) {
      return MakeFailure(
          kCheck, seed,
          StrFormat("MinSustainedFlopsInRange(%d, %d) = %.17g but the "
                    "device table says %.17g",
                    first, count,
                    cluster.MinSustainedFlopsInRange(first, count),
                    scan_flops));
    }
    if (cluster.SmallBatchHalfLifeInRange(first, count) != scan_half) {
      return MakeFailure(
          kCheck, seed,
          StrFormat("SmallBatchHalfLifeInRange(%d, %d) = %.17g but the "
                    "device table says %.17g",
                    first, count,
                    cluster.SmallBatchHalfLifeInRange(first, count),
                    scan_half));
    }
  }
  if (cluster.HasUniformCompute() &&
      cluster.sustained_flops() != cluster.device(0).sustained_flops) {
    return MakeFailure(kCheck, seed,
                       "sustained_flops() diverges from device 0 on a "
                       "uniform cluster");
  }

  // (3) Mirror-graph pricing vs level pricing, gated on outward-monotone
  // levels (equal adjacent links also qualify).
  Result<TopologyGraph> mirror_or = MakeMirrorTopology(cluster);
  if (!mirror_or.ok()) {
    return MakeFailure(kCheck, seed,
                       StrFormat("MakeMirrorTopology failed: %s",
                                 mirror_or.status().ToString().c_str()));
  }
  auto graph = std::make_shared<const TopologyGraph>(*std::move(mirror_or));
  Result<ClusterSpec> mirrored_or = cluster.WithTopology(graph);
  if (!mirrored_or.ok()) {
    return MakeFailure(kCheck, seed,
                       StrFormat("WithTopology rejected the mirror: %s",
                                 mirrored_or.status().ToString().c_str()));
  }
  const ClusterSpec& mirrored = *mirrored_or;
  bool monotone = true;
  for (size_t i = 1; i < cluster.levels().size(); ++i) {
    const LinkSpec& inner = cluster.levels()[i - 1].link;
    const LinkSpec& outer = cluster.levels()[i].link;
    const bool ordered =
        outer.bandwidth_bytes_per_sec < inner.bandwidth_bytes_per_sec &&
        outer.latency_sec >= inner.latency_sec;
    if (!ordered && !(outer == inner)) monotone = false;
  }
  if (monotone) {
    for (int a = 0; a < n; ++a) {
      for (int b = a + 1; b < n; ++b) {
        if (mirrored.LinkBetween(a, b) != cluster.LinkBetween(a, b)) {
          return MakeFailure(
              kCheck, seed,
              StrFormat("mirror graph prices pair (%d, %d) differently on "
                        "a monotone hierarchy",
                        a, b));
        }
        if (mirrored.GroupBottleneckLink(a, b) !=
            cluster.GroupBottleneckLink(a, b)) {
          return MakeFailure(
              kCheck, seed,
              StrFormat("mirror graph prices group [%d, %d] differently on "
                        "a monotone hierarchy",
                        a, b));
        }
      }
    }
  }

  // (4) Whole-plan estimate identity when no collective shape can see
  // contention (checked over every power-of-two shape each stage admits).
  Result<TrainingPlan> plan_or = GeneratePlan(&rng, model, cluster);
  if (!plan_or.ok()) {
    return MakeFailure(kCheck, seed,
                       StrFormat("generator emitted an invalid plan: %s",
                                 plan_or.status().ToString().c_str()));
  }
  const TrainingPlan& plan = *plan_or;
  bool contention_free = monotone;
  for (const StagePlan& stage : plan.stages) {
    for (int stride = 1; contention_free && stride <= stage.num_devices;
         stride *= 2) {
      for (int degree = 2; stride * degree <= stage.num_devices;
           degree *= 2) {
        if (graph->CollectiveContention(stage.first_device, stride, degree,
                                        stage.num_devices) != 1) {
          contention_free = false;
          break;
        }
      }
    }
  }
  if (contention_free) {
    // A 32 PiB budget keeps both sides clear of OOM verdicts; the memory
    // model is identical by construction either way.
    const ClusterSpec big = cluster.WithMemoryBudget(int64_t{1} << 55);
    Result<ClusterSpec> big_mirrored_or = big.WithTopology(graph);
    if (!big_mirrored_or.ok()) {
      return MakeFailure(
          kCheck, seed,
          StrFormat("WithTopology rejected the mirror after a budget "
                    "sweep: %s",
                    big_mirrored_or.status().ToString().c_str()));
    }
    const CostEstimator legacy(&big);
    const CostEstimator graphed(&*big_mirrored_or);
    Result<PlanCost> legacy_cost = legacy.EstimatePlan(model, plan);
    Result<PlanCost> graphed_cost = graphed.EstimatePlan(model, plan);
    if (legacy_cost.ok() != graphed_cost.ok()) {
      return MakeFailure(
          kCheck, seed,
          StrFormat("estimate verdicts diverge legacy-vs-mirror: %s vs %s",
                    legacy_cost.ok()
                        ? "ok"
                        : legacy_cost.status().ToString().c_str(),
                    graphed_cost.ok()
                        ? "ok"
                        : graphed_cost.status().ToString().c_str()),
          &plan);
    }
    if (legacy_cost.ok()) {
      const bool identical =
          legacy_cost->iteration_seconds == graphed_cost->iteration_seconds &&
          legacy_cost->throughput_samples_per_sec ==
              graphed_cost->throughput_samples_per_sec &&
          legacy_cost->peak_memory_bytes == graphed_cost->peak_memory_bytes;
      if (!identical) {
        return MakeFailure(
            kCheck, seed,
            StrFormat("contention-free plan estimates diverge "
                      "legacy-vs-mirror: %.17g s vs %.17g s",
                      legacy_cost->iteration_seconds,
                      graphed_cost->iteration_seconds),
            &plan);
      }
    }
  }
  return std::nullopt;
}

/// True when the two plan costs are byte-identical in every field the
/// estimator reports (summary scalars and per-stage seconds).
bool PlanCostsIdentical(const PlanCost& a, const PlanCost& b) {
  if (a.iteration_seconds != b.iteration_seconds ||
      a.throughput_samples_per_sec != b.throughput_samples_per_sec ||
      a.peak_memory_bytes != b.peak_memory_bytes ||
      a.stages.size() != b.stages.size()) {
    return false;
  }
  for (size_t i = 0; i < a.stages.size(); ++i) {
    if (a.stages[i].seconds != b.stages[i].seconds ||
        a.stages[i].peak_memory_bytes != b.stages[i].peak_memory_bytes) {
      return false;
    }
  }
  return true;
}

/// A random valid CalibrationProfile with hostile coefficients: boundary
/// and full-mantissa scales, subnormal / max-magnitude / negative-zero
/// residuals, boundary overlap slowdowns. Always passes Validate.
calibrate::CalibrationProfile GenerateCalibrationProfile(Rng* rng,
                                                         bool identity) {
  using calibrate::kMaxCalibrationScale;
  using calibrate::kMinCalibrationScale;
  calibrate::CalibrationProfile profile;
  const double hostile_scales[] = {
      kMinCalibrationScale,
      kMaxCalibrationScale,
      std::nextafter(kMinCalibrationScale, 1.0),
      std::nextafter(kMaxCalibrationScale, 1.0),
      1.0,
      std::nextafter(1.0, 2.0),
  };
  const double hostile_residuals[] = {
      0.0,
      -0.0,
      std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::max(),
      std::numeric_limits<double>::min(),
      0.1,
  };
  const int num_groups = 1 + static_cast<int>(rng->NextBelow(6));
  for (int g = 0; g < num_groups; ++g) {
    calibrate::CalibrationGroup group;
    group.link_class = static_cast<LinkClass>(rng->NextBelow(4));
    group.kind = static_cast<CollectiveKind>(rng->NextBelow(5));
    group.bucket = static_cast<int>(rng->NextBelow(63));
    if (identity) {
      group.scale = 1.0;
    } else if (rng->NextBelow(2) == 0) {
      group.scale = hostile_scales[rng->NextBelow(6)];
    } else {
      // Log-uniform with a full random mantissa.
      group.scale = std::exp2(rng->NextDouble(-4.0, 4.0));
    }
    group.sample_count = static_cast<int64_t>(rng->NextBelow(1 << 20));
    group.rel_residual =
        identity ? 0.0 : hostile_residuals[rng->NextBelow(6)];
    // Validate rejects duplicate keys; skip collisions instead.
    bool duplicate = false;
    for (const calibrate::CalibrationGroup& seen : profile.groups) {
      if (seen.link_class == group.link_class && seen.kind == group.kind &&
          seen.bucket == group.bucket) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) profile.groups.push_back(group);
  }
  profile.fitted_events = static_cast<int64_t>(rng->NextBelow(1 << 24));
  if (identity) {
    profile.overlap_slowdown = 0.0;
  } else {
    const double hostile_overlaps[] = {0.0, 1.0, 8.0,
                                       std::nextafter(1.0, 2.0), 1.3};
    profile.overlap_slowdown = rng->NextBelow(2) == 0
                                   ? hostile_overlaps[rng->NextBelow(5)]
                                   : rng->NextDouble(1.0, 8.0);
  }
  return profile;
}

/// Check (h): the calibration override layer. (1) Estimates are
/// byte-identical with no profile, an empty profile and an all-ones
/// identity profile — the "absent calibration changes nothing" contract the
/// serving swap and the CLI rely on. (2) Random valid profiles with hostile
/// float coefficients round-trip through JSON bit-exactly. (3) On monotone
/// contention-free hierarchies a profile applies identically whether the
/// cluster is level-priced or mirror-graph-priced: CollectiveLink preserves
/// the bottleneck's link class either way, so the fitted scales key
/// identically (the staleness bug class this check pins down).
std::optional<CheckFailure> CheckCalibrationIdentity(
    uint64_t seed, const CheckOptions& options) {
  const FuzzCheck kCheck = FuzzCheck::kCalibrationIdentity;
  Rng rng(seed);
  GeneratorOptions gen = options.generator;
  gen.topology_graphs = false;  // part (3) attaches the mirror itself
  const ModelSpec model = GenerateModel(&rng, gen);
  const ClusterSpec cluster = GenerateCluster(&rng, gen);
  Result<TrainingPlan> plan_or = GeneratePlan(&rng, model, cluster);
  if (!plan_or.ok()) {
    return MakeFailure(kCheck, seed,
                       StrFormat("generator emitted an invalid plan: %s",
                                 plan_or.status().ToString().c_str()));
  }
  const TrainingPlan& plan = *plan_or;

  // (1) No profile vs empty profile vs identity profile: byte-identical.
  // Memory checks off so OOM verdicts don't mask the comparison (the memory
  // model never touches calibration anyway).
  const CostEstimator baseline(&cluster);
  const Result<PlanCost> base_or =
      baseline.EstimatePlan(model, plan, /*check_memory=*/false);
  calibrate::CalibrationProfile empty;
  calibrate::CalibrationProfile identity =
      GenerateCalibrationProfile(&rng, /*identity=*/true);
  const calibrate::CalibrationProfile* variants[] = {&empty, &identity};
  for (const calibrate::CalibrationProfile* profile : variants) {
    EstimatorOptions opts;
    opts.calibration = profile;
    const CostEstimator calibrated(&cluster, opts);
    const Result<PlanCost> got_or =
        calibrated.EstimatePlan(model, plan, /*check_memory=*/false);
    if (base_or.ok() != got_or.ok()) {
      return MakeFailure(
          kCheck, seed,
          StrFormat("estimate verdicts diverge with a %s profile: %s vs %s",
                    profile == &empty ? "empty" : "identity",
                    base_or.ok() ? "ok" : base_or.status().ToString().c_str(),
                    got_or.ok() ? "ok" : got_or.status().ToString().c_str()),
          &plan);
    }
    if (base_or.ok() && !PlanCostsIdentical(*base_or, *got_or)) {
      return MakeFailure(
          kCheck, seed,
          StrFormat("a %s calibration profile changed the estimate: "
                    "%.17g s vs %.17g s",
                    profile == &empty ? "empty" : "identity",
                    base_or->iteration_seconds, got_or->iteration_seconds),
          &plan);
    }
  }

  // (2) Hostile-float JSON round-trip: serialize -> parse -> serialize is
  // bit-exact (string equality implies bit-exact fields: %.17g is injective
  // on finite doubles, including the -0.0 sign).
  calibrate::CalibrationProfile hostile =
      GenerateCalibrationProfile(&rng, /*identity=*/false);
  const Status hostile_valid = hostile.Validate();
  if (!hostile_valid.ok()) {
    return MakeFailure(kCheck, seed,
                       StrFormat("generated profile fails Validate: %s",
                                 hostile_valid.ToString().c_str()));
  }
  const std::string json = calibrate::CalibrationProfileToJson(hostile);
  Result<calibrate::CalibrationProfile> reparsed_or =
      calibrate::ParseCalibrationProfileJson(json);
  if (!reparsed_or.ok()) {
    return MakeFailure(
        kCheck, seed,
        StrFormat("profile JSON does not parse back: %s (json: %s)",
                  reparsed_or.status().ToString().c_str(), json.c_str()));
  }
  const std::string json2 = calibrate::CalibrationProfileToJson(*reparsed_or);
  if (json != json2) {
    return MakeFailure(
        kCheck, seed,
        StrFormat("profile JSON round-trip not bit-exact:\n  %s\nvs\n  %s",
                  json.c_str(), json2.c_str()));
  }
  if (reparsed_or->groups.size() != hostile.groups.size()) {
    return MakeFailure(kCheck, seed,
                       "profile round-trip changed the group count");
  }

  // (3) Profile application is pricing-path independent: on a monotone
  // hierarchy with no collective contention, the mirror-graph cluster and
  // the level-priced cluster resolve every collective to the same LinkSpec
  // (class included), so a calibrated estimate is byte-identical on both.
  bool monotone = true;
  for (size_t i = 1; i < cluster.levels().size(); ++i) {
    const LinkSpec& inner = cluster.levels()[i - 1].link;
    const LinkSpec& outer = cluster.levels()[i].link;
    const bool ordered =
        outer.bandwidth_bytes_per_sec < inner.bandwidth_bytes_per_sec &&
        outer.latency_sec >= inner.latency_sec;
    if (!ordered && !(outer == inner)) monotone = false;
  }
  if (monotone) {
    Result<TopologyGraph> mirror_or = MakeMirrorTopology(cluster);
    if (!mirror_or.ok()) {
      return MakeFailure(kCheck, seed,
                         StrFormat("MakeMirrorTopology failed: %s",
                                   mirror_or.status().ToString().c_str()));
    }
    auto graph =
        std::make_shared<const TopologyGraph>(*std::move(mirror_or));
    bool contention_free = true;
    for (const StagePlan& stage : plan.stages) {
      for (int stride = 1; contention_free && stride <= stage.num_devices;
           stride *= 2) {
        for (int degree = 2; stride * degree <= stage.num_devices;
             degree *= 2) {
          if (graph->CollectiveContention(stage.first_device, stride, degree,
                                          stage.num_devices) != 1) {
            contention_free = false;
            break;
          }
        }
      }
    }
    if (contention_free) {
      const ClusterSpec big = cluster.WithMemoryBudget(int64_t{1} << 55);
      Result<ClusterSpec> big_mirrored_or = big.WithTopology(graph);
      if (!big_mirrored_or.ok()) {
        return MakeFailure(
            kCheck, seed,
            StrFormat("WithTopology rejected the mirror: %s",
                      big_mirrored_or.status().ToString().c_str()));
      }
      EstimatorOptions opts;
      opts.calibration = &hostile;
      const CostEstimator legacy(&big, opts);
      const CostEstimator graphed(&*big_mirrored_or, opts);
      const Result<PlanCost> legacy_or = legacy.EstimatePlan(model, plan);
      const Result<PlanCost> graphed_or = graphed.EstimatePlan(model, plan);
      if (legacy_or.ok() != graphed_or.ok()) {
        return MakeFailure(
            kCheck, seed,
            StrFormat("calibrated verdicts diverge legacy-vs-mirror: %s "
                      "vs %s",
                      legacy_or.ok()
                          ? "ok"
                          : legacy_or.status().ToString().c_str(),
                      graphed_or.ok()
                          ? "ok"
                          : graphed_or.status().ToString().c_str()),
            &plan);
      }
      if (legacy_or.ok() && !PlanCostsIdentical(*legacy_or, *graphed_or)) {
        return MakeFailure(
            kCheck, seed,
            StrFormat("calibrated estimates diverge legacy-vs-mirror: "
                      "%.17g s vs %.17g s",
                      legacy_or->iteration_seconds,
                      graphed_or->iteration_seconds),
            &plan);
      }
    }
  }
  return std::nullopt;
}

}  // namespace

std::string_view FuzzCheckToString(FuzzCheck check) {
  switch (check) {
    case FuzzCheck::kPlanValidity:
      return "plan-validity";
    case FuzzCheck::kSearchEquivalence:
      return "search-equivalence";
    case FuzzCheck::kMemoryModel:
      return "memory-model";
    case FuzzCheck::kJsonRoundTrip:
      return "json-roundtrip";
    case FuzzCheck::kSpecJsonRoundTrip:
      return "spec-json-roundtrip";
    case FuzzCheck::kTraceConservation:
      return "trace-conservation";
    case FuzzCheck::kTopologyIdentity:
      return "topology-identity";
    case FuzzCheck::kCalibrationIdentity:
      return "calibration-identity";
  }
  return "unknown";
}

Result<FuzzCheck> FuzzCheckFromString(const std::string& text) {
  if (text == "plan-validity") return FuzzCheck::kPlanValidity;
  if (text == "search-equivalence") return FuzzCheck::kSearchEquivalence;
  if (text == "memory-model") return FuzzCheck::kMemoryModel;
  if (text == "json-roundtrip") return FuzzCheck::kJsonRoundTrip;
  if (text == "spec-json-roundtrip") return FuzzCheck::kSpecJsonRoundTrip;
  if (text == "trace-conservation") return FuzzCheck::kTraceConservation;
  if (text == "topology-identity") return FuzzCheck::kTopologyIdentity;
  if (text == "calibration-identity") return FuzzCheck::kCalibrationIdentity;
  return Status::InvalidArgument(
      StrFormat("unknown check '%s' (expected plan-validity, "
                "search-equivalence, memory-model, json-roundtrip, "
                "spec-json-roundtrip, trace-conservation, "
                "topology-identity or calibration-identity)",
                text.c_str()));
}

uint64_t MixSeed(uint64_t base_seed, uint64_t check_index,
                 uint64_t iteration) {
  // Stateless SplitMix64 finalization of the three coordinates, so a
  // reported per-iteration seed replays directly through RunCheck.
  Rng mixer(base_seed + 0x9e3779b97f4a7c15ULL * (check_index + 1) +
            0xbf58476d1ce4e5b9ULL * (iteration + 1));
  return mixer.NextU64();
}

std::optional<CheckFailure> RunCheck(FuzzCheck check, uint64_t seed,
                                     const CheckOptions& options) {
  switch (check) {
    case FuzzCheck::kPlanValidity:
      return CheckPlanValidity(seed, options);
    case FuzzCheck::kSearchEquivalence:
      return CheckSearchEquivalence(seed, options);
    case FuzzCheck::kMemoryModel:
      return CheckMemoryModel(seed, options);
    case FuzzCheck::kJsonRoundTrip:
      return CheckJsonRoundTrip(seed, options);
    case FuzzCheck::kSpecJsonRoundTrip:
      return CheckSpecJsonRoundTrip(seed, options);
    case FuzzCheck::kTraceConservation:
      return CheckTraceConservation(seed, options);
    case FuzzCheck::kTopologyIdentity:
      return CheckTopologyIdentity(seed, options);
    case FuzzCheck::kCalibrationIdentity:
      return CheckCalibrationIdentity(seed, options);
  }
  return MakeFailure(check, seed, "unknown check");
}

FuzzReport RunFuzz(const FuzzOptions& options) {
  static const FuzzCheck kAll[] = {
      FuzzCheck::kPlanValidity,      FuzzCheck::kSearchEquivalence,
      FuzzCheck::kMemoryModel,       FuzzCheck::kJsonRoundTrip,
      FuzzCheck::kSpecJsonRoundTrip, FuzzCheck::kTraceConservation,
      FuzzCheck::kTopologyIdentity,   FuzzCheck::kCalibrationIdentity};
  std::vector<FuzzCheck> checks = options.checks;
  if (checks.empty()) checks.assign(kAll, kAll + kNumFuzzChecks);

  FuzzReport report;
  for (FuzzCheck check : checks) {
    int failures_for_check = 0;
    for (int i = 0; i < options.iterations; ++i) {
      if (failures_for_check >= options.max_failures_per_check) break;
      const uint64_t seed =
          MixSeed(options.seed, static_cast<uint64_t>(check),
                  static_cast<uint64_t>(i));
      std::optional<CheckFailure> failure =
          RunCheck(check, seed, options.check_options);
      ++report.iterations_run;
      if (failure.has_value()) {
        report.failures.push_back(*std::move(failure));
        ++failures_for_check;
      }
    }
  }
  return report;
}

}  // namespace galvatron
