#ifndef GALVATRON_TESTING_FUZZ_GENERATORS_H_
#define GALVATRON_TESTING_FUZZ_GENERATORS_H_

#include <string>

#include "cluster/cluster.h"
#include "ir/model.h"
#include "parallel/plan.h"
#include "util/result.h"
#include "util/rng.h"

namespace galvatron {

/// Knobs of the random instance generators. Defaults cover the repo's
/// interesting envelope (up to 8 devices, heterogeneous layer stacks) while
/// staying small enough that a differential check runs in milliseconds; the
/// search-equivalence check shrinks them further because brute force is
/// exponential in the layer count.
struct GeneratorOptions {
  /// Device-count cap; generated clusters have power-of-two sizes in
  /// [1, max_devices].
  int max_devices = 8;
  /// Layer-count cap for generated models (>= 4 so every archetype fits).
  int max_layers = 8;
  /// Inject quotes, backslashes, control characters, NUL and multi-byte
  /// UTF-8 into generated model names (half of the names when enabled).
  bool hostile_names = true;
  /// Per-device memory budget range, decimal GB.
  double min_memory_gb = 4.0;
  double max_memory_gb = 32.0;
  /// With probability 1/4, squeeze a contiguous device range's budget so
  /// heterogeneous-memory paths (MinMemoryInRange) get exercised.
  bool heterogeneous_memory = true;
  /// With probability 1/4, flip a contiguous device range to the other
  /// throughput generation (sometimes with a distinct small-batch
  /// half-life), so MinSustainedFlopsInRange / island paths get exercised.
  bool mixed_generation = true;
  /// With probability 1/4, attach the cluster's mirror TopologyGraph so
  /// graph-priced link queries run against the level-priced baseline.
  bool topology_graphs = true;
};

/// A random identifier. With `hostile` it is salted with JSON-significant
/// bytes: quotes, backslashes, short-escape and \uXXXX control characters,
/// embedded NUL and a multi-byte UTF-8 sequence — everything EscapeJson and
/// the parser's string path must survive.
std::string GenerateName(Rng* rng, bool hostile);

/// A random heterogeneous model: one of four archetypes (encoder-only
/// stack; embedding + encoders + head; Swin-like with a patch-merge in the
/// middle; T5-like encoder+decoder with embedding and head), with random
/// hidden/sequence dims sized so TP degrees up to 8 divide evenly.
ModelSpec GenerateModel(Rng* rng, const GeneratorOptions& options = {});

/// A random homogeneous-topology cluster: power-of-two device count split
/// into power-of-two nodes, mixed intra/inter link classes, random memory
/// budget (optionally squeezed on a device range — see GeneratorOptions).
ClusterSpec GenerateCluster(Rng* rng, const GeneratorOptions& options = {});

/// A random TrainingPlan for (model, cluster): random power-of-two PP
/// degree capped by the layer count, random contiguous layer partition,
/// per-layer strategies drawn from the stage width's decision trees
/// (uniform-per-stage half the time), random schedule / micro-batch count /
/// global batch, and occasional per-layer recompute flags. The plan always
/// passes TrainingPlan::Validate; it may legitimately not fit in memory
/// (the memory-model check wants both sides of the OOM verdict).
Result<TrainingPlan> GeneratePlan(Rng* rng, const ModelSpec& model,
                                  const ClusterSpec& cluster);

}  // namespace galvatron

#endif  // GALVATRON_TESTING_FUZZ_GENERATORS_H_
