#include "testing/fuzz_generators.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "ir/transformer_builder.h"
#include "parallel/decision_tree.h"
#include "util/math_util.h"
#include "util/string_util.h"

namespace galvatron {

namespace {

int NextIntBelow(Rng* rng, int n) {
  return static_cast<int>(rng->NextBelow(static_cast<uint64_t>(n)));
}

/// log2 of a power of two.
int Log2(int n) {
  int log = 0;
  while ((1 << log) < n) ++log;
  return log;
}

/// A power of two in [1, cap] (cap itself a power of two), log-uniform.
int RandomPowerOfTwo(Rng* rng, int cap) {
  return 1 << NextIntBelow(rng, Log2(cap) + 1);
}

}  // namespace

std::string GenerateName(Rng* rng, bool hostile) {
  static const char kPlain[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_.";
  std::string name = "m";
  const int len = 2 + NextIntBelow(rng, 12);
  for (int i = 0; i < len; ++i) {
    name += kPlain[rng->NextBelow(sizeof(kPlain) - 1)];
  }
  if (!hostile) return name;
  // JSON-significant bytes: quote, backslash, the short-escape control
  // characters, controls with no short escape (forced \uXXXX), DEL, NUL.
  static const char kHostile[] = {'"',    '\\',   '\n', '\t', '\r',
                                  '\b',   '\f',   '\x01', '\x0b', '\x1f',
                                  '\x7f', '\0',   '/',  ' '};
  const int injections = 1 + NextIntBelow(rng, 4);
  for (int i = 0; i < injections; ++i) {
    const size_t at = rng->NextBelow(name.size() + 1);
    name.insert(name.begin() + static_cast<std::ptrdiff_t>(at),
                kHostile[rng->NextBelow(sizeof(kHostile))]);
  }
  if (rng->NextBelow(2) == 0) {
    name += "\xc3\xa9";  // a multi-byte UTF-8 code point (e-acute)
  }
  return name;
}

ModelSpec GenerateModel(Rng* rng, const GeneratorOptions& options) {
  const int max_layers = std::max(4, options.max_layers);
  const bool hostile = options.hostile_names && rng->NextBelow(2) == 0;
  std::string name = GenerateName(rng, hostile);

  // Dims sized so every TP degree up to 8 divides heads/hidden/seq evenly.
  TransformerBlockDims dims;
  dims.hidden = int64_t{128} << rng->NextBelow(3);  // 128 / 256 / 512
  dims.seq = int64_t{64} << rng->NextBelow(3);      // 64 / 128 / 256
  dims.heads = 8;
  dims.intermediate = 4 * dims.hidden;
  dims.attend_width = dims.seq;
  dims.use_dropout = rng->NextBelow(2) == 0;
  const int64_t vocab = 1000 * (1 + static_cast<int64_t>(rng->NextBelow(8)));

  std::vector<LayerSpec> layers;
  switch (rng->NextBelow(4)) {
    case 0: {  // encoder-only stack (BERT-body-like)
      const int blocks = 1 + NextIntBelow(rng, max_layers);
      for (int i = 0; i < blocks; ++i) {
        layers.push_back(BuildEncoderLayer(StrFormat("enc%d", i), dims));
      }
      break;
    }
    case 1: {  // embedding + encoders + head (BERT/ViT-like)
      const int blocks = 1 + NextIntBelow(rng, max_layers - 2);
      layers.push_back(BuildTokenEmbeddingLayer("embed", vocab, dims.seq,
                                                dims.hidden,
                                                /*learned_positions=*/true));
      for (int i = 0; i < blocks; ++i) {
        layers.push_back(BuildEncoderLayer(StrFormat("enc%d", i), dims));
      }
      layers.push_back(BuildHeadLayer("head", dims.seq, dims.hidden, vocab,
                                      /*include_pooler=*/true));
      break;
    }
    case 2: {  // Swin-like: blocks, patch-merge downsample, wider blocks
      const int blocks = 2 + NextIntBelow(rng, max_layers - 2);  // + 1 merge
      const int before = 1 + NextIntBelow(rng, blocks - 1);
      for (int i = 0; i < before; ++i) {
        layers.push_back(BuildEncoderLayer(StrFormat("stage0_%d", i), dims));
      }
      TransformerBlockDims merged = dims;
      merged.seq = dims.seq / 4;
      merged.hidden = dims.hidden * 2;
      merged.intermediate = 4 * merged.hidden;
      merged.attend_width = merged.seq;
      layers.push_back(BuildPatchMergeLayer("merge", merged.seq, dims.hidden,
                                            merged.hidden));
      for (int i = 0; i < blocks - before; ++i) {
        layers.push_back(BuildEncoderLayer(StrFormat("stage1_%d", i), merged));
      }
      break;
    }
    default: {  // T5-like: embedding + encoders + decoders + head
      const int blocks = 2 + NextIntBelow(rng, max_layers - 3);
      const int enc = 1 + NextIntBelow(rng, blocks - 1);
      layers.push_back(BuildTokenEmbeddingLayer("embed", vocab, dims.seq,
                                                dims.hidden,
                                                /*learned_positions=*/false));
      for (int i = 0; i < enc; ++i) {
        layers.push_back(BuildEncoderLayer(StrFormat("enc%d", i), dims));
      }
      for (int i = 0; i < blocks - enc; ++i) {
        layers.push_back(
            BuildDecoderLayer(StrFormat("dec%d", i), dims, dims.seq));
      }
      layers.push_back(BuildHeadLayer("lm_head", dims.seq, dims.hidden, vocab,
                                      /*include_pooler=*/false));
      break;
    }
  }
  return ModelSpec(std::move(name), std::move(layers));
}

ClusterSpec GenerateCluster(Rng* rng, const GeneratorOptions& options) {
  const int num_devices = RandomPowerOfTwo(rng, std::max(1, options.max_devices));
  const int num_nodes = RandomPowerOfTwo(rng, num_devices);
  const int64_t memory = static_cast<int64_t>(
      rng->NextDouble(options.min_memory_gb, options.max_memory_gb) * 1e9);
  const double flops = rng->NextBelow(2) == 0 ? 14e12 : 60e12;
  const LinkClass intra =
      rng->NextBelow(2) == 0 ? LinkClass::kNvLink : LinkClass::kPcie3;
  const LinkClass inter = rng->NextBelow(2) == 0 ? LinkClass::kInfiniBand100
                                                 : LinkClass::kEthernet10;
  ClusterSpec cluster =
      MakeHomogeneousCluster("fuzz-cluster", num_nodes,
                             num_devices / num_nodes, memory, flops, intra,
                             inter);
  if (options.heterogeneous_memory && num_devices > 1 &&
      rng->NextBelow(4) == 0) {
    // Squeeze a contiguous block so per-stage MinMemoryInRange matters.
    const int count = 1 + NextIntBelow(rng, num_devices - 1);
    const int first = NextIntBelow(rng, num_devices - count + 1);
    const int64_t squeezed =
        static_cast<int64_t>(memory * rng->NextDouble(0.5, 1.0));
    cluster = cluster.WithDeviceMemoryRange(first, count, squeezed);
  }
  if (options.mixed_generation && num_devices > 1 && rng->NextBelow(4) == 0) {
    // Flip a contiguous block to the other generation so per-range
    // throughput queries and island derivation get exercised.
    const int count = 1 + NextIntBelow(rng, num_devices - 1);
    const int first = NextIntBelow(rng, num_devices - count + 1);
    const double other_flops = flops == 14e12 ? 60e12 : 14e12;
    const double half_life = rng->NextBelow(2) == 0 ? 0.0 : 2.0;
    cluster =
        cluster.WithDeviceComputeRange(first, count, other_flops, half_life);
  }
  if (options.topology_graphs && rng->NextBelow(4) == 0) {
    // Attach the mirror graph: link queries switch to graph pricing, which
    // the topology-identity check compares against the level answers.
    auto mirror = MakeMirrorTopology(cluster);
    if (mirror.ok()) {
      auto graph_backed = cluster.WithTopology(
          std::make_shared<const TopologyGraph>(*std::move(mirror)));
      if (graph_backed.ok()) cluster = *std::move(graph_backed);
    }
  }
  return cluster;
}

Result<TrainingPlan> GeneratePlan(Rng* rng, const ModelSpec& model,
                                  const ClusterSpec& cluster) {
  const int num_devices = cluster.num_devices();
  const int num_layers = model.num_layers();

  // PP degree: a power-of-two divisor of the device count, at most one
  // stage per layer.
  std::vector<int> pp_choices;
  for (int pp : PowerOfTwoDivisors(num_devices)) {
    if (pp <= num_layers) pp_choices.push_back(pp);
  }
  const int pp = pp_choices[rng->NextBelow(pp_choices.size())];
  const int width = num_devices / pp;
  GALVATRON_ASSIGN_OR_RETURN(std::vector<HybridStrategy> candidates,
                             EnumerateSingleLayerStrategies(width));

  // Random contiguous partition: pp - 1 distinct cut points in [1, L - 1],
  // drawn by a partial Fisher-Yates shuffle.
  std::vector<int> positions;
  for (int i = 1; i < num_layers; ++i) positions.push_back(i);
  for (int i = 0; i < pp - 1; ++i) {
    const int j =
        i + NextIntBelow(rng, static_cast<int>(positions.size()) - i);
    std::swap(positions[static_cast<size_t>(i)],
              positions[static_cast<size_t>(j)]);
  }
  std::vector<int> cuts(positions.begin(), positions.begin() + (pp - 1));
  cuts.push_back(0);
  cuts.push_back(num_layers);
  std::sort(cuts.begin(), cuts.end());

  TrainingPlan plan;
  plan.model_name = model.name();
  plan.schedule = rng->NextBelow(2) == 0 ? PipelineSchedule::kGPipe
                                         : PipelineSchedule::k1F1B;
  const int m = RandomPowerOfTwo(rng, 8);
  plan.num_micro_batches = m;
  plan.global_batch = m * (1 + NextIntBelow(rng, 8));

  for (int s = 0; s < pp; ++s) {
    StagePlan stage;
    stage.first_device = s * width;
    stage.num_devices = width;
    stage.first_layer = cuts[static_cast<size_t>(s)];
    stage.num_layers =
        cuts[static_cast<size_t>(s) + 1] - cuts[static_cast<size_t>(s)];
    const bool uniform = rng->NextBelow(2) == 0;
    const HybridStrategy& pick =
        candidates[rng->NextBelow(candidates.size())];
    for (int l = 0; l < stage.num_layers; ++l) {
      stage.layer_strategies.push_back(
          uniform ? pick : candidates[rng->NextBelow(candidates.size())]);
    }
    if (rng->NextBelow(3) == 0) {
      for (int l = 0; l < stage.num_layers; ++l) {
        stage.recompute.push_back(rng->NextBelow(2) == 0 ? 1 : 0);
      }
    }
    plan.stages.push_back(std::move(stage));
  }

  GALVATRON_RETURN_IF_ERROR(plan.Validate(model, num_devices));
  return plan;
}

}  // namespace galvatron
