#include "baselines/baselines.h"

#include <algorithm>
#include <chrono>

#include "parallel/pipeline_partition.h"
#include "parallel/plan.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace galvatron {

std::string_view BaselineKindToString(BaselineKind kind) {
  switch (kind) {
    case BaselineKind::kPureDp:
      return "PyTorch DDP (DP)";
    case BaselineKind::kPureTp:
      return "Megatron (TP)";
    case BaselineKind::kPurePp:
      return "PyTorch GPipe (PP)";
    case BaselineKind::kPureSdp:
      return "FSDP/ZeRO-3 (SDP)";
    case BaselineKind::kDeepSpeed3d:
      return "DeepSpeed 3D";
    case BaselineKind::kAutoDpTp:
      return "Galvatron (DP+TP)";
    case BaselineKind::kAutoDpPp:
      return "Galvatron (DP+PP)";
    case BaselineKind::kGalvatron:
      return "Galvatron (ours)";
  }
  return "?";
}

std::vector<BaselineKind> AllBaselineKinds() {
  return {BaselineKind::kPureDp,      BaselineKind::kPureTp,
          BaselineKind::kPurePp,      BaselineKind::kPureSdp,
          BaselineKind::kDeepSpeed3d, BaselineKind::kAutoDpTp,
          BaselineKind::kAutoDpPp,    BaselineKind::kGalvatron};
}

namespace {

/// Sweeps batch size (and micro-batch count for pipelined plans) for a
/// fixed (pp_degree, per-stage strategy) configuration; returns the best
/// estimated plan.
Result<OptimizationResult> SweepFixedStrategy(const ModelSpec& model,
                                              const ClusterSpec& cluster,
                                              const BaselineOptions& options,
                                              int pp_degree,
                                              const HybridStrategy& strategy) {
  const auto start = std::chrono::steady_clock::now();
  CostEstimator estimator(&cluster, options.estimator);
  GALVATRON_ASSIGN_OR_RETURN(
      std::vector<int> stage_sizes,
      PartitionPipeline(model, pp_degree, options.partition_policy));

  OptimizationResult best;
  bool have_best = false;
  SearchStats stats;
  stats.num_candidate_strategies = 1;

  for (int batch = options.batch_step; batch <= options.max_batch;
       batch += options.batch_step) {
    std::vector<int> micro_counts;
    if (pp_degree == 1) {
      micro_counts.push_back(1);
    } else {
      for (int mult : options.micro_batch_multipliers) {
        const int m = pp_degree * mult;
        if (m <= batch) micro_counts.push_back(m);
      }
      if (micro_counts.empty() && pp_degree <= batch) {
        micro_counts.push_back(pp_degree);
      }
    }
    // The batch is still too small to fill the pipeline: keep growing it
    // rather than concluding the configuration is infeasible.
    if (micro_counts.empty()) continue;
    bool any_feasible = false;
    for (int micro : micro_counts) {
      ++stats.configs_explored;
      auto plan = MakeUniformPlan(model, cluster.num_devices(), pp_degree,
                                  stage_sizes, strategy, batch, micro);
      if (!plan.ok()) continue;
      auto cost = estimator.EstimatePlan(model, *plan);
      if (!cost.ok()) {
        if (cost.status().IsOutOfMemory()) continue;
        return cost.status();
      }
      any_feasible = true;
      if (!have_best ||
          cost->throughput_samples_per_sec >
              best.estimated.throughput_samples_per_sec) {
        best.plan = *std::move(plan);
        best.estimated = *std::move(cost);
        have_best = true;
      }
    }
    if (!any_feasible) break;
  }
  if (!have_best) {
    return Status::Infeasible(
        StrFormat("%s does not fit", strategy.ToString().c_str()));
  }
  stats.search_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  best.stats = stats;
  return best;
}

Result<HybridStrategy> SingleDim(ParallelDim dim, int degree) {
  if (degree == 1) return HybridStrategy();
  return HybridStrategy::Create({{dim, degree}});
}

}  // namespace

Result<OptimizationResult> RunBaseline(BaselineKind kind,
                                       const ModelSpec& model,
                                       const ClusterSpec& cluster,
                                       const BaselineOptions& options) {
  const int n = cluster.num_devices();
  switch (kind) {
    case BaselineKind::kPureDp: {
      GALVATRON_ASSIGN_OR_RETURN(HybridStrategy s,
                                 SingleDim(ParallelDim::kData, n));
      return SweepFixedStrategy(model, cluster, options, /*pp_degree=*/1, s);
    }
    case BaselineKind::kPureTp: {
      GALVATRON_ASSIGN_OR_RETURN(HybridStrategy s,
                                 SingleDim(ParallelDim::kTensor, n));
      return SweepFixedStrategy(model, cluster, options, /*pp_degree=*/1, s);
    }
    case BaselineKind::kPureSdp: {
      GALVATRON_ASSIGN_OR_RETURN(HybridStrategy s,
                                 SingleDim(ParallelDim::kShardedData, n));
      return SweepFixedStrategy(model, cluster, options, /*pp_degree=*/1, s);
    }
    case BaselineKind::kPurePp: {
      // N-way pipeline, one device per stage, serial within stages.
      if (n > model.num_layers()) {
        return Status::Infeasible("more stages than layers");
      }
      return SweepFixedStrategy(model, cluster, options, /*pp_degree=*/n,
                                HybridStrategy());
    }
    case BaselineKind::kDeepSpeed3d: {
      // The officially-suggested fixed 3D recipe: 2-way TP (innermost,
      // fastest links), 2-way PP, data parallelism on the rest.
      if (n < 8) {
        return Status::InvalidArgument("DeepSpeed 3D preset needs >= 8 GPUs");
      }
      const int dp = n / 4;
      GALVATRON_ASSIGN_OR_RETURN(
          HybridStrategy s,
          HybridStrategy::Create(
              {{ParallelDim::kTensor, 2}, {ParallelDim::kData, dp}}));
      return SweepFixedStrategy(model, cluster, options, /*pp_degree=*/2, s);
    }
    case BaselineKind::kAutoDpTp: {
      OptimizerOptions opt;
      opt.tree.allow_sdp = false;
      opt.tree.fixed_order = true;
      opt.pp_degrees = {1};
      opt.estimator = options.estimator;
      opt.partition_policy = options.partition_policy;
      opt.batch_step = options.batch_step;
      opt.max_batch = options.max_batch;
      opt.micro_batch_multipliers = options.micro_batch_multipliers;
      opt.memory_granularity = options.memory_granularity;
      opt.search_threads = options.search_threads;
      opt.use_sparse_dp = options.use_sparse_dp;
      return Optimizer(&cluster, opt).Optimize(model);
    }
    case BaselineKind::kAutoDpPp: {
      OptimizerOptions opt;
      opt.tree.allow_sdp = false;
      opt.tree.allow_tp = false;
      opt.tree.fixed_order = true;
      opt.estimator = options.estimator;
      opt.partition_policy = options.partition_policy;
      opt.batch_step = options.batch_step;
      opt.max_batch = options.max_batch;
      opt.micro_batch_multipliers = options.micro_batch_multipliers;
      opt.memory_granularity = options.memory_granularity;
      opt.search_threads = options.search_threads;
      opt.use_sparse_dp = options.use_sparse_dp;
      return Optimizer(&cluster, opt).Optimize(model);
    }
    case BaselineKind::kGalvatron: {
      OptimizerOptions opt;
      opt.estimator = options.estimator;
      opt.partition_policy = options.partition_policy;
      opt.batch_step = options.batch_step;
      opt.max_batch = options.max_batch;
      opt.micro_batch_multipliers = options.micro_batch_multipliers;
      opt.memory_granularity = options.memory_granularity;
      opt.search_threads = options.search_threads;
      opt.use_sparse_dp = options.use_sparse_dp;
      return Optimizer(&cluster, opt).Optimize(model);
    }
  }
  return Status::InvalidArgument("unknown baseline");
}

}  // namespace galvatron
