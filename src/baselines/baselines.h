#ifndef GALVATRON_BASELINES_BASELINES_H_
#define GALVATRON_BASELINES_BASELINES_H_

#include <string>
#include <string_view>
#include <vector>

#include "cluster/cluster.h"
#include "ir/model.h"
#include "search/optimizer.h"
#include "util/result.h"

namespace galvatron {

/// The competing systems of Table 1/3/4 (Sec 5.1), re-implemented over the
/// same cost substrate:
///   - kPureDp:   PyTorch DDP — N-way data parallelism.
///   - kPureTp:   Megatron — N-way tensor parallelism.
///   - kPurePp:   PyTorch GPipe — N-way pipeline parallelism.
///   - kPureSdp:  FairScale FSDP / DeepSpeed ZeRO-3 — N-way sharded DP.
///   - kDeepSpeed3d: the expert-designed fixed 3D combination (2-way
///     DP x TP x PP on 8 GPUs, scaled as dp = N/4 beyond).
///   - kAutoDpTp: automatic search restricted to DP+TP (OptCNN/FlexFlow-
///     style, "Galvatron (DP+TP)").
///   - kAutoDpPp: automatic search restricted to DP+PP (PipeDream/DAPPLE-
///     style, "Galvatron (DP+PP)").
///   - kGalvatron: the full search.
enum class BaselineKind {
  kPureDp,
  kPureTp,
  kPurePp,
  kPureSdp,
  kDeepSpeed3d,
  kAutoDpTp,
  kAutoDpPp,
  kGalvatron,
};

std::string_view BaselineKindToString(BaselineKind kind);
std::vector<BaselineKind> AllBaselineKinds();

/// Extra knobs shared by all baseline runners.
struct BaselineOptions {
  EstimatorOptions estimator;
  int batch_step = 8;
  int max_batch = 4096;
  /// PP partition policy for pipeline-using baselines.
  PartitionPolicy partition_policy = PartitionPolicy::kFlops;
  /// Micro-batch multipliers swept for pipelined plans.
  std::vector<int> micro_batch_multipliers = {1, 2, 4, 8};
  int64_t memory_granularity = int64_t{32} * 1024 * 1024;
  /// Worker threads for the optimizer-backed baselines' strategy sweep
  /// (1 = serial, 0 = hardware concurrency). Results are thread-count
  /// independent; see OptimizerOptions::search_threads.
  int search_threads = 1;
  /// DP kernel for the optimizer-backed baselines; plans are byte-identical
  /// either way (see OptimizerOptions::use_sparse_dp).
  bool use_sparse_dp = true;
};

/// Finds `kind`'s best feasible configuration on (model, cluster): sweeps
/// the batch size (and micro-batches / partitioning where applicable) and
/// returns the plan maximizing estimated throughput. Returns Infeasible
/// when nothing fits — the "OOM" cells of Table 1.
Result<OptimizationResult> RunBaseline(BaselineKind kind,
                                       const ModelSpec& model,
                                       const ClusterSpec& cluster,
                                       const BaselineOptions& options = {});

}  // namespace galvatron

#endif  // GALVATRON_BASELINES_BASELINES_H_
