#ifndef GALVATRON_IR_MODEL_ZOO_H_
#define GALVATRON_IR_MODEL_ZOO_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ir/model.h"

namespace galvatron {

/// The ten experimental models of Table 2.
enum class ModelId {
  kBertHuge32,
  kBertHuge48,
  kBertXHuge,
  kViTHuge32,
  kViTHuge48,
  kViTXHuge,
  kT5Large32,
  kT5Large48,
  kSwinHuge32,
  kSwinHuge48,
};

std::string_view ModelIdToString(ModelId id);
std::vector<ModelId> AllModelIds();

/// BERT-style encoder-only configuration (also used for RoBERTa-likes).
struct BertConfig {
  int num_layers = 24;
  int64_t hidden = 1024;
  int64_t heads = 16;
  int64_t seq = 512;
  int64_t vocab = 30522;
};

/// ViT configuration (image_size/patch give the token count, +1 CLS token).
struct VitConfig {
  int num_layers = 24;
  int64_t hidden = 1024;
  int64_t heads = 16;
  int64_t image_size = 224;
  int64_t patch = 16;
  int64_t channels = 3;
  int64_t classes = 1000;
};

/// T5 encoder-decoder configuration (symmetric halves, tied embeddings).
struct T5Config {
  int num_encoder_layers = 12;
  int num_decoder_layers = 12;
  int64_t hidden = 1024;
  int64_t heads = 16;
  int64_t seq = 512;
  int64_t vocab = 32128;
};

/// Swin hierarchical configuration: 4 stages with doubling widths and
/// 2x2 patch-merging between stages; window attention of `window^2` keys.
struct SwinConfig {
  std::vector<int> depths = {2, 2, 26, 2};
  std::vector<int64_t> widths = {320, 640, 1280, 2560};
  std::vector<int64_t> heads = {10, 20, 40, 80};
  int64_t image_size = 224;
  int64_t patch = 4;
  int64_t channels = 3;
  int64_t window = 7;
  int64_t classes = 1000;
};

ModelSpec BuildBert(const std::string& name, const BertConfig& config);
ModelSpec BuildVit(const std::string& name, const VitConfig& config);
ModelSpec BuildT5(const std::string& name, const T5Config& config);
ModelSpec BuildSwin(const std::string& name, const SwinConfig& config);

/// Builds one of the paper's models with its Table 2 configuration.
ModelSpec BuildModel(ModelId id);

/// Row of Table 2 regenerated from the IR calculus.
struct ModelStatistics {
  std::string model_name;
  std::string layer_desc;    // e.g. "32", "16 Enc.+16 Dec.", "2/2/26/2"
  std::string hidden_desc;   // e.g. "1280", "320/640/1280/2560"
  int64_t param_count = 0;
  int64_t activation_bytes_per_sample = 0;
  double fwd_flops_per_sample = 0.0;
};

ModelStatistics ComputeStatistics(const ModelSpec& model);

}  // namespace galvatron

#endif  // GALVATRON_IR_MODEL_ZOO_H_
