#include "ir/tensor_shape.h"

#include <sstream>

namespace galvatron {

std::string TensorShape::ToString() const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (i > 0) os << ", ";
    os << dims_[i];
  }
  os << "]";
  return os.str();
}

}  // namespace galvatron
