#ifndef GALVATRON_IR_LAYER_H_
#define GALVATRON_IR_LAYER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ir/op.h"
#include "util/result.h"

namespace galvatron {

/// Coarse layer categories; the pipeline partitioner and plan printer use
/// these for reporting, and Swin's multi-scale stages produce several
/// distinct kinds within one model.
enum class LayerKind {
  kEmbedding,
  kEncoder,
  kDecoder,      // decoder block: self-attention + cross-attention + MLP
  kPatchMerge,   // Swin downsampling between stages
  kHead,         // classifier / LM head
};

std::string_view LayerKindToString(LayerKind kind);

/// Inverse of LayerKindToString; unknown names are InvalidArgument.
Result<LayerKind> LayerKindFromString(std::string_view name);

/// One model layer: an ordered list of primitive ops plus boundary tensor
/// sizes. All byte/flop quantities are per sample; the cost model scales
/// them by the local batch size.
class LayerSpec {
 public:
  LayerSpec(std::string name, LayerKind kind, std::vector<OpSpec> ops,
            int64_t input_bytes, int64_t output_bytes);

  const std::string& name() const { return name_; }
  LayerKind kind() const { return kind_; }
  const std::vector<OpSpec>& ops() const { return ops_; }

  /// Bytes per sample of the activation entering / leaving this layer
  /// (pipeline boundary transfers and Slice-Gather redistribution operate
  /// on these).
  int64_t input_bytes() const { return input_bytes_; }
  int64_t output_bytes() const { return output_bytes_; }

  /// Total trainable parameters.
  int64_t param_count() const { return param_count_; }

  /// Parameters that a TP degree `t` divides (column/row/vocab-parallel
  /// weights). The remainder (layer norms, biases of replicated ops) is
  /// replicated on every TP rank.
  int64_t tp_shardable_params() const { return tp_shardable_params_; }

  /// Forward FLOPs per sample (backward is modelled as 2x).
  double fwd_flops() const { return fwd_flops_; }

  /// The share of fwd_flops() that a TP degree t divides (matmuls and the
  /// sharded elementwise ops between them). The rest is executed on every
  /// TP rank.
  double tp_shardable_flops() const { return tp_shardable_flops_; }

  /// Bytes per sample stashed for backward when running with TP degree `t`:
  /// sharded tensors divide by t, replicated tensors do not.
  int64_t SavedActivationBytes(int tp_degree) const;

  /// Same under Megatron-style sequence parallelism: the layer norms,
  /// residuals and dropouts between the TP regions are sharded along the
  /// sequence dimension, so the "replicated" share divides by t as well.
  int64_t SavedActivationBytesSequenceParallel(int tp_degree) const;

  /// Bytes per sample all-reduced across the TP group in the forward pass
  /// (outputs of row/vocab-parallel ops — Megatron's `g`).
  int64_t tp_fwd_allreduce_bytes() const { return tp_fwd_allreduce_bytes_; }

  /// Bytes per sample all-reduced across the TP group in the backward pass
  /// (input gradients of column-parallel ops — Megatron's `f`).
  int64_t tp_bwd_allreduce_bytes() const { return tp_bwd_allreduce_bytes_; }

  /// A short structural signature: layers with equal signatures have
  /// identical costs under every strategy, enabling memoized search.
  const std::string& signature() const { return signature_; }

 private:
  std::string name_;
  LayerKind kind_;
  std::vector<OpSpec> ops_;
  int64_t input_bytes_;
  int64_t output_bytes_;

  // Derived aggregates (computed once in the constructor).
  int64_t param_count_ = 0;
  int64_t tp_shardable_params_ = 0;
  double fwd_flops_ = 0.0;
  double tp_shardable_flops_ = 0.0;
  int64_t saved_sharded_bytes_ = 0;
  int64_t saved_replicated_bytes_ = 0;
  int64_t tp_fwd_allreduce_bytes_ = 0;
  int64_t tp_bwd_allreduce_bytes_ = 0;
  std::string signature_;
};

}  // namespace galvatron

#endif  // GALVATRON_IR_LAYER_H_
