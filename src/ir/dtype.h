#ifndef GALVATRON_IR_DTYPE_H_
#define GALVATRON_IR_DTYPE_H_

#include <cstdint>
#include <string_view>

namespace galvatron {

/// Element types used by the tensor calculus. The paper trains in fp32 with
/// Adam (recompute disabled), which is what the model zoo defaults to.
enum class DataType {
  kF32,
  kF16,
  kBF16,
  kI64,
  kU8,
};

/// Bytes per element of `dtype`.
constexpr int64_t SizeOf(DataType dtype) {
  switch (dtype) {
    case DataType::kF32:
      return 4;
    case DataType::kF16:
    case DataType::kBF16:
      return 2;
    case DataType::kI64:
      return 8;
    case DataType::kU8:
      return 1;
  }
  return 0;
}

std::string_view DataTypeToString(DataType dtype);

/// Bytes of optimizer+model state per parameter for fp32 Adam training:
/// weight (4) + gradient (4) + momentum (4) + variance (4).
constexpr int64_t kAdamStateBytesPerParam = 16;

}  // namespace galvatron

#endif  // GALVATRON_IR_DTYPE_H_
