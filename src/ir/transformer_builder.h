#ifndef GALVATRON_IR_TRANSFORMER_BUILDER_H_
#define GALVATRON_IR_TRANSFORMER_BUILDER_H_

#include <cstdint>
#include <string>

#include "ir/layer.h"

namespace galvatron {

/// Dimensions of one attention+MLP Transformer block.
///
/// `attend_width` is the number of keys each query attends to: `seq` for
/// full attention (BERT/ViT/T5), the window area (49) for Swin's
/// window-based attention.
struct TransformerBlockDims {
  int64_t seq = 0;           // tokens per sample
  int64_t hidden = 0;        // model width H
  int64_t heads = 0;         // attention heads
  int64_t intermediate = 0;  // MLP inner width (usually 4H)
  int64_t attend_width = 0;  // keys attended per query
  bool use_dropout = true;   // ViT/Swin train without dropout
};

/// Builds a standard encoder block (self-attention + MLP) with Megatron-style
/// TP annotations: QKV/fc1 column-parallel, proj/fc2 row-parallel, the ops
/// between them sharded, layer norms and residuals replicated.
LayerSpec BuildEncoderLayer(const std::string& name,
                            const TransformerBlockDims& dims);

/// Builds a decoder block: self-attention + cross-attention (keys/values of
/// length `memory_seq` from the encoder) + MLP. 16 H^2 matmul parameters vs
/// the encoder's 12 H^2.
LayerSpec BuildDecoderLayer(const std::string& name,
                            const TransformerBlockDims& dims,
                            int64_t memory_seq);

/// Token embedding (+ learned positions when `learned_positions`), vocab-
/// parallel under TP. `param_vocab` may be 0 for weight-tied embeddings
/// (T5 decoder side) — compute still happens, parameters are counted once.
LayerSpec BuildTokenEmbeddingLayer(const std::string& name, int64_t vocab,
                                   int64_t seq, int64_t hidden,
                                   bool learned_positions,
                                   bool tied_weights = false);

/// ViT/Swin patchification stem: conv-equivalent linear projection of
/// `channels * patch^2` pixels per token into `hidden`, plus positions.
LayerSpec BuildPatchEmbedLayer(const std::string& name, int64_t num_patches,
                               int64_t patch, int64_t channels, int64_t hidden,
                               bool learned_positions);

/// Swin patch-merging downsampling: concatenates 2x2 neighbourhoods
/// (4*hidden_in) and projects to hidden_out = 2*hidden_in.
LayerSpec BuildPatchMergeLayer(const std::string& name, int64_t out_seq,
                               int64_t hidden_in, int64_t hidden_out);

/// Classification / pooling head projecting `hidden` to `classes`
/// (vocab-parallel under TP). `classes` may be 0 for a pooler-only head.
LayerSpec BuildHeadLayer(const std::string& name, int64_t seq, int64_t hidden,
                         int64_t classes, bool include_pooler);

}  // namespace galvatron

#endif  // GALVATRON_IR_TRANSFORMER_BUILDER_H_
