#include "ir/model.h"

#include "util/logging.h"

namespace galvatron {

ModelSpec::ModelSpec(std::string name, std::vector<LayerSpec> layers)
    : name_(std::move(name)), layers_(std::move(layers)) {
  GALVATRON_CHECK(!layers_.empty()) << "model " << name_ << " has no layers";
}

int64_t ModelSpec::TotalParams() const {
  int64_t total = 0;
  for (const LayerSpec& l : layers_) total += l.param_count();
  return total;
}

int64_t ModelSpec::TotalActivationBytesPerSample() const {
  int64_t total = 0;
  for (const LayerSpec& l : layers_) total += l.SavedActivationBytes(1);
  return total;
}

double ModelSpec::TotalFwdFlops() const {
  double total = 0;
  for (const LayerSpec& l : layers_) total += l.fwd_flops();
  return total;
}

int ModelSpec::NumTransformerBlocks() const {
  int count = 0;
  for (const LayerSpec& l : layers_) {
    if (l.kind() == LayerKind::kEncoder || l.kind() == LayerKind::kDecoder) {
      ++count;
    }
  }
  return count;
}

}  // namespace galvatron
