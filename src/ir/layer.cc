#include "ir/layer.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace galvatron {

std::string_view LayerKindToString(LayerKind kind) {
  switch (kind) {
    case LayerKind::kEmbedding:
      return "Embedding";
    case LayerKind::kEncoder:
      return "Encoder";
    case LayerKind::kDecoder:
      return "Decoder";
    case LayerKind::kPatchMerge:
      return "PatchMerge";
    case LayerKind::kHead:
      return "Head";
  }
  return "Unknown";
}

Result<LayerKind> LayerKindFromString(std::string_view name) {
  static constexpr LayerKind kAll[] = {
      LayerKind::kEmbedding, LayerKind::kEncoder, LayerKind::kDecoder,
      LayerKind::kPatchMerge, LayerKind::kHead,
  };
  for (LayerKind kind : kAll) {
    if (LayerKindToString(kind) == name) return kind;
  }
  return Status::InvalidArgument("unknown layer kind '" + std::string(name) +
                                 "'");
}

LayerSpec::LayerSpec(std::string name, LayerKind kind, std::vector<OpSpec> ops,
                     int64_t input_bytes, int64_t output_bytes)
    : name_(std::move(name)),
      kind_(kind),
      ops_(std::move(ops)),
      input_bytes_(input_bytes),
      output_bytes_(output_bytes) {
  for (const OpSpec& op : ops_) {
    param_count_ += op.param_count;
    fwd_flops_ += op.fwd_flops;
    if (op.tp_shards_saved_activation) {
      saved_sharded_bytes_ += op.saved_activation_bytes;
    } else {
      saved_replicated_bytes_ += op.saved_activation_bytes;
    }
    if (op.tp_pattern != TpPattern::kReplicated) {
      tp_shardable_flops_ += op.fwd_flops;
    }
    switch (op.tp_pattern) {
      case TpPattern::kColumnParallel:
        tp_shardable_params_ += op.param_count;
        tp_bwd_allreduce_bytes_ += op.input_bytes;
        break;
      case TpPattern::kRowParallel:
        tp_shardable_params_ += op.param_count;
        tp_fwd_allreduce_bytes_ += op.output_bytes;
        break;
      case TpPattern::kVocabParallel:
        tp_shardable_params_ += op.param_count;
        tp_fwd_allreduce_bytes_ += op.output_bytes;
        break;
      case TpPattern::kShardedElementwise:
      case TpPattern::kReplicated:
        break;
    }
  }
  GALVATRON_CHECK_LE(tp_shardable_params_, param_count_);
  signature_ = StrFormat(
      "%s/p%lld/f%.0f/as%lld/ar%lld/io%lld-%lld",
      std::string(LayerKindToString(kind_)).c_str(),
      static_cast<long long>(param_count_), fwd_flops_,
      static_cast<long long>(saved_sharded_bytes_),
      static_cast<long long>(saved_replicated_bytes_),
      static_cast<long long>(input_bytes_),
      static_cast<long long>(output_bytes_));
}

int64_t LayerSpec::SavedActivationBytes(int tp_degree) const {
  GALVATRON_CHECK_GE(tp_degree, 1);
  return saved_sharded_bytes_ / tp_degree + saved_replicated_bytes_;
}

int64_t LayerSpec::SavedActivationBytesSequenceParallel(
    int tp_degree) const {
  GALVATRON_CHECK_GE(tp_degree, 1);
  return (saved_sharded_bytes_ + saved_replicated_bytes_) / tp_degree;
}

}  // namespace galvatron
