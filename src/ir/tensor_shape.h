#ifndef GALVATRON_IR_TENSOR_SHAPE_H_
#define GALVATRON_IR_TENSOR_SHAPE_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "ir/dtype.h"

namespace galvatron {

/// A dense tensor shape (per-sample; the batch dimension is kept implicit
/// throughout the cost calculus so batch size can be swept cheaply).
class TensorShape {
 public:
  TensorShape() = default;
  TensorShape(std::initializer_list<int64_t> dims) : dims_(dims) {}
  explicit TensorShape(std::vector<int64_t> dims) : dims_(std::move(dims)) {}

  const std::vector<int64_t>& dims() const { return dims_; }
  int rank() const { return static_cast<int>(dims_.size()); }
  int64_t dim(int i) const { return dims_[static_cast<size_t>(i)]; }

  /// Product of dimensions; 1 for a scalar (rank 0).
  int64_t NumElements() const {
    int64_t n = 1;
    for (int64_t d : dims_) n *= d;
    return n;
  }

  /// NumElements() * SizeOf(dtype).
  int64_t Bytes(DataType dtype) const { return NumElements() * SizeOf(dtype); }

  /// "[a, b, c]".
  std::string ToString() const;

  friend bool operator==(const TensorShape& a, const TensorShape& b) {
    return a.dims_ == b.dims_;
  }

 private:
  std::vector<int64_t> dims_;
};

}  // namespace galvatron

#endif  // GALVATRON_IR_TENSOR_SHAPE_H_
