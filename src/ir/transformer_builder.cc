#include "ir/transformer_builder.h"

#include <vector>

#include "ir/dtype.h"
#include "util/logging.h"

namespace galvatron {

namespace {

constexpr int64_t kF32Bytes = 4;

/// Appends a LayerNorm over [seq, hidden]; replicated under TP.
void AddLayerNorm(std::vector<OpSpec>* ops, const std::string& name,
                  int64_t seq, int64_t hidden) {
  OpSpec op;
  op.name = name;
  op.kind = OpKind::kLayerNorm;
  op.tp_pattern = TpPattern::kReplicated;
  op.param_count = 2 * hidden;
  op.fwd_flops = 8.0 * static_cast<double>(seq) * static_cast<double>(hidden);
  op.input_bytes = seq * hidden * kF32Bytes;
  op.output_bytes = seq * hidden * kF32Bytes;
  op.saved_activation_bytes = op.output_bytes;
  op.tp_shards_saved_activation = false;
  ops->push_back(op);
}

/// Appends a dense matmul [seq, in] x [in, out] with bias.
void AddMatMul(std::vector<OpSpec>* ops, const std::string& name, int64_t seq,
               int64_t in, int64_t out, TpPattern pattern,
               bool output_sharded) {
  OpSpec op;
  op.name = name;
  op.kind = OpKind::kMatMul;
  op.tp_pattern = pattern;
  op.param_count = in * out + out;
  op.fwd_flops = 2.0 * static_cast<double>(seq) * static_cast<double>(in) *
                 static_cast<double>(out);
  op.input_bytes = seq * in * kF32Bytes;
  op.output_bytes = seq * out * kF32Bytes;
  op.saved_activation_bytes = op.output_bytes;
  op.tp_shards_saved_activation = output_sharded;
  ops->push_back(op);
}

/// Appends a residual add over [seq, hidden]; replicated under TP.
void AddResidual(std::vector<OpSpec>* ops, const std::string& name,
                 int64_t seq, int64_t hidden) {
  OpSpec op;
  op.name = name;
  op.kind = OpKind::kAdd;
  op.tp_pattern = TpPattern::kReplicated;
  op.fwd_flops = static_cast<double>(seq) * static_cast<double>(hidden);
  op.input_bytes = seq * hidden * kF32Bytes;
  op.output_bytes = seq * hidden * kF32Bytes;
  op.saved_activation_bytes = op.output_bytes;
  op.tp_shards_saved_activation = false;
  ops->push_back(op);
}

/// Appends a dropout saving its output plus a 1-byte mask per element.
void AddDropout(std::vector<OpSpec>* ops, const std::string& name,
                int64_t elements, bool sharded) {
  OpSpec op;
  op.name = name;
  op.kind = OpKind::kDropout;
  op.tp_pattern = sharded ? TpPattern::kShardedElementwise
                          : TpPattern::kReplicated;
  op.fwd_flops = static_cast<double>(elements);
  op.input_bytes = elements * kF32Bytes;
  op.output_bytes = elements * kF32Bytes;
  // Output tensor (fp32) plus the boolean mask (1 byte/element).
  op.saved_activation_bytes = op.output_bytes + elements;
  op.tp_shards_saved_activation = sharded;
  ops->push_back(op);
}

/// Appends the attention core: scores BMM, softmax, attention dropout,
/// context BMM. All sharded across TP ranks (head-parallel).
void AddAttentionCore(std::vector<OpSpec>* ops, const std::string& prefix,
                      int64_t seq, int64_t hidden, int64_t heads,
                      int64_t attend_width, bool use_dropout) {
  const int64_t score_elems = heads * seq * attend_width;

  OpSpec scores;
  scores.name = prefix + ".scores";
  scores.kind = OpKind::kBatchedMatMul;
  scores.tp_pattern = TpPattern::kShardedElementwise;
  scores.fwd_flops = 2.0 * static_cast<double>(seq) *
                     static_cast<double>(attend_width) *
                     static_cast<double>(hidden);
  scores.input_bytes = seq * hidden * kF32Bytes;
  scores.output_bytes = score_elems * kF32Bytes;
  // The pre-softmax scores are not stashed: softmax backward needs only its
  // own output, and the BMM backward needs Q/K (saved by the QKV matmul).
  scores.saved_activation_bytes = 0;
  scores.tp_shards_saved_activation = true;
  ops->push_back(scores);

  OpSpec softmax;
  softmax.name = prefix + ".softmax";
  softmax.kind = OpKind::kSoftmax;
  softmax.tp_pattern = TpPattern::kShardedElementwise;
  softmax.fwd_flops = 5.0 * static_cast<double>(score_elems);
  softmax.input_bytes = score_elems * kF32Bytes;
  softmax.output_bytes = score_elems * kF32Bytes;
  softmax.saved_activation_bytes = softmax.output_bytes;
  softmax.tp_shards_saved_activation = true;
  ops->push_back(softmax);

  if (use_dropout) {
    AddDropout(ops, prefix + ".attn_dropout", score_elems, /*sharded=*/true);
  }

  OpSpec context;
  context.name = prefix + ".context";
  context.kind = OpKind::kBatchedMatMul;
  context.tp_pattern = TpPattern::kShardedElementwise;
  context.fwd_flops = 2.0 * static_cast<double>(seq) *
                      static_cast<double>(attend_width) *
                      static_cast<double>(hidden);
  context.input_bytes = score_elems * kF32Bytes;
  context.output_bytes = seq * hidden * kF32Bytes;
  context.saved_activation_bytes = context.output_bytes;
  context.tp_shards_saved_activation = true;
  ops->push_back(context);
}

/// Appends a full self-attention block (LN + QKV + core + proj + dropout +
/// residual). 4 H^2 matmul parameters.
void AddSelfAttentionBlock(std::vector<OpSpec>* ops, const std::string& prefix,
                           const TransformerBlockDims& d) {
  AddLayerNorm(ops, prefix + ".ln", d.seq, d.hidden);
  AddMatMul(ops, prefix + ".qkv", d.seq, d.hidden, 3 * d.hidden,
            TpPattern::kColumnParallel, /*output_sharded=*/true);
  AddAttentionCore(ops, prefix, d.seq, d.hidden, d.heads, d.attend_width,
                   d.use_dropout);
  AddMatMul(ops, prefix + ".proj", d.seq, d.hidden, d.hidden,
            TpPattern::kRowParallel, /*output_sharded=*/false);
  if (d.use_dropout) {
    AddDropout(ops, prefix + ".dropout", d.seq * d.hidden, /*sharded=*/false);
  }
  AddResidual(ops, prefix + ".residual", d.seq, d.hidden);
}

/// Appends the MLP block (LN + fc1 + GeLU + fc2 + dropout + residual).
/// 8 H^2 matmul parameters when intermediate = 4H.
void AddMlpBlock(std::vector<OpSpec>* ops, const std::string& prefix,
                 const TransformerBlockDims& d) {
  AddLayerNorm(ops, prefix + ".ln", d.seq, d.hidden);
  AddMatMul(ops, prefix + ".fc1", d.seq, d.hidden, d.intermediate,
            TpPattern::kColumnParallel, /*output_sharded=*/true);

  OpSpec gelu;
  gelu.name = prefix + ".gelu";
  gelu.kind = OpKind::kGeLU;
  gelu.tp_pattern = TpPattern::kShardedElementwise;
  gelu.fwd_flops = 8.0 * static_cast<double>(d.seq) *
                   static_cast<double>(d.intermediate);
  gelu.input_bytes = d.seq * d.intermediate * kF32Bytes;
  gelu.output_bytes = d.seq * d.intermediate * kF32Bytes;
  gelu.saved_activation_bytes = gelu.output_bytes;
  gelu.tp_shards_saved_activation = true;
  ops->push_back(gelu);

  AddMatMul(ops, prefix + ".fc2", d.seq, d.intermediate, d.hidden,
            TpPattern::kRowParallel, /*output_sharded=*/false);
  if (d.use_dropout) {
    AddDropout(ops, prefix + ".dropout", d.seq * d.hidden, /*sharded=*/false);
  }
  AddResidual(ops, prefix + ".residual", d.seq, d.hidden);
}

/// The layer input itself is stashed for backward (it feeds the first LN and
/// the residual). Attribute it to a zero-flop bookkeeping entry on the first
/// op of the layer instead of inventing a pseudo-op.
void ChargeLayerInputToFirstOp(std::vector<OpSpec>* ops, int64_t input_bytes) {
  GALVATRON_CHECK(!ops->empty());
  ops->front().saved_activation_bytes += input_bytes;
}

}  // namespace

LayerSpec BuildEncoderLayer(const std::string& name,
                            const TransformerBlockDims& dims) {
  GALVATRON_CHECK_GT(dims.seq, 0);
  GALVATRON_CHECK_GT(dims.hidden, 0);
  std::vector<OpSpec> ops;
  AddSelfAttentionBlock(&ops, name + ".attn", dims);
  AddMlpBlock(&ops, name + ".mlp", dims);
  const int64_t boundary = dims.seq * dims.hidden * kF32Bytes;
  ChargeLayerInputToFirstOp(&ops, boundary);
  return LayerSpec(name, LayerKind::kEncoder, std::move(ops), boundary,
                   boundary);
}

LayerSpec BuildDecoderLayer(const std::string& name,
                            const TransformerBlockDims& dims,
                            int64_t memory_seq) {
  std::vector<OpSpec> ops;
  AddSelfAttentionBlock(&ops, name + ".self_attn", dims);

  // Cross-attention: queries from the decoder stream, keys/values projected
  // from the encoder memory of length memory_seq. Same 4 H^2 parameters.
  AddLayerNorm(&ops, name + ".cross_attn.ln", dims.seq, dims.hidden);
  AddMatMul(&ops, name + ".cross_attn.q", dims.seq, dims.hidden, dims.hidden,
            TpPattern::kColumnParallel, /*output_sharded=*/true);
  AddMatMul(&ops, name + ".cross_attn.kv", memory_seq, dims.hidden,
            2 * dims.hidden, TpPattern::kColumnParallel,
            /*output_sharded=*/true);
  TransformerBlockDims cross = dims;
  cross.attend_width = memory_seq;
  AddAttentionCore(&ops, name + ".cross_attn", dims.seq, dims.hidden,
                   dims.heads, cross.attend_width, dims.use_dropout);
  AddMatMul(&ops, name + ".cross_attn.proj", dims.seq, dims.hidden,
            dims.hidden, TpPattern::kRowParallel, /*output_sharded=*/false);
  if (dims.use_dropout) {
    AddDropout(&ops, name + ".cross_attn.dropout", dims.seq * dims.hidden,
               /*sharded=*/false);
  }
  AddResidual(&ops, name + ".cross_attn.residual", dims.seq, dims.hidden);

  AddMlpBlock(&ops, name + ".mlp", dims);

  // Decoder boundary carries both the decoder stream and the encoder memory
  // (the memory flows through every decoder layer).
  const int64_t boundary =
      (dims.seq + memory_seq) * dims.hidden * kF32Bytes;
  ChargeLayerInputToFirstOp(&ops, boundary);
  return LayerSpec(name, LayerKind::kDecoder, std::move(ops), boundary,
                   boundary);
}

LayerSpec BuildTokenEmbeddingLayer(const std::string& name, int64_t vocab,
                                   int64_t seq, int64_t hidden,
                                   bool learned_positions, bool tied_weights) {
  std::vector<OpSpec> ops;

  OpSpec lookup;
  lookup.name = name + ".tokens";
  lookup.kind = OpKind::kEmbeddingLookup;
  lookup.tp_pattern = TpPattern::kVocabParallel;
  lookup.param_count = tied_weights ? 0 : vocab * hidden;
  lookup.fwd_flops = static_cast<double>(seq) * static_cast<double>(hidden);
  lookup.input_bytes = seq * SizeOf(DataType::kI64);
  lookup.output_bytes = seq * hidden * kF32Bytes;
  lookup.saved_activation_bytes = lookup.output_bytes;
  lookup.tp_shards_saved_activation = false;
  ops.push_back(lookup);

  if (learned_positions) {
    OpSpec pos;
    pos.name = name + ".positions";
    pos.kind = OpKind::kAdd;
    pos.tp_pattern = TpPattern::kReplicated;
    pos.param_count = seq * hidden;
    pos.fwd_flops = static_cast<double>(seq) * static_cast<double>(hidden);
    pos.input_bytes = seq * hidden * kF32Bytes;
    pos.output_bytes = seq * hidden * kF32Bytes;
    pos.saved_activation_bytes = pos.output_bytes;
    pos.tp_shards_saved_activation = false;
    ops.push_back(pos);
  }

  AddDropout(&ops, name + ".dropout", seq * hidden, /*sharded=*/false);

  return LayerSpec(name, LayerKind::kEmbedding, std::move(ops),
                   seq * SizeOf(DataType::kI64), seq * hidden * kF32Bytes);
}

LayerSpec BuildPatchEmbedLayer(const std::string& name, int64_t num_patches,
                               int64_t patch, int64_t channels, int64_t hidden,
                               bool learned_positions) {
  std::vector<OpSpec> ops;
  const int64_t patch_dim = channels * patch * patch;

  OpSpec proj;
  proj.name = name + ".proj";
  proj.kind = OpKind::kPatchEmbed;
  proj.tp_pattern = TpPattern::kColumnParallel;
  proj.param_count = patch_dim * hidden + hidden;
  proj.fwd_flops = 2.0 * static_cast<double>(num_patches) *
                   static_cast<double>(patch_dim) *
                   static_cast<double>(hidden);
  proj.input_bytes = num_patches * patch_dim * kF32Bytes;
  proj.output_bytes = num_patches * hidden * kF32Bytes;
  proj.saved_activation_bytes = proj.output_bytes;
  proj.tp_shards_saved_activation = true;
  ops.push_back(proj);

  if (learned_positions) {
    OpSpec pos;
    pos.name = name + ".positions";
    pos.kind = OpKind::kAdd;
    pos.tp_pattern = TpPattern::kReplicated;
    pos.param_count = num_patches * hidden;
    pos.fwd_flops = static_cast<double>(num_patches * hidden);
    pos.input_bytes = num_patches * hidden * kF32Bytes;
    pos.output_bytes = num_patches * hidden * kF32Bytes;
    pos.saved_activation_bytes = pos.output_bytes;
    pos.tp_shards_saved_activation = false;
    ops.push_back(pos);
  }

  return LayerSpec(name, LayerKind::kEmbedding, std::move(ops),
                   num_patches * patch_dim * kF32Bytes,
                   num_patches * hidden * kF32Bytes);
}

LayerSpec BuildPatchMergeLayer(const std::string& name, int64_t out_seq,
                               int64_t hidden_in, int64_t hidden_out) {
  std::vector<OpSpec> ops;
  AddLayerNorm(&ops, name + ".ln", out_seq, 4 * hidden_in);
  AddMatMul(&ops, name + ".reduce", out_seq, 4 * hidden_in, hidden_out,
            TpPattern::kColumnParallel, /*output_sharded=*/false);
  // The merge output feeds a replicated LN in the next stage, so every TP
  // rank needs the full tensor: mark the matmul output replicated by
  // overriding the flag set above.
  ops.back().tp_shards_saved_activation = false;
  const int64_t in_bytes = 4 * out_seq * hidden_in * kF32Bytes;
  ChargeLayerInputToFirstOp(&ops, in_bytes);
  return LayerSpec(name, LayerKind::kPatchMerge, std::move(ops), in_bytes,
                   out_seq * hidden_out * kF32Bytes);
}

LayerSpec BuildHeadLayer(const std::string& name, int64_t seq, int64_t hidden,
                         int64_t classes, bool include_pooler) {
  std::vector<OpSpec> ops;
  AddLayerNorm(&ops, name + ".ln", seq, hidden);
  if (include_pooler) {
    AddMatMul(&ops, name + ".pooler", 1, hidden, hidden,
              TpPattern::kColumnParallel, /*output_sharded=*/true);
  }
  if (classes > 0) {
    AddMatMul(&ops, name + ".classifier", 1, hidden, classes,
              TpPattern::kVocabParallel, /*output_sharded=*/true);
  }
  const int64_t in_bytes = seq * hidden * kF32Bytes;
  ChargeLayerInputToFirstOp(&ops, in_bytes);
  return LayerSpec(name, LayerKind::kHead, std::move(ops), in_bytes,
                   classes > 0 ? classes * kF32Bytes : hidden * kF32Bytes);
}

}  // namespace galvatron
