#ifndef GALVATRON_IR_MODEL_H_
#define GALVATRON_IR_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ir/layer.h"

namespace galvatron {

/// A Transformer model as the paper treats it: a linear sequence of layers
/// (Sec 3.1.1). Embedding/stem layers come first, then the Transformer
/// blocks (with Swin's patch-merging layers interleaved), then the head.
class ModelSpec {
 public:
  ModelSpec(std::string name, std::vector<LayerSpec> layers);

  const std::string& name() const { return name_; }
  const std::vector<LayerSpec>& layers() const { return layers_; }
  int num_layers() const { return static_cast<int>(layers_.size()); }
  const LayerSpec& layer(int i) const { return layers_[static_cast<size_t>(i)]; }

  /// Total trainable parameters across all layers.
  int64_t TotalParams() const;

  /// Sum of per-sample saved activation bytes with no model parallelism
  /// (Table 2's "Acti. Size/sample" column).
  int64_t TotalActivationBytesPerSample() const;

  /// Sum of per-sample forward FLOPs.
  double TotalFwdFlops() const;

  /// Number of Transformer blocks (encoder+decoder layers), excluding
  /// embeddings/heads/merges — the "Layer Num" column of Table 2.
  int NumTransformerBlocks() const;

 private:
  std::string name_;
  std::vector<LayerSpec> layers_;
};

}  // namespace galvatron

#endif  // GALVATRON_IR_MODEL_H_
