#include "ir/dtype.h"

namespace galvatron {

std::string_view DataTypeToString(DataType dtype) {
  switch (dtype) {
    case DataType::kF32:
      return "f32";
    case DataType::kF16:
      return "f16";
    case DataType::kBF16:
      return "bf16";
    case DataType::kI64:
      return "i64";
    case DataType::kU8:
      return "u8";
  }
  return "?";
}

}  // namespace galvatron
