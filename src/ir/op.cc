#include "ir/op.h"

namespace galvatron {

std::string_view OpKindToString(OpKind kind) {
  switch (kind) {
    case OpKind::kMatMul:
      return "MatMul";
    case OpKind::kBatchedMatMul:
      return "BatchedMatMul";
    case OpKind::kSoftmax:
      return "Softmax";
    case OpKind::kLayerNorm:
      return "LayerNorm";
    case OpKind::kGeLU:
      return "GeLU";
    case OpKind::kAdd:
      return "Add";
    case OpKind::kDropout:
      return "Dropout";
    case OpKind::kEmbeddingLookup:
      return "EmbeddingLookup";
    case OpKind::kPatchEmbed:
      return "PatchEmbed";
    case OpKind::kPatchMerge:
      return "PatchMerge";
    case OpKind::kWindowShift:
      return "WindowShift";
    case OpKind::kClassifierHead:
      return "ClassifierHead";
  }
  return "Unknown";
}

Result<OpKind> OpKindFromString(std::string_view name) {
  static constexpr OpKind kAll[] = {
      OpKind::kMatMul,        OpKind::kBatchedMatMul, OpKind::kSoftmax,
      OpKind::kLayerNorm,     OpKind::kGeLU,          OpKind::kAdd,
      OpKind::kDropout,       OpKind::kEmbeddingLookup,
      OpKind::kPatchEmbed,    OpKind::kPatchMerge,    OpKind::kWindowShift,
      OpKind::kClassifierHead,
  };
  for (OpKind kind : kAll) {
    if (OpKindToString(kind) == name) return kind;
  }
  return Status::InvalidArgument("unknown op kind '" + std::string(name) +
                                 "'");
}

std::string_view TpPatternToString(TpPattern pattern) {
  switch (pattern) {
    case TpPattern::kColumnParallel:
      return "ColumnParallel";
    case TpPattern::kRowParallel:
      return "RowParallel";
    case TpPattern::kShardedElementwise:
      return "ShardedElementwise";
    case TpPattern::kReplicated:
      return "Replicated";
    case TpPattern::kVocabParallel:
      return "VocabParallel";
  }
  return "Unknown";
}

Result<TpPattern> TpPatternFromString(std::string_view name) {
  static constexpr TpPattern kAll[] = {
      TpPattern::kColumnParallel,     TpPattern::kRowParallel,
      TpPattern::kShardedElementwise, TpPattern::kReplicated,
      TpPattern::kVocabParallel,
  };
  for (TpPattern pattern : kAll) {
    if (TpPatternToString(pattern) == name) return pattern;
  }
  return Status::InvalidArgument("unknown TP pattern '" + std::string(name) +
                                 "'");
}

}  // namespace galvatron
