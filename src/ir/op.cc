#include "ir/op.h"

namespace galvatron {

std::string_view OpKindToString(OpKind kind) {
  switch (kind) {
    case OpKind::kMatMul:
      return "MatMul";
    case OpKind::kBatchedMatMul:
      return "BatchedMatMul";
    case OpKind::kSoftmax:
      return "Softmax";
    case OpKind::kLayerNorm:
      return "LayerNorm";
    case OpKind::kGeLU:
      return "GeLU";
    case OpKind::kAdd:
      return "Add";
    case OpKind::kDropout:
      return "Dropout";
    case OpKind::kEmbeddingLookup:
      return "EmbeddingLookup";
    case OpKind::kPatchEmbed:
      return "PatchEmbed";
    case OpKind::kPatchMerge:
      return "PatchMerge";
    case OpKind::kWindowShift:
      return "WindowShift";
    case OpKind::kClassifierHead:
      return "ClassifierHead";
  }
  return "Unknown";
}

std::string_view TpPatternToString(TpPattern pattern) {
  switch (pattern) {
    case TpPattern::kColumnParallel:
      return "ColumnParallel";
    case TpPattern::kRowParallel:
      return "RowParallel";
    case TpPattern::kShardedElementwise:
      return "ShardedElementwise";
    case TpPattern::kReplicated:
      return "Replicated";
    case TpPattern::kVocabParallel:
      return "VocabParallel";
  }
  return "Unknown";
}

}  // namespace galvatron
