#ifndef GALVATRON_IR_OP_H_
#define GALVATRON_IR_OP_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "ir/dtype.h"
#include "ir/tensor_shape.h"
#include "util/result.h"

namespace galvatron {

/// Primitive operator kinds appearing in Transformer layers.
enum class OpKind {
  kMatMul,         // dense GEMM against a weight matrix
  kBatchedMatMul,  // activation-activation GEMM (attention scores/context)
  kSoftmax,
  kLayerNorm,
  kGeLU,
  kAdd,            // residual connection
  kDropout,
  kEmbeddingLookup,
  kPatchEmbed,     // conv-style patchification (ViT/Swin stem)
  kPatchMerge,     // Swin downsampling linear
  kWindowShift,    // Swin shifted-window roll (data movement only)
  kClassifierHead,
};

std::string_view OpKindToString(OpKind kind);

/// Inverse of OpKindToString; unknown names are InvalidArgument (the spec
/// JSON deserializer depends on the pair being exact inverses).
Result<OpKind> OpKindFromString(std::string_view name);

/// Megatron-style tensor-parallel behaviour of one op.
enum class TpPattern {
  /// Weight split along the output dimension; no communication at this op.
  /// Starts a TP-sharded region (its backward emits an all-reduce of the
  /// op input gradient — Megatron's `f` conjugate operator).
  kColumnParallel,
  /// Weight split along the input dimension; forward emits an all-reduce of
  /// the op output (Megatron's `g` operator).
  kRowParallel,
  /// No parameters; activations are sharded across TP ranks because the op
  /// sits inside a column->row parallel region (softmax over local heads,
  /// GeLU over the local intermediate slice, ...).
  kShardedElementwise,
  /// Executed identically on every TP rank (layer norms, residual adds,
  /// dropout on the replicated hidden states).
  kReplicated,
  /// Parameters split along the vocabulary/class dimension with an output
  /// all-reduce (vocab-parallel embedding / classifier head).
  kVocabParallel,
};

std::string_view TpPatternToString(TpPattern pattern);

/// Inverse of TpPatternToString; unknown names are InvalidArgument.
Result<TpPattern> TpPatternFromString(std::string_view name);

/// One primitive op with everything the cost calculus needs, expressed
/// per-sample (multiply by the local batch to get per-device quantities).
///
/// OpSpec is a passive data holder (struct per the style guide); the layer
/// builders in `transformer_builder.h` are responsible for internal
/// consistency (e.g. flops matching shapes).
struct OpSpec {
  std::string name;
  OpKind kind = OpKind::kMatMul;
  TpPattern tp_pattern = TpPattern::kReplicated;

  /// Trainable parameter count (weights + biases) of this op.
  int64_t param_count = 0;

  /// Forward floating-point operations per sample; backward is modelled as
  /// 2x forward (dense matmul dominated, Sec 3.4 of the paper).
  double fwd_flops = 0.0;

  /// Bytes per sample stashed for the backward pass (inputs / outputs /
  /// masks this op must keep; recompute is disabled, as in the paper).
  int64_t saved_activation_bytes = 0;

  /// Bytes per sample of this op's output tensor.
  int64_t output_bytes = 0;

  /// Bytes per sample of this op's input tensor.
  int64_t input_bytes = 0;

  /// True if the saved activation divides by the TP degree (it lives inside
  /// a sharded region). False for replicated tensors — the paper's "TP has
  /// some additional replications of the activations".
  bool tp_shards_saved_activation = false;
};

}  // namespace galvatron

#endif  // GALVATRON_IR_OP_H_
