#include "ir/model_zoo.h"

#include <map>
#include <set>

#include "ir/transformer_builder.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace galvatron {

std::string_view ModelIdToString(ModelId id) {
  switch (id) {
    case ModelId::kBertHuge32:
      return "BERT-Huge-32";
    case ModelId::kBertHuge48:
      return "BERT-Huge-48";
    case ModelId::kBertXHuge:
      return "BERT-xHuge";
    case ModelId::kViTHuge32:
      return "ViT-Huge-32";
    case ModelId::kViTHuge48:
      return "ViT-Huge-48";
    case ModelId::kViTXHuge:
      return "ViT-xHuge";
    case ModelId::kT5Large32:
      return "T5-Large-32";
    case ModelId::kT5Large48:
      return "T5-Large-48";
    case ModelId::kSwinHuge32:
      return "Swin-Huge-32";
    case ModelId::kSwinHuge48:
      return "Swin-Huge-48";
  }
  return "Unknown";
}

std::vector<ModelId> AllModelIds() {
  return {ModelId::kBertHuge32, ModelId::kBertHuge48, ModelId::kBertXHuge,
          ModelId::kViTHuge32,  ModelId::kViTHuge48,  ModelId::kViTXHuge,
          ModelId::kT5Large32,  ModelId::kT5Large48,  ModelId::kSwinHuge32,
          ModelId::kSwinHuge48};
}

ModelSpec BuildBert(const std::string& name, const BertConfig& config) {
  std::vector<LayerSpec> layers;
  layers.push_back(BuildTokenEmbeddingLayer(name + ".embed", config.vocab,
                                            config.seq, config.hidden,
                                            /*learned_positions=*/true));
  TransformerBlockDims dims;
  dims.seq = config.seq;
  dims.hidden = config.hidden;
  dims.heads = config.heads;
  dims.intermediate = 4 * config.hidden;
  dims.attend_width = config.seq;
  for (int i = 0; i < config.num_layers; ++i) {
    layers.push_back(
        BuildEncoderLayer(StrFormat("%s.encoder%d", name.c_str(), i), dims));
  }
  layers.push_back(BuildHeadLayer(name + ".head", config.seq, config.hidden,
                                  /*classes=*/0, /*include_pooler=*/true));
  return ModelSpec(name, std::move(layers));
}

ModelSpec BuildVit(const std::string& name, const VitConfig& config) {
  const int64_t grid = config.image_size / config.patch;
  const int64_t tokens = grid * grid + 1;  // +1 CLS token
  std::vector<LayerSpec> layers;
  layers.push_back(BuildPatchEmbedLayer(name + ".patch_embed", tokens,
                                        config.patch, config.channels,
                                        config.hidden,
                                        /*learned_positions=*/true));
  TransformerBlockDims dims;
  dims.seq = tokens;
  dims.hidden = config.hidden;
  dims.heads = config.heads;
  dims.intermediate = 4 * config.hidden;
  dims.attend_width = tokens;
  dims.use_dropout = false;  // ViT trains without dropout
  for (int i = 0; i < config.num_layers; ++i) {
    layers.push_back(
        BuildEncoderLayer(StrFormat("%s.encoder%d", name.c_str(), i), dims));
  }
  layers.push_back(BuildHeadLayer(name + ".head", tokens, config.hidden,
                                  config.classes, /*include_pooler=*/false));
  return ModelSpec(name, std::move(layers));
}

ModelSpec BuildT5(const std::string& name, const T5Config& config) {
  std::vector<LayerSpec> layers;
  layers.push_back(BuildTokenEmbeddingLayer(name + ".enc_embed", config.vocab,
                                            config.seq, config.hidden,
                                            /*learned_positions=*/false));
  TransformerBlockDims dims;
  dims.seq = config.seq;
  dims.hidden = config.hidden;
  dims.heads = config.heads;
  dims.intermediate = 4 * config.hidden;
  dims.attend_width = config.seq;
  for (int i = 0; i < config.num_encoder_layers; ++i) {
    layers.push_back(
        BuildEncoderLayer(StrFormat("%s.encoder%d", name.c_str(), i), dims));
  }
  // Decoder-side embedding shares the encoder embedding weights (T5 ties
  // them), so its parameters are counted once.
  layers.push_back(BuildTokenEmbeddingLayer(name + ".dec_embed", config.vocab,
                                            config.seq, config.hidden,
                                            /*learned_positions=*/false,
                                            /*tied_weights=*/true));
  for (int i = 0; i < config.num_decoder_layers; ++i) {
    layers.push_back(BuildDecoderLayer(
        StrFormat("%s.decoder%d", name.c_str(), i), dims, config.seq));
  }
  // LM head is weight-tied to the embedding: layer norm only.
  layers.push_back(BuildHeadLayer(name + ".head", config.seq, config.hidden,
                                  /*classes=*/0, /*include_pooler=*/false));
  return ModelSpec(name, std::move(layers));
}

ModelSpec BuildSwin(const std::string& name, const SwinConfig& config) {
  GALVATRON_CHECK_EQ(config.depths.size(), config.widths.size());
  GALVATRON_CHECK_EQ(config.depths.size(), config.heads.size());
  const int num_stages = static_cast<int>(config.depths.size());

  int64_t grid = config.image_size / config.patch;  // 56 for 224/4
  std::vector<LayerSpec> layers;
  layers.push_back(BuildPatchEmbedLayer(name + ".patch_embed", grid * grid,
                                        config.patch, config.channels,
                                        config.widths[0],
                                        /*learned_positions=*/false));
  for (int s = 0; s < num_stages; ++s) {
    TransformerBlockDims dims;
    dims.seq = grid * grid;
    dims.hidden = config.widths[static_cast<size_t>(s)];
    dims.heads = config.heads[static_cast<size_t>(s)];
    dims.intermediate = 4 * dims.hidden;
    dims.attend_width = config.window * config.window;
    dims.use_dropout = false;  // Swin uses stochastic depth, not dropout
    for (int i = 0; i < config.depths[static_cast<size_t>(s)]; ++i) {
      layers.push_back(BuildEncoderLayer(
          StrFormat("%s.stage%d.block%d", name.c_str(), s, i), dims));
    }
    if (s + 1 < num_stages) {
      grid /= 2;
      layers.push_back(BuildPatchMergeLayer(
          StrFormat("%s.merge%d", name.c_str(), s), grid * grid,
          config.widths[static_cast<size_t>(s)],
          config.widths[static_cast<size_t>(s + 1)]));
    }
  }
  layers.push_back(BuildHeadLayer(name + ".head", grid * grid,
                                  config.widths.back(), config.classes,
                                  /*include_pooler=*/false));
  return ModelSpec(name, std::move(layers));
}

ModelSpec BuildModel(ModelId id) {
  const std::string name(ModelIdToString(id));
  switch (id) {
    case ModelId::kBertHuge32: {
      BertConfig c;
      c.num_layers = 32;
      c.hidden = 1280;
      c.heads = 16;
      return BuildBert(name, c);
    }
    case ModelId::kBertHuge48: {
      BertConfig c;
      c.num_layers = 48;
      c.hidden = 1280;
      c.heads = 16;
      return BuildBert(name, c);
    }
    case ModelId::kBertXHuge: {
      BertConfig c;
      c.num_layers = 128;
      c.hidden = 2560;
      c.heads = 32;
      return BuildBert(name, c);
    }
    case ModelId::kViTHuge32: {
      VitConfig c;
      c.num_layers = 32;
      c.hidden = 1280;
      c.heads = 16;
      return BuildVit(name, c);
    }
    case ModelId::kViTHuge48: {
      VitConfig c;
      c.num_layers = 48;
      c.hidden = 1280;
      c.heads = 16;
      return BuildVit(name, c);
    }
    case ModelId::kViTXHuge: {
      VitConfig c;
      c.num_layers = 128;
      c.hidden = 2560;
      c.heads = 32;
      return BuildVit(name, c);
    }
    case ModelId::kT5Large32: {
      T5Config c;
      c.num_encoder_layers = 16;
      c.num_decoder_layers = 16;
      c.hidden = 1024;
      c.heads = 16;
      return BuildT5(name, c);
    }
    case ModelId::kT5Large48: {
      T5Config c;
      c.num_encoder_layers = 24;
      c.num_decoder_layers = 24;
      c.hidden = 1024;
      c.heads = 16;
      return BuildT5(name, c);
    }
    case ModelId::kSwinHuge32: {
      SwinConfig c;
      c.depths = {2, 2, 26, 2};
      return BuildSwin(name, c);
    }
    case ModelId::kSwinHuge48: {
      SwinConfig c;
      c.depths = {2, 2, 42, 2};
      return BuildSwin(name, c);
    }
  }
  GALVATRON_CHECK(false) << "unknown model id";
  return BuildBert("unreachable", BertConfig{});
}

ModelStatistics ComputeStatistics(const ModelSpec& model) {
  ModelStatistics stats;
  stats.model_name = model.name();
  stats.param_count = model.TotalParams();
  stats.activation_bytes_per_sample = model.TotalActivationBytesPerSample();
  stats.fwd_flops_per_sample = model.TotalFwdFlops();

  // Layer description: encoder/decoder counts, or per-stage depths for
  // multi-width models (Swin).
  int encoders = 0;
  int decoders = 0;
  std::vector<int64_t> widths;      // distinct encoder widths in order
  std::vector<int> width_depths;    // blocks per width
  for (const LayerSpec& l : model.layers()) {
    if (l.kind() == LayerKind::kEncoder) {
      ++encoders;
      // Infer the block width from the first LayerNorm parameters (2H).
      const int64_t hidden = l.ops().front().param_count / 2;
      if (widths.empty() || widths.back() != hidden) {
        widths.push_back(hidden);
        width_depths.push_back(0);
      }
      ++width_depths.back();
    } else if (l.kind() == LayerKind::kDecoder) {
      ++decoders;
    }
  }
  if (decoders > 0) {
    stats.layer_desc = StrFormat("%d Enc.+%d Dec.", encoders, decoders);
  } else if (widths.size() > 1) {
    std::vector<std::string> parts;
    for (int d : width_depths) parts.push_back(StrFormat("%d", d));
    stats.layer_desc = Join(parts, "/");
  } else {
    stats.layer_desc = StrFormat("%d", encoders);
  }
  if (widths.size() > 1) {
    std::vector<std::string> parts;
    for (int64_t w : widths) {
      parts.push_back(StrFormat("%lld", static_cast<long long>(w)));
    }
    stats.hidden_desc = Join(parts, "/");
  } else if (!widths.empty()) {
    stats.hidden_desc =
        StrFormat("%lld", static_cast<long long>(widths.front()));
  }
  return stats;
}

}  // namespace galvatron
