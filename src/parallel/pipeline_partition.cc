#include "parallel/pipeline_partition.h"

#include <algorithm>
#include <limits>

#include "util/string_util.h"

namespace galvatron {

std::string_view PartitionPolicyToString(PartitionPolicy policy) {
  switch (policy) {
    case PartitionPolicy::kLayerCount:
      return "layer-count";
    case PartitionPolicy::kParams:
      return "params";
    case PartitionPolicy::kFlops:
      return "flops";
    case PartitionPolicy::kActivationMemory:
      return "activation-memory";
  }
  return "?";
}

Result<std::vector<int>> PartitionByWeights(const std::vector<double>& weights,
                                            int num_stages) {
  return PartitionByWeightsWithCapacities(
      weights, std::vector<double>(static_cast<size_t>(num_stages), 1.0));
}

Result<std::vector<int>> PartitionByWeightsWithCapacities(
    const std::vector<double>& weights,
    const std::vector<double>& capacities) {
  const int num_stages = static_cast<int>(capacities.size());
  for (double c : capacities) {
    if (c <= 0) return Status::InvalidArgument("capacities must be positive");
  }
  const int n = static_cast<int>(weights.size());
  if (num_stages < 1) {
    return Status::InvalidArgument("num_stages must be >= 1");
  }
  if (num_stages > n) {
    return Status::InvalidArgument(StrFormat(
        "cannot split %d layers into %d non-empty stages", n, num_stages));
  }

  // prefix[i] = sum of weights[0..i).
  std::vector<double> prefix(static_cast<size_t>(n) + 1, 0.0);
  for (int i = 0; i < n; ++i) {
    prefix[static_cast<size_t>(i) + 1] =
        prefix[static_cast<size_t>(i)] + weights[static_cast<size_t>(i)];
  }

  constexpr double kInf = std::numeric_limits<double>::infinity();
  // best[k][i]: minimal max-stage-weight splitting the first i layers into
  // k stages; cut[k][i]: the split point achieving it.
  std::vector<std::vector<double>> best(
      static_cast<size_t>(num_stages) + 1,
      std::vector<double>(static_cast<size_t>(n) + 1, kInf));
  std::vector<std::vector<int>> cut(
      static_cast<size_t>(num_stages) + 1,
      std::vector<int>(static_cast<size_t>(n) + 1, 0));
  best[0][0] = 0.0;
  for (int k = 1; k <= num_stages; ++k) {
    for (int i = k; i <= n; ++i) {
      for (int j = k - 1; j < i; ++j) {
        if (best[static_cast<size_t>(k) - 1][static_cast<size_t>(j)] == kInf) {
          continue;
        }
        const double stage_weight =
            (prefix[static_cast<size_t>(i)] - prefix[static_cast<size_t>(j)]) /
            capacities[static_cast<size_t>(k) - 1];
        const double candidate = std::max(
            best[static_cast<size_t>(k) - 1][static_cast<size_t>(j)],
            stage_weight);
        if (candidate <
            best[static_cast<size_t>(k)][static_cast<size_t>(i)]) {
          best[static_cast<size_t>(k)][static_cast<size_t>(i)] = candidate;
          cut[static_cast<size_t>(k)][static_cast<size_t>(i)] = j;
        }
      }
    }
  }

  std::vector<int> sizes(static_cast<size_t>(num_stages), 0);
  int i = n;
  for (int k = num_stages; k >= 1; --k) {
    const int j = cut[static_cast<size_t>(k)][static_cast<size_t>(i)];
    sizes[static_cast<size_t>(k) - 1] = i - j;
    i = j;
  }
  return sizes;
}

namespace {

std::vector<double> PolicyWeights(const ModelSpec& model,
                                  PartitionPolicy policy) {
  std::vector<double> weights;
  weights.reserve(static_cast<size_t>(model.num_layers()));
  for (const LayerSpec& layer : model.layers()) {
    switch (policy) {
      case PartitionPolicy::kLayerCount:
        weights.push_back(1.0);
        break;
      case PartitionPolicy::kParams:
        weights.push_back(static_cast<double>(layer.param_count()));
        break;
      case PartitionPolicy::kFlops:
        weights.push_back(layer.fwd_flops());
        break;
      case PartitionPolicy::kActivationMemory:
        weights.push_back(
            static_cast<double>(layer.SavedActivationBytes(1)));
        break;
    }
  }
  return weights;
}

}  // namespace

Result<std::vector<int>> PartitionPipeline(const ModelSpec& model,
                                           int num_stages,
                                           PartitionPolicy policy) {
  return PartitionByWeights(PolicyWeights(model, policy), num_stages);
}

Result<std::vector<int>> PartitionPipelineHeterogeneous(
    const ModelSpec& model, PartitionPolicy policy,
    const std::vector<double>& capacities) {
  return PartitionByWeightsWithCapacities(PolicyWeights(model, policy),
                                          capacities);
}

}  // namespace galvatron
