#include "parallel/transformation.h"

#include "comm/collective.h"
#include "util/math_util.h"
#include "util/string_util.h"

namespace galvatron {

Result<TransformationCost> ComputeTransformationCost(
    const LayerSpec& /*prev_layer*/, const LayerSpec& next_layer,
    const HybridStrategy& prev, const HybridStrategy& next,
    int stage_first_device, int batch_per_group, const ClusterSpec& cluster) {
  if (prev.TotalDegree() != next.TotalDegree()) {
    return Status::InvalidArgument(StrFormat(
        "strategies %s and %s occupy different group sizes (%d vs %d)",
        prev.ToString().c_str(), next.ToString().c_str(), prev.TotalDegree(),
        next.TotalDegree()));
  }

  TransformationCost cost;
  if (prev == next) return cost;  // same layout: nothing to do

  const int m_prev = prev.BatchSplit();
  const int m_next = next.BatchSplit();

  // More (or equal) batch splitting downstream: every device already holds a
  // superset of the sample shard it needs — pure local slicing, no
  // communication. This covers the paper's "4-way TP -> 4-way DP" example.
  if (m_next >= m_prev) return cost;

  // Less batch splitting: each device must gather the sample shards it is
  // missing from r = m_prev / m_next peers. The gathered tensor is the
  // activation the successor layer reads at the boundary.
  const int r = m_prev / m_next;
  const int64_t needed_bytes = next_layer.input_bytes() *
                               CeilDiv(batch_per_group, m_next);
  cost.gathered_bytes = needed_bytes;
  cost.gather_group = r;

  const int group_size = prev.TotalDegree();
  if (group_size >= 2) {
    std::vector<int> stage_devices;
    stage_devices.reserve(static_cast<size_t>(group_size));
    for (int i = 0; i < group_size; ++i) {
      stage_devices.push_back(stage_first_device + i);
    }
    const LinkSpec& link = cluster.GroupBottleneckLink(stage_devices);
    cost.seconds =
        CollectiveTime(CollectiveKind::kAllGather, needed_bytes, r, link);
  }
  return cost;
}

}  // namespace galvatron
