#include "parallel/plan.h"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "util/math_util.h"
#include "util/string_util.h"

namespace galvatron {

std::string_view PipelineScheduleToString(PipelineSchedule schedule) {
  switch (schedule) {
    case PipelineSchedule::kGPipe:
      return "gpipe";
    case PipelineSchedule::k1F1B:
      return "1f1b";
  }
  return "?";
}

int TrainingPlan::InFlightMicroBatches(int stage_index) const {
  return InFlightForDegree(pp_degree(), stage_index);
}

int TrainingPlan::InFlightForDegree(int pp_degree, int stage_index) const {
  if (schedule == PipelineSchedule::kGPipe) return num_micro_batches;
  const int cap = pp_degree - stage_index;
  return std::min(num_micro_batches, std::max(cap, 1));
}

int TrainingPlan::MicroBatchSize() const {
  return static_cast<int>(CeilDiv(global_batch, num_micro_batches));
}

Status TrainingPlan::Validate(const ModelSpec& model, int num_devices) const {
  if (stages.empty()) return Status::InvalidArgument("plan has no stages");
  if (global_batch < 1 || num_micro_batches < 1) {
    return Status::InvalidArgument("batch and micro-batch count must be >= 1");
  }
  if (num_micro_batches > global_batch) {
    return Status::InvalidArgument(
        "more micro-batches than samples in the batch");
  }

  int next_layer = 0;
  int next_device = 0;
  for (size_t s = 0; s < stages.size(); ++s) {
    const StagePlan& stage = stages[s];
    if (stage.first_layer != next_layer) {
      return Status::InvalidArgument(
          StrFormat("stage %zu does not start at layer %d", s, next_layer));
    }
    if (stage.num_layers < 1) {
      return Status::InvalidArgument(StrFormat("stage %zu is empty", s));
    }
    if (stage.first_device != next_device) {
      return Status::InvalidArgument(StrFormat(
          "stage %zu does not start at device %d", s, next_device));
    }
    if (static_cast<int>(stage.layer_strategies.size()) != stage.num_layers) {
      return Status::InvalidArgument(StrFormat(
          "stage %zu has %zu strategies for %d layers", s,
          stage.layer_strategies.size(), stage.num_layers));
    }
    if (!stage.recompute.empty() &&
        static_cast<int>(stage.recompute.size()) != stage.num_layers) {
      return Status::InvalidArgument(StrFormat(
          "stage %zu has %zu recompute flags for %d layers", s,
          stage.recompute.size(), stage.num_layers));
    }
    for (const HybridStrategy& strategy : stage.layer_strategies) {
      if (strategy.TotalDegree() != stage.num_devices) {
        return Status::InvalidArgument(StrFormat(
            "stage %zu strategy %s does not span its %d devices", s,
            strategy.ToString().c_str(), stage.num_devices));
      }
    }
    next_layer += stage.num_layers;
    next_device += stage.num_devices;
  }
  if (next_layer != model.num_layers()) {
    return Status::InvalidArgument(StrFormat(
        "plan covers %d of %d layers", next_layer, model.num_layers()));
  }
  if (next_device != num_devices) {
    return Status::InvalidArgument(StrFormat(
        "plan occupies %d of %d devices", next_device, num_devices));
  }
  return Status::OK();
}

std::string TrainingPlan::ToString() const {
  std::ostringstream os;
  os << "plan for " << model_name << ": batch " << global_batch << ", "
     << num_micro_batches << " micro-batch(es), PP degree " << pp_degree()
     << "\n";
  for (size_t s = 0; s < stages.size(); ++s) {
    const StagePlan& stage = stages[s];
    os << "  stage" << s << "[gpu" << stage.first_device << "-"
       << stage.first_device + stage.num_devices - 1 << "]:";
    // Compress runs of identical (strategy, recompute) pairs (the paper's
    // "xN" notation, "+ckpt" marking checkpointed layers).
    int i = 0;
    while (i < stage.num_layers) {
      int j = i;
      while (j < stage.num_layers &&
             stage.layer_strategies[static_cast<size_t>(j)] ==
                 stage.layer_strategies[static_cast<size_t>(i)] &&
             stage.RecomputeAt(j) == stage.RecomputeAt(i)) {
        ++j;
      }
      os << " "
         << stage.layer_strategies[static_cast<size_t>(i)].ToString();
      if (stage.RecomputeAt(i)) os << "+ckpt";
      os << " x" << (j - i);
      i = j;
    }
    os << "\n";
  }
  return os.str();
}

Result<TrainingPlan> MakeUniformPlan(const ModelSpec& model, int num_devices,
                                     int pp_degree,
                                     const std::vector<int>& stage_layers,
                                     const HybridStrategy& strategy,
                                     int global_batch, int num_micro_batches) {
  if (pp_degree < 1 || num_devices % pp_degree != 0) {
    return Status::InvalidArgument(StrFormat(
        "pp degree %d does not divide %d devices", pp_degree, num_devices));
  }
  if (static_cast<int>(stage_layers.size()) != pp_degree) {
    return Status::InvalidArgument("stage_layers size != pp_degree");
  }
  const int devices_per_stage = num_devices / pp_degree;
  if (strategy.TotalDegree() != devices_per_stage) {
    return Status::InvalidArgument(StrFormat(
        "strategy %s spans %d devices but stages have %d",
        strategy.ToString().c_str(), strategy.TotalDegree(),
        devices_per_stage));
  }
  const int total_layers =
      std::accumulate(stage_layers.begin(), stage_layers.end(), 0);
  if (total_layers != model.num_layers()) {
    return Status::InvalidArgument(StrFormat(
        "stage layer counts sum to %d, model has %d", total_layers,
        model.num_layers()));
  }

  TrainingPlan plan;
  plan.model_name = model.name();
  plan.global_batch = global_batch;
  plan.num_micro_batches = num_micro_batches;
  int layer = 0;
  for (int s = 0; s < pp_degree; ++s) {
    StagePlan stage;
    stage.first_device = s * devices_per_stage;
    stage.num_devices = devices_per_stage;
    stage.first_layer = layer;
    stage.num_layers = stage_layers[static_cast<size_t>(s)];
    stage.layer_strategies.assign(
        static_cast<size_t>(stage.num_layers), strategy);
    layer += stage.num_layers;
    plan.stages.push_back(std::move(stage));
  }
  GALVATRON_RETURN_IF_ERROR(plan.Validate(model, num_devices));
  return plan;
}

}  // namespace galvatron
