#include "parallel/strategy.h"

#include <cctype>
#include <cstdlib>
#include <set>
#include <sstream>

#include "util/string_util.h"

namespace galvatron {

std::string_view ParallelDimToString(ParallelDim dim) {
  switch (dim) {
    case ParallelDim::kData:
      return "DataParallel";
    case ParallelDim::kShardedData:
      return "ShardedDataParallel";
    case ParallelDim::kTensor:
      return "TensorParallel";
    case ParallelDim::kPipeline:
      return "PipelineParallel";
  }
  return "?";
}

std::string_view ParallelDimToShortString(ParallelDim dim) {
  switch (dim) {
    case ParallelDim::kData:
      return "dp";
    case ParallelDim::kShardedData:
      return "sdp";
    case ParallelDim::kTensor:
      return "tp";
    case ParallelDim::kPipeline:
      return "pp";
  }
  return "?";
}

Result<HybridStrategy> HybridStrategy::Create(
    std::vector<ParallelComponent> levels) {
  std::set<ParallelDim> seen;
  for (const ParallelComponent& level : levels) {
    if (level.degree < 2) {
      return Status::InvalidArgument(
          "decision-tree level degrees must be >= 2");
    }
    if (level.dim == ParallelDim::kPipeline) {
      return Status::InvalidArgument(
          "PP is applied before decision-tree construction, not inside it");
    }
    if (!seen.insert(level.dim).second) {
      return Status::InvalidArgument(StrFormat(
          "parallelism %s repeated across tree levels",
          std::string(ParallelDimToString(level.dim)).c_str()));
    }
  }
  HybridStrategy strategy;
  strategy.levels_.assign(levels.begin(), levels.end());
  return strategy;
}

Result<HybridStrategy> HybridStrategy::Parse(const std::string& text) {
  if (text == "serial") return HybridStrategy();
  std::vector<ParallelComponent> levels;
  for (const std::string& part : Split(text, '-')) {
    size_t digits = 0;
    while (digits < part.size() &&
           (std::isalpha(static_cast<unsigned char>(part[digits])) != 0)) {
      ++digits;
    }
    const std::string name = part.substr(0, digits);
    const std::string degree_text = part.substr(digits);
    ParallelDim dim;
    if (name == "dp") {
      dim = ParallelDim::kData;
    } else if (name == "sdp") {
      dim = ParallelDim::kShardedData;
    } else if (name == "tp") {
      dim = ParallelDim::kTensor;
    } else {
      return Status::InvalidArgument(
          StrFormat("unknown parallelism '%s' in '%s'", name.c_str(),
                    text.c_str()));
    }
    if (degree_text.empty() ||
        degree_text.find_first_not_of("0123456789") != std::string::npos) {
      return Status::InvalidArgument(
          StrFormat("bad degree in '%s'", part.c_str()));
    }
    levels.push_back(ParallelComponent{dim, std::atoi(degree_text.c_str())});
  }
  return Create(std::move(levels));
}

int HybridStrategy::TotalDegree() const {
  int degree = 1;
  for (const ParallelComponent& level : levels_) degree *= level.degree;
  return degree;
}

int HybridStrategy::DegreeOf(ParallelDim dim) const {
  for (const ParallelComponent& level : levels_) {
    if (level.dim == dim) return level.degree;
  }
  return 1;
}

Result<int> HybridStrategy::StrideOf(ParallelDim dim) const {
  int stride = 1;
  for (const ParallelComponent& level : levels_) {
    if (level.dim == dim) return stride;
    stride *= level.degree;
  }
  return Status::NotFound(StrFormat(
      "strategy %s does not use %s", ToString().c_str(),
      std::string(ParallelDimToString(dim)).c_str()));
}

Result<std::vector<int>> HybridStrategy::GroupContaining(
    ParallelDim dim, int stage_first_device, int device_id) const {
  GALVATRON_ASSIGN_OR_RETURN(int stride, StrideOf(dim));
  const int degree = DegreeOf(dim);
  const int local = device_id - stage_first_device;
  if (local < 0 || local >= TotalDegree()) {
    return Status::InvalidArgument("device outside the stage block");
  }
  // Zero out this dim's mixed-radix coordinate, then enumerate it.
  const int coord = (local / stride) % degree;
  const int base = local - coord * stride;
  std::vector<int> group;
  group.reserve(static_cast<size_t>(degree));
  for (int i = 0; i < degree; ++i) {
    group.push_back(stage_first_device + base + i * stride);
  }
  return group;
}

Result<std::vector<std::vector<int>>> HybridStrategy::AllGroups(
    ParallelDim dim, int stage_first_device) const {
  GALVATRON_ASSIGN_OR_RETURN(int stride, StrideOf(dim));
  const int degree = DegreeOf(dim);
  const int total = TotalDegree();
  std::vector<std::vector<int>> groups;
  for (int local = 0; local < total; ++local) {
    const int coord = (local / stride) % degree;
    if (coord != 0) continue;  // one group per zero-coordinate base
    std::vector<int> group;
    group.reserve(static_cast<size_t>(degree));
    for (int i = 0; i < degree; ++i) {
      group.push_back(stage_first_device + local + i * stride);
    }
    groups.push_back(std::move(group));
  }
  return groups;
}

std::string HybridStrategy::ToString() const {
  if (levels_.empty()) return "serial";
  // Plain concatenation, not ostringstream: stream construction (locale
  // caching, facet dynamic_casts) costs more than the whole string, and
  // cache-key builders call this on search hot paths.
  std::string text;
  text.reserve(8 * levels_.size());
  for (size_t i = 0; i < levels_.size(); ++i) {
    if (i > 0) text += '-';
    text += ParallelDimToShortString(levels_[i].dim);
    text += std::to_string(levels_[i].degree);
  }
  return text;
}

}  // namespace galvatron
