#ifndef GALVATRON_PARALLEL_PIPELINE_PARTITION_H_
#define GALVATRON_PARALLEL_PIPELINE_PARTITION_H_

#include <string_view>
#include <vector>

#include "ir/model.h"
#include "util/result.h"

namespace galvatron {

/// Load-balancing guidelines for PP partitioning (Sec 3.3 "we support
/// several load balancing guidelines ... number of layers/parameters, the
/// maximum memory usage and the execution time").
enum class PartitionPolicy {
  kLayerCount,
  kParams,
  kFlops,             // proxy for execution time
  kActivationMemory,  // proxy for maximum memory usage
};

std::string_view PartitionPolicyToString(PartitionPolicy policy);

/// Partitions the model's layer sequence into `num_stages` contiguous,
/// non-empty stages minimizing the maximum per-stage weight under `policy`
/// (exact interval-DP, not a heuristic). Returns the number of layers per
/// stage. Errors if num_stages exceeds the layer count.
Result<std::vector<int>> PartitionPipeline(const ModelSpec& model,
                                           int num_stages,
                                           PartitionPolicy policy);

/// Same, over explicit per-layer weights (exposed for tests and ablations).
Result<std::vector<int>> PartitionByWeights(const std::vector<double>& weights,
                                            int num_stages);

/// Heterogeneous variant: stage k has relative capacity capacities[k]
/// (e.g. its device island's memory budget); minimizes the maximum
/// *normalized* stage weight max_k(stage_weight_k / capacities[k]), so
/// roomier islands receive proportionally more layers. The paper leaves
/// heterogeneous environments as future work (Sec 6).
Result<std::vector<int>> PartitionByWeightsWithCapacities(
    const std::vector<double>& weights,
    const std::vector<double>& capacities);

/// PartitionPipeline with per-stage capacities.
Result<std::vector<int>> PartitionPipelineHeterogeneous(
    const ModelSpec& model, PartitionPolicy policy,
    const std::vector<double>& capacities);

}  // namespace galvatron

#endif  // GALVATRON_PARALLEL_PIPELINE_PARTITION_H_
