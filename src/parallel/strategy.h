#ifndef GALVATRON_PARALLEL_STRATEGY_H_
#define GALVATRON_PARALLEL_STRATEGY_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"
#include "util/small_vector.h"

namespace galvatron {

/// The four basic parallelism paradigms (Sec 2.2 / Figure 1).
enum class ParallelDim {
  kData,         // DP: replicate model, split samples, all-reduce grads
  kShardedData,  // SDP (ZeRO-3/FSDP): split samples AND shard model states
  kTensor,       // TP (Megatron): shard weights, all-reduce activations
  kPipeline,     // PP (GPipe): split layers into stages
};

std::string_view ParallelDimToString(ParallelDim dim);
/// Short form used in plan strings: "dp", "sdp", "tp", "pp".
std::string_view ParallelDimToShortString(ParallelDim dim);

/// One level of a decision tree: a parallelism applied with a degree.
struct ParallelComponent {
  ParallelDim dim = ParallelDim::kData;
  int degree = 1;

  friend bool operator==(const ParallelComponent& a,
                         const ParallelComponent& b) {
    return a.dim == b.dim && a.degree == b.degree;
  }
};

/// An intra-stage hybrid parallelism strategy for one layer: the ordered
/// levels of one root-to-leaf decision-tree path (Sec 3.2), innermost level
/// first.
///
/// The innermost level maps to consecutive device ids — the highest-
/// bandwidth links (Takeaway #1's island preference); outer levels stride
/// across progressively larger blocks. Level i has stride
/// prod(degree_0..i-1); a device's communication group for level i is
/// obtained by varying its i-th mixed-radix coordinate.
///
/// PP never appears here: Algorithm 1 applies PP first and hands each stage
/// a PP-free strategy set.
class HybridStrategy {
 public:
  /// Level storage: at most one level per non-PP ParallelDim can pass
  /// Create's validation, so three inline slots cover every constructible
  /// strategy — copying a strategy (the DP reconstruction and candidate
  /// plumbing do it millions of times per sweep) never touches the heap.
  using LevelList = SmallVector<ParallelComponent, 3>;

  /// An empty strategy: serial execution on a single device.
  HybridStrategy() = default;

  /// Validates levels: degrees >= 2, each ParallelDim used at most once,
  /// no PP (decision trees never contain PP).
  static Result<HybridStrategy> Create(std::vector<ParallelComponent> levels);

  /// Parses the ToString() form: "serial", or dash-separated levels like
  /// "tp2-dp4" (innermost first).
  static Result<HybridStrategy> Parse(const std::string& text);

  const LevelList& levels() const { return levels_; }
  int num_levels() const { return static_cast<int>(levels_.size()); }

  /// Product of all level degrees == size of the device group this strategy
  /// occupies.
  int TotalDegree() const;

  /// Degree of `dim` (1 if unused).
  int DegreeOf(ParallelDim dim) const;
  bool Uses(ParallelDim dim) const { return DegreeOf(dim) > 1; }

  /// Batch-splitting factor: DP degree x SDP degree (both split samples).
  int BatchSplit() const {
    return DegreeOf(ParallelDim::kData) * DegreeOf(ParallelDim::kShardedData);
  }

  /// Element stride of `dim`'s communication groups within the stage block
  /// (the product of degrees of inner levels). Devices of one group are
  /// {base + i*stride}.
  Result<int> StrideOf(ParallelDim dim) const;

  /// The communication group (absolute device ids) of `dim` containing
  /// `device_id`, for a stage whose devices are
  /// [stage_first_device, stage_first_device + TotalDegree()).
  Result<std::vector<int>> GroupContaining(ParallelDim dim,
                                           int stage_first_device,
                                           int device_id) const;

  /// All communication groups of `dim` within the stage block; they
  /// partition the stage's devices.
  Result<std::vector<std::vector<int>>> AllGroups(ParallelDim dim,
                                                  int stage_first_device) const;

  /// "serial" for the empty strategy, else e.g. "tp2-sdp4" (innermost
  /// first).
  std::string ToString() const;

  friend bool operator==(const HybridStrategy& a, const HybridStrategy& b) {
    return a.levels_ == b.levels_;
  }

 private:
  LevelList levels_;
};

}  // namespace galvatron

#endif  // GALVATRON_PARALLEL_STRATEGY_H_
