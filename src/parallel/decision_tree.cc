#include "parallel/decision_tree.h"

#include <algorithm>

#include "util/math_util.h"
#include "util/string_util.h"

namespace galvatron {

namespace {

/// Recursively assigns distinct dims to the ordered factor list. With
/// `fixed_order`, dims must appear in the canonical order `available` lists
/// them (TP, SDP, DP), so only increasing picks are allowed.
void AssignDims(const std::vector<int>& factors, size_t index,
                const std::vector<ParallelDim>& available, bool fixed_order,
                size_t min_dim_index, std::vector<ParallelComponent>* current,
                std::vector<HybridStrategy>* out) {
  if (index == factors.size()) {
    auto strategy = HybridStrategy::Create(*current);
    GALVATRON_CHECK(strategy.ok()) << strategy.status();
    out->push_back(*std::move(strategy));
    return;
  }
  for (size_t d = fixed_order ? min_dim_index : 0; d < available.size(); ++d) {
    ParallelDim dim = available[d];
    bool used = false;
    for (const ParallelComponent& c : *current) {
      if (c.dim == dim) {
        used = true;
        break;
      }
    }
    if (used) continue;
    current->push_back(ParallelComponent{dim, factors[index]});
    AssignDims(factors, index + 1, available, fixed_order, d + 1, current,
               out);
    current->pop_back();
  }
}

bool MixesDpAndSdp(const HybridStrategy& strategy) {
  return strategy.Uses(ParallelDim::kData) &&
         strategy.Uses(ParallelDim::kShardedData);
}

}  // namespace

Result<std::vector<HybridStrategy>> EnumerateSingleLayerStrategies(
    int group_size, const DecisionTreeOptions& options) {
  if (group_size < 1) {
    return Status::InvalidArgument("group_size must be >= 1");
  }
  if (!IsPowerOfTwo(group_size)) {
    return Status::InvalidArgument(StrFormat(
        "group sizes are powers of two in Galvatron (got %d)", group_size));
  }
  // Canonical order (innermost first): TP on the fastest links, then SDP,
  // then DP (the order fixed_order enforces).
  std::vector<ParallelDim> available;
  if (options.allow_tp) available.push_back(ParallelDim::kTensor);
  if (options.allow_sdp) available.push_back(ParallelDim::kShardedData);
  if (options.allow_dp) available.push_back(ParallelDim::kData);

  std::vector<HybridStrategy> strategies;
  if (group_size == 1) {
    strategies.emplace_back();  // serial
    return strategies;
  }
  if (available.empty()) {
    return Status::InvalidArgument(
        "no parallelism dimensions allowed but group_size > 1");
  }

  // Tree heights are bounded by the number of distinct parallelisms
  // (construction rules 1-2).
  const int max_parts = static_cast<int>(available.size());
  for (const std::vector<int>& factors :
       OrderedFactorizations(group_size, max_parts)) {
    std::vector<ParallelComponent> current;
    AssignDims(factors, 0, available, options.fixed_order, 0, &current,
               &strategies);
  }

  if (options.prune_dp_sdp_mix) {
    strategies.erase(
        std::remove_if(strategies.begin(), strategies.end(), MixesDpAndSdp),
        strategies.end());
  }
  return strategies;
}

Result<int> CountStrategiesAcrossPipelineDegrees(
    int num_devices, const DecisionTreeOptions& options) {
  if (!IsPowerOfTwo(num_devices)) {
    return Status::InvalidArgument("num_devices must be a power of two");
  }
  int total = 0;
  for (int pp = 1; pp <= num_devices; pp *= 2) {
    GALVATRON_ASSIGN_OR_RETURN(
        std::vector<HybridStrategy> strategies,
        EnumerateSingleLayerStrategies(num_devices / pp, options));
    total += static_cast<int>(strategies.size());
  }
  return total;
}

}  // namespace galvatron
