#ifndef GALVATRON_PARALLEL_TRANSFORMATION_H_
#define GALVATRON_PARALLEL_TRANSFORMATION_H_

#include <cstdint>

#include "cluster/cluster.h"
#include "ir/layer.h"
#include "parallel/strategy.h"
#include "util/result.h"

namespace galvatron {

/// The Slice-Gather transformation cost R(L, S_prev, S_next) of Eq. (1) /
/// Sec 4: when two neighbouring layers use different strategies, the
/// previous layer's output activation must be re-laid-out for the next
/// layer.
///
/// At a layer boundary the activation of a group running strategy S is
/// batch-split m = dp*sdp ways and replicated across the remaining t ranks
/// (TP's trailing all-reduce leaves boundary activations replicated inside
/// the TP group). Moving to a layout with more batch splitting
/// (m_next >= m_prev) only requires local slicing — zero communication;
/// this includes the paper's "4-way TP -> 4-way DP" free case. Moving to
/// less batch splitting requires gathering the missing sample shards:
/// an all-gather of the next layer's input across groups of
/// r = m_prev / m_next devices.
struct TransformationCost {
  int64_t gathered_bytes = 0;  // bytes each device must end up with
  int gather_group = 1;        // r above; 1 means free slicing
  double seconds = 0.0;
};

/// Computes R for the boundary between `prev_layer` (running `prev`) and
/// `next_layer` (running `next`) on a stage block starting at
/// `stage_first_device`. `batch_per_group` is the stage's batch. The tensor
/// being re-laid-out is the activation the successor consumes
/// (`next_layer.input_bytes()`), so R depends on BOTH boundary layers —
/// caches must key on both signatures.
///
/// CONTRACT (load-bearing for SharedCostCache::TransformSeconds): the
/// result depends on the strategies ONLY through TotalDegree() (the
/// group-size validation and the bottleneck-link scan) and BatchSplit()
/// (m_prev / m_next). Strategies agreeing on both are interchangeable
/// here — the equal-strategy early-out is subsumed, since prev == next
/// implies m_next >= m_prev, the zero-cost branch. The shared cost cache
/// keys transformation entries by those two scalars instead of by full
/// strategy identity, collapsing the O(S^2) strategy-pair matrix to the
/// handful of distinct (degree, batch-split) classes; widening this
/// function's strategy dependence requires widening that key in step.
Result<TransformationCost> ComputeTransformationCost(
    const LayerSpec& prev_layer, const LayerSpec& next_layer,
    const HybridStrategy& prev, const HybridStrategy& next,
    int stage_first_device, int batch_per_group, const ClusterSpec& cluster);

}  // namespace galvatron

#endif  // GALVATRON_PARALLEL_TRANSFORMATION_H_
