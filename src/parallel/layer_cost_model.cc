#include "parallel/layer_cost_model.h"

#include <algorithm>

#include "ir/dtype.h"
#include "util/logging.h"
#include "util/math_util.h"
#include "util/string_util.h"

namespace galvatron {

namespace {

constexpr int64_t kGradBytesPerParam = 4;  // fp32 gradients / weights

}  // namespace

LayerCostModel::LayerCostModel(const ClusterSpec* cluster)
    : cluster_(cluster) {
  GALVATRON_CHECK(cluster != nullptr);
}

Result<LayerExecution> LayerCostModel::Analyze(const LayerSpec& layer,
                                               const HybridStrategy& strategy,
                                               int stage_first_device,
                                               int batch_per_group,
                                               bool recompute,
                                               bool sequence_parallel) const {
  const int group_size = strategy.TotalDegree();
  if (stage_first_device < 0 ||
      stage_first_device + group_size > cluster_->num_devices()) {
    return Status::InvalidArgument(StrFormat(
        "strategy %s needs devices [%d, %d) but cluster has %d",
        strategy.ToString().c_str(), stage_first_device,
        stage_first_device + group_size, cluster_->num_devices()));
  }
  if (batch_per_group < 1) {
    return Status::InvalidArgument("batch_per_group must be >= 1");
  }

  const int dp = strategy.DegreeOf(ParallelDim::kData);
  const int sdp = strategy.DegreeOf(ParallelDim::kShardedData);
  const int tp = strategy.DegreeOf(ParallelDim::kTensor);

  LayerExecution exec;
  exec.local_batch =
      static_cast<int>(CeilDiv(batch_per_group, strategy.BatchSplit()));

  // --- Compute ---------------------------------------------------------
  const double flops_per_sample =
      layer.tp_shardable_flops() / tp +
      (layer.fwd_flops() - layer.tp_shardable_flops());
  // Each op pays a fixed launch overhead per pass; backward launches about
  // twice as many kernels (input + weight gradients).
  const double launch = static_cast<double>(layer.ops().size()) *
                        cluster_->kernel_launch_overhead_sec();
  // Small local batches under-fill GEMM tiles: efficiency b / (b + h).
  // Mixed-generation stages run at their slowest member's pace (lockstep
  // collectives), so both knobs come from the worst device in the block.
  const double half_life =
      cluster_->SmallBatchHalfLifeInRange(stage_first_device, group_size);
  const double efficiency =
      exec.local_batch / (exec.local_batch + half_life);
  const ProfileTable::const_iterator profiled =
      profile_ != nullptr ? profile_->find(layer.signature())
                          : ProfileTable::const_iterator{};
  if (profile_ != nullptr && profiled != profile_->end()) {
    // Profiled timing was taken with no model parallelism; under the affine
    // model t(b) = L + slope*(b+1) with slope = F/S, TP scales the slope by
    // its FLOPs-sharding fraction while the launch part L stays.
    const double slope1 = profiled->second.fwd_sec_per_sample;
    const double launch_part =
        std::max(profiled->second.fwd_base_sec - slope1, 0.0);
    const double shard_fraction =
        layer.fwd_flops() > 0 ? flops_per_sample / layer.fwd_flops() : 1.0;
    const double slope_tp = slope1 * shard_fraction;
    exec.fwd_compute_sec =
        launch_part + slope_tp * (exec.local_batch + 1);
  } else {
    const double sustained_flops =
        cluster_->MinSustainedFlopsInRange(stage_first_device, group_size);
    exec.fwd_compute_sec = flops_per_sample * exec.local_batch /
                               (sustained_flops * efficiency) +
                           launch;
  }
  // Backward is 2x forward; checkpointing re-runs the forward first.
  exec.bwd_compute_sec =
      (recompute ? 3.0 : 2.0) * exec.fwd_compute_sec;

  // --- Memory ----------------------------------------------------------
  // TP shards the matmul weights; the remainder is replicated in the TP
  // group. SDP then shards whatever states this device would hold.
  const int64_t params_after_tp =
      layer.tp_shardable_params() / tp +
      (layer.param_count() - layer.tp_shardable_params());
  exec.state_memory_bytes =
      kAdamStateBytesPerParam * params_after_tp / sdp;
  const int64_t saved_per_sample =
      sequence_parallel ? layer.SavedActivationBytesSequenceParallel(tp)
                        : layer.SavedActivationBytes(tp);
  if (recompute) {
    // Only the boundary input persists; the internals are rebuilt during
    // backward and live transiently (one layer x one micro-batch at a time).
    // Under SP the boundary is sequence-sharded as well.
    exec.activation_memory_bytes =
        layer.input_bytes() / (sequence_parallel ? tp : 1) *
        exec.local_batch;
    exec.recompute_transient_bytes = saved_per_sample * exec.local_batch;
  } else {
    exec.activation_memory_bytes = saved_per_sample * exec.local_batch;
  }
  if (sdp > 1) {
    // ZeRO-3 materializes the full (TP-sharded) fp32 weights of the layer
    // while computing it; all but the owned 1/sdp share is transient.
    exec.sdp_transient_bytes =
        kGradBytesPerParam * params_after_tp * (sdp - 1) / sdp;
  }
  exec.transient_memory_bytes =
      exec.sdp_transient_bytes + exec.recompute_transient_bytes;

  // --- Communication ---------------------------------------------------
  // The group containing the block's first device along `dim` is the
  // arithmetic progression stage_first_device + i * stride (its zeroed
  // coordinate puts it at the group base), so its bottleneck link is fixed
  // by the first and last members alone — no need to materialize the ids.
  auto resolve_link = [&](ParallelDim dim) -> Result<LinkSpec> {
    GALVATRON_ASSIGN_OR_RETURN(int stride, strategy.StrideOf(dim));
    const int degree = strategy.DegreeOf(dim);
    if (degree < 2) return LinkSpec{};
    // Level-priced clusters reduce to the old first/last bottleneck;
    // graph-backed clusters also charge cross-tier uplink contention
    // between the stage's sibling groups along this dim.
    return cluster_->CollectiveLink(stage_first_device, stride, degree,
                                    group_size);
  };

  if (tp > 1) {
    GALVATRON_ASSIGN_OR_RETURN(LinkSpec link,
                               resolve_link(ParallelDim::kTensor));
    CommTask fwd;
    // Sequence parallelism replaces each all-reduce by an all-gather +
    // reduce-scatter pair; the ring traffic is identical (2(n-1)/n), which
    // the all-reduce cost already models, so only the memory side differs.
    fwd.kind = CollectiveKind::kAllReduce;
    fwd.dim = ParallelDim::kTensor;
    fwd.bytes = layer.tp_fwd_allreduce_bytes() * exec.local_batch;
    fwd.group_size = tp;
    fwd.link = link;
    fwd.overlappable = false;
    if (fwd.bytes > 0) exec.fwd_comms.push_back(fwd);

    CommTask bwd = fwd;
    bwd.bytes = layer.tp_bwd_allreduce_bytes() * exec.local_batch;
    if (recompute) {
      // The re-run forward repeats its activation all-reduces.
      bwd.bytes += layer.tp_fwd_allreduce_bytes() * exec.local_batch;
    }
    if (bwd.bytes > 0) exec.bwd_comms.push_back(bwd);
  }

  if (dp > 1) {
    GALVATRON_ASSIGN_OR_RETURN(LinkSpec link, resolve_link(ParallelDim::kData));
    CommTask grads;
    grads.kind = CollectiveKind::kAllReduce;
    grads.dim = ParallelDim::kData;
    grads.bytes = kGradBytesPerParam * params_after_tp;
    grads.group_size = dp;
    grads.link = link;
    grads.overlappable = true;  // overlaps backward compute (Sec 3.4)
    grads.frequency = CommFrequency::kPerIteration;
    if (grads.bytes > 0) exec.bwd_comms.push_back(grads);
  }

  if (sdp > 1) {
    GALVATRON_ASSIGN_OR_RETURN(LinkSpec link,
                               resolve_link(ParallelDim::kShardedData));
    const int64_t weight_bytes = kGradBytesPerParam * params_after_tp;

    // Forward: all-gather the sharded weights before computing.
    CommTask gather_fwd;
    gather_fwd.kind = CollectiveKind::kAllGather;
    gather_fwd.dim = ParallelDim::kShardedData;
    gather_fwd.bytes = weight_bytes;
    gather_fwd.group_size = sdp;
    gather_fwd.link = link;
    gather_fwd.overlappable = false;
    if (gather_fwd.bytes > 0) exec.fwd_comms.push_back(gather_fwd);

    // Backward: re-gather weights, then reduce-scatter gradients; both
    // overlap backward compute (ZeRO-3 prefetching).
    CommTask gather_bwd = gather_fwd;
    gather_bwd.overlappable = true;
    if (gather_bwd.bytes > 0) exec.bwd_comms.push_back(gather_bwd);

    CommTask scatter;
    scatter.kind = CollectiveKind::kReduceScatter;
    scatter.dim = ParallelDim::kShardedData;
    scatter.bytes = weight_bytes;
    scatter.group_size = sdp;
    scatter.link = link;
    scatter.overlappable = true;
    scatter.frequency = CommFrequency::kPerIteration;
    if (scatter.bytes > 0) exec.bwd_comms.push_back(scatter);
  }

  return exec;
}

}  // namespace galvatron
