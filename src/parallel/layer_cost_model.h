#ifndef GALVATRON_PARALLEL_LAYER_COST_MODEL_H_
#define GALVATRON_PARALLEL_LAYER_COST_MODEL_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "comm/collective.h"
#include "ir/layer.h"
#include "parallel/strategy.h"
#include "util/result.h"
#include "util/small_vector.h"

namespace galvatron {

/// How often a communication op fires during one training iteration with
/// micro-batched pipelining: activation collectives and ZeRO weight gathers
/// run per micro-batch; gradient synchronization runs once per iteration.
enum class CommFrequency {
  kPerMicroBatch,
  kPerIteration,
};

/// One communication operation a layer issues under a strategy, with its
/// topology-resolved bottleneck link.
struct CommTask {
  CollectiveKind kind = CollectiveKind::kAllReduce;
  ParallelDim dim = ParallelDim::kData;
  int64_t bytes = 0;  // full payload; ring factors applied by CollectiveTime
  int group_size = 1;
  LinkSpec link;
  CommFrequency frequency = CommFrequency::kPerMicroBatch;
  /// True for the DP gradient all-reduce and SDP backward all-gather /
  /// reduce-scatter: they overlap backward computation (Sec 3.4), paying
  /// the contention slowdown. TP activation all-reduces block.
  bool overlappable = false;

  double Time() const { return CollectiveTime(kind, bytes, group_size, link); }
};

/// Everything the estimator and simulator need about one (layer, strategy,
/// batch) combination on one device of the stage group. Devices of a group
/// are symmetric, so one analysis covers all of them.
struct LayerExecution {
  double fwd_compute_sec = 0.0;
  double bwd_compute_sec = 0.0;  // 2x forward (matmul-dominated)
  /// Inline storage covers every strategy: at most TP + SDP forward tasks
  /// and TP + DP + 2xSDP backward tasks, so an Analyze call never touches
  /// the allocator for its comm lists (it runs millions of times per
  /// sweep, under the allocation tripwires).
  SmallVector<CommTask, 2> fwd_comms;
  SmallVector<CommTask, 4> bwd_comms;

  /// Adam model states (weight+grad+m+v) resident per device.
  int64_t state_memory_bytes = 0;
  /// Saved activations per device (scaled by the local batch).
  int64_t activation_memory_bytes = 0;
  /// Transient peaks: SDP's gathered full weights during the layer, plus
  /// (with recompute) the rebuilt internal activations during backward.
  int64_t transient_memory_bytes = 0;
  /// Components of transient_memory_bytes (the simulator charges them at
  /// different points in the schedule).
  int64_t sdp_transient_bytes = 0;
  int64_t recompute_transient_bytes = 0;
  /// Samples this device computes per iteration.
  int local_batch = 0;

  /// Resident memory charged against the budget in the DP search
  /// (states + activations; transients are charged at their peak).
  int64_t ResidentMemoryBytes() const {
    return state_memory_bytes + activation_memory_bytes;
  }
  int64_t PeakMemoryBytes() const {
    return ResidentMemoryBytes() + transient_memory_bytes;
  }
};

/// Measured execution profile of one layer shape: forward time modelled as
/// base + slope * local_batch (affine — exact for the simulated hardware's
/// batch-efficiency curve, and near-exact on real GPUs, which is why the
/// paper's per-sample profiling works).
struct LayerProfile {
  double fwd_base_sec = 0.0;
  double fwd_sec_per_sample = 0.0;
  int samples_measured = 0;

  double FwdSeconds(int local_batch) const {
    return fwd_base_sec + fwd_sec_per_sample * local_batch;
  }
};

/// Profiles keyed by layer signature (repeated blocks share one entry).
using ProfileTable = std::map<std::string, LayerProfile>;

/// Derives per-device compute/communication/memory figures for a layer
/// running under a hybrid strategy on a stage's device block. This is the
/// shared substrate of the analytic estimator (Sec 3.4) and the
/// discrete-event simulator.
class LayerCostModel {
 public:
  /// `cluster` must outlive this object.
  explicit LayerCostModel(const ClusterSpec* cluster);

  /// Uses measured per-layer timings instead of the analytic FLOPs model
  /// for forward/backward compute (the paper's profiling pathway, Sec 3.4).
  /// `profile` must outlive this object; nullptr reverts to analytic.
  void set_profile(const ProfileTable* profile) { profile_ = profile; }
  const ProfileTable* profile() const { return profile_; }

  /// Analyzes one layer under `strategy`, occupying devices
  /// [stage_first_device, stage_first_device + strategy.TotalDegree()).
  /// `batch_per_group` is the number of samples the group processes per
  /// forward pass — the micro-batch size for pipelined plans. Per-iteration
  /// comm tasks (gradient sync) are batch-independent. NOTE: activation
  /// memory is reported for `batch_per_group` samples; GPipe keeps all
  /// micro-batches' activations live, so callers size memory with the full
  /// per-group batch, not the micro-batch.
  ///
  /// With `recompute` (activation checkpointing — the paper's future-work
  /// memory optimization), only the layer's boundary input is stashed;
  /// backward first re-runs the forward (compute + its TP all-reduces), and
  /// the full internal activations exist only transiently.
  /// With `sequence_parallel` (Megatron-LM SP), TP's activation
  /// all-reduces become all-gather + reduce-scatter pairs of the same
  /// total volume, and the activations between TP regions shard along the
  /// sequence dimension instead of being replicated.
  Result<LayerExecution> Analyze(const LayerSpec& layer,
                                 const HybridStrategy& strategy,
                                 int stage_first_device, int batch_per_group,
                                 bool recompute = false,
                                 bool sequence_parallel = false) const;

 private:
  const ClusterSpec* cluster_;
  const ProfileTable* profile_ = nullptr;
};

}  // namespace galvatron

#endif  // GALVATRON_PARALLEL_LAYER_COST_MODEL_H_
