#ifndef GALVATRON_PARALLEL_DECISION_TREE_H_
#define GALVATRON_PARALLEL_DECISION_TREE_H_

#include <vector>

#include "parallel/strategy.h"
#include "util/result.h"

namespace galvatron {

/// Controls which parallelism dimensions the decision tree may use, and the
/// Takeaway #3 pruning. The restricted modes reproduce the paper's
/// "Galvatron (DP+TP)" and "Galvatron (DP+PP)" auxiliary baselines.
struct DecisionTreeOptions {
  bool allow_dp = true;
  bool allow_sdp = true;
  bool allow_tp = true;
  /// Takeaway #3: combinations containing both DP and SDP are never better
  /// than pure SDP, so prune them.
  bool prune_dp_sdp_mix = true;
  /// When true, levels follow the canonical TP -> SDP -> DP order instead of
  /// enumerating all permutations. This reproduces prior limited systems
  /// (OptCNN/FlexFlow-style) for the paper's DP+TP / DP+PP baselines:
  /// Figure 4(b)'s "4 alternate strategies on 8 GPUs".
  bool fixed_order = false;
};

/// Constructs the decision trees of Sec 3.2 for a device group of
/// `group_size` (the per-stage group after PP partitioning) and returns all
/// root-to-leaf strategies they encode:
///
///   - every ordered factorization of group_size into factors >= 2 becomes
///     the level degrees (tree construction rule 3 restricted to the
///     power-of-two group sizes Algorithm 1 produces),
///   - each level is assigned a distinct allowed parallelism (rules 1-2),
///   - DP x SDP mixtures are pruned under Takeaway #3.
///
/// group_size == 1 yields the single empty ("serial") strategy. For 8 GPUs,
/// summing over the PP degrees {1,2,4,8} (group sizes {8,4,2,1}) yields the
/// paper's 34 candidates, or 22 with Takeaway #3 (Figure 2).
Result<std::vector<HybridStrategy>> EnumerateSingleLayerStrategies(
    int group_size, const DecisionTreeOptions& options = {});

/// Total candidate count across all PP degrees for `num_devices` GPUs
/// (the "22 candidate hybrid strategies for all trees in total" number).
Result<int> CountStrategiesAcrossPipelineDegrees(
    int num_devices, const DecisionTreeOptions& options = {});

}  // namespace galvatron

#endif  // GALVATRON_PARALLEL_DECISION_TREE_H_
