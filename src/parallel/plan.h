#ifndef GALVATRON_PARALLEL_PLAN_H_
#define GALVATRON_PARALLEL_PLAN_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ir/model.h"
#include "parallel/strategy.h"
#include "util/result.h"

namespace galvatron {

/// One pipeline stage of a training plan: a contiguous layer range mapped
/// onto a contiguous device block, with a per-layer intra-stage strategy.
struct StagePlan {
  int first_device = 0;
  int num_devices = 1;
  int first_layer = 0;
  int num_layers = 0;
  /// One strategy per layer in [first_layer, first_layer + num_layers).
  std::vector<HybridStrategy> layer_strategies;
  /// Per-layer activation checkpointing (empty = none). The paper disables
  /// recompute and leaves it as future work (Sec 5.1); this implementation
  /// supports it as an additional per-layer search dimension.
  std::vector<uint8_t> recompute;

  bool RecomputeAt(int layer_offset) const {
    return !recompute.empty() &&
           recompute[static_cast<size_t>(layer_offset)] != 0;
  }
};

/// Pipeline execution schedules. GPipe (the paper's default) flushes all
/// forwards before any backward and keeps every micro-batch's activations
/// live; 1F1B (PipeDream-Flush, the paper's "future work" alternative)
/// bounds stage s's in-flight micro-batches by (stages - s), trading no
/// extra bubble time for much lower activation memory.
enum class PipelineSchedule {
  kGPipe,
  k1F1B,
};

std::string_view PipelineScheduleToString(PipelineSchedule schedule);

/// A complete hybrid-parallel training plan: PP stage layout, per-layer
/// strategies, global batch and micro-batch count. This is what the
/// optimizer emits and the simulator executes.
struct TrainingPlan {
  std::string model_name;
  int global_batch = 1;
  int num_micro_batches = 1;
  PipelineSchedule schedule = PipelineSchedule::kGPipe;
  std::vector<StagePlan> stages;

  /// Micro-batches whose activations stage `stage_index` holds at peak:
  /// all of them under GPipe, min(m, stages - stage_index) under 1F1B.
  int InFlightMicroBatches(int stage_index) const;

  /// Same, parameterized by an explicit PP degree (usable before `stages`
  /// is filled in, during plan construction).
  int InFlightForDegree(int pp_degree, int stage_index) const;

  int pp_degree() const { return static_cast<int>(stages.size()); }

  /// Samples per micro-batch (global batch split across micro-batches;
  /// every stage sees every micro-batch).
  int MicroBatchSize() const;

  /// Validates internal consistency against the model and a device count:
  /// stages cover all layers exactly once, device blocks are disjoint and
  /// within range, strategy degrees match stage widths.
  Status Validate(const ModelSpec& model, int num_devices) const;

  /// Figure-5 style rendering: one line per run of consecutive layers with
  /// the same strategy, e.g. "stage0[gpu0-3]: layers 0-15 tp2-dp2 x16".
  std::string ToString() const;
};

/// Builds the common "uniform" plan: every layer uses `strategy`, model
/// partitioned into `pp_degree` equal-device stages with `stage_layers`
/// layers per stage. Used by baselines and tests.
Result<TrainingPlan> MakeUniformPlan(const ModelSpec& model, int num_devices,
                                     int pp_degree,
                                     const std::vector<int>& stage_layers,
                                     const HybridStrategy& strategy,
                                     int global_batch, int num_micro_batches);

}  // namespace galvatron

#endif  // GALVATRON_PARALLEL_PLAN_H_
