#include "cluster/cluster.h"

#include <algorithm>
#include <sstream>

#include "util/logging.h"
#include "util/string_util.h"

namespace galvatron {

Result<ClusterSpec> ClusterSpec::Create(std::string name, int num_devices,
                                        int64_t device_memory_bytes,
                                        double sustained_flops,
                                        std::vector<TopologyLevel> levels) {
  if (num_devices <= 0) {
    return Status::InvalidArgument("num_devices must be positive");
  }
  if (levels.empty()) {
    return Status::InvalidArgument("topology needs at least one level");
  }
  int prev_span = 1;
  for (const TopologyLevel& level : levels) {
    if (level.span <= prev_span && !(prev_span == 1 && level.span == 1)) {
      return Status::InvalidArgument(
          StrFormat("level spans must be strictly ascending (%d after %d)",
                    level.span, prev_span));
    }
    if (level.span % prev_span != 0) {
      return Status::InvalidArgument(StrFormat(
          "level span %d is not a multiple of inner span %d", level.span,
          prev_span));
    }
    if (level.link.bandwidth_bytes_per_sec <= 0) {
      return Status::InvalidArgument("link bandwidth must be positive");
    }
    prev_span = level.span;
  }
  if (levels.back().span != num_devices) {
    return Status::InvalidArgument(StrFormat(
        "outermost span %d must equal num_devices %d", levels.back().span,
        num_devices));
  }

  ClusterSpec cluster;
  cluster.name_ = std::move(name);
  cluster.levels_ = std::move(levels);
  cluster.devices_.resize(static_cast<size_t>(num_devices));
  for (int i = 0; i < num_devices; ++i) {
    cluster.devices_[static_cast<size_t>(i)] =
        Device{i, device_memory_bytes, sustained_flops};
  }
  return cluster;
}

ClusterSpec ClusterSpec::WithMemoryBudget(int64_t memory_bytes) const {
  ClusterSpec copy = *this;
  for (Device& d : copy.devices_) d.memory_bytes = memory_bytes;
  return copy;
}

ClusterSpec ClusterSpec::WithDeviceMemoryRange(int first, int count,
                                               int64_t memory_bytes) const {
  GALVATRON_CHECK_GE(first, 0);
  GALVATRON_CHECK_LE(first + count, num_devices());
  ClusterSpec copy = *this;
  for (int i = first; i < first + count; ++i) {
    copy.devices_[static_cast<size_t>(i)].memory_bytes = memory_bytes;
  }
  return copy;
}

int64_t ClusterSpec::MinMemoryInRange(int first, int count) const {
  GALVATRON_CHECK_GE(first, 0);
  GALVATRON_CHECK_GE(count, 1);
  GALVATRON_CHECK_LE(first + count, num_devices());
  int64_t min_memory = devices_[static_cast<size_t>(first)].memory_bytes;
  for (int i = first + 1; i < first + count; ++i) {
    min_memory =
        std::min(min_memory, devices_[static_cast<size_t>(i)].memory_bytes);
  }
  return min_memory;
}

bool ClusterSpec::HasUniformMemory() const {
  return MinMemoryInRange(0, num_devices()) ==
         devices_.front().memory_bytes &&
         std::all_of(devices_.begin(), devices_.end(), [&](const Device& d) {
           return d.memory_bytes == devices_.front().memory_bytes;
         });
}

const LinkSpec& ClusterSpec::LinkBetween(int device_a, int device_b) const {
  GALVATRON_CHECK_NE(device_a, device_b);
  for (const TopologyLevel& level : levels_) {
    if (device_a / level.span == device_b / level.span) return level.link;
  }
  GALVATRON_CHECK(false) << "devices outside cluster";
  return levels_.back().link;
}

const LinkSpec& ClusterSpec::GroupBottleneckLink(int first_device,
                                                 int last_device) const {
  GALVATRON_CHECK_LT(first_device, last_device);
  return LinkBetween(first_device, last_device);
}

const LinkSpec& ClusterSpec::GroupBottleneckLink(
    const std::vector<int>& device_ids) const {
  GALVATRON_CHECK_GE(device_ids.size(), 2u);
  for (const TopologyLevel& level : levels_) {
    if (SameBlock(/*level_index=*/static_cast<int>(&level - levels_.data()),
                  device_ids)) {
      return level.link;
    }
  }
  GALVATRON_CHECK(false) << "group outside cluster";
  return levels_.back().link;
}

bool ClusterSpec::SameBlock(int level_index,
                            const std::vector<int>& device_ids) const {
  const int span = levels_[static_cast<size_t>(level_index)].span;
  const int block = device_ids.front() / span;
  return std::all_of(device_ids.begin(), device_ids.end(),
                     [&](int id) { return id / span == block; });
}

std::string ClusterSpec::ToString() const {
  std::ostringstream os;
  os << name_ << ": " << num_devices() << " devices, "
     << HumanBytes(static_cast<double>(device_memory_bytes())) << "/device, "
     << StrFormat("%.1f", sustained_flops() / 1e12) << " TFLOP/s sustained;";
  for (const TopologyLevel& level : levels_) {
    os << " [span " << level.span << ": " << LinkClassToString(level.link.cls)
       << " " << StrFormat("%.1f", level.link.bandwidth_bytes_per_sec / 1e9)
       << " GB/s]";
  }
  return os.str();
}

namespace {

// Sustained dense-matmul throughput (FLOP/s) used for calibration; see
// EXPERIMENTS.md. RTX TITAN: 16.3 TF peak fp32, ~35% achieved in training.
constexpr double kTitanSustainedFlops = 6.5e12;
// A100: the paper's 64-GPU throughputs imply ~12+ TF/s sustained per GPU,
// i.e. TF32 tensor-core execution (156 TF peak) at a realistic fraction.
constexpr double kA100SustainedFlops = 17e12;

}  // namespace

ClusterSpec MakeHomogeneousCluster(std::string name, int num_nodes,
                                   int gpus_per_node,
                                   int64_t memory_budget_bytes,
                                   double sustained_flops, LinkClass intra_link,
                                   LinkClass inter_link) {
  std::vector<TopologyLevel> levels;
  levels.push_back(TopologyLevel{gpus_per_node, DefaultLinkSpec(intra_link)});
  if (num_nodes > 1) {
    levels.push_back(
        TopologyLevel{num_nodes * gpus_per_node, DefaultLinkSpec(inter_link)});
  }
  auto result = ClusterSpec::Create(std::move(name),
                                    num_nodes * gpus_per_node,
                                    memory_budget_bytes, sustained_flops,
                                    std::move(levels));
  GALVATRON_CHECK(result.ok()) << result.status();
  return *std::move(result);
}

ClusterSpec MakeTitanNode8(int64_t memory_budget_bytes) {
  return MakeHomogeneousCluster("titan-node-8", /*num_nodes=*/1,
                                /*gpus_per_node=*/8, memory_budget_bytes,
                                kTitanSustainedFlops, LinkClass::kPcie3,
                                LinkClass::kInfiniBand100);
}

ClusterSpec MakeTitanCluster16(int64_t memory_budget_bytes) {
  return MakeHomogeneousCluster("titan-cluster-16", /*num_nodes=*/2,
                                /*gpus_per_node=*/8, memory_budget_bytes,
                                kTitanSustainedFlops, LinkClass::kPcie3,
                                LinkClass::kInfiniBand100);
}

ClusterSpec MakeA100Cluster64(int64_t memory_budget_bytes) {
  ClusterSpec cluster = MakeHomogeneousCluster(
      "a100-cluster-64", /*num_nodes=*/8,
      /*gpus_per_node=*/8, memory_budget_bytes, kA100SustainedFlops,
      LinkClass::kNvLink, LinkClass::kInfiniBand100);
  cluster.set_kernel_launch_overhead_sec(12e-6);
  return cluster;
}

}  // namespace galvatron
