#include "cluster/cluster.h"

#include <algorithm>
#include <sstream>

#include "util/logging.h"
#include "util/string_util.h"

namespace galvatron {

Result<ClusterSpec> ClusterSpec::Create(std::string name, int num_devices,
                                        int64_t device_memory_bytes,
                                        double sustained_flops,
                                        std::vector<TopologyLevel> levels) {
  if (num_devices <= 0) {
    return Status::InvalidArgument("num_devices must be positive");
  }
  if (levels.empty()) {
    return Status::InvalidArgument("topology needs at least one level");
  }
  int prev_span = 1;
  for (const TopologyLevel& level : levels) {
    if (level.span <= prev_span && !(prev_span == 1 && level.span == 1)) {
      return Status::InvalidArgument(
          StrFormat("level spans must be strictly ascending (%d after %d)",
                    level.span, prev_span));
    }
    if (level.span % prev_span != 0) {
      return Status::InvalidArgument(StrFormat(
          "level span %d is not a multiple of inner span %d", level.span,
          prev_span));
    }
    if (level.link.bandwidth_bytes_per_sec <= 0) {
      return Status::InvalidArgument("link bandwidth must be positive");
    }
    prev_span = level.span;
  }
  if (levels.back().span != num_devices) {
    return Status::InvalidArgument(StrFormat(
        "outermost span %d must equal num_devices %d", levels.back().span,
        num_devices));
  }

  ClusterSpec cluster;
  cluster.name_ = std::move(name);
  cluster.levels_ = std::move(levels);
  cluster.devices_.resize(static_cast<size_t>(num_devices));
  for (int i = 0; i < num_devices; ++i) {
    cluster.devices_[static_cast<size_t>(i)] =
        Device{i, device_memory_bytes, sustained_flops};
  }
  return cluster;
}

Result<ClusterSpec> ClusterSpec::CreateFromTopology(
    std::string name, std::shared_ptr<const TopologyGraph> graph) {
  if (graph == nullptr) {
    return Status::InvalidArgument("topology graph must not be null");
  }
  const TopologyNode& root =
      graph->nodes()[static_cast<size_t>(graph->root())];
  std::vector<TopologyLevel> levels;
  levels.push_back(TopologyLevel{graph->num_devices(), root.internal});
  GALVATRON_ASSIGN_OR_RETURN(
      ClusterSpec cluster,
      Create(std::move(name), graph->num_devices(),
             graph->islands().front().memory_bytes,
             graph->islands().front().sustained_flops, std::move(levels)));
  for (const DeviceIsland& island : graph->islands()) {
    for (int i = island.first_device;
         i < island.first_device + island.num_devices; ++i) {
      Device& d = cluster.devices_[static_cast<size_t>(i)];
      d.memory_bytes = island.memory_bytes;
      d.sustained_flops = island.sustained_flops;
      d.small_batch_half_life = island.small_batch_half_life;
    }
  }
  cluster.topology_ = std::move(graph);
  cluster.maybe_mixed_compute_ = true;
  return cluster;
}

Result<ClusterSpec> ClusterSpec::WithTopology(
    std::shared_ptr<const TopologyGraph> graph) const {
  if (graph == nullptr) {
    return Status::InvalidArgument("topology graph must not be null");
  }
  if (graph->num_devices() != num_devices()) {
    return Status::InvalidArgument(StrFormat(
        "topology covers %d devices but cluster has %d",
        graph->num_devices(), num_devices()));
  }
  ClusterSpec copy = *this;
  copy.topology_ = std::move(graph);
  return copy;
}

ClusterSpec ClusterSpec::WithMemoryBudget(int64_t memory_bytes) const {
  ClusterSpec copy = *this;
  for (Device& d : copy.devices_) d.memory_bytes = memory_bytes;
  return copy;
}

ClusterSpec ClusterSpec::WithDeviceMemoryRange(int first, int count,
                                               int64_t memory_bytes) const {
  GALVATRON_CHECK_GE(first, 0);
  GALVATRON_CHECK_LE(first + count, num_devices());
  ClusterSpec copy = *this;
  for (int i = first; i < first + count; ++i) {
    copy.devices_[static_cast<size_t>(i)].memory_bytes = memory_bytes;
  }
  return copy;
}

ClusterSpec ClusterSpec::WithDeviceComputeRange(
    int first, int count, double sustained_flops,
    double small_batch_half_life) const {
  GALVATRON_CHECK_GE(first, 0);
  GALVATRON_CHECK_LE(first + count, num_devices());
  GALVATRON_CHECK_GT(sustained_flops, 0);
  GALVATRON_CHECK_GE(small_batch_half_life, 0);
  ClusterSpec copy = *this;
  for (int i = first; i < first + count; ++i) {
    Device& d = copy.devices_[static_cast<size_t>(i)];
    d.sustained_flops = sustained_flops;
    d.small_batch_half_life = small_batch_half_life;
  }
  copy.maybe_mixed_compute_ = true;
  return copy;
}

int64_t ClusterSpec::device_memory_bytes() const {
  GALVATRON_CHECK(HasUniformMemory())
      << "device_memory_bytes() on a mixed-memory cluster; use "
         "MinMemoryInRange";
  return devices_.front().memory_bytes;
}

double ClusterSpec::sustained_flops() const {
  GALVATRON_CHECK(HasUniformCompute())
      << "sustained_flops() on a mixed-generation cluster; use "
         "MinSustainedFlopsInRange";
  return devices_.front().sustained_flops;
}

int64_t ClusterSpec::MinMemoryInRange(int first, int count) const {
  GALVATRON_CHECK_GE(first, 0);
  GALVATRON_CHECK_GE(count, 1);
  GALVATRON_CHECK_LE(first + count, num_devices());
  int64_t min_memory = devices_[static_cast<size_t>(first)].memory_bytes;
  for (int i = first + 1; i < first + count; ++i) {
    min_memory =
        std::min(min_memory, devices_[static_cast<size_t>(i)].memory_bytes);
  }
  return min_memory;
}

double ClusterSpec::MinSustainedFlopsInRange(int first, int count) const {
  GALVATRON_CHECK_GE(first, 0);
  GALVATRON_CHECK_GE(count, 1);
  GALVATRON_CHECK_LE(first + count, num_devices());
  double min_flops = devices_[static_cast<size_t>(first)].sustained_flops;
  for (int i = first + 1; i < first + count; ++i) {
    min_flops = std::min(min_flops,
                         devices_[static_cast<size_t>(i)].sustained_flops);
  }
  return min_flops;
}

double ClusterSpec::SmallBatchHalfLifeInRange(int first, int count) const {
  GALVATRON_CHECK_GE(first, 0);
  GALVATRON_CHECK_GE(count, 1);
  GALVATRON_CHECK_LE(first + count, num_devices());
  double worst = 0;
  for (int i = first; i < first + count; ++i) {
    const double h = devices_[static_cast<size_t>(i)].small_batch_half_life;
    worst = std::max(worst, h != 0 ? h : small_batch_half_life_);
  }
  return worst;
}

bool ClusterSpec::HasUniformMemory() const {
  return MinMemoryInRange(0, num_devices()) ==
         devices_.front().memory_bytes &&
         std::all_of(devices_.begin(), devices_.end(), [&](const Device& d) {
           return d.memory_bytes == devices_.front().memory_bytes;
         });
}

bool ClusterSpec::HasUniformCompute() const {
  if (!maybe_mixed_compute_) return true;
  const Device& front = devices_.front();
  return std::all_of(devices_.begin(), devices_.end(), [&](const Device& d) {
    return d.sustained_flops == front.sustained_flops &&
           d.small_batch_half_life == front.small_batch_half_life;
  });
}

std::vector<DeviceIsland> ClusterSpec::ComputeIslands() const {
  if (topology_ != nullptr) return topology_->islands();
  std::vector<DeviceIsland> islands;
  for (int i = 0; i < num_devices();) {
    const Device& d = devices_[static_cast<size_t>(i)];
    int run = i + 1;
    while (run < num_devices()) {
      const Device& next = devices_[static_cast<size_t>(run)];
      if (next.sustained_flops != d.sustained_flops ||
          next.small_batch_half_life != d.small_batch_half_life ||
          next.memory_bytes != d.memory_bytes) {
        break;
      }
      ++run;
    }
    DeviceIsland island;
    island.name = StrFormat("island-%d", static_cast<int>(islands.size()));
    island.first_device = i;
    island.num_devices = run - i;
    island.sustained_flops = d.sustained_flops;
    island.memory_bytes = d.memory_bytes;
    island.small_batch_half_life = d.small_batch_half_life;
    islands.push_back(std::move(island));
    i = run;
  }
  return islands;
}

LinkSpec ClusterSpec::LinkBetween(int device_a, int device_b) const {
  GALVATRON_CHECK_NE(device_a, device_b);
  if (topology_ != nullptr) {
    return topology_->RangeBottleneck(std::min(device_a, device_b),
                                      std::max(device_a, device_b));
  }
  for (const TopologyLevel& level : levels_) {
    if (device_a / level.span == device_b / level.span) return level.link;
  }
  GALVATRON_CHECK(false) << "devices outside cluster";
  return levels_.back().link;
}

LinkSpec ClusterSpec::GroupBottleneckLink(int first_device,
                                          int last_device) const {
  GALVATRON_CHECK_LT(first_device, last_device);
  if (topology_ != nullptr) {
    return topology_->RangeBottleneck(first_device, last_device);
  }
  return LinkBetween(first_device, last_device);
}

LinkSpec ClusterSpec::GroupBottleneckLink(
    const std::vector<int>& device_ids) const {
  GALVATRON_CHECK_GE(device_ids.size(), 2u);
  if (topology_ != nullptr) {
    const auto [lo, hi] =
        std::minmax_element(device_ids.begin(), device_ids.end());
    return topology_->RangeBottleneck(*lo, *hi);
  }
  for (const TopologyLevel& level : levels_) {
    if (SameBlock(/*level_index=*/static_cast<int>(&level - levels_.data()),
                  device_ids)) {
      return level.link;
    }
  }
  GALVATRON_CHECK(false) << "group outside cluster";
  return levels_.back().link;
}

LinkSpec ClusterSpec::CollectiveLink(int stage_first_device, int stride,
                                     int degree, int stage_width) const {
  if (degree < 2) return LinkSpec{};
  if (topology_ != nullptr) {
    return topology_->CollectiveBottleneck(stage_first_device, stride, degree,
                                           stage_width);
  }
  return GroupBottleneckLink(stage_first_device,
                             stage_first_device + (degree - 1) * stride);
}

bool ClusterSpec::SameBlock(int level_index,
                            const std::vector<int>& device_ids) const {
  const int span = levels_[static_cast<size_t>(level_index)].span;
  const int block = device_ids.front() / span;
  return std::all_of(device_ids.begin(), device_ids.end(),
                     [&](int id) { return id / span == block; });
}

std::string ClusterSpec::ToString() const {
  std::ostringstream os;
  os << name_ << ": " << num_devices() << " devices, ";
  if (HasUniformMemory() && HasUniformCompute()) {
    os << HumanBytes(static_cast<double>(devices_.front().memory_bytes))
       << "/device, "
       << StrFormat("%.1f", devices_.front().sustained_flops / 1e12)
       << " TFLOP/s sustained;";
  } else {
    os << "mixed:";
    for (const DeviceIsland& island : ComputeIslands()) {
      os << " (" << island.num_devices << "x "
         << HumanBytes(static_cast<double>(island.memory_bytes)) << " "
         << StrFormat("%.1f", island.sustained_flops / 1e12) << " TFLOP/s)";
    }
    os << ";";
  }
  for (const TopologyLevel& level : levels_) {
    os << " [span " << level.span << ": " << LinkClassToString(level.link.cls)
       << " " << StrFormat("%.1f", level.link.bandwidth_bytes_per_sec / 1e9)
       << " GB/s]";
  }
  if (topology_ != nullptr) {
    os << " graph{" << topology_->ToString() << "}";
  }
  return os.str();
}

Result<TopologyGraph> MakeMirrorTopology(const ClusterSpec& cluster) {
  // Outermost level first so parents get smaller indices than children and
  // min-bandwidth ties resolve to the enclosing fabric.
  std::vector<TopologyNode> nodes;
  const std::vector<TopologyLevel>& levels = cluster.levels();
  const int n = cluster.num_devices();
  std::vector<int> level_first_node(levels.size(), -1);
  for (int li = static_cast<int>(levels.size()) - 1; li >= 0; --li) {
    const TopologyLevel& level = levels[static_cast<size_t>(li)];
    level_first_node[static_cast<size_t>(li)] =
        static_cast<int>(nodes.size());
    for (int block = 0; block * level.span < n; ++block) {
      TopologyNode node;
      node.name = StrFormat("L%d-%d", li, block);
      node.first_device = block * level.span;
      node.num_devices = std::min(level.span, n - node.first_device);
      node.internal = level.link;
      if (li + 1 < static_cast<int>(levels.size())) {
        const TopologyLevel& outer = levels[static_cast<size_t>(li) + 1];
        node.parent = level_first_node[static_cast<size_t>(li) + 1] +
                      node.first_device / outer.span;
        node.uplink = outer.link;
      } else {
        node.parent = -1;
      }
      nodes.push_back(std::move(node));
    }
  }
  return TopologyGraph::Create(n, std::move(nodes),
                               cluster.ComputeIslands());
}

namespace {

// Sustained dense-matmul throughput (FLOP/s) used for calibration; see
// EXPERIMENTS.md. RTX TITAN: 16.3 TF peak fp32, ~35% achieved in training.
constexpr double kTitanSustainedFlops = 6.5e12;
// A100: the paper's 64-GPU throughputs imply ~12+ TF/s sustained per GPU,
// i.e. TF32 tensor-core execution (156 TF peak) at a realistic fraction.
constexpr double kA100SustainedFlops = 17e12;

}  // namespace

ClusterSpec MakeHomogeneousCluster(std::string name, int num_nodes,
                                   int gpus_per_node,
                                   int64_t memory_budget_bytes,
                                   double sustained_flops, LinkClass intra_link,
                                   LinkClass inter_link) {
  std::vector<TopologyLevel> levels;
  levels.push_back(TopologyLevel{gpus_per_node, DefaultLinkSpec(intra_link)});
  if (num_nodes > 1) {
    levels.push_back(
        TopologyLevel{num_nodes * gpus_per_node, DefaultLinkSpec(inter_link)});
  }
  auto result = ClusterSpec::Create(std::move(name),
                                    num_nodes * gpus_per_node,
                                    memory_budget_bytes, sustained_flops,
                                    std::move(levels));
  GALVATRON_CHECK(result.ok()) << result.status();
  return *std::move(result);
}

ClusterSpec MakeTitanNode8(int64_t memory_budget_bytes) {
  return MakeHomogeneousCluster("titan-node-8", /*num_nodes=*/1,
                                /*gpus_per_node=*/8, memory_budget_bytes,
                                kTitanSustainedFlops, LinkClass::kPcie3,
                                LinkClass::kInfiniBand100);
}

ClusterSpec MakeTitanCluster16(int64_t memory_budget_bytes) {
  return MakeHomogeneousCluster("titan-cluster-16", /*num_nodes=*/2,
                                /*gpus_per_node=*/8, memory_budget_bytes,
                                kTitanSustainedFlops, LinkClass::kPcie3,
                                LinkClass::kInfiniBand100);
}

ClusterSpec MakeA100Cluster64(int64_t memory_budget_bytes) {
  ClusterSpec cluster = MakeHomogeneousCluster(
      "a100-cluster-64", /*num_nodes=*/8,
      /*gpus_per_node=*/8, memory_budget_bytes, kA100SustainedFlops,
      LinkClass::kNvLink, LinkClass::kInfiniBand100);
  cluster.set_kernel_launch_overhead_sec(12e-6);
  return cluster;
}

}  // namespace galvatron
