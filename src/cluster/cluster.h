#ifndef GALVATRON_CLUSTER_CLUSTER_H_
#define GALVATRON_CLUSTER_CLUSTER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/link.h"
#include "topology/topology.h"
#include "util/result.h"
#include "util/status.h"

namespace galvatron {

/// One GPU. `sustained_flops` is the achievable dense-matmul throughput,
/// not the datasheet peak; `small_batch_half_life` 0 inherits the
/// cluster-wide default (see ClusterSpec::small_batch_half_life). Mixed
/// generations give different devices different values.
struct Device {
  int id = 0;
  int64_t memory_bytes = 0;    // usable budget E (the paper varies this)
  double sustained_flops = 0;  // FLOP/s achievable on dense kernels
  double small_batch_half_life = 0;  // 0 = cluster default
};

/// One level of the bandwidth hierarchy: devices whose ids fall in the same
/// contiguous block of `span` share this link (and all faster inner links).
/// Levels are ordered innermost (smallest span, fastest) to outermost; the
/// last level spans the whole cluster.
struct TopologyLevel {
  int span = 0;
  LinkSpec link;
};

/// A GPU cluster with a hierarchical interconnect.
///
/// Device ids are 0..n-1 and the hierarchy is expressed by contiguous
/// blocks: e.g. 16 GPUs as {span 8, PCIe3}, {span 16, IB} means ids 0-7 and
/// 8-15 are the two PCIe "islands" bridged by InfiniBand — exactly the
/// island structure Takeaway #1 keys on. A cluster may additionally carry
/// an explicit TopologyGraph (CreateFromTopology / WithTopology); link
/// queries then price over the graph's crossed edges instead of the
/// innermost containing level, and devices may differ in throughput and
/// memory per island. Clusters without a graph price exactly as before.
class ClusterSpec {
 public:
  /// Validates and builds a cluster. Errors if spans are not ascending,
  /// not divisors of each other, or the last span != num_devices.
  static Result<ClusterSpec> Create(std::string name, int num_devices,
                                    int64_t device_memory_bytes,
                                    double sustained_flops,
                                    std::vector<TopologyLevel> levels);

  /// Builds a cluster straight from an interconnect graph: devices take
  /// their memory/throughput/half-life from the graph's islands, and a
  /// single whole-cluster level mirroring the root fabric keeps the
  /// level-based accessors meaningful.
  static Result<ClusterSpec> CreateFromTopology(
      std::string name, std::shared_ptr<const TopologyGraph> graph);

  const std::string& name() const { return name_; }
  int num_devices() const { return static_cast<int>(devices_.size()); }
  const std::vector<Device>& devices() const { return devices_; }
  const Device& device(int id) const { return devices_[static_cast<size_t>(id)]; }
  const std::vector<TopologyLevel>& levels() const { return levels_; }

  /// The attached interconnect graph, or nullptr for level-priced clusters.
  const TopologyGraph* topology() const { return topology_.get(); }

  /// Whole-cluster accessors. These are only meaningful when every device
  /// agrees and CHECK-fail otherwise — silently returning device 0's value
  /// mispriced every heterogeneous caller. Use MinMemoryInRange /
  /// MinSustainedFlopsInRange (or devices()) on mixed clusters.
  int64_t device_memory_bytes() const;
  double sustained_flops() const;

  /// Fixed CPU/driver cost per kernel launch. Small micro-batches pay it
  /// per op per micro-batch, which is what keeps GPipe from profitably
  /// splitting batches into ever-smaller slivers.
  double kernel_launch_overhead_sec() const {
    return kernel_launch_overhead_sec_;
  }
  void set_kernel_launch_overhead_sec(double seconds) {
    kernel_launch_overhead_sec_ = seconds;
  }

  /// Small-batch GEMM efficiency: a kernel over b local samples achieves
  /// eff(b) = b / (b + small_batch_half_life) of sustained throughput
  /// (under-filled tiles / low occupancy). 1.0 means batch-1 runs at half
  /// throughput, which matches fp32 Transformer layers on these parts.
  /// Devices with a non-zero per-device half-life override this default.
  double small_batch_half_life() const { return small_batch_half_life_; }
  void set_small_batch_half_life(double samples) {
    small_batch_half_life_ = samples;
  }

  /// Per-micro-batch, per-boundary scheduling overhead of the pipeline
  /// runtime (PyTorch GPipe drives stages over RPC).
  double pipeline_rpc_overhead_sec() const {
    return pipeline_rpc_overhead_sec_;
  }
  void set_pipeline_rpc_overhead_sec(double seconds) {
    pipeline_rpc_overhead_sec_ = seconds;
  }

  /// Returns a copy with every device's memory budget replaced — Table 1/3/4
  /// sweep the budget E on fixed hardware.
  ClusterSpec WithMemoryBudget(int64_t memory_bytes) const;

  /// Returns a copy with devices [first, first + count) given a different
  /// memory budget — heterogeneous-memory clusters (the paper's future-work
  /// direction). The search gives each pipeline stage the minimum budget of
  /// its device block.
  ClusterSpec WithDeviceMemoryRange(int first, int count,
                                    int64_t memory_bytes) const;

  /// Returns a copy with devices [first, first + count) given a different
  /// generation: sustained throughput and (optionally, non-zero)
  /// small-batch half-life.
  ClusterSpec WithDeviceComputeRange(int first, int count,
                                     double sustained_flops,
                                     double small_batch_half_life = 0) const;

  /// Returns a copy pricing links over `graph` (which must cover the same
  /// device count). Device memory/throughput are left as they are — the
  /// graph's islands only describe hardware when building via
  /// CreateFromTopology.
  Result<ClusterSpec> WithTopology(
      std::shared_ptr<const TopologyGraph> graph) const;

  /// The tightest memory budget among devices [first, first + count).
  int64_t MinMemoryInRange(int first, int count) const;

  /// The slowest sustained throughput among devices [first, first + count)
  /// — a group computes in lockstep at its slowest member's pace.
  double MinSustainedFlopsInRange(int first, int count) const;

  /// The worst (largest) small-batch half-life in the range, with 0-valued
  /// devices falling back to the cluster default.
  double SmallBatchHalfLifeInRange(int first, int count) const;

  /// True if every device has the same budget.
  bool HasUniformMemory() const;

  /// True if every device has the same throughput and half-life.
  bool HasUniformCompute() const;

  /// Maximal contiguous runs of identical devices (throughput, half-life,
  /// memory). Prefers the attached topology's islands when present (they
  /// carry names); otherwise derived from the device table.
  std::vector<DeviceIsland> ComputeIslands() const;

  /// The link connecting two distinct devices: the innermost level whose
  /// block contains both, or the graph bottleneck of [min, max] when a
  /// topology is attached.
  LinkSpec LinkBetween(int device_a, int device_b) const;

  /// The bottleneck link of a device group: the innermost level containing
  /// all of them (a ring over the group cannot beat its slowest hop).
  LinkSpec GroupBottleneckLink(const std::vector<int>& device_ids) const;

  /// Bottleneck link of a group given only its extreme members. Topology
  /// levels are contiguous id ranges, so a block containing `first_device`
  /// and `last_device` contains everything between — equivalent to the
  /// vector overload for any group whose ids lie in [first, last], without
  /// materializing the ids (the cost model resolves links once per layer
  /// analysis, under the allocation tripwires).
  LinkSpec GroupBottleneckLink(int first_device, int last_device) const;

  /// Bottleneck of the collective group {stage_first_device + i*stride}
  /// inside a `stage_width`-wide stage. Level-priced clusters reduce this
  /// to GroupBottleneckLink over the group's extremes (bit-for-bit the old
  /// pricing); graph-backed clusters additionally divide each crossed
  /// uplink's bandwidth among the stage's sibling groups sharing it.
  LinkSpec CollectiveLink(int stage_first_device, int stride, int degree,
                          int stage_width) const;

  /// True if all ids fall inside one block of `levels()[level_index]`.
  bool SameBlock(int level_index, const std::vector<int>& device_ids) const;

  std::string ToString() const;

 private:
  ClusterSpec() = default;

  std::string name_;
  std::vector<Device> devices_;
  std::vector<TopologyLevel> levels_;
  std::shared_ptr<const TopologyGraph> topology_;
  /// Conservative fast path for HasUniformCompute: construction leaves it
  /// true; WithDeviceComputeRange / CreateFromTopology clear it, after
  /// which uniformity is re-derived by scanning.
  bool maybe_mixed_compute_ = false;
  double kernel_launch_overhead_sec_ = 15e-6;
  double small_batch_half_life_ = 1.0;
  double pipeline_rpc_overhead_sec_ = 3e-3;
};

/// Rebuilds a cluster's contiguous levels as an explicit graph: one node
/// per level block, each child uplinking through its parent level's fabric,
/// islands from the device table. The graph prices the true min over
/// crossed edges, so it matches level pricing exactly when bandwidths are
/// non-increasing outward (and is the physically-accurate answer when they
/// are not — a PCIe host ring crossing a faster NIC stays PCIe-bound).
Result<TopologyGraph> MakeMirrorTopology(const ClusterSpec& cluster);

/// The paper's 8x RTX TITAN 24GB PCIe-3.0 single node (Sec 5.1).
ClusterSpec MakeTitanNode8(int64_t memory_budget_bytes);

/// The paper's 16-GPU testbed: two TITAN nodes over 100 Gb InfiniBand.
ClusterSpec MakeTitanCluster16(int64_t memory_budget_bytes);

/// The paper's 64x A100 cluster: 8 NVLink nodes over 100 Gb InfiniBand.
ClusterSpec MakeA100Cluster64(int64_t memory_budget_bytes);

/// Generic helper: `num_nodes` islands of `gpus_per_node` with the given
/// intra/inter links.
ClusterSpec MakeHomogeneousCluster(std::string name, int num_nodes,
                                   int gpus_per_node,
                                   int64_t memory_budget_bytes,
                                   double sustained_flops,
                                   LinkClass intra_link, LinkClass inter_link);

constexpr int64_t kGiB = int64_t{1} << 30;
/// Decimal gigabyte — the unit of the paper's memory budgets (8G/12G/...).
constexpr int64_t kGB = int64_t{1000000000};

}  // namespace galvatron

#endif  // GALVATRON_CLUSTER_CLUSTER_H_
