#ifndef GALVATRON_CLUSTER_LINK_H_
#define GALVATRON_CLUSTER_LINK_H_

#include <string_view>

#include "util/result.h"

namespace galvatron {

/// Interconnect classes appearing in the paper's three testbeds.
enum class LinkClass {
  kNvLink,        // intra-node NVLink mesh (A100 servers)
  kPcie3,         // intra-node PCIe 3.0 (RTX TITAN server)
  kInfiniBand100, // 100 Gb/s inter-node InfiniBand
  kEthernet10,    // commodity Ethernet (not used by paper presets)
};

std::string_view LinkClassToString(LinkClass cls);

/// Inverse of LinkClassToString; unknown names are InvalidArgument.
Result<LinkClass> LinkClassFromString(std::string_view name);

/// One link: achievable (not theoretical) ring bandwidth per direction plus
/// a per-hop latency term used by the collective cost model.
struct LinkSpec {
  LinkClass cls = LinkClass::kPcie3;
  double bandwidth_bytes_per_sec = 0.0;
  double latency_sec = 0.0;
};

inline bool operator==(const LinkSpec& a, const LinkSpec& b) {
  return a.cls == b.cls &&
         a.bandwidth_bytes_per_sec == b.bandwidth_bytes_per_sec &&
         a.latency_sec == b.latency_sec;
}
inline bool operator!=(const LinkSpec& a, const LinkSpec& b) {
  return !(a == b);
}

/// Default achievable bandwidth/latency for a link class, calibrated so
/// end-to-end throughputs land near the paper's measurements (see
/// EXPERIMENTS.md for the calibration notes).
LinkSpec DefaultLinkSpec(LinkClass cls);

}  // namespace galvatron

#endif  // GALVATRON_CLUSTER_LINK_H_
