#include "cluster/link.h"

namespace galvatron {

std::string_view LinkClassToString(LinkClass cls) {
  switch (cls) {
    case LinkClass::kNvLink:
      return "NVLink";
    case LinkClass::kPcie3:
      return "PCIe3";
    case LinkClass::kInfiniBand100:
      return "IB-100Gb";
    case LinkClass::kEthernet10:
      return "Eth-10Gb";
  }
  return "?";
}

Result<LinkClass> LinkClassFromString(std::string_view name) {
  static constexpr LinkClass kAll[] = {
      LinkClass::kNvLink,
      LinkClass::kPcie3,
      LinkClass::kInfiniBand100,
      LinkClass::kEthernet10,
  };
  for (LinkClass cls : kAll) {
    if (LinkClassToString(cls) == name) return cls;
  }
  return Status::InvalidArgument("unknown link class '" + std::string(name) +
                                 "'");
}

LinkSpec DefaultLinkSpec(LinkClass cls) {
  LinkSpec spec;
  spec.cls = cls;
  switch (cls) {
    case LinkClass::kNvLink:
      // A100 NVLink3: 300 GB/s theoretical; ~150 GB/s achievable in ring
      // collectives.
      spec.bandwidth_bytes_per_sec = 150e9;
      spec.latency_sec = 6e-6;
      break;
    case LinkClass::kPcie3:
      // PCIe 3.0 x16: 15.8 GB/s theoretical; ring all-reduce across 8 GPUs
      // through the host bottlenecks around 5.5-6 GB/s.
      spec.bandwidth_bytes_per_sec = 5.8e9;
      spec.latency_sec = 12e-6;
      break;
    case LinkClass::kInfiniBand100:
      // 100 Gb/s = 12.5 GB/s theoretical; ~9.5 GB/s achievable.
      spec.bandwidth_bytes_per_sec = 9.5e9;
      spec.latency_sec = 20e-6;
      break;
    case LinkClass::kEthernet10:
      spec.bandwidth_bytes_per_sec = 1.0e9;
      spec.latency_sec = 80e-6;
      break;
  }
  return spec;
}

}  // namespace galvatron
