#include "workload/workload.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace galvatron {

std::string_view LengthPolicyToString(LengthPolicy policy) {
  switch (policy) {
    case LengthPolicy::kFixed:
      return "fixed";
    case LengthPolicy::kPadToBatchMax:
      return "pad-to-batch-max";
    case LengthPolicy::kBucketed:
      return "bucketed";
  }
  return "?";
}

WorkloadSpec MakeWikipediaWorkload() {
  WorkloadSpec spec;
  spec.name = "wikipedia-en";
  spec.max_seq_len = 512;
  spec.mean_len = 512;  // packed blocks: always full
  spec.stddev_len = 0;
  spec.policy = LengthPolicy::kFixed;
  spec.load_sec_per_sample = 20e-6;  // tokenized shards stream cheaply
  return spec;
}

WorkloadSpec MakeImageNetWorkload() {
  WorkloadSpec spec;
  spec.name = "imagenet-1k";
  spec.max_seq_len = 1;  // fixed-shape images
  spec.mean_len = 1;
  spec.stddev_len = 0;
  spec.policy = LengthPolicy::kFixed;
  spec.load_sec_per_sample = 400e-6;  // JPEG decode + augmentation
  return spec;
}

WorkloadSpec MakeVariableLengthTextWorkload(int64_t max_seq_len,
                                            double mean_len,
                                            double stddev_len) {
  WorkloadSpec spec;
  spec.name = "variable-text";
  spec.max_seq_len = max_seq_len;
  spec.mean_len = mean_len;
  spec.stddev_len = stddev_len;
  spec.policy = LengthPolicy::kPadToBatchMax;
  spec.load_sec_per_sample = 30e-6;
  return spec;
}

namespace {

/// Truncated-normal sample length in [1, max].
double SampleLength(const WorkloadSpec& spec, Rng* rng) {
  if (spec.stddev_len <= 0) {
    return std::min<double>(spec.mean_len,
                            static_cast<double>(spec.max_seq_len));
  }
  // Box-Muller.
  const double u1 = std::max(rng->NextDouble(), 1e-12);
  const double u2 = rng->NextDouble();
  const double z =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  const double len = spec.mean_len + spec.stddev_len * z;
  return std::clamp(len, 1.0, static_cast<double>(spec.max_seq_len));
}

}  // namespace

std::vector<IterationWorkload> SampleIterations(const WorkloadSpec& spec,
                                                int batch, int iterations,
                                                uint64_t seed) {
  GALVATRON_CHECK_GE(batch, 1);
  GALVATRON_CHECK_GE(iterations, 1);
  Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
  std::vector<IterationWorkload> out;
  out.reserve(static_cast<size_t>(iterations));
  for (int i = 0; i < iterations; ++i) {
    IterationWorkload iteration;
    iteration.load_sec = spec.load_sec_per_sample * batch;
    if (spec.policy == LengthPolicy::kFixed || spec.stddev_len <= 0) {
      iteration.work_scale = 1.0;
    } else {
      double sum = 0;
      double batch_max = 0;
      for (int s = 0; s < batch; ++s) {
        const double len = SampleLength(spec, &rng);
        sum += len;
        batch_max = std::max(batch_max, len);
      }
      const double effective =
          spec.policy == LengthPolicy::kPadToBatchMax ? batch_max
                                                      : sum / batch;
      iteration.work_scale =
          effective / static_cast<double>(spec.max_seq_len);
    }
    out.push_back(iteration);
  }
  return out;
}

}  // namespace galvatron
