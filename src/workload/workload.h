#ifndef GALVATRON_WORKLOAD_WORKLOAD_H_
#define GALVATRON_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/rng.h"

namespace galvatron {

/// How the per-iteration work varies with the sampled data. Synchronous
/// training time is independent of token *values*, but not of sequence
/// LENGTHS: a batch of short sequences does proportionally less attention
/// and matmul work unless the loader pads everything to the maximum.
enum class LengthPolicy {
  /// Fixed-shape batches (images, or packed/padded-to-max text): every
  /// iteration does identical work. The paper's setting.
  kFixed,
  /// Pad to the longest sample in the batch (common HF-style loaders):
  /// work scale = E[max of batch] / max_len.
  kPadToBatchMax,
  /// Bucketed batches: work scale = E[len] / max_len.
  kBucketed,
};

std::string_view LengthPolicyToString(LengthPolicy policy);

/// A training workload: where samples come from and how their shapes vary.
/// The generator is fully synthetic (the paper's datasets are only shape
/// distributions as far as iteration time is concerned — see DESIGN.md).
struct WorkloadSpec {
  std::string name;
  /// Model-maximum sequence length the layer shapes were built with.
  int64_t max_seq_len = 512;
  /// Mean and std-dev of the (truncated-normal) sample length distribution.
  double mean_len = 512;
  double stddev_len = 0;
  LengthPolicy policy = LengthPolicy::kFixed;
  /// Host-side time to produce one sample (tokenize / decode+augment);
  /// the input pipeline overlaps training and only stalls when it cannot
  /// keep up.
  double load_sec_per_sample = 20e-6;
};

/// English-Wikipedia-style packed LM pretraining: fixed 512-token blocks.
WorkloadSpec MakeWikipediaWorkload();

/// ImageNet-1K-style image classification: fixed 224x224 inputs, heavier
/// per-sample host decode+augmentation.
WorkloadSpec MakeImageNetWorkload();

/// Padded seq2seq fine-tuning style workload: lengths vary, batches pad to
/// their own maximum.
WorkloadSpec MakeVariableLengthTextWorkload(int64_t max_seq_len,
                                            double mean_len,
                                            double stddev_len);

/// Per-iteration realization of a workload: the relative amount of
/// length-dependent work (1.0 for fixed shapes) and the host loading time
/// for `batch` samples.
struct IterationWorkload {
  double work_scale = 1.0;
  double load_sec = 0.0;
};

/// Draws the per-iteration workloads for `iterations` training steps of
/// `batch` samples each. Deterministic in `seed`.
std::vector<IterationWorkload> SampleIterations(const WorkloadSpec& spec,
                                                int batch, int iterations,
                                                uint64_t seed);

}  // namespace galvatron

#endif  // GALVATRON_WORKLOAD_WORKLOAD_H_
