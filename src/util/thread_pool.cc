#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <utility>

namespace galvatron {

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> fn) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(fn));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    all_done_.wait(lock, [this] { return in_flight_ == 0; });
    error = std::exchange(first_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

int ThreadPool::HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock,
                       [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // The decrement must happen on EVERY exit path: a task exception that
    // skipped it would leave in_flight_ > 0 forever and deadlock every
    // later Wait(). Only the first exception is kept (matching the serial
    // loop, which surfaces the first failure and runs nothing after it
    // would have been reported).
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (error && !first_error_) first_error_ = std::move(error);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool* pool, int count,
                 const std::function<void(int)>& fn, int min_grain) {
  min_grain = std::max(1, min_grain);
  if (pool == nullptr || pool->num_threads() <= 1 || count <= min_grain) {
    for (int i = 0; i < count; ++i) fn(i);
    return;
  }
  // Chunked self-scheduling: one submitted task per participating worker;
  // indices are claimed in ranges off a shared atomic cursor, so the
  // mutex-guarded queue sees O(workers) traffic regardless of count. The
  // chunk splits each worker's fair share in four — small enough that
  // uneven index costs rebalance, large enough that cursor traffic is
  // negligible — and never drops below min_grain.
  //
  // Workers are capped at the physical core count as well as the pool
  // size: the sweep is CPU-bound, so submitting more runnable workers
  // than cores buys nothing and costs context switches (on a 1-core host
  // a 4-thread pool would otherwise run ~10% SLOWER than serial). With a
  // single useful worker the loop runs inline on the caller.
  const int workers = std::min(
      {pool->num_threads(), ThreadPool::HardwareThreads(),
       static_cast<int>((count + min_grain - 1) / min_grain)});
  if (workers <= 1) {
    for (int i = 0; i < count; ++i) fn(i);
    return;
  }
  const int chunk = std::max(min_grain, count / (workers * 4));
  std::atomic<int> next{0};
  for (int w = 0; w < workers; ++w) {
    pool->Submit([&next, &fn, count, chunk] {
      for (;;) {
        const int begin = next.fetch_add(chunk, std::memory_order_relaxed);
        if (begin >= count) return;
        const int end = std::min(begin + chunk, count);
        for (int i = begin; i < end; ++i) fn(i);
      }
    });
  }
  pool->Wait();  // rethrows the first fn exception, after all chunks drain
}

}  // namespace galvatron
