#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

namespace galvatron {

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> fn) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(fn));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

int ThreadPool::HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock,
                       [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool* pool, int count,
                 const std::function<void(int)>& fn) {
  if (pool == nullptr || count <= 1 || pool->num_threads() <= 1) {
    for (int i = 0; i < count; ++i) fn(i);
    return;
  }
  for (int i = 0; i < count; ++i) {
    pool->Submit([&fn, i] { fn(i); });
  }
  pool->Wait();
}

}  // namespace galvatron
