#include "util/status.h"

namespace galvatron {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfMemory:
      return "OutOfMemory";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kInfeasible:
      return "Infeasible";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += message();
  return out;
}

}  // namespace galvatron
