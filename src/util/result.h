#ifndef GALVATRON_UTIL_RESULT_H_
#define GALVATRON_UTIL_RESULT_H_

#include <optional>
#include <utility>

#include "util/logging.h"
#include "util/status.h"

namespace galvatron {

/// A value-or-error holder, the library's counterpart to `arrow::Result<T>`.
///
/// A `Result` is either OK and holds a `T`, or holds a non-OK `Status`.
/// Accessing the value of a non-OK result aborts (checked via
/// GALVATRON_CHECK), so callers must test `ok()` or use the
/// GALVATRON_ASSIGN_OR_RETURN macro.
template <typename T>
class Result {
 public:
  /// Intentionally implicit so functions can `return value;` / `return status;`.
  Result(T value) : value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)) {
    GALVATRON_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    GALVATRON_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    GALVATRON_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    GALVATRON_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this result holds an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;  // OK iff value_ holds a value
  std::optional<T> value_;
};

#define GALVATRON_CONCAT_IMPL_(x, y) x##y
#define GALVATRON_CONCAT_(x, y) GALVATRON_CONCAT_IMPL_(x, y)

/// GALVATRON_ASSIGN_OR_RETURN(lhs, expr): evaluates `expr` (a Result<T>);
/// on error returns the status, otherwise assigns the value to `lhs`.
#define GALVATRON_ASSIGN_OR_RETURN(lhs, expr)                            \
  GALVATRON_ASSIGN_OR_RETURN_IMPL_(                                      \
      GALVATRON_CONCAT_(_galvatron_result_, __LINE__), lhs, expr)

#define GALVATRON_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                     \
  if (!tmp.ok()) return tmp.status();                    \
  lhs = std::move(tmp).value()

}  // namespace galvatron

#endif  // GALVATRON_UTIL_RESULT_H_
