#ifndef GALVATRON_UTIL_TABLE_PRINTER_H_
#define GALVATRON_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace galvatron {

/// Accumulates rows of strings and renders an aligned ASCII (or Markdown)
/// table. Used by the bench binaries to print the paper's tables.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends one row; it may have fewer cells than the header (padded).
  void AddRow(std::vector<std::string> row);

  /// Renders with column alignment:  `| a   | b  |` plus a separator line.
  std::string ToString() const;

  /// Renders as GitHub-flavored Markdown.
  std::string ToMarkdown() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<size_t> ColumnWidths() const;

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::ostream& operator<<(std::ostream& os, const TablePrinter& t) {
  return os << t.ToString();
}

}  // namespace galvatron

#endif  // GALVATRON_UTIL_TABLE_PRINTER_H_
