#include "util/table_printer.h"

#include <algorithm>
#include <sstream>

namespace galvatron {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::vector<size_t> TablePrinter::ColumnWidths() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  return widths;
}

namespace {

void RenderRow(std::ostringstream& os, const std::vector<std::string>& row,
               const std::vector<size_t>& widths) {
  os << "|";
  for (size_t c = 0; c < widths.size(); ++c) {
    const std::string& cell = c < row.size() ? row[c] : std::string();
    os << " " << cell << std::string(widths[c] - cell.size(), ' ') << " |";
  }
  os << "\n";
}

}  // namespace

std::string TablePrinter::ToString() const {
  const std::vector<size_t> widths = ColumnWidths();
  std::ostringstream os;
  RenderRow(os, header_, widths);
  os << "|";
  for (size_t w : widths) os << std::string(w + 2, '-') << "|";
  os << "\n";
  for (const auto& row : rows_) RenderRow(os, row, widths);
  return os.str();
}

std::string TablePrinter::ToMarkdown() const { return ToString(); }

}  // namespace galvatron
