#ifndef GALVATRON_UTIL_STRING_UTIL_H_
#define GALVATRON_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace galvatron {

/// Joins `parts` with `sep` ("a", "b" -> "a,b").
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Formats a byte count with a binary-unit suffix, e.g. "3.08GB", "512.00MB".
std::string HumanBytes(double bytes);

/// Formats a double with `digits` digits after the decimal point.
std::string FormatDouble(double v, int digits);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace galvatron

#endif  // GALVATRON_UTIL_STRING_UTIL_H_
