#ifndef GALVATRON_UTIL_MATH_UTIL_H_
#define GALVATRON_UTIL_MATH_UTIL_H_

#include <cstdint>
#include <vector>

namespace galvatron {

/// True iff n is a power of two (n > 0).
constexpr bool IsPowerOfTwo(int64_t n) { return n > 0 && (n & (n - 1)) == 0; }

/// Ceiling division for non-negative integers.
constexpr int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

/// floor(log2(n)) for n >= 1.
constexpr int Log2Floor(int64_t n) {
  int r = 0;
  while (n > 1) {
    n >>= 1;
    ++r;
  }
  return r;
}

/// All divisors of n that are powers of two (including 1 and, if n is a
/// power of two, n itself), ascending. E.g. PowerOfTwoDivisors(8) = {1,2,4,8},
/// PowerOfTwoDivisors(12) = {1,2,4}.
std::vector<int> PowerOfTwoDivisors(int n);

/// All ordered factorizations of `n` into between 1 and `max_parts` factors,
/// each factor >= 2. Order matters: {2,4} and {4,2} are distinct. Used by the
/// decision-tree enumerator (factors become tree levels).
std::vector<std::vector<int>> OrderedFactorizations(int n, int max_parts);

/// Relative error |a-b| / max(|b|, eps).
double RelativeError(double a, double b, double eps = 1e-12);

}  // namespace galvatron

#endif  // GALVATRON_UTIL_MATH_UTIL_H_
