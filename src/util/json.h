#ifndef GALVATRON_UTIL_JSON_H_
#define GALVATRON_UTIL_JSON_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/result.h"

namespace galvatron {

/// Minimal JSON document model shared by the plan/spec (de)serializers in
/// src/api/plan_io.* and the wire handlers in src/serve/. No third-party
/// dependency; the parser is the hardened recursive-descent one that grew
/// inside plan_io.cc (duplicate-key rejection, strtod end-pointer number
/// validation, control-character and surrogate rejection), hoisted here so
/// every consumer gets the same strictness.
struct JsonValue {
  enum class Kind { kObject, kArray, kString, kNumber, kBool, kNull };
  Kind kind = Kind::kNull;
  std::map<std::string, JsonValue> object;
  std::vector<JsonValue> array;
  std::string string;
  double number = 0;
  /// The verbatim number token from the input ("9007199254740993"), kept
  /// alongside the double: int64 quantities above 2^53 would silently lose
  /// precision through the double, so GetInt64 re-parses the token with
  /// strtoll and WriteJson echoes it back bit-exactly.
  std::string number_token;
  bool boolean = false;
};

/// Parses one JSON document. Strict: trailing characters, duplicate object
/// keys, malformed numbers (leading zeros/plus, bad exponents), raw control
/// characters or unpaired \u surrogates in strings, and nesting deeper than
/// 64 levels (a stack-overflow guard for hostile network input) are all
/// InvalidArgument errors.
Result<JsonValue> ParseJson(const std::string& text);

/// Escapes `s` for embedding inside a JSON string literal: quotes,
/// backslashes and every control character (< 0x20, as \uXXXX where no
/// short escape exists).
std::string JsonEscape(const std::string& s);

/// Formats a double so that ParseJson reads back the identical value
/// (%.17g round-trips every finite double). Non-finite values — which JSON
/// cannot represent — are clamped to 0; callers validate beforehand.
std::string JsonNumber(double value);

/// Canonical compact serialization: object keys in sorted order (JsonValue
/// stores them in a std::map), no whitespace, numbers echoed from their
/// parsed token when one exists (else JsonNumber), strings via JsonEscape.
/// Two structurally equal documents serialize byte-identically, so
/// WriteJson(ParseJson(a)) == WriteJson(ParseJson(b)) is a canonical
/// equality test — the serving tests compare plans this way, and the plan
/// cache keys requests on it.
std::string WriteJson(const JsonValue& value);

/// Returns the member of `object` named `key`, or nullptr when absent.
/// For optional fields; use GetMember for required ones.
const JsonValue* FindMember(const JsonValue& object, const std::string& key);

/// Returns the member named `key`, requiring it to exist with kind `kind`.
Result<const JsonValue*> GetMember(const JsonValue& object,
                                   const std::string& key,
                                   JsonValue::Kind kind);

/// Reads an integral field: non-integral values, values outside int range
/// and values below `min_value` are InvalidArgument.
Result<int> GetInt(const JsonValue& object, const std::string& key,
                   int min_value);

/// Reads an integral field into int64. Integral tokens are re-parsed with
/// strtoll so values above 2^53 survive exactly; fractional or exponent
/// forms must still denote an integer representable in int64.
Result<int64_t> GetInt64(const JsonValue& object, const std::string& key,
                         int64_t min_value);

/// Value-level form of GetInt64, for array elements; `what` names the value
/// in error messages.
Result<int64_t> JsonToInt64(const JsonValue& value, const std::string& what,
                            int64_t min_value);

/// Reads a finite number field.
Result<double> GetDouble(const JsonValue& object, const std::string& key);

Result<bool> GetBool(const JsonValue& object, const std::string& key);

Result<std::string> GetString(const JsonValue& object,
                              const std::string& key);

}  // namespace galvatron

#endif  // GALVATRON_UTIL_JSON_H_
