#include "util/string_util.h"

#include <cstdarg>
#include <cstdio>
#include <sstream>

namespace galvatron {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string HumanBytes(double bytes) {
  static const char* const kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  int unit = 0;
  double v = bytes;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  return StrFormat("%.2f%s", v, kUnits[unit]);
}

std::string FormatDouble(double v, int digits) {
  return StrFormat("%.*f", digits, v);
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace galvatron
