#ifndef GALVATRON_UTIL_SMALL_VECTOR_H_
#define GALVATRON_UTIL_SMALL_VECTOR_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <new>
#include <type_traits>
#include <utility>

namespace galvatron {

/// A vector with inline storage for its first N elements: values at or
/// below the inline capacity live inside the object and never touch the
/// allocator, larger sizes spill to a heap buffer with the usual geometric
/// growth. Built for the search hot paths — strategy level lists,
/// per-layer option chains, cache-key scratch — where the common case is a
/// handful of elements copied millions of times per sweep and every heap
/// round-trip shows up in the allocation tripwires.
///
/// Restricted to trivially copyable, trivially destructible element types:
/// that covers every hot-path payload here (plain structs of ints/enums)
/// and keeps relocation a memcpy, which is what makes the inline case as
/// cheap as a plain array.
template <typename T, size_t N>
class SmallVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVector is for trivially copyable payloads");
  static_assert(std::is_trivially_destructible_v<T>,
                "SmallVector is for trivially destructible payloads");
  static_assert(N >= 1, "inline capacity must be at least 1");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVector() = default;

  SmallVector(std::initializer_list<T> init) {
    reserve(init.size());
    for (const T& v : init) push_back(v);
  }

  SmallVector(const SmallVector& other) { assign_from(other); }

  SmallVector(SmallVector&& other) noexcept { steal_from(other); }

  SmallVector& operator=(const SmallVector& other) {
    if (this != &other) {
      clear();
      assign_from(other);
    }
    return *this;
  }

  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this != &other) {
      release();
      steal_from(other);
    }
    return *this;
  }

  ~SmallVector() { release(); }

  T* data() { return data_; }
  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return capacity_; }

  iterator begin() { return data_; }
  iterator end() { return data_ + size_; }
  const_iterator begin() const { return data_; }
  const_iterator end() const { return data_ + size_; }

  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }
  T& front() { return data_[0]; }
  const T& front() const { return data_[0]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }

  void clear() { size_ = 0; }

  void reserve(size_t wanted) {
    if (wanted > capacity_) grow(wanted);
  }

  void resize(size_t count, const T& fill = T()) {
    reserve(count);
    for (size_t i = size_; i < count; ++i) data_[i] = fill;
    size_ = count;
  }

  void push_back(const T& value) {
    if (size_ == capacity_) grow(size_ + 1);
    data_[size_++] = value;
  }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == capacity_) grow(size_ + 1);
    data_[size_] = T{std::forward<Args>(args)...};
    return data_[size_++];
  }

  void pop_back() { --size_; }

  template <typename It>
  void assign(It first, It last) {
    clear();
    for (; first != last; ++first) push_back(*first);
  }

  friend bool operator==(const SmallVector& a, const SmallVector& b) {
    return a.size_ == b.size_ &&
           std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator!=(const SmallVector& a, const SmallVector& b) {
    return !(a == b);
  }

 private:
  bool inline_storage() const {
    return data_ == reinterpret_cast<const T*>(inline_);
  }

  void grow(size_t wanted) {
    size_t next = capacity_ * 2;
    if (next < wanted) next = wanted;
    T* heap = static_cast<T*>(::operator new(next * sizeof(T)));
    if (size_ > 0) std::memcpy(heap, data_, size_ * sizeof(T));
    if (!inline_storage()) ::operator delete(data_);
    data_ = heap;
    capacity_ = next;
  }

  void release() {
    if (!inline_storage()) ::operator delete(data_);
    data_ = reinterpret_cast<T*>(inline_);
    capacity_ = N;
    size_ = 0;
  }

  void assign_from(const SmallVector& other) {
    reserve(other.size_);
    if (other.size_ > 0) {
      std::memcpy(data_, other.data_, other.size_ * sizeof(T));
    }
    size_ = other.size_;
  }

  /// Takes `other`'s heap buffer when it has one, memcpys inline contents
  /// otherwise; `other` is left empty either way. Assumes this object holds
  /// no heap buffer (callers release() first).
  void steal_from(SmallVector& other) {
    if (other.inline_storage()) {
      if (other.size_ > 0) {
        std::memcpy(inline_, other.inline_, other.size_ * sizeof(T));
      }
      data_ = reinterpret_cast<T*>(inline_);
      capacity_ = N;
    } else {
      data_ = other.data_;
      capacity_ = other.capacity_;
      other.data_ = reinterpret_cast<T*>(other.inline_);
      other.capacity_ = N;
    }
    size_ = other.size_;
    other.size_ = 0;
  }

  alignas(T) unsigned char inline_[N * sizeof(T)];
  T* data_ = reinterpret_cast<T*>(inline_);
  size_t size_ = 0;
  size_t capacity_ = N;
};

}  // namespace galvatron

#endif  // GALVATRON_UTIL_SMALL_VECTOR_H_
