#include "util/alloc_counter.h"

#include <cstdlib>
#include <new>

namespace galvatron {
namespace internal {
thread_local int64_t thread_alloc_count = 0;
}  // namespace internal
}  // namespace galvatron

// Replacement global allocation functions: malloc/free plus a per-thread
// counter tick. Replacing operator new is the only way to see EVERY heap
// allocation on the DP path — including the ones hiding inside std::vector
// growth, std::string, std::function and Result plumbing — which is what
// the SearchStats allocation counters and the warm-sweep allocation
// tripwire measure. The overhead is one thread-local increment per
// allocation, paid uniformly by every build, so instrumented and
// uninstrumented timings stay comparable.
//
// These definitions live in the same translation unit as the counter they
// tick: any binary that reads CurrentThreadAllocCount() pulls this object
// file from the archive and gets the replacement operators with it.

namespace {

inline void* counted_alloc(std::size_t size) {
  ++galvatron::internal::thread_alloc_count;
  return std::malloc(size != 0 ? size : 1);
}

inline void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  ++galvatron::internal::thread_alloc_count;
  void* p = nullptr;
  if (posix_memalign(&p, align >= sizeof(void*) ? align : sizeof(void*),
                     size != 0 ? size : 1) != 0) {
    return nullptr;
  }
  return p;
}

}  // namespace

void* operator new(std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

#ifdef __cpp_aligned_new

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = counted_aligned_alloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = counted_aligned_alloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}

#endif  // __cpp_aligned_new
