#ifndef GALVATRON_UTIL_LOGGING_H_
#define GALVATRON_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace galvatron {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level for GALVATRON_LOG output. Defaults to kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and emits it (with level prefix) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Like LogMessage but aborts the process on destruction. Used by the CHECK
/// macros for invariant violations (programming errors, not runtime errors —
/// those use Status).
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  template <typename T>
  FatalLogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Lower-precedence-than-<< sink that turns a streamed message into void so
/// the CHECK macro's ternary has matching branch types.
struct Voidify {
  void operator&(LogMessage&) {}
  void operator&(LogMessage&&) {}
  void operator&(FatalLogMessage&) {}
  void operator&(FatalLogMessage&&) {}
};

}  // namespace internal

#define GALVATRON_LOG(level)                                        \
  ::galvatron::internal::LogMessage(::galvatron::LogLevel::level,   \
                                    __FILE__, __LINE__)

/// Aborts with a message when `cond` is false. For invariants only.
#define GALVATRON_CHECK(cond)                                      \
  (cond) ? (void)0                                                 \
         : ::galvatron::internal::Voidify{} &                      \
               ::galvatron::internal::FatalLogMessage(__FILE__,    \
                                                      __LINE__, #cond)

#define GALVATRON_CHECK_BIN_(a, b, op)                                   \
  GALVATRON_CHECK((a)op(b)) << " (" << (a) << " vs " << (b) << ") "

#define GALVATRON_CHECK_EQ(a, b) GALVATRON_CHECK_BIN_(a, b, ==)
#define GALVATRON_CHECK_NE(a, b) GALVATRON_CHECK_BIN_(a, b, !=)
#define GALVATRON_CHECK_LT(a, b) GALVATRON_CHECK_BIN_(a, b, <)
#define GALVATRON_CHECK_LE(a, b) GALVATRON_CHECK_BIN_(a, b, <=)
#define GALVATRON_CHECK_GT(a, b) GALVATRON_CHECK_BIN_(a, b, >)
#define GALVATRON_CHECK_GE(a, b) GALVATRON_CHECK_BIN_(a, b, >=)

}  // namespace galvatron

#endif  // GALVATRON_UTIL_LOGGING_H_
