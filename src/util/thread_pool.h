#ifndef GALVATRON_UTIL_THREAD_POOL_H_
#define GALVATRON_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace galvatron {

/// A small fixed-size worker pool with a shared FIFO task queue. Built for
/// the search engine's fan-out of independent (PP degree, batch,
/// micro-batch) configurations: tasks are submitted in waves and joined
/// with Wait() between waves, so the pool stays warm across Algorithm 1's
/// batch sweep instead of paying thread start-up per wave.
///
/// Thread-safety: Submit and Wait may be called from any thread. Tasks must
/// not themselves call Submit/Wait on the same pool (no nested submission —
/// the search fan-out is a flat task list per wave).
///
/// Exceptions: a task that throws does NOT poison the pool. The worker
/// catches the exception, records the first one seen, and keeps draining;
/// the next Wait() rethrows that first exception after the wave has fully
/// finished (so in-flight accounting is always exact and later waves never
/// deadlock). Subsequent Wait() calls start clean.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);

  /// Drains outstanding tasks, then joins the workers. A pending task
  /// exception nobody Wait()ed for is dropped.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues one task.
  void Submit(std::function<void()> fn);

  /// Blocks until every submitted task has finished running, then rethrows
  /// the first exception any of them raised (if any), clearing it.
  void Wait();

  /// The machine's hardware concurrency (>= 1 even when unknown).
  static int HardwareThreads();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  int in_flight_ = 0;  // queued + currently executing tasks
  bool shutting_down_ = false;
  std::exception_ptr first_error_;  // first task exception since last Wait
  std::vector<std::thread> workers_;
};

/// Runs fn(0), ..., fn(count - 1), distributing the calls across `pool`.
/// Blocks until every call has finished. With a null pool (or a
/// single-thread pool, or count <= min_grain) the calls run inline on the
/// caller, in index order — the serial baseline and the parallel path share
/// one code shape, which is what makes "identical results regardless of
/// thread count" testable.
///
/// Scheduling: exactly min(num_threads, hardware cores,
/// ceil(count / min_grain)) worker tasks are submitted; each pulls index
/// ranges off a shared atomic cursor (chunked self-scheduling). Dispatch
/// cost is therefore paid once per WORKER, not once per index — the fix
/// for fine-grained waves where per-index queue traffic used to swamp the
/// work itself. The hardware-core cap means oversized pools degrade to
/// however much parallelism the host actually has (down to inline serial
/// on one core) instead of paying context-switch overhead for it.
///
/// `min_grain` is the smallest number of indices worth shipping to a
/// worker: waves with count <= min_grain run inline, and no worker ever
/// pulls a chunk smaller than min_grain (except the final partial chunk).
/// Use 1 (the default) when each index is substantial work (the
/// optimizer's per-configuration evaluations); raise it for cheap
/// per-index bodies.
///
/// An exception thrown by `fn` stops that worker's chunk; the other
/// workers finish the remaining chunks and the first exception is rethrown
/// here (see ThreadPool::Wait). Inline execution propagates it directly.
void ParallelFor(ThreadPool* pool, int count,
                 const std::function<void(int)>& fn, int min_grain = 1);

}  // namespace galvatron

#endif  // GALVATRON_UTIL_THREAD_POOL_H_
