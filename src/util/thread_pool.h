#ifndef GALVATRON_UTIL_THREAD_POOL_H_
#define GALVATRON_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace galvatron {

/// A small fixed-size worker pool with a shared FIFO task queue. Built for
/// the search engine's fan-out of independent (PP degree, batch,
/// micro-batch) configurations: tasks are submitted in waves and joined
/// with Wait() between waves, so the pool stays warm across Algorithm 1's
/// batch sweep instead of paying thread start-up per wave.
///
/// Thread-safety: Submit and Wait may be called from any thread. Tasks must
/// not themselves call Submit/Wait on the same pool (no nested submission —
/// the search fan-out is a flat task list per wave).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues one task.
  void Submit(std::function<void()> fn);

  /// Blocks until every submitted task has finished running.
  void Wait();

  /// The machine's hardware concurrency (>= 1 even when unknown).
  static int HardwareThreads();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  int in_flight_ = 0;  // queued + currently executing tasks
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

/// Runs fn(0), ..., fn(count - 1), distributing the calls across `pool`.
/// Blocks until every call has finished. With a null pool (or count <= 1)
/// the calls run inline on the caller, in index order — the serial baseline
/// and the parallel path share one code shape, which is what makes
/// "identical results regardless of thread count" testable.
void ParallelFor(ThreadPool* pool, int count,
                 const std::function<void(int)>& fn);

}  // namespace galvatron

#endif  // GALVATRON_UTIL_THREAD_POOL_H_
