#include "util/json.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <utility>

#include "util/string_util.h"

namespace galvatron {

namespace {

/// Nesting guard: hostile input like "[[[[..." would otherwise recurse once
/// per byte. 64 levels is an order of magnitude beyond any schema here.
constexpr int kMaxJsonDepth = 64;

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    GALVATRON_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("trailing characters after JSON value");
    }
    return value;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  Status Expect(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return Status::InvalidArgument(
          StrFormat("expected '%c' at offset %zu", c, pos_));
    }
    ++pos_;
    return Status::OK();
  }

  bool Peek(char c) {
    SkipSpace();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  Result<JsonValue> ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("unexpected end of JSON");
    }
    if (depth_ >= kMaxJsonDepth) {
      return Status::InvalidArgument(
          StrFormat("JSON nested deeper than %d levels", kMaxJsonDepth));
    }
    const char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (c == 't' || c == 'f') return ParseBool();
    if (c == 'n') return ParseNull();
    return ParseNumber();
  }

  Result<JsonValue> ParseObject() {
    GALVATRON_RETURN_IF_ERROR(Expect('{'));
    ++depth_;
    JsonValue value;
    value.kind = JsonValue::Kind::kObject;
    if (Peek('}')) {
      ++pos_;
      --depth_;
      return value;
    }
    while (true) {
      GALVATRON_ASSIGN_OR_RETURN(JsonValue key, ParseString());
      GALVATRON_RETURN_IF_ERROR(Expect(':'));
      GALVATRON_ASSIGN_OR_RETURN(JsonValue member, ParseValue());
      // Duplicate keys are almost always a hand-editing mistake; silently
      // keeping one of the two values would misread the document.
      if (!value.object.emplace(key.string, std::move(member)).second) {
        return Status::InvalidArgument(
            StrFormat("duplicate key '%s' in object", key.string.c_str()));
      }
      if (Peek(',')) {
        ++pos_;
        continue;
      }
      GALVATRON_RETURN_IF_ERROR(Expect('}'));
      --depth_;
      return value;
    }
  }

  Result<JsonValue> ParseArray() {
    GALVATRON_RETURN_IF_ERROR(Expect('['));
    ++depth_;
    JsonValue value;
    value.kind = JsonValue::Kind::kArray;
    if (Peek(']')) {
      ++pos_;
      --depth_;
      return value;
    }
    while (true) {
      GALVATRON_ASSIGN_OR_RETURN(JsonValue element, ParseValue());
      value.array.push_back(std::move(element));
      if (Peek(',')) {
        ++pos_;
        continue;
      }
      GALVATRON_RETURN_IF_ERROR(Expect(']'));
      --depth_;
      return value;
    }
  }

  Result<JsonValue> ParseString() {
    GALVATRON_RETURN_IF_ERROR(Expect('"'));
    JsonValue value;
    value.kind = JsonValue::Kind::kString;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (static_cast<unsigned char>(c) < 0x20) {
        // Raw control characters are invalid inside JSON strings; they must
        // arrive escaped (JsonEscape emits them that way).
        return Status::InvalidArgument(StrFormat(
            "unescaped control character 0x%02x in string at offset %zu",
            static_cast<unsigned char>(c), pos_ - 1));
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          return Status::InvalidArgument("dangling escape in string");
        }
        const char escaped = text_[pos_++];
        switch (escaped) {
          case '"':
          case '\\':
          case '/':
            c = escaped;
            break;
          case 'n':
            c = '\n';
            break;
          case 't':
            c = '\t';
            break;
          case 'r':
            c = '\r';
            break;
          case 'b':
            c = '\b';
            break;
          case 'f':
            c = '\f';
            break;
          case 'u': {
            GALVATRON_ASSIGN_OR_RETURN(unsigned code, ParseHex4());
            if (code >= 0xd800 && code <= 0xdfff) {
              return Status::InvalidArgument(
                  "surrogate \\u escapes are not supported");
            }
            AppendUtf8(code, &value.string);
            continue;
          }
          default:
            return Status::InvalidArgument(
                StrFormat("unsupported escape '\\%c'", escaped));
        }
      }
      value.string += c;
    }
    GALVATRON_RETURN_IF_ERROR(Expect('"'));
    return value;
  }

  Result<unsigned> ParseHex4() {
    if (pos_ + 4 > text_.size()) {
      return Status::InvalidArgument("truncated \\u escape");
    }
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_++];
      code <<= 4;
      if (h >= '0' && h <= '9') {
        code |= static_cast<unsigned>(h - '0');
      } else if (h >= 'a' && h <= 'f') {
        code |= static_cast<unsigned>(h - 'a' + 10);
      } else if (h >= 'A' && h <= 'F') {
        code |= static_cast<unsigned>(h - 'A' + 10);
      } else {
        return Status::InvalidArgument(
            StrFormat("bad hex digit '%c' in \\u escape", h));
      }
    }
    return code;
  }

  static void AppendUtf8(unsigned code, std::string* out) {
    if (code < 0x80) {
      *out += static_cast<char>(code);
    } else if (code < 0x800) {
      *out += static_cast<char>(0xc0 | (code >> 6));
      *out += static_cast<char>(0x80 | (code & 0x3f));
    } else {
      *out += static_cast<char>(0xe0 | (code >> 12));
      *out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
      *out += static_cast<char>(0x80 | (code & 0x3f));
    }
  }

  Result<JsonValue> ParseBool() {
    JsonValue value;
    value.kind = JsonValue::Kind::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      value.boolean = true;
      pos_ += 4;
      return value;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      value.boolean = false;
      pos_ += 5;
      return value;
    }
    return Status::InvalidArgument("bad literal");
  }

  Result<JsonValue> ParseNull() {
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return JsonValue{};
    }
    return Status::InvalidArgument("bad literal");
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::InvalidArgument(
          StrFormat("unexpected character at offset %zu", start));
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (token[0] == '+') {
      return Status::InvalidArgument(
          StrFormat("number may not start with '+' at offset %zu", start));
    }
    // JSON forbids leading zeros ("08"); strtod would accept them.
    const size_t first_digit = token[0] == '-' ? 1 : 0;
    if (token.size() > first_digit + 1 && token[first_digit] == '0' &&
        std::isdigit(static_cast<unsigned char>(token[first_digit + 1])) !=
            0) {
      return Status::InvalidArgument(
          StrFormat("number with leading zero at offset %zu", start));
    }
    // strtod with end-pointer validation: atof silently parses malformed
    // numbers ("1e", "1.2.3", "--5") as 0 or a prefix.
    errno = 0;
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      return Status::InvalidArgument(
          StrFormat("malformed number '%s' at offset %zu", token.c_str(),
                    start));
    }
    if (errno == ERANGE && !std::isfinite(parsed)) {
      return Status::InvalidArgument(
          StrFormat("number '%s' out of range", token.c_str()));
    }
    JsonValue value;
    value.kind = JsonValue::Kind::kNumber;
    value.number = parsed;
    value.number_token = token;
    return value;
  }

  const std::string& text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

/// True if `token` is a pure integer literal (optional minus, digits only),
/// i.e. safe for strtoll without fractional/exponent handling.
bool IsIntegerToken(const std::string& token) {
  if (token.empty()) return false;
  size_t i = token[0] == '-' ? 1 : 0;
  if (i == token.size()) return false;
  for (; i < token.size(); ++i) {
    if (std::isdigit(static_cast<unsigned char>(token[i])) == 0) return false;
  }
  return true;
}

}  // namespace

Result<JsonValue> ParseJson(const std::string& text) {
  JsonParser parser(text);
  return parser.Parse();
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        // Remaining control characters (< 0x20) are invalid raw inside JSON
        // strings; a model name containing one used to produce output the
        // parser could not re-read.
        if (static_cast<unsigned char>(ch) < 0x20) {
          out += StrFormat("\\u%04x", static_cast<unsigned char>(ch));
        } else {
          out += ch;
        }
    }
  }
  return out;
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "0";
  return StrFormat("%.17g", value);
}

namespace {

void WriteJsonTo(const JsonValue& value, std::string* out) {
  switch (value.kind) {
    case JsonValue::Kind::kObject: {
      *out += '{';
      bool first = true;
      for (const auto& [key, member] : value.object) {
        if (!first) *out += ',';
        first = false;
        *out += '"';
        *out += JsonEscape(key);
        *out += "\":";
        WriteJsonTo(member, out);
      }
      *out += '}';
      return;
    }
    case JsonValue::Kind::kArray: {
      *out += '[';
      for (size_t i = 0; i < value.array.size(); ++i) {
        if (i > 0) *out += ',';
        WriteJsonTo(value.array[i], out);
      }
      *out += ']';
      return;
    }
    case JsonValue::Kind::kString:
      *out += '"';
      *out += JsonEscape(value.string);
      *out += '"';
      return;
    case JsonValue::Kind::kNumber:
      *out += value.number_token.empty() ? JsonNumber(value.number)
                                         : value.number_token;
      return;
    case JsonValue::Kind::kBool:
      *out += value.boolean ? "true" : "false";
      return;
    case JsonValue::Kind::kNull:
      *out += "null";
      return;
  }
}

}  // namespace

std::string WriteJson(const JsonValue& value) {
  std::string out;
  WriteJsonTo(value, &out);
  return out;
}

const JsonValue* FindMember(const JsonValue& object, const std::string& key) {
  if (object.kind != JsonValue::Kind::kObject) return nullptr;
  auto it = object.object.find(key);
  return it == object.object.end() ? nullptr : &it->second;
}

Result<const JsonValue*> GetMember(const JsonValue& object,
                                   const std::string& key,
                                   JsonValue::Kind kind) {
  auto it = object.object.find(key);
  if (it == object.object.end()) {
    return Status::InvalidArgument(
        StrFormat("missing field '%s'", key.c_str()));
  }
  if (it->second.kind != kind) {
    return Status::InvalidArgument(
        StrFormat("field '%s' has wrong type", key.c_str()));
  }
  return &it->second;
}

Result<int> GetInt(const JsonValue& object, const std::string& key,
                   int min_value) {
  GALVATRON_ASSIGN_OR_RETURN(const JsonValue* value,
                             GetMember(object, key, JsonValue::Kind::kNumber));
  const double d = value->number;
  if (!std::isfinite(d) || d != std::trunc(d)) {
    return Status::InvalidArgument(
        StrFormat("field '%s' must be an integer", key.c_str()));
  }
  if (d < static_cast<double>(std::numeric_limits<int>::min()) ||
      d > static_cast<double>(std::numeric_limits<int>::max())) {
    return Status::InvalidArgument(
        StrFormat("field '%s' is outside int range", key.c_str()));
  }
  const int v = static_cast<int>(d);
  if (v < min_value) {
    return Status::InvalidArgument(StrFormat(
        "field '%s' must be >= %d, got %d", key.c_str(), min_value, v));
  }
  return v;
}

Result<int64_t> JsonToInt64(const JsonValue& value, const std::string& what,
                            int64_t min_value) {
  if (value.kind != JsonValue::Kind::kNumber) {
    return Status::InvalidArgument(
        StrFormat("%s has wrong type", what.c_str()));
  }
  int64_t v = 0;
  if (IsIntegerToken(value.number_token)) {
    // Through strtoll, not the double: tokens above 2^53 ("9007199254740993")
    // are not representable in a double and would round silently.
    errno = 0;
    char* end = nullptr;
    v = std::strtoll(value.number_token.c_str(), &end, 10);
    if (errno == ERANGE) {
      return Status::InvalidArgument(
          StrFormat("%s is outside int64 range", what.c_str()));
    }
  } else {
    const double d = value.number;
    if (!std::isfinite(d) || d != std::trunc(d)) {
      return Status::InvalidArgument(
          StrFormat("%s must be an integer", what.c_str()));
    }
    // 2^63 is exactly representable as a double; anything at or above it
    // (or below the symmetric bound) does not fit int64.
    if (d < -9223372036854775808.0 || d >= 9223372036854775808.0) {
      return Status::InvalidArgument(
          StrFormat("%s is outside int64 range", what.c_str()));
    }
    v = static_cast<int64_t>(d);
  }
  if (v < min_value) {
    return Status::InvalidArgument(
        StrFormat("%s must be >= %lld, got %lld", what.c_str(),
                  static_cast<long long>(min_value),
                  static_cast<long long>(v)));
  }
  return v;
}

Result<int64_t> GetInt64(const JsonValue& object, const std::string& key,
                         int64_t min_value) {
  GALVATRON_ASSIGN_OR_RETURN(const JsonValue* value,
                             GetMember(object, key, JsonValue::Kind::kNumber));
  return JsonToInt64(*value, StrFormat("field '%s'", key.c_str()), min_value);
}

Result<double> GetDouble(const JsonValue& object, const std::string& key) {
  GALVATRON_ASSIGN_OR_RETURN(const JsonValue* value,
                             GetMember(object, key, JsonValue::Kind::kNumber));
  if (!std::isfinite(value->number)) {
    return Status::InvalidArgument(
        StrFormat("field '%s' must be finite", key.c_str()));
  }
  return value->number;
}

Result<bool> GetBool(const JsonValue& object, const std::string& key) {
  GALVATRON_ASSIGN_OR_RETURN(const JsonValue* value,
                             GetMember(object, key, JsonValue::Kind::kBool));
  return value->boolean;
}

Result<std::string> GetString(const JsonValue& object,
                              const std::string& key) {
  GALVATRON_ASSIGN_OR_RETURN(const JsonValue* value,
                             GetMember(object, key, JsonValue::Kind::kString));
  return value->string;
}

}  // namespace galvatron
