#ifndef GALVATRON_UTIL_RNG_H_
#define GALVATRON_UTIL_RNG_H_

#include <cstdint>

namespace galvatron {

/// Deterministic splittable PRNG (SplitMix64). Used for reproducible
/// simulator jitter and property-test case generation; never seeded from the
/// clock so runs are bit-identical.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Next 64 uniform bits.
  uint64_t NextU64() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, n). Requires n > 0.
  uint64_t NextBelow(uint64_t n) { return NextU64() % n; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// A new independent generator derived from this one's stream.
  Rng Split() { return Rng(NextU64()); }

  /// Stateless hash of `x` to a uniform double in [0,1); used for
  /// deterministic per-task jitter keyed by task identity.
  static double HashToUnit(uint64_t x) {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return static_cast<double>(x >> 11) * 0x1.0p-53;
  }

 private:
  uint64_t state_;
};

}  // namespace galvatron

#endif  // GALVATRON_UTIL_RNG_H_
