#ifndef GALVATRON_UTIL_ALLOC_COUNTER_H_
#define GALVATRON_UTIL_ALLOC_COUNTER_H_

#include <cstdint>

namespace galvatron {

namespace internal {
/// Incremented by the replaced global operator new (all variants) in
/// alloc_counter.cc. Per-thread, so concurrent sweep workers measure their
/// own allocation traffic without any synchronization.
extern thread_local int64_t thread_alloc_count;
}  // namespace internal

/// Number of heap allocations this thread has performed since it started
/// (operator new / new[] calls, throwing, nothrow and aligned forms alike;
/// deallocations are not counted). Callers measure a scope by differencing:
///
///   const int64_t before = CurrentThreadAllocCount();
///   ...
///   const int64_t allocated = CurrentThreadAllocCount() - before;
///
/// The counter only ticks in binaries that link alloc_counter.cc's
/// replacement operators (anything linking galvatron_util and referencing
/// this header does); elsewhere it reads zero, and scope deltas are zero —
/// callers must treat the value as telemetry, never as a correctness input.
inline int64_t CurrentThreadAllocCount() {
  return internal::thread_alloc_count;
}

}  // namespace galvatron

#endif  // GALVATRON_UTIL_ALLOC_COUNTER_H_
