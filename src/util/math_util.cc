#include "util/math_util.h"

#include <cmath>
#include <cstdlib>

namespace galvatron {

std::vector<int> PowerOfTwoDivisors(int n) {
  std::vector<int> out;
  for (int d = 1; d <= n; d *= 2) {
    if (n % d == 0) out.push_back(d);
    if (d > n / 2) break;
  }
  return out;
}

namespace {

void FactorizeRec(int n, int max_parts, std::vector<int>* current,
                  std::vector<std::vector<int>>* out) {
  if (n == 1) {
    if (!current->empty()) out->push_back(*current);
    return;
  }
  if (static_cast<int>(current->size()) == max_parts) return;
  for (int f = 2; f <= n; ++f) {
    if (n % f != 0) continue;
    current->push_back(f);
    FactorizeRec(n / f, max_parts, current, out);
    current->pop_back();
  }
}

}  // namespace

std::vector<std::vector<int>> OrderedFactorizations(int n, int max_parts) {
  std::vector<std::vector<int>> out;
  if (n <= 1 || max_parts <= 0) return out;
  std::vector<int> current;
  FactorizeRec(n, max_parts, &current, &out);
  return out;
}

double RelativeError(double a, double b, double eps) {
  double denom = std::fabs(b);
  if (denom < eps) denom = eps;
  return std::fabs(a - b) / denom;
}

}  // namespace galvatron
