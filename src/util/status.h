#ifndef GALVATRON_UTIL_STATUS_H_
#define GALVATRON_UTIL_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace galvatron {

/// Error categories used across the library.
///
/// `kOutOfMemory` is load-bearing: the dynamic-programming search treats an
/// out-of-memory layer cost as infinite, and the simulator reports it when a
/// plan exceeds a device's memory budget.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfMemory = 3,
  kFailedPrecondition = 4,
  kUnimplemented = 5,
  kInternal = 6,
  kInfeasible = 7,
  kCancelled = 8,
};

/// Returns a short human-readable name for `code` (e.g. "OutOfMemory").
std::string_view StatusCodeToString(StatusCode code);

/// Arrow/RocksDB-style status object: a cheap success value (no allocation)
/// or an error carrying a code and a message.
///
/// The library does not use exceptions; every fallible public function
/// returns `Status` or `Result<T>`.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message) {
    if (code != StatusCode::kOk) {
      rep_ = std::make_unique<Rep>(Rep{code, std::move(message)});
    }
  }

  Status(const Status& other) { CopyFrom(other); }
  Status& operator=(const Status& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfMemory(std::string msg) {
    return Status(StatusCode::kOutOfMemory, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  /// No plan satisfies the constraints (e.g. every strategy OOMs).
  static Status Infeasible(std::string msg) {
    return Status(StatusCode::kInfeasible, std::move(msg));
  }
  /// The caller abandoned the operation before it finished (e.g. a serving
  /// deadline expired mid-sweep). Distinct from Infeasible: the search was
  /// cut short, so absence of a plan says nothing about the search space.
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string* const kEmpty = new std::string();
    return rep_ ? rep_->message : *kEmpty;
  }

  bool IsOutOfMemory() const { return code() == StatusCode::kOutOfMemory; }
  bool IsInfeasible() const { return code() == StatusCode::kInfeasible; }
  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };

  void CopyFrom(const Status& other) {
    rep_ = other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr;
  }

  std::unique_ptr<Rep> rep_;  // null means OK
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK status to the caller.
#define GALVATRON_RETURN_IF_ERROR(expr)           \
  do {                                            \
    ::galvatron::Status _st = (expr);             \
    if (!_st.ok()) return _st;                    \
  } while (false)

}  // namespace galvatron

#endif  // GALVATRON_UTIL_STATUS_H_
