#include "api/plan_render.h"

#include <algorithm>
#include <sstream>

#include "util/string_util.h"

namespace galvatron {

namespace {

constexpr int kBarWidth = 10;

std::string Bar(double fraction) {
  const int filled = std::clamp(
      static_cast<int>(fraction * kBarWidth + 0.5), 0, kBarWidth);
  std::string bar = "|";
  bar.append(static_cast<size_t>(filled), '#');
  bar.append(static_cast<size_t>(kBarWidth - filled), ' ');
  bar += "|";
  return bar;
}

}  // namespace

std::string RenderPlanDiagram(const ModelSpec& model,
                              const TrainingPlan& plan) {
  // Scale bars against the largest single layer in the model.
  int64_t max_params = 1;
  int64_t max_activation = 1;
  for (const LayerSpec& layer : model.layers()) {
    max_params = std::max(max_params, layer.param_count());
    max_activation = std::max(max_activation, layer.SavedActivationBytes(1));
  }

  std::ostringstream os;
  os << "plan diagram for " << plan.model_name << " (bar scale: largest "
     << "layer; P = parameters, A = activations/sample)\n";
  for (size_t s = 0; s < plan.stages.size(); ++s) {
    const StagePlan& stage = plan.stages[s];
    os << "stage" << s << "[gpu" << stage.first_device << "-"
       << stage.first_device + stage.num_devices - 1 << "]";
    if (s == 0) {
      os << "  batch " << plan.global_batch << ", "
         << plan.num_micro_batches << " micro-batch(es), "
         << PipelineScheduleToString(plan.schedule);
    }
    os << "\n";

    int i = 0;
    while (i < stage.num_layers) {
      const LayerSpec& first = model.layer(stage.first_layer + i);
      int j = i;
      while (j < stage.num_layers &&
             stage.layer_strategies[static_cast<size_t>(j)] ==
                 stage.layer_strategies[static_cast<size_t>(i)] &&
             stage.RecomputeAt(j) == stage.RecomputeAt(i) &&
             model.layer(stage.first_layer + j).signature() ==
                 first.signature()) {
        ++j;
      }
      const int global_first = stage.first_layer + i;
      const int global_last = stage.first_layer + j - 1;
      std::string range =
          global_first == global_last
              ? StrFormat("layer  %3d    ", global_first)
              : StrFormat("layers %3d-%-3d", global_first, global_last);
      os << "  " << range << " "
         << StrFormat("%-10.10s",
                      std::string(LayerKindToString(first.kind())).c_str())
         << " P" << Bar(static_cast<double>(first.param_count()) /
                        static_cast<double>(max_params))
         << " A" << Bar(static_cast<double>(first.SavedActivationBytes(1)) /
                        static_cast<double>(max_activation))
         << " " << stage.layer_strategies[static_cast<size_t>(i)].ToString();
      if (stage.RecomputeAt(i)) os << " +ckpt";
      os << "\n";
      i = j;
    }
  }
  return os.str();
}

}  // namespace galvatron
