#ifndef GALVATRON_API_PLAN_IO_H_
#define GALVATRON_API_PLAN_IO_H_

#include <string>

#include "parallel/plan.h"
#include "util/result.h"

namespace galvatron {

/// Serializes a training plan to JSON, e.g.:
///
/// {
///   "model": "BERT-Huge-32",
///   "global_batch": 32,
///   "micro_batches": 1,
///   "schedule": "gpipe",
///   "stages": [
///     {
///       "first_device": 0, "num_devices": 8,
///       "first_layer": 0, "num_layers": 34,
///       "layers": [
///         {"strategy": "tp2-dp4", "recompute": false},
///         ...
///       ]
///     }
///   ]
/// }
///
/// The format is stable and round-trips through ParsePlanJson; plans are
/// how deployments persist and ship the search result to the training job
/// (the real Galvatron writes the plan into the PyTorch launcher).
std::string PlanToJson(const TrainingPlan& plan);

/// Escapes `s` for embedding inside a JSON string literal: quotes,
/// backslashes and every control character (< 0x20, as \uXXXX where no short
/// escape exists). Exposed for tools that compose JSON documents around
/// plans (e.g. the fuzz harness's repro dumps).
std::string EscapeJson(const std::string& s);

/// Parses a plan serialized by PlanToJson. Strict: unknown strategy tokens,
/// malformed structure or type mismatches are InvalidArgument errors. The
/// result still needs TrainingPlan::Validate against a model/cluster.
Result<TrainingPlan> ParsePlanJson(const std::string& json);

}  // namespace galvatron

#endif  // GALVATRON_API_PLAN_IO_H_
