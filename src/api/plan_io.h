#ifndef GALVATRON_API_PLAN_IO_H_
#define GALVATRON_API_PLAN_IO_H_

#include <string>

#include "cluster/cluster.h"
#include "ir/model.h"
#include "parallel/plan.h"
#include "util/json.h"
#include "util/result.h"

namespace galvatron {

/// Serializes a training plan to JSON, e.g.:
///
/// {
///   "model": "BERT-Huge-32",
///   "global_batch": 32,
///   "micro_batches": 1,
///   "schedule": "gpipe",
///   "stages": [
///     {
///       "first_device": 0, "num_devices": 8,
///       "first_layer": 0, "num_layers": 34,
///       "layers": [
///         {"strategy": "tp2-dp4", "recompute": false},
///         ...
///       ]
///     }
///   ]
/// }
///
/// The format is stable and round-trips through ParsePlanJson; plans are
/// how deployments persist and ship the search result to the training job
/// (the real Galvatron writes the plan into the PyTorch launcher).
std::string PlanToJson(const TrainingPlan& plan);

/// Escapes `s` for embedding inside a JSON string literal: quotes,
/// backslashes and every control character (< 0x20, as \uXXXX where no short
/// escape exists). Exposed for tools that compose JSON documents around
/// plans (e.g. the fuzz harness's repro dumps). Alias of util's JsonEscape.
std::string EscapeJson(const std::string& s);

/// Parses a plan serialized by PlanToJson. Strict: unknown strategy tokens,
/// malformed structure or type mismatches are InvalidArgument errors. The
/// result still needs TrainingPlan::Validate against a model/cluster.
Result<TrainingPlan> ParsePlanJson(const std::string& json);

/// Same, from an already-parsed document — for embedding plans inside
/// larger JSON messages (the /v1/measure wire format carries one).
Result<TrainingPlan> PlanFromJsonValue(const JsonValue& root);

/// Serializes a model spec to JSON. Only the primary quantities are
/// written (per-layer name, kind, boundary bytes, and every op field); the
/// LayerSpec constructor deterministically recomputes all derived
/// aggregates on parse, so the round trip is exact:
///   ModelSpecToJson(ParseModelSpecJson(j)) == j  for j = ModelSpecToJson(m).
std::string ModelSpecToJson(const ModelSpec& model);

Result<ModelSpec> ParseModelSpecJson(const std::string& json);
Result<ModelSpec> ModelSpecFromJsonValue(const JsonValue& root);

/// Serializes a cluster spec to JSON: name, per-device memory budgets
/// (heterogeneous budgets survive), sustained FLOPs, the topology-level
/// list with full link parameters, and the three calibration overheads.
/// Heterogeneous clusters additionally carry "device_sustained_flops" /
/// "device_small_batch_half_life" arrays (emitted only when non-uniform /
/// non-zero, so homogeneous documents are unchanged) and graph-backed
/// clusters a "topology" object (see TopologyGraphToJson). Round-trips
/// bit-exactly through ParseClusterSpecJson.
std::string ClusterSpecToJson(const ClusterSpec& cluster);

Result<ClusterSpec> ParseClusterSpecJson(const std::string& json);
Result<ClusterSpec> ClusterSpecFromJsonValue(const JsonValue& root);

/// Serializes an interconnect graph as a JSON fragment:
///   {"nodes": [{"name", "first_device", "num_devices", "parent",
///               "internal": {link}, "uplink": {link}}, ...],
///    "islands": [{"name", "first_device", "num_devices",
///                 "sustained_flops", "memory_bytes",
///                 "small_batch_half_life"}, ...]}
/// Embedded under "topology" in cluster JSON and used standalone by
/// topology files (see ParseTopologyClusterJson).
std::string TopologyGraphToJson(const TopologyGraph& graph);

/// Parses a topology fragment. `num_devices` > 0 pins the device count
/// (embedded-in-cluster use); <= 0 derives it from the islands, which must
/// tile [0, n). All structural validation — coverage, cycles, zero
/// bandwidths — comes from TopologyGraph::Create and is rejected here.
Result<TopologyGraph> TopologyGraphFromJsonValue(const JsonValue& root,
                                                 int num_devices = -1);

/// Parses a standalone topology file: {"name": ..., "topology": {...}} plus
/// optionally the three calibration overheads of cluster JSON. Devices take
/// memory/throughput/half-life from the graph's islands and links are
/// priced over the graph (ClusterSpec::CreateFromTopology) — the
/// `galvatron_cli --topology` input format.
Result<ClusterSpec> ParseTopologyClusterJson(const std::string& json);

}  // namespace galvatron

#endif  // GALVATRON_API_PLAN_IO_H_
