#ifndef GALVATRON_API_PLAN_RENDER_H_
#define GALVATRON_API_PLAN_RENDER_H_

#include <string>

#include "ir/model.h"
#include "parallel/plan.h"

namespace galvatron {

/// Figure-5-style diagram of a plan: one row per run of consecutive layers
/// sharing a strategy, with bars showing each run's parameter size and
/// per-sample activation size relative to the model's largest layer — the
/// two quantities that drive strategy choice (the paper draws the same
/// picture with rectangle height = parameters, width = activations).
///
/// Example:
///
///   stage0[gpu0-7]  batch 32, 1 micro-batch(es)
///     layer  0      Embedding  P|####      |  A|#         |  sdp8
///     layers 1-22   Encoder    P|######### |  A|##########|  tp2-dp4
///     layers 23-33  Encoder    P|######### |  A|##########|  tp2-sdp4 +ckpt
std::string RenderPlanDiagram(const ModelSpec& model,
                              const TrainingPlan& plan);

}  // namespace galvatron

#endif  // GALVATRON_API_PLAN_RENDER_H_
