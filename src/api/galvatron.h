#ifndef GALVATRON_API_GALVATRON_H_
#define GALVATRON_API_GALVATRON_H_

/// \file
/// Galvatron-CPP public API: automatic hybrid-parallel training plans for
/// Transformer models over multi-GPU clusters (PVLDB 16(3), 2022).
///
/// Quickstart:
///
///   ClusterSpec cluster = MakeTitanNode8(16 * kGiB);
///   ModelSpec model = BuildModel(ModelId::kBertHuge32);
///   GALVATRON_ASSIGN_OR_RETURN(TrainedPlan result,
///                              Galvatron::Plan(model, cluster));
///   std::cout << result.plan.ToString();
///
/// See examples/quickstart.cc for a complete program.

#include <functional>
#include <string>

#include "baselines/baselines.h"
#include "cluster/cluster.h"
#include "estimator/cost_estimator.h"
#include "ir/model.h"
#include "ir/model_zoo.h"
#include "parallel/plan.h"
#include "search/cost_cache.h"
#include "search/optimizer.h"
#include "sim/simulator.h"
#include "util/result.h"

namespace galvatron {

/// A plan together with its estimated and (optionally) simulated
/// performance.
struct TrainedPlan {
  TrainingPlan plan;
  PlanCost estimated;
  SearchStats search_stats;
  /// Filled by Galvatron::Measure / PlanAndMeasure.
  SimMetrics measured;
  bool has_measurement = false;
};

/// Long-lived planning state for callers that issue many Plan calls over
/// one (model, cluster, estimator-options) triple — the serving daemon
/// keeps one per distinct request signature. Owns stable copies of the
/// specs plus a SharedCostCache whose entries persist across calls, so a
/// repeat request with, say, a different memory budget re-prices nothing
/// the cache already holds. Thread-safe for concurrent Plan calls (the
/// cache is internally sharded and the estimator is const).
class PlanningContext {
 public:
  PlanningContext(ModelSpec model, ClusterSpec cluster,
                  EstimatorOptions estimator_options = {});

  PlanningContext(const PlanningContext&) = delete;
  PlanningContext& operator=(const PlanningContext&) = delete;

  const ModelSpec& model() const { return model_; }
  const ClusterSpec& cluster() const { return cluster_; }
  const CostEstimator& estimator() const { return estimator_; }
  SharedCostCache* cache() { return &cache_; }
  DpFrontierCache* frontier_cache() { return &frontier_cache_; }

 private:
  // Declaration order is load-bearing: estimator_ points at cluster_,
  // cache_ points at estimator_ and model_.
  ModelSpec model_;
  ClusterSpec cluster_;
  CostEstimator estimator_;
  SharedCostCache cache_;
  // Completed per-stage Pareto frontiers, reused across Plan calls so a
  // repeat request that differs only in memory budget (or batch envelope)
  // warm-starts the DP instead of re-running it (see DpFrontierCache).
  DpFrontierCache frontier_cache_;
};

/// Facade over the optimizer, estimator and simulator. All methods are
/// stateless conveniences; power users can drive Optimizer / CostEstimator
/// / Simulator directly.
class Galvatron {
 public:
  /// Searches the hybrid-parallelism space (Algorithm 1) and returns the
  /// highest-throughput plan for `model` on `cluster`.
  static Result<TrainedPlan> Plan(const ModelSpec& model,
                                  const ClusterSpec& cluster,
                                  const OptimizerOptions& options = {});

  /// Same, reusing `context`'s cross-call SharedCostCache (see
  /// PlanningContext). `options.estimator` must equal the context's
  /// estimator options and the model/cluster must match the context's —
  /// cache entries are priced by the context's estimator. `cancel_check`
  /// (optional) aborts the sweep with Status::Cancelled once it returns
  /// true; serving uses it for per-request deadlines.
  static Result<TrainedPlan> Plan(
      PlanningContext& context, const OptimizerOptions& options = {},
      const std::function<bool()>& cancel_check = {});

  /// Same, but optimizes against `cluster` instead of the context's own —
  /// the serving daemon's path for budget variants: requests whose cluster
  /// differs from the context's ONLY in per-device memory share one
  /// context (and its cost + frontier caches), because per-layer costs
  /// never depend on the memory budget; feasibility is re-checked against
  /// `cluster` exactly. `cluster` must match the context's cluster in
  /// every other respect (device count, islands, bandwidths).
  static Result<TrainedPlan> Plan(
      PlanningContext& context, const ClusterSpec& cluster,
      const OptimizerOptions& options = {},
      const std::function<bool()>& cancel_check = {});

  /// Runs one simulated training iteration of `plan` and fills
  /// `measured`. The simulator stands in for the paper's real GPU testbeds
  /// (see DESIGN.md).
  static Result<SimMetrics> Measure(const ModelSpec& model,
                                    const TrainingPlan& plan,
                                    const ClusterSpec& cluster,
                                    const SimOptions& options = {});

  /// Like Measure, but also captures the execution trace when
  /// `options.record_trace` is set (see SimOptions::record_trace and
  /// src/trace/ for the recorder/analyzer/exporters that consume it).
  static Result<SimMetrics> Measure(const ModelSpec& model,
                                    const TrainingPlan& plan,
                                    const ClusterSpec& cluster,
                                    const SimOptions& options,
                                    SimTrace* sim_trace);

  /// Plan + Measure in one call.
  static Result<TrainedPlan> PlanAndMeasure(
      const ModelSpec& model, const ClusterSpec& cluster,
      const OptimizerOptions& optimizer_options = {},
      const SimOptions& sim_options = {});

  /// Library version string.
  static std::string Version();
};

}  // namespace galvatron

#endif  // GALVATRON_API_GALVATRON_H_
