#include "api/galvatron.h"

#include <utility>

namespace galvatron {

PlanningContext::PlanningContext(ModelSpec model, ClusterSpec cluster,
                                 EstimatorOptions estimator_options)
    : model_(std::move(model)),
      cluster_(std::move(cluster)),
      estimator_(&cluster_, estimator_options),
      cache_(&estimator_, &model_) {}

Result<TrainedPlan> Galvatron::Plan(const ModelSpec& model,
                                    const ClusterSpec& cluster,
                                    const OptimizerOptions& options) {
  Optimizer optimizer(&cluster, options);
  GALVATRON_ASSIGN_OR_RETURN(OptimizationResult result,
                             optimizer.Optimize(model));
  TrainedPlan out;
  out.plan = std::move(result.plan);
  out.estimated = std::move(result.estimated);
  out.search_stats = result.stats;
  return out;
}

Result<TrainedPlan> Galvatron::Plan(
    PlanningContext& context, const OptimizerOptions& options,
    const std::function<bool()>& cancel_check) {
  return Plan(context, context.cluster(), options, cancel_check);
}

Result<TrainedPlan> Galvatron::Plan(
    PlanningContext& context, const ClusterSpec& cluster,
    const OptimizerOptions& options,
    const std::function<bool()>& cancel_check) {
  Optimizer optimizer(&cluster, options);
  GALVATRON_ASSIGN_OR_RETURN(
      OptimizationResult result,
      optimizer.Optimize(context.model(), context.cache(),
                         context.frontier_cache(), cancel_check));
  TrainedPlan out;
  out.plan = std::move(result.plan);
  out.estimated = std::move(result.estimated);
  out.search_stats = result.stats;
  return out;
}

Result<SimMetrics> Galvatron::Measure(const ModelSpec& model,
                                      const TrainingPlan& plan,
                                      const ClusterSpec& cluster,
                                      const SimOptions& options) {
  Simulator simulator(&cluster, options);
  return simulator.Run(model, plan);
}

Result<SimMetrics> Galvatron::Measure(const ModelSpec& model,
                                      const TrainingPlan& plan,
                                      const ClusterSpec& cluster,
                                      const SimOptions& options,
                                      SimTrace* sim_trace) {
  Simulator simulator(&cluster, options);
  return simulator.Run(model, plan, sim_trace);
}

Result<TrainedPlan> Galvatron::PlanAndMeasure(
    const ModelSpec& model, const ClusterSpec& cluster,
    const OptimizerOptions& optimizer_options, const SimOptions& sim_options) {
  GALVATRON_ASSIGN_OR_RETURN(TrainedPlan result,
                             Plan(model, cluster, optimizer_options));
  GALVATRON_ASSIGN_OR_RETURN(
      result.measured, Measure(model, result.plan, cluster, sim_options));
  result.has_measurement = true;
  return result;
}

std::string Galvatron::Version() { return "galvatron-cpp 1.0.0"; }

}  // namespace galvatron
