#include "api/plan_io.h"

#include <cctype>
#include <map>
#include <memory>
#include <sstream>
#include <vector>

#include "util/string_util.h"

namespace galvatron {

namespace {

// ---------------------------------------------------------------------
// Minimal JSON value model + recursive-descent parser, sufficient for the
// fixed plan schema (objects, arrays, strings, integers, booleans). Kept
// internal to this translation unit; no third-party dependency.
// ---------------------------------------------------------------------

struct JsonValue {
  enum class Kind { kObject, kArray, kString, kNumber, kBool, kNull };
  Kind kind = Kind::kNull;
  std::map<std::string, JsonValue> object;
  std::vector<JsonValue> array;
  std::string string;
  double number = 0;
  bool boolean = false;
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    GALVATRON_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("trailing characters after JSON value");
    }
    return value;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  Status Expect(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return Status::InvalidArgument(
          StrFormat("expected '%c' at offset %zu", c, pos_));
    }
    ++pos_;
    return Status::OK();
  }

  bool Peek(char c) {
    SkipSpace();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  Result<JsonValue> ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("unexpected end of JSON");
    }
    const char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (c == 't' || c == 'f') return ParseBool();
    if (c == 'n') return ParseNull();
    return ParseNumber();
  }

  Result<JsonValue> ParseObject() {
    GALVATRON_RETURN_IF_ERROR(Expect('{'));
    JsonValue value;
    value.kind = JsonValue::Kind::kObject;
    if (Peek('}')) {
      ++pos_;
      return value;
    }
    while (true) {
      GALVATRON_ASSIGN_OR_RETURN(JsonValue key, ParseString());
      GALVATRON_RETURN_IF_ERROR(Expect(':'));
      GALVATRON_ASSIGN_OR_RETURN(JsonValue member, ParseValue());
      value.object.emplace(key.string, std::move(member));
      if (Peek(',')) {
        ++pos_;
        continue;
      }
      GALVATRON_RETURN_IF_ERROR(Expect('}'));
      return value;
    }
  }

  Result<JsonValue> ParseArray() {
    GALVATRON_RETURN_IF_ERROR(Expect('['));
    JsonValue value;
    value.kind = JsonValue::Kind::kArray;
    if (Peek(']')) {
      ++pos_;
      return value;
    }
    while (true) {
      GALVATRON_ASSIGN_OR_RETURN(JsonValue element, ParseValue());
      value.array.push_back(std::move(element));
      if (Peek(',')) {
        ++pos_;
        continue;
      }
      GALVATRON_RETURN_IF_ERROR(Expect(']'));
      return value;
    }
  }

  Result<JsonValue> ParseString() {
    GALVATRON_RETURN_IF_ERROR(Expect('"'));
    JsonValue value;
    value.kind = JsonValue::Kind::kString;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          return Status::InvalidArgument("dangling escape in string");
        }
        const char escaped = text_[pos_++];
        switch (escaped) {
          case '"':
          case '\\':
          case '/':
            c = escaped;
            break;
          case 'n':
            c = '\n';
            break;
          case 't':
            c = '\t';
            break;
          default:
            return Status::InvalidArgument(
                StrFormat("unsupported escape '\\%c'", escaped));
        }
      }
      value.string += c;
    }
    GALVATRON_RETURN_IF_ERROR(Expect('"'));
    return value;
  }

  Result<JsonValue> ParseBool() {
    JsonValue value;
    value.kind = JsonValue::Kind::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      value.boolean = true;
      pos_ += 4;
      return value;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      value.boolean = false;
      pos_ += 5;
      return value;
    }
    return Status::InvalidArgument("bad literal");
  }

  Result<JsonValue> ParseNull() {
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return JsonValue{};
    }
    return Status::InvalidArgument("bad literal");
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::InvalidArgument(
          StrFormat("unexpected character at offset %zu", start));
    }
    JsonValue value;
    value.kind = JsonValue::Kind::kNumber;
    value.number = std::atof(text_.substr(start, pos_ - start).c_str());
    return value;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

std::string EscapeJson(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

Result<const JsonValue*> GetMember(const JsonValue& object,
                                   const std::string& key,
                                   JsonValue::Kind kind) {
  auto it = object.object.find(key);
  if (it == object.object.end()) {
    return Status::InvalidArgument(StrFormat("missing field '%s'",
                                             key.c_str()));
  }
  if (it->second.kind != kind) {
    return Status::InvalidArgument(StrFormat("field '%s' has wrong type",
                                             key.c_str()));
  }
  return &it->second;
}

Result<int> GetInt(const JsonValue& object, const std::string& key) {
  GALVATRON_ASSIGN_OR_RETURN(
      const JsonValue* value,
      GetMember(object, key, JsonValue::Kind::kNumber));
  return static_cast<int>(value->number);
}

Result<std::string> GetString(const JsonValue& object,
                              const std::string& key) {
  GALVATRON_ASSIGN_OR_RETURN(
      const JsonValue* value,
      GetMember(object, key, JsonValue::Kind::kString));
  return value->string;
}

}  // namespace

std::string PlanToJson(const TrainingPlan& plan) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"model\": \"" << EscapeJson(plan.model_name) << "\",\n";
  os << "  \"global_batch\": " << plan.global_batch << ",\n";
  os << "  \"micro_batches\": " << plan.num_micro_batches << ",\n";
  os << "  \"schedule\": \"" << PipelineScheduleToString(plan.schedule)
     << "\",\n";
  os << "  \"stages\": [";
  for (size_t s = 0; s < plan.stages.size(); ++s) {
    const StagePlan& stage = plan.stages[s];
    if (s > 0) os << ",";
    os << "\n    {\n";
    os << "      \"first_device\": " << stage.first_device << ",\n";
    os << "      \"num_devices\": " << stage.num_devices << ",\n";
    os << "      \"first_layer\": " << stage.first_layer << ",\n";
    os << "      \"num_layers\": " << stage.num_layers << ",\n";
    os << "      \"layers\": [";
    for (int i = 0; i < stage.num_layers; ++i) {
      if (i > 0) os << ",";
      os << "\n        {\"strategy\": \""
         << stage.layer_strategies[static_cast<size_t>(i)].ToString()
         << "\", \"recompute\": "
         << (stage.RecomputeAt(i) ? "true" : "false") << "}";
    }
    os << "\n      ]\n    }";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

Result<TrainingPlan> ParsePlanJson(const std::string& json) {
  JsonParser parser(json);
  GALVATRON_ASSIGN_OR_RETURN(JsonValue root, parser.Parse());
  if (root.kind != JsonValue::Kind::kObject) {
    return Status::InvalidArgument("plan JSON must be an object");
  }

  TrainingPlan plan;
  GALVATRON_ASSIGN_OR_RETURN(plan.model_name, GetString(root, "model"));
  GALVATRON_ASSIGN_OR_RETURN(plan.global_batch,
                             GetInt(root, "global_batch"));
  GALVATRON_ASSIGN_OR_RETURN(plan.num_micro_batches,
                             GetInt(root, "micro_batches"));
  GALVATRON_ASSIGN_OR_RETURN(std::string schedule,
                             GetString(root, "schedule"));
  if (schedule == "gpipe") {
    plan.schedule = PipelineSchedule::kGPipe;
  } else if (schedule == "1f1b") {
    plan.schedule = PipelineSchedule::k1F1B;
  } else {
    return Status::InvalidArgument(
        StrFormat("unknown schedule '%s'", schedule.c_str()));
  }

  GALVATRON_ASSIGN_OR_RETURN(
      const JsonValue* stages,
      GetMember(root, "stages", JsonValue::Kind::kArray));
  for (const JsonValue& stage_json : stages->array) {
    if (stage_json.kind != JsonValue::Kind::kObject) {
      return Status::InvalidArgument("stage must be an object");
    }
    StagePlan stage;
    GALVATRON_ASSIGN_OR_RETURN(stage.first_device,
                               GetInt(stage_json, "first_device"));
    GALVATRON_ASSIGN_OR_RETURN(stage.num_devices,
                               GetInt(stage_json, "num_devices"));
    GALVATRON_ASSIGN_OR_RETURN(stage.first_layer,
                               GetInt(stage_json, "first_layer"));
    GALVATRON_ASSIGN_OR_RETURN(stage.num_layers,
                               GetInt(stage_json, "num_layers"));
    GALVATRON_ASSIGN_OR_RETURN(
        const JsonValue* layers,
        GetMember(stage_json, "layers", JsonValue::Kind::kArray));
    bool any_recompute = false;
    std::vector<uint8_t> recompute;
    for (const JsonValue& layer_json : layers->array) {
      if (layer_json.kind != JsonValue::Kind::kObject) {
        return Status::InvalidArgument("layer entry must be an object");
      }
      GALVATRON_ASSIGN_OR_RETURN(std::string strategy_text,
                                 GetString(layer_json, "strategy"));
      GALVATRON_ASSIGN_OR_RETURN(HybridStrategy strategy,
                                 HybridStrategy::Parse(strategy_text));
      stage.layer_strategies.push_back(std::move(strategy));
      GALVATRON_ASSIGN_OR_RETURN(
          const JsonValue* flag,
          GetMember(layer_json, "recompute", JsonValue::Kind::kBool));
      recompute.push_back(flag->boolean ? 1 : 0);
      any_recompute |= flag->boolean;
    }
    if (static_cast<int>(stage.layer_strategies.size()) !=
        stage.num_layers) {
      return Status::InvalidArgument(
          "layers array length disagrees with num_layers");
    }
    if (any_recompute) stage.recompute = std::move(recompute);
    plan.stages.push_back(std::move(stage));
  }
  return plan;
}

}  // namespace galvatron
