#include "api/plan_io.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <map>
#include <memory>
#include <sstream>
#include <vector>

#include "util/string_util.h"

namespace galvatron {

namespace {

// ---------------------------------------------------------------------
// Minimal JSON value model + recursive-descent parser, sufficient for the
// fixed plan schema (objects, arrays, strings, integers, booleans). Kept
// internal to this translation unit; no third-party dependency.
// ---------------------------------------------------------------------

struct JsonValue {
  enum class Kind { kObject, kArray, kString, kNumber, kBool, kNull };
  Kind kind = Kind::kNull;
  std::map<std::string, JsonValue> object;
  std::vector<JsonValue> array;
  std::string string;
  double number = 0;
  bool boolean = false;
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    GALVATRON_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("trailing characters after JSON value");
    }
    return value;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  Status Expect(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return Status::InvalidArgument(
          StrFormat("expected '%c' at offset %zu", c, pos_));
    }
    ++pos_;
    return Status::OK();
  }

  bool Peek(char c) {
    SkipSpace();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  Result<JsonValue> ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("unexpected end of JSON");
    }
    const char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (c == 't' || c == 'f') return ParseBool();
    if (c == 'n') return ParseNull();
    return ParseNumber();
  }

  Result<JsonValue> ParseObject() {
    GALVATRON_RETURN_IF_ERROR(Expect('{'));
    JsonValue value;
    value.kind = JsonValue::Kind::kObject;
    if (Peek('}')) {
      ++pos_;
      return value;
    }
    while (true) {
      GALVATRON_ASSIGN_OR_RETURN(JsonValue key, ParseString());
      GALVATRON_RETURN_IF_ERROR(Expect(':'));
      GALVATRON_ASSIGN_OR_RETURN(JsonValue member, ParseValue());
      // Duplicate keys are almost always a hand-editing mistake; silently
      // keeping one of the two values would misread the plan.
      if (!value.object.emplace(key.string, std::move(member)).second) {
        return Status::InvalidArgument(
            StrFormat("duplicate key '%s' in object", key.string.c_str()));
      }
      if (Peek(',')) {
        ++pos_;
        continue;
      }
      GALVATRON_RETURN_IF_ERROR(Expect('}'));
      return value;
    }
  }

  Result<JsonValue> ParseArray() {
    GALVATRON_RETURN_IF_ERROR(Expect('['));
    JsonValue value;
    value.kind = JsonValue::Kind::kArray;
    if (Peek(']')) {
      ++pos_;
      return value;
    }
    while (true) {
      GALVATRON_ASSIGN_OR_RETURN(JsonValue element, ParseValue());
      value.array.push_back(std::move(element));
      if (Peek(',')) {
        ++pos_;
        continue;
      }
      GALVATRON_RETURN_IF_ERROR(Expect(']'));
      return value;
    }
  }

  Result<JsonValue> ParseString() {
    GALVATRON_RETURN_IF_ERROR(Expect('"'));
    JsonValue value;
    value.kind = JsonValue::Kind::kString;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (static_cast<unsigned char>(c) < 0x20) {
        // Raw control characters are invalid inside JSON strings; they must
        // arrive escaped (EscapeJson emits them that way).
        return Status::InvalidArgument(StrFormat(
            "unescaped control character 0x%02x in string at offset %zu",
            static_cast<unsigned char>(c), pos_ - 1));
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          return Status::InvalidArgument("dangling escape in string");
        }
        const char escaped = text_[pos_++];
        switch (escaped) {
          case '"':
          case '\\':
          case '/':
            c = escaped;
            break;
          case 'n':
            c = '\n';
            break;
          case 't':
            c = '\t';
            break;
          case 'r':
            c = '\r';
            break;
          case 'b':
            c = '\b';
            break;
          case 'f':
            c = '\f';
            break;
          case 'u': {
            GALVATRON_ASSIGN_OR_RETURN(unsigned code, ParseHex4());
            if (code >= 0xd800 && code <= 0xdfff) {
              return Status::InvalidArgument(
                  "surrogate \\u escapes are not supported");
            }
            AppendUtf8(code, &value.string);
            continue;
          }
          default:
            return Status::InvalidArgument(
                StrFormat("unsupported escape '\\%c'", escaped));
        }
      }
      value.string += c;
    }
    GALVATRON_RETURN_IF_ERROR(Expect('"'));
    return value;
  }

  Result<unsigned> ParseHex4() {
    if (pos_ + 4 > text_.size()) {
      return Status::InvalidArgument("truncated \\u escape");
    }
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_++];
      code <<= 4;
      if (h >= '0' && h <= '9') {
        code |= static_cast<unsigned>(h - '0');
      } else if (h >= 'a' && h <= 'f') {
        code |= static_cast<unsigned>(h - 'a' + 10);
      } else if (h >= 'A' && h <= 'F') {
        code |= static_cast<unsigned>(h - 'A' + 10);
      } else {
        return Status::InvalidArgument(
            StrFormat("bad hex digit '%c' in \\u escape", h));
      }
    }
    return code;
  }

  static void AppendUtf8(unsigned code, std::string* out) {
    if (code < 0x80) {
      *out += static_cast<char>(code);
    } else if (code < 0x800) {
      *out += static_cast<char>(0xc0 | (code >> 6));
      *out += static_cast<char>(0x80 | (code & 0x3f));
    } else {
      *out += static_cast<char>(0xe0 | (code >> 12));
      *out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
      *out += static_cast<char>(0x80 | (code & 0x3f));
    }
  }

  Result<JsonValue> ParseBool() {
    JsonValue value;
    value.kind = JsonValue::Kind::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      value.boolean = true;
      pos_ += 4;
      return value;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      value.boolean = false;
      pos_ += 5;
      return value;
    }
    return Status::InvalidArgument("bad literal");
  }

  Result<JsonValue> ParseNull() {
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return JsonValue{};
    }
    return Status::InvalidArgument("bad literal");
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::InvalidArgument(
          StrFormat("unexpected character at offset %zu", start));
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (token[0] == '+') {
      return Status::InvalidArgument(
          StrFormat("number may not start with '+' at offset %zu", start));
    }
    // JSON forbids leading zeros ("08"); strtod would accept them.
    const size_t first_digit = token[0] == '-' ? 1 : 0;
    if (token.size() > first_digit + 1 && token[first_digit] == '0' &&
        std::isdigit(static_cast<unsigned char>(token[first_digit + 1])) !=
            0) {
      return Status::InvalidArgument(
          StrFormat("number with leading zero at offset %zu", start));
    }
    // strtod with end-pointer validation: atof silently parses malformed
    // numbers ("1e", "1.2.3", "--5") as 0 or a prefix.
    errno = 0;
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      return Status::InvalidArgument(
          StrFormat("malformed number '%s' at offset %zu", token.c_str(),
                    start));
    }
    if (errno == ERANGE && !std::isfinite(parsed)) {
      return Status::InvalidArgument(
          StrFormat("number '%s' out of range", token.c_str()));
    }
    JsonValue value;
    value.kind = JsonValue::Kind::kNumber;
    value.number = parsed;
    return value;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

Result<const JsonValue*> GetMember(const JsonValue& object,
                                   const std::string& key,
                                   JsonValue::Kind kind) {
  auto it = object.object.find(key);
  if (it == object.object.end()) {
    return Status::InvalidArgument(StrFormat("missing field '%s'",
                                             key.c_str()));
  }
  if (it->second.kind != kind) {
    return Status::InvalidArgument(StrFormat("field '%s' has wrong type",
                                             key.c_str()));
  }
  return &it->second;
}

/// Reads an integral field. The plan schema has no fractional quantities,
/// so non-integral values, values outside int range (the old unchecked
/// static_cast was UB), and values below `min_value` are all rejected.
Result<int> GetInt(const JsonValue& object, const std::string& key,
                   int min_value) {
  GALVATRON_ASSIGN_OR_RETURN(
      const JsonValue* value,
      GetMember(object, key, JsonValue::Kind::kNumber));
  const double d = value->number;
  if (!std::isfinite(d) || d != std::trunc(d)) {
    return Status::InvalidArgument(
        StrFormat("field '%s' must be an integer", key.c_str()));
  }
  if (d < static_cast<double>(std::numeric_limits<int>::min()) ||
      d > static_cast<double>(std::numeric_limits<int>::max())) {
    return Status::InvalidArgument(
        StrFormat("field '%s' is outside int range", key.c_str()));
  }
  const int v = static_cast<int>(d);
  if (v < min_value) {
    return Status::InvalidArgument(StrFormat(
        "field '%s' must be >= %d, got %d", key.c_str(), min_value, v));
  }
  return v;
}

Result<std::string> GetString(const JsonValue& object,
                              const std::string& key) {
  GALVATRON_ASSIGN_OR_RETURN(
      const JsonValue* value,
      GetMember(object, key, JsonValue::Kind::kString));
  return value->string;
}

}  // namespace

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        // Remaining control characters (< 0x20) are invalid raw inside JSON
        // strings; a model name containing one used to produce output the
        // parser could not re-read.
        if (static_cast<unsigned char>(ch) < 0x20) {
          out += StrFormat("\\u%04x", static_cast<unsigned char>(ch));
        } else {
          out += ch;
        }
    }
  }
  return out;
}

std::string PlanToJson(const TrainingPlan& plan) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"model\": \"" << EscapeJson(plan.model_name) << "\",\n";
  os << "  \"global_batch\": " << plan.global_batch << ",\n";
  os << "  \"micro_batches\": " << plan.num_micro_batches << ",\n";
  os << "  \"schedule\": \"" << PipelineScheduleToString(plan.schedule)
     << "\",\n";
  os << "  \"stages\": [";
  for (size_t s = 0; s < plan.stages.size(); ++s) {
    const StagePlan& stage = plan.stages[s];
    if (s > 0) os << ",";
    os << "\n    {\n";
    os << "      \"first_device\": " << stage.first_device << ",\n";
    os << "      \"num_devices\": " << stage.num_devices << ",\n";
    os << "      \"first_layer\": " << stage.first_layer << ",\n";
    os << "      \"num_layers\": " << stage.num_layers << ",\n";
    os << "      \"layers\": [";
    for (int i = 0; i < stage.num_layers; ++i) {
      if (i > 0) os << ",";
      os << "\n        {\"strategy\": \""
         << stage.layer_strategies[static_cast<size_t>(i)].ToString()
         << "\", \"recompute\": "
         << (stage.RecomputeAt(i) ? "true" : "false") << "}";
    }
    os << "\n      ]\n    }";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

Result<TrainingPlan> ParsePlanJson(const std::string& json) {
  JsonParser parser(json);
  GALVATRON_ASSIGN_OR_RETURN(JsonValue root, parser.Parse());
  if (root.kind != JsonValue::Kind::kObject) {
    return Status::InvalidArgument("plan JSON must be an object");
  }

  TrainingPlan plan;
  GALVATRON_ASSIGN_OR_RETURN(plan.model_name, GetString(root, "model"));
  GALVATRON_ASSIGN_OR_RETURN(plan.global_batch,
                             GetInt(root, "global_batch", /*min_value=*/1));
  GALVATRON_ASSIGN_OR_RETURN(plan.num_micro_batches,
                             GetInt(root, "micro_batches", /*min_value=*/1));
  GALVATRON_ASSIGN_OR_RETURN(std::string schedule,
                             GetString(root, "schedule"));
  if (schedule == "gpipe") {
    plan.schedule = PipelineSchedule::kGPipe;
  } else if (schedule == "1f1b") {
    plan.schedule = PipelineSchedule::k1F1B;
  } else {
    return Status::InvalidArgument(
        StrFormat("unknown schedule '%s'", schedule.c_str()));
  }

  GALVATRON_ASSIGN_OR_RETURN(
      const JsonValue* stages,
      GetMember(root, "stages", JsonValue::Kind::kArray));
  for (const JsonValue& stage_json : stages->array) {
    if (stage_json.kind != JsonValue::Kind::kObject) {
      return Status::InvalidArgument("stage must be an object");
    }
    StagePlan stage;
    GALVATRON_ASSIGN_OR_RETURN(
        stage.first_device, GetInt(stage_json, "first_device", /*min_value=*/0));
    GALVATRON_ASSIGN_OR_RETURN(
        stage.num_devices, GetInt(stage_json, "num_devices", /*min_value=*/1));
    GALVATRON_ASSIGN_OR_RETURN(
        stage.first_layer, GetInt(stage_json, "first_layer", /*min_value=*/0));
    GALVATRON_ASSIGN_OR_RETURN(
        stage.num_layers, GetInt(stage_json, "num_layers", /*min_value=*/1));
    GALVATRON_ASSIGN_OR_RETURN(
        const JsonValue* layers,
        GetMember(stage_json, "layers", JsonValue::Kind::kArray));
    bool any_recompute = false;
    std::vector<uint8_t> recompute;
    for (const JsonValue& layer_json : layers->array) {
      if (layer_json.kind != JsonValue::Kind::kObject) {
        return Status::InvalidArgument("layer entry must be an object");
      }
      GALVATRON_ASSIGN_OR_RETURN(std::string strategy_text,
                                 GetString(layer_json, "strategy"));
      GALVATRON_ASSIGN_OR_RETURN(HybridStrategy strategy,
                                 HybridStrategy::Parse(strategy_text));
      stage.layer_strategies.push_back(std::move(strategy));
      GALVATRON_ASSIGN_OR_RETURN(
          const JsonValue* flag,
          GetMember(layer_json, "recompute", JsonValue::Kind::kBool));
      recompute.push_back(flag->boolean ? 1 : 0);
      any_recompute |= flag->boolean;
    }
    if (static_cast<int>(stage.layer_strategies.size()) !=
        stage.num_layers) {
      return Status::InvalidArgument(
          "layers array length disagrees with num_layers");
    }
    if (any_recompute) stage.recompute = std::move(recompute);
    plan.stages.push_back(std::move(stage));
  }
  return plan;
}

}  // namespace galvatron
