#include "api/plan_io.h"

#include <cmath>
#include <memory>
#include <sstream>
#include <utility>
#include <vector>

#include "cluster/link.h"
#include "ir/layer.h"
#include "ir/op.h"
#include "util/string_util.h"

namespace galvatron {

std::string EscapeJson(const std::string& s) { return JsonEscape(s); }

// ---------------------------------------------------------------------
// TrainingPlan
// ---------------------------------------------------------------------

std::string PlanToJson(const TrainingPlan& plan) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"model\": \"" << EscapeJson(plan.model_name) << "\",\n";
  os << "  \"global_batch\": " << plan.global_batch << ",\n";
  os << "  \"micro_batches\": " << plan.num_micro_batches << ",\n";
  os << "  \"schedule\": \"" << PipelineScheduleToString(plan.schedule)
     << "\",\n";
  os << "  \"stages\": [";
  for (size_t s = 0; s < plan.stages.size(); ++s) {
    const StagePlan& stage = plan.stages[s];
    if (s > 0) os << ",";
    os << "\n    {\n";
    os << "      \"first_device\": " << stage.first_device << ",\n";
    os << "      \"num_devices\": " << stage.num_devices << ",\n";
    os << "      \"first_layer\": " << stage.first_layer << ",\n";
    os << "      \"num_layers\": " << stage.num_layers << ",\n";
    os << "      \"layers\": [";
    for (int i = 0; i < stage.num_layers; ++i) {
      if (i > 0) os << ",";
      os << "\n        {\"strategy\": \""
         << stage.layer_strategies[static_cast<size_t>(i)].ToString()
         << "\", \"recompute\": "
         << (stage.RecomputeAt(i) ? "true" : "false") << "}";
    }
    os << "\n      ]\n    }";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

Result<TrainingPlan> PlanFromJsonValue(const JsonValue& root) {
  if (root.kind != JsonValue::Kind::kObject) {
    return Status::InvalidArgument("plan JSON must be an object");
  }

  TrainingPlan plan;
  GALVATRON_ASSIGN_OR_RETURN(plan.model_name, GetString(root, "model"));
  GALVATRON_ASSIGN_OR_RETURN(plan.global_batch,
                             GetInt(root, "global_batch", /*min_value=*/1));
  GALVATRON_ASSIGN_OR_RETURN(plan.num_micro_batches,
                             GetInt(root, "micro_batches", /*min_value=*/1));
  GALVATRON_ASSIGN_OR_RETURN(std::string schedule,
                             GetString(root, "schedule"));
  if (schedule == "gpipe") {
    plan.schedule = PipelineSchedule::kGPipe;
  } else if (schedule == "1f1b") {
    plan.schedule = PipelineSchedule::k1F1B;
  } else {
    return Status::InvalidArgument(
        StrFormat("unknown schedule '%s'", schedule.c_str()));
  }

  GALVATRON_ASSIGN_OR_RETURN(
      const JsonValue* stages,
      GetMember(root, "stages", JsonValue::Kind::kArray));
  for (const JsonValue& stage_json : stages->array) {
    if (stage_json.kind != JsonValue::Kind::kObject) {
      return Status::InvalidArgument("stage must be an object");
    }
    StagePlan stage;
    GALVATRON_ASSIGN_OR_RETURN(
        stage.first_device, GetInt(stage_json, "first_device", /*min_value=*/0));
    GALVATRON_ASSIGN_OR_RETURN(
        stage.num_devices, GetInt(stage_json, "num_devices", /*min_value=*/1));
    GALVATRON_ASSIGN_OR_RETURN(
        stage.first_layer, GetInt(stage_json, "first_layer", /*min_value=*/0));
    GALVATRON_ASSIGN_OR_RETURN(
        stage.num_layers, GetInt(stage_json, "num_layers", /*min_value=*/1));
    GALVATRON_ASSIGN_OR_RETURN(
        const JsonValue* layers,
        GetMember(stage_json, "layers", JsonValue::Kind::kArray));
    bool any_recompute = false;
    std::vector<uint8_t> recompute;
    for (const JsonValue& layer_json : layers->array) {
      if (layer_json.kind != JsonValue::Kind::kObject) {
        return Status::InvalidArgument("layer entry must be an object");
      }
      GALVATRON_ASSIGN_OR_RETURN(std::string strategy_text,
                                 GetString(layer_json, "strategy"));
      GALVATRON_ASSIGN_OR_RETURN(HybridStrategy strategy,
                                 HybridStrategy::Parse(strategy_text));
      stage.layer_strategies.push_back(std::move(strategy));
      GALVATRON_ASSIGN_OR_RETURN(bool flag, GetBool(layer_json, "recompute"));
      recompute.push_back(flag ? 1 : 0);
      any_recompute |= flag;
    }
    if (static_cast<int>(stage.layer_strategies.size()) !=
        stage.num_layers) {
      return Status::InvalidArgument(
          "layers array length disagrees with num_layers");
    }
    if (any_recompute) stage.recompute = std::move(recompute);
    plan.stages.push_back(std::move(stage));
  }
  return plan;
}

Result<TrainingPlan> ParsePlanJson(const std::string& json) {
  GALVATRON_ASSIGN_OR_RETURN(JsonValue root, ParseJson(json));
  return PlanFromJsonValue(root);
}

// ---------------------------------------------------------------------
// ModelSpec
// ---------------------------------------------------------------------

std::string ModelSpecToJson(const ModelSpec& model) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"name\": \"" << JsonEscape(model.name()) << "\",\n";
  os << "  \"layers\": [";
  for (size_t l = 0; l < model.layers().size(); ++l) {
    const LayerSpec& layer = model.layers()[l];
    if (l > 0) os << ",";
    os << "\n    {\n";
    os << "      \"name\": \"" << JsonEscape(layer.name()) << "\",\n";
    os << "      \"kind\": \"" << LayerKindToString(layer.kind()) << "\",\n";
    os << "      \"input_bytes\": " << layer.input_bytes() << ",\n";
    os << "      \"output_bytes\": " << layer.output_bytes() << ",\n";
    os << "      \"ops\": [";
    for (size_t o = 0; o < layer.ops().size(); ++o) {
      const OpSpec& op = layer.ops()[o];
      if (o > 0) os << ",";
      os << "\n        {\"name\": \"" << JsonEscape(op.name)
         << "\", \"kind\": \"" << OpKindToString(op.kind)
         << "\", \"tp_pattern\": \"" << TpPatternToString(op.tp_pattern)
         << "\", \"param_count\": " << op.param_count
         << ", \"fwd_flops\": " << JsonNumber(op.fwd_flops)
         << ", \"saved_activation_bytes\": " << op.saved_activation_bytes
         << ", \"output_bytes\": " << op.output_bytes
         << ", \"input_bytes\": " << op.input_bytes
         << ", \"tp_shards_saved_activation\": "
         << (op.tp_shards_saved_activation ? "true" : "false") << "}";
    }
    os << "\n      ]\n    }";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

Result<ModelSpec> ModelSpecFromJsonValue(const JsonValue& root) {
  if (root.kind != JsonValue::Kind::kObject) {
    return Status::InvalidArgument("model JSON must be an object");
  }
  GALVATRON_ASSIGN_OR_RETURN(std::string name, GetString(root, "name"));
  GALVATRON_ASSIGN_OR_RETURN(
      const JsonValue* layers,
      GetMember(root, "layers", JsonValue::Kind::kArray));
  if (layers->array.empty()) {
    return Status::InvalidArgument("model must have at least one layer");
  }
  std::vector<LayerSpec> specs;
  specs.reserve(layers->array.size());
  for (const JsonValue& layer_json : layers->array) {
    if (layer_json.kind != JsonValue::Kind::kObject) {
      return Status::InvalidArgument("layer must be an object");
    }
    GALVATRON_ASSIGN_OR_RETURN(std::string layer_name,
                               GetString(layer_json, "name"));
    GALVATRON_ASSIGN_OR_RETURN(std::string kind_name,
                               GetString(layer_json, "kind"));
    GALVATRON_ASSIGN_OR_RETURN(LayerKind kind,
                               LayerKindFromString(kind_name));
    GALVATRON_ASSIGN_OR_RETURN(
        int64_t input_bytes,
        GetInt64(layer_json, "input_bytes", /*min_value=*/0));
    GALVATRON_ASSIGN_OR_RETURN(
        int64_t output_bytes,
        GetInt64(layer_json, "output_bytes", /*min_value=*/0));
    GALVATRON_ASSIGN_OR_RETURN(
        const JsonValue* ops,
        GetMember(layer_json, "ops", JsonValue::Kind::kArray));
    std::vector<OpSpec> op_specs;
    op_specs.reserve(ops->array.size());
    for (const JsonValue& op_json : ops->array) {
      if (op_json.kind != JsonValue::Kind::kObject) {
        return Status::InvalidArgument("op must be an object");
      }
      OpSpec op;
      GALVATRON_ASSIGN_OR_RETURN(op.name, GetString(op_json, "name"));
      GALVATRON_ASSIGN_OR_RETURN(std::string op_kind,
                                 GetString(op_json, "kind"));
      GALVATRON_ASSIGN_OR_RETURN(op.kind, OpKindFromString(op_kind));
      GALVATRON_ASSIGN_OR_RETURN(std::string tp_pattern,
                                 GetString(op_json, "tp_pattern"));
      GALVATRON_ASSIGN_OR_RETURN(op.tp_pattern,
                                 TpPatternFromString(tp_pattern));
      GALVATRON_ASSIGN_OR_RETURN(
          op.param_count, GetInt64(op_json, "param_count", /*min_value=*/0));
      GALVATRON_ASSIGN_OR_RETURN(op.fwd_flops,
                                 GetDouble(op_json, "fwd_flops"));
      if (op.fwd_flops < 0) {
        return Status::InvalidArgument("op fwd_flops must be >= 0");
      }
      GALVATRON_ASSIGN_OR_RETURN(
          op.saved_activation_bytes,
          GetInt64(op_json, "saved_activation_bytes", /*min_value=*/0));
      GALVATRON_ASSIGN_OR_RETURN(
          op.output_bytes, GetInt64(op_json, "output_bytes", /*min_value=*/0));
      GALVATRON_ASSIGN_OR_RETURN(
          op.input_bytes, GetInt64(op_json, "input_bytes", /*min_value=*/0));
      GALVATRON_ASSIGN_OR_RETURN(
          op.tp_shards_saved_activation,
          GetBool(op_json, "tp_shards_saved_activation"));
      op_specs.push_back(std::move(op));
    }
    specs.emplace_back(std::move(layer_name), kind, std::move(op_specs),
                       input_bytes, output_bytes);
  }
  return ModelSpec(std::move(name), std::move(specs));
}

Result<ModelSpec> ParseModelSpecJson(const std::string& json) {
  GALVATRON_ASSIGN_OR_RETURN(JsonValue root, ParseJson(json));
  return ModelSpecFromJsonValue(root);
}

// ---------------------------------------------------------------------
// ClusterSpec
// ---------------------------------------------------------------------

namespace {

void AppendLinkJson(std::ostringstream& os, const LinkSpec& link) {
  os << "{\"class\": \"" << LinkClassToString(link.cls)
     << "\", \"bandwidth_bytes_per_sec\": "
     << JsonNumber(link.bandwidth_bytes_per_sec)
     << ", \"latency_sec\": " << JsonNumber(link.latency_sec) << "}";
}

Result<LinkSpec> LinkSpecFromJsonValue(const JsonValue& link_json,
                                       const char* what) {
  if (link_json.kind != JsonValue::Kind::kObject) {
    return Status::InvalidArgument(StrFormat("%s must be an object", what));
  }
  LinkSpec link;
  GALVATRON_ASSIGN_OR_RETURN(std::string cls_name,
                             GetString(link_json, "class"));
  GALVATRON_ASSIGN_OR_RETURN(link.cls, LinkClassFromString(cls_name));
  GALVATRON_ASSIGN_OR_RETURN(link.bandwidth_bytes_per_sec,
                             GetDouble(link_json, "bandwidth_bytes_per_sec"));
  GALVATRON_ASSIGN_OR_RETURN(link.latency_sec,
                             GetDouble(link_json, "latency_sec"));
  return link;
}

}  // namespace

std::string TopologyGraphToJson(const TopologyGraph& graph) {
  std::ostringstream os;
  os << "{\n    \"nodes\": [";
  for (size_t i = 0; i < graph.nodes().size(); ++i) {
    const TopologyNode& node = graph.nodes()[i];
    if (i > 0) os << ",";
    os << "\n      {\"name\": \"" << JsonEscape(node.name)
       << "\", \"first_device\": " << node.first_device
       << ", \"num_devices\": " << node.num_devices
       << ", \"parent\": " << node.parent << ",\n       \"internal\": ";
    AppendLinkJson(os, node.internal);
    os << ",\n       \"uplink\": ";
    AppendLinkJson(os, node.uplink);
    os << "}";
  }
  os << "\n    ],\n    \"islands\": [";
  for (size_t i = 0; i < graph.islands().size(); ++i) {
    const DeviceIsland& island = graph.islands()[i];
    if (i > 0) os << ",";
    os << "\n      {\"name\": \"" << JsonEscape(island.name)
       << "\", \"first_device\": " << island.first_device
       << ", \"num_devices\": " << island.num_devices
       << ",\n       \"sustained_flops\": "
       << JsonNumber(island.sustained_flops)
       << ", \"memory_bytes\": " << island.memory_bytes
       << ", \"small_batch_half_life\": "
       << JsonNumber(island.small_batch_half_life) << "}";
  }
  os << "\n    ]\n  }";
  return os.str();
}

Result<TopologyGraph> TopologyGraphFromJsonValue(const JsonValue& root,
                                                 int num_devices) {
  if (root.kind != JsonValue::Kind::kObject) {
    return Status::InvalidArgument("topology must be an object");
  }
  GALVATRON_ASSIGN_OR_RETURN(
      const JsonValue* nodes_json,
      GetMember(root, "nodes", JsonValue::Kind::kArray));
  std::vector<TopologyNode> nodes;
  for (const JsonValue& node_json : nodes_json->array) {
    if (node_json.kind != JsonValue::Kind::kObject) {
      return Status::InvalidArgument("topology node must be an object");
    }
    TopologyNode node;
    GALVATRON_ASSIGN_OR_RETURN(node.name, GetString(node_json, "name"));
    GALVATRON_ASSIGN_OR_RETURN(
        node.first_device, GetInt(node_json, "first_device", /*min_value=*/0));
    GALVATRON_ASSIGN_OR_RETURN(
        node.num_devices, GetInt(node_json, "num_devices", /*min_value=*/1));
    GALVATRON_ASSIGN_OR_RETURN(node.parent,
                               GetInt(node_json, "parent", /*min_value=*/-1));
    GALVATRON_ASSIGN_OR_RETURN(
        const JsonValue* internal_json,
        GetMember(node_json, "internal", JsonValue::Kind::kObject));
    GALVATRON_ASSIGN_OR_RETURN(
        node.internal, LinkSpecFromJsonValue(*internal_json, "node internal"));
    // The root's uplink is unused, so hand-written files may omit it.
    if (const JsonValue* uplink_json = FindMember(node_json, "uplink")) {
      GALVATRON_ASSIGN_OR_RETURN(
          node.uplink, LinkSpecFromJsonValue(*uplink_json, "node uplink"));
    }
    nodes.push_back(std::move(node));
  }
  GALVATRON_ASSIGN_OR_RETURN(
      const JsonValue* islands_json,
      GetMember(root, "islands", JsonValue::Kind::kArray));
  std::vector<DeviceIsland> islands;
  int island_devices = 0;
  for (const JsonValue& island_json : islands_json->array) {
    if (island_json.kind != JsonValue::Kind::kObject) {
      return Status::InvalidArgument("device island must be an object");
    }
    DeviceIsland island;
    GALVATRON_ASSIGN_OR_RETURN(island.name, GetString(island_json, "name"));
    GALVATRON_ASSIGN_OR_RETURN(
        island.first_device,
        GetInt(island_json, "first_device", /*min_value=*/0));
    GALVATRON_ASSIGN_OR_RETURN(
        island.num_devices,
        GetInt(island_json, "num_devices", /*min_value=*/1));
    GALVATRON_ASSIGN_OR_RETURN(island.sustained_flops,
                               GetDouble(island_json, "sustained_flops"));
    GALVATRON_ASSIGN_OR_RETURN(
        island.memory_bytes,
        GetInt64(island_json, "memory_bytes", /*min_value=*/1));
    if (const JsonValue* half_life =
            FindMember(island_json, "small_batch_half_life")) {
      GALVATRON_ASSIGN_OR_RETURN(
          island.small_batch_half_life,
          GetDouble(island_json, "small_batch_half_life"));
      (void)half_life;
    }
    island_devices += island.num_devices;
    islands.push_back(std::move(island));
  }
  // Structural validation (coverage, cycles, bandwidths) happens in Create.
  const int n = num_devices > 0 ? num_devices : island_devices;
  return TopologyGraph::Create(n, std::move(nodes), std::move(islands));
}

std::string ClusterSpecToJson(const ClusterSpec& cluster) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"name\": \"" << JsonEscape(cluster.name()) << "\",\n";
  os << "  \"sustained_flops\": "
     << JsonNumber(cluster.device(0).sustained_flops) << ",\n";
  os << "  \"device_memory_bytes\": [";
  for (int d = 0; d < cluster.num_devices(); ++d) {
    if (d > 0) os << ", ";
    os << cluster.device(d).memory_bytes;
  }
  os << "],\n";
  // Mixed-generation fields are additive: homogeneous clusters serialize
  // exactly as before, so pre-topology documents stay byte-identical.
  bool mixed_flops = false;
  bool any_half_life = false;
  for (int d = 0; d < cluster.num_devices(); ++d) {
    mixed_flops |= cluster.device(d).sustained_flops !=
                   cluster.device(0).sustained_flops;
    any_half_life |= cluster.device(d).small_batch_half_life != 0;
  }
  if (mixed_flops) {
    os << "  \"device_sustained_flops\": [";
    for (int d = 0; d < cluster.num_devices(); ++d) {
      if (d > 0) os << ", ";
      os << JsonNumber(cluster.device(d).sustained_flops);
    }
    os << "],\n";
  }
  if (any_half_life) {
    os << "  \"device_small_batch_half_life\": [";
    for (int d = 0; d < cluster.num_devices(); ++d) {
      if (d > 0) os << ", ";
      os << JsonNumber(cluster.device(d).small_batch_half_life);
    }
    os << "],\n";
  }
  os << "  \"levels\": [";
  for (size_t i = 0; i < cluster.levels().size(); ++i) {
    const TopologyLevel& level = cluster.levels()[i];
    if (i > 0) os << ",";
    os << "\n    {\"span\": " << level.span << ", \"link\": {\"class\": \""
       << LinkClassToString(level.link.cls)
       << "\", \"bandwidth_bytes_per_sec\": "
       << JsonNumber(level.link.bandwidth_bytes_per_sec)
       << ", \"latency_sec\": " << JsonNumber(level.link.latency_sec)
       << "}}";
  }
  os << "\n  ],\n";
  if (cluster.topology() != nullptr) {
    os << "  \"topology\": " << TopologyGraphToJson(*cluster.topology())
       << ",\n";
  }
  os << "  \"kernel_launch_overhead_sec\": "
     << JsonNumber(cluster.kernel_launch_overhead_sec()) << ",\n";
  os << "  \"small_batch_half_life\": "
     << JsonNumber(cluster.small_batch_half_life()) << ",\n";
  os << "  \"pipeline_rpc_overhead_sec\": "
     << JsonNumber(cluster.pipeline_rpc_overhead_sec()) << "\n";
  os << "}\n";
  return os.str();
}

Result<ClusterSpec> ClusterSpecFromJsonValue(const JsonValue& root) {
  if (root.kind != JsonValue::Kind::kObject) {
    return Status::InvalidArgument("cluster JSON must be an object");
  }
  GALVATRON_ASSIGN_OR_RETURN(std::string name, GetString(root, "name"));
  GALVATRON_ASSIGN_OR_RETURN(double sustained_flops,
                             GetDouble(root, "sustained_flops"));
  if (sustained_flops <= 0) {
    return Status::InvalidArgument("sustained_flops must be positive");
  }
  GALVATRON_ASSIGN_OR_RETURN(
      const JsonValue* memory,
      GetMember(root, "device_memory_bytes", JsonValue::Kind::kArray));
  if (memory->array.empty()) {
    return Status::InvalidArgument("cluster must have at least one device");
  }
  std::vector<int64_t> memory_bytes;
  memory_bytes.reserve(memory->array.size());
  for (const JsonValue& entry : memory->array) {
    GALVATRON_ASSIGN_OR_RETURN(
        int64_t bytes,
        JsonToInt64(entry, "device_memory_bytes entry", /*min_value=*/1));
    memory_bytes.push_back(bytes);
  }

  GALVATRON_ASSIGN_OR_RETURN(
      const JsonValue* levels_json,
      GetMember(root, "levels", JsonValue::Kind::kArray));
  std::vector<TopologyLevel> levels;
  for (const JsonValue& level_json : levels_json->array) {
    if (level_json.kind != JsonValue::Kind::kObject) {
      return Status::InvalidArgument("topology level must be an object");
    }
    TopologyLevel level;
    GALVATRON_ASSIGN_OR_RETURN(level.span,
                               GetInt(level_json, "span", /*min_value=*/1));
    GALVATRON_ASSIGN_OR_RETURN(
        const JsonValue* link_json,
        GetMember(level_json, "link", JsonValue::Kind::kObject));
    GALVATRON_ASSIGN_OR_RETURN(std::string cls_name,
                               GetString(*link_json, "class"));
    GALVATRON_ASSIGN_OR_RETURN(level.link.cls,
                               LinkClassFromString(cls_name));
    GALVATRON_ASSIGN_OR_RETURN(
        level.link.bandwidth_bytes_per_sec,
        GetDouble(*link_json, "bandwidth_bytes_per_sec"));
    GALVATRON_ASSIGN_OR_RETURN(level.link.latency_sec,
                               GetDouble(*link_json, "latency_sec"));
    if (level.link.latency_sec < 0) {
      return Status::InvalidArgument("link latency_sec must be >= 0");
    }
    levels.push_back(level);
  }

  GALVATRON_ASSIGN_OR_RETURN(
      ClusterSpec cluster,
      ClusterSpec::Create(std::move(name),
                          static_cast<int>(memory_bytes.size()),
                          memory_bytes[0], sustained_flops,
                          std::move(levels)));

  // Re-apply heterogeneous budgets as maximal runs of equal budget (each
  // WithDeviceMemoryRange copies the cluster, so batching runs keeps the
  // rebuild linear-ish for the cluster sizes here).
  for (size_t first = 0; first < memory_bytes.size();) {
    size_t past = first + 1;
    while (past < memory_bytes.size() &&
           memory_bytes[past] == memory_bytes[first]) {
      ++past;
    }
    if (memory_bytes[first] != memory_bytes[0]) {
      cluster = cluster.WithDeviceMemoryRange(
          static_cast<int>(first), static_cast<int>(past - first),
          memory_bytes[first]);
    }
    first = past;
  }

  // Optional mixed-generation fields: per-device throughput and half-life
  // arrays (absent on homogeneous documents). Applied as maximal runs of
  // equal (flops, half_life), like the memory budgets above.
  const size_t n = memory_bytes.size();
  std::vector<double> device_flops(n, sustained_flops);
  std::vector<double> device_half_life(n, 0.0);
  bool any_compute_override = false;
  if (const JsonValue* flops_json =
          FindMember(root, "device_sustained_flops")) {
    if (flops_json->kind != JsonValue::Kind::kArray ||
        flops_json->array.size() != n) {
      return Status::InvalidArgument(
          "device_sustained_flops must be an array with one entry per "
          "device");
    }
    for (size_t d = 0; d < n; ++d) {
      if (flops_json->array[d].kind != JsonValue::Kind::kNumber ||
          !(flops_json->array[d].number > 0)) {
        return Status::InvalidArgument(
            "device_sustained_flops entries must be positive numbers");
      }
      device_flops[d] = flops_json->array[d].number;
    }
    any_compute_override = true;
  }
  if (const JsonValue* half_json =
          FindMember(root, "device_small_batch_half_life")) {
    if (half_json->kind != JsonValue::Kind::kArray ||
        half_json->array.size() != n) {
      return Status::InvalidArgument(
          "device_small_batch_half_life must be an array with one entry "
          "per device");
    }
    for (size_t d = 0; d < n; ++d) {
      if (half_json->array[d].kind != JsonValue::Kind::kNumber ||
          half_json->array[d].number < 0) {
        return Status::InvalidArgument(
            "device_small_batch_half_life entries must be non-negative "
            "numbers");
      }
      device_half_life[d] = half_json->array[d].number;
    }
    any_compute_override = true;
  }
  if (any_compute_override) {
    for (size_t run = 0; run < n;) {
      size_t past = run + 1;
      while (past < n && device_flops[past] == device_flops[run] &&
             device_half_life[past] == device_half_life[run]) {
        ++past;
      }
      if (device_flops[run] != sustained_flops ||
          device_half_life[run] != 0) {
        cluster = cluster.WithDeviceComputeRange(
            static_cast<int>(run), static_cast<int>(past - run),
            device_flops[run], device_half_life[run]);
      }
      run = past;
    }
  }

  // Optional interconnect graph: link pricing switches to the graph's
  // crossed edges (ClusterSpec::WithTopology validates the device count).
  if (const JsonValue* topology_json = FindMember(root, "topology")) {
    GALVATRON_ASSIGN_OR_RETURN(
        TopologyGraph graph,
        TopologyGraphFromJsonValue(*topology_json,
                                   static_cast<int>(n)));
    GALVATRON_ASSIGN_OR_RETURN(
        cluster, cluster.WithTopology(std::make_shared<const TopologyGraph>(
                     std::move(graph))));
  }

  GALVATRON_ASSIGN_OR_RETURN(
      double launch_overhead,
      GetDouble(root, "kernel_launch_overhead_sec"));
  GALVATRON_ASSIGN_OR_RETURN(double half_life,
                             GetDouble(root, "small_batch_half_life"));
  GALVATRON_ASSIGN_OR_RETURN(double rpc_overhead,
                             GetDouble(root, "pipeline_rpc_overhead_sec"));
  if (launch_overhead < 0 || half_life < 0 || rpc_overhead < 0) {
    return Status::InvalidArgument("cluster overheads must be >= 0");
  }
  cluster.set_kernel_launch_overhead_sec(launch_overhead);
  cluster.set_small_batch_half_life(half_life);
  cluster.set_pipeline_rpc_overhead_sec(rpc_overhead);
  return cluster;
}

Result<ClusterSpec> ParseClusterSpecJson(const std::string& json) {
  GALVATRON_ASSIGN_OR_RETURN(JsonValue root, ParseJson(json));
  return ClusterSpecFromJsonValue(root);
}

Result<ClusterSpec> ParseTopologyClusterJson(const std::string& json) {
  GALVATRON_ASSIGN_OR_RETURN(JsonValue root, ParseJson(json));
  if (root.kind != JsonValue::Kind::kObject) {
    return Status::InvalidArgument("topology file must be a JSON object");
  }
  GALVATRON_ASSIGN_OR_RETURN(std::string name, GetString(root, "name"));
  GALVATRON_ASSIGN_OR_RETURN(
      const JsonValue* topology_json,
      GetMember(root, "topology", JsonValue::Kind::kObject));
  GALVATRON_ASSIGN_OR_RETURN(
      TopologyGraph graph,
      TopologyGraphFromJsonValue(*topology_json, /*num_devices=*/-1));
  GALVATRON_ASSIGN_OR_RETURN(
      ClusterSpec cluster,
      ClusterSpec::CreateFromTopology(
          std::move(name),
          std::make_shared<const TopologyGraph>(std::move(graph))));
  // The calibration overheads are optional in topology files; absent
  // fields keep the ClusterSpec defaults.
  if (FindMember(root, "kernel_launch_overhead_sec") != nullptr) {
    GALVATRON_ASSIGN_OR_RETURN(
        double launch, GetDouble(root, "kernel_launch_overhead_sec"));
    if (launch < 0) {
      return Status::InvalidArgument(
          "kernel_launch_overhead_sec must be >= 0");
    }
    cluster.set_kernel_launch_overhead_sec(launch);
  }
  if (FindMember(root, "small_batch_half_life") != nullptr) {
    GALVATRON_ASSIGN_OR_RETURN(double half_life,
                               GetDouble(root, "small_batch_half_life"));
    if (half_life < 0) {
      return Status::InvalidArgument("small_batch_half_life must be >= 0");
    }
    cluster.set_small_batch_half_life(half_life);
  }
  if (FindMember(root, "pipeline_rpc_overhead_sec") != nullptr) {
    GALVATRON_ASSIGN_OR_RETURN(
        double rpc, GetDouble(root, "pipeline_rpc_overhead_sec"));
    if (rpc < 0) {
      return Status::InvalidArgument(
          "pipeline_rpc_overhead_sec must be >= 0");
    }
    cluster.set_pipeline_rpc_overhead_sec(rpc);
  }
  return cluster;
}

}  // namespace galvatron
