#include "topology/topology.h"

#include <algorithm>
#include <limits>
#include <sstream>

#include "util/logging.h"
#include "util/string_util.h"

namespace galvatron {

namespace {

// Local name map: galvatron_topology sits below galvatron_cluster, so it
// cannot use link.cc's LinkClassToString.
const char* ClassName(LinkClass cls) {
  switch (cls) {
    case LinkClass::kNvLink: return "NVLink";
    case LinkClass::kPcie3: return "PCIe3";
    case LinkClass::kInfiniBand100: return "IB-100Gb";
    case LinkClass::kEthernet10: return "Eth-10Gb";
  }
  return "?";
}

bool Intersects(int f, int l, int nf, int nl) { return f <= nl && nf <= l; }
bool Contains(int nf, int nl, int f, int l) { return nf <= f && l <= nl; }

/// Running bottleneck over crossed edges: minimum effective bandwidth
/// (first edge wins ties — node order is deterministic), maximum latency.
struct EdgeAgg {
  bool any = false;
  LinkClass cls = LinkClass::kPcie3;
  double bandwidth = 0.0;
  double latency = 0.0;

  void Consider(const LinkSpec& link, int bandwidth_divisor) {
    const double eff = link.bandwidth_bytes_per_sec /
                       static_cast<double>(bandwidth_divisor);
    if (!any || eff < bandwidth) {
      bandwidth = eff;
      cls = link.cls;
    }
    latency = std::max(latency, link.latency_sec);
    any = true;
  }

  LinkSpec Result() const {
    LinkSpec out;
    out.cls = cls;
    out.bandwidth_bytes_per_sec = bandwidth;
    out.latency_sec = latency;
    return out;
  }
};

}  // namespace

Result<TopologyGraph> TopologyGraph::Create(int num_devices,
                                            std::vector<TopologyNode> nodes,
                                            std::vector<DeviceIsland> islands) {
  if (num_devices < 1) {
    return Status::InvalidArgument("topology needs at least one device");
  }
  if (nodes.empty()) {
    return Status::InvalidArgument("topology needs at least one node");
  }
  const int n = static_cast<int>(nodes.size());
  int root = -1;
  for (int i = 0; i < n; ++i) {
    const TopologyNode& node = nodes[static_cast<size_t>(i)];
    if (node.num_devices < 1 || node.first_device < 0 ||
        node.first_device + node.num_devices > num_devices) {
      return Status::InvalidArgument(StrFormat(
          "node '%s' covers devices [%d, %d) outside [0, %d)",
          node.name.c_str(), node.first_device,
          node.first_device + node.num_devices, num_devices));
    }
    if (node.internal.bandwidth_bytes_per_sec <= 0) {
      return Status::InvalidArgument(StrFormat(
          "node '%s' has non-positive internal bandwidth", node.name.c_str()));
    }
    if (node.internal.latency_sec < 0 || node.uplink.latency_sec < 0) {
      return Status::InvalidArgument(
          StrFormat("node '%s' has negative latency", node.name.c_str()));
    }
    if (node.parent < 0) {
      if (root >= 0) {
        return Status::InvalidArgument(StrFormat(
            "multiple roots: '%s' and '%s'",
            nodes[static_cast<size_t>(root)].name.c_str(), node.name.c_str()));
      }
      root = i;
      continue;
    }
    if (node.parent >= n || node.parent == i) {
      return Status::InvalidArgument(
          StrFormat("node '%s' has invalid parent %d", node.name.c_str(),
                    node.parent));
    }
    if (node.uplink.bandwidth_bytes_per_sec <= 0) {
      return Status::InvalidArgument(StrFormat(
          "node '%s' has non-positive uplink bandwidth", node.name.c_str()));
    }
  }
  if (root < 0) {
    return Status::InvalidArgument("topology has no root node");
  }
  const TopologyNode& root_node = nodes[static_cast<size_t>(root)];
  if (root_node.first_device != 0 || root_node.num_devices != num_devices) {
    return Status::InvalidArgument(StrFormat(
        "root '%s' must cover all %d devices", root_node.name.c_str(),
        num_devices));
  }
  // Parent-chain walk: every node must reach the root within n steps, so a
  // parent cycle off to the side of the root is caught even though each
  // pointer individually looks valid.
  for (int i = 0; i < n; ++i) {
    int at = i;
    int steps = 0;
    while (nodes[static_cast<size_t>(at)].parent >= 0) {
      at = nodes[static_cast<size_t>(at)].parent;
      if (++steps > n) {
        return Status::InvalidArgument(StrFormat(
            "parent cycle through node '%s'",
            nodes[static_cast<size_t>(i)].name.c_str()));
      }
    }
    if (at != root) {
      return Status::InvalidArgument(StrFormat(
          "node '%s' is not connected to the root",
          nodes[static_cast<size_t>(i)].name.c_str()));
    }
  }
  std::vector<std::vector<int>> children(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const TopologyNode& node = nodes[static_cast<size_t>(i)];
    if (node.parent < 0) continue;
    const TopologyNode& parent = nodes[static_cast<size_t>(node.parent)];
    if (!Contains(parent.first_device,
                  parent.first_device + parent.num_devices - 1,
                  node.first_device,
                  node.first_device + node.num_devices - 1)) {
      return Status::InvalidArgument(StrFormat(
          "node '%s' extends outside its parent '%s'", node.name.c_str(),
          parent.name.c_str()));
    }
    children[static_cast<size_t>(node.parent)].push_back(i);
  }
  for (int p = 0; p < n; ++p) {
    const std::vector<int>& kids = children[static_cast<size_t>(p)];
    for (size_t a = 0; a < kids.size(); ++a) {
      for (size_t b = a + 1; b < kids.size(); ++b) {
        const TopologyNode& na = nodes[static_cast<size_t>(kids[a])];
        const TopologyNode& nb = nodes[static_cast<size_t>(kids[b])];
        if (Intersects(na.first_device,
                       na.first_device + na.num_devices - 1, nb.first_device,
                       nb.first_device + nb.num_devices - 1)) {
          return Status::InvalidArgument(StrFormat(
              "sibling nodes '%s' and '%s' overlap", na.name.c_str(),
              nb.name.c_str()));
        }
      }
    }
  }

  if (islands.empty()) {
    return Status::InvalidArgument("topology needs at least one island");
  }
  std::vector<DeviceIsland> sorted = islands;
  std::sort(sorted.begin(), sorted.end(),
            [](const DeviceIsland& a, const DeviceIsland& b) {
              return a.first_device < b.first_device;
            });
  int next = 0;
  for (const DeviceIsland& island : sorted) {
    if (island.num_devices < 1) {
      return Status::InvalidArgument(StrFormat(
          "island '%s' must have at least one device", island.name.c_str()));
    }
    if (island.first_device != next) {
      return Status::InvalidArgument(StrFormat(
          "islands must tile [0, %d) exactly: expected device %d next, "
          "island '%s' starts at %d",
          num_devices, next, island.name.c_str(), island.first_device));
    }
    if (island.sustained_flops <= 0) {
      return Status::InvalidArgument(StrFormat(
          "island '%s' needs positive sustained_flops", island.name.c_str()));
    }
    if (island.memory_bytes <= 0) {
      return Status::InvalidArgument(StrFormat(
          "island '%s' needs positive memory_bytes", island.name.c_str()));
    }
    if (island.small_batch_half_life < 0) {
      return Status::InvalidArgument(StrFormat(
          "island '%s' has negative small_batch_half_life",
          island.name.c_str()));
    }
    next = island.first_device + island.num_devices;
  }
  if (next != num_devices) {
    return Status::InvalidArgument(StrFormat(
        "islands cover only [0, %d) of [0, %d)", next, num_devices));
  }

  TopologyGraph graph;
  graph.num_devices_ = num_devices;
  graph.root_ = root;
  graph.nodes_ = std::move(nodes);
  graph.islands_ = std::move(sorted);
  graph.children_ = std::move(children);
  return graph;
}

LinkSpec TopologyGraph::RangeBottleneck(int first_device,
                                        int last_device) const {
  GALVATRON_CHECK_LT(first_device, last_device);
  GALVATRON_CHECK_GE(first_device, 0);
  GALVATRON_CHECK_LT(last_device, num_devices_);
  EdgeAgg agg;
  for (int i = 0; i < static_cast<int>(nodes_.size()); ++i) {
    const TopologyNode& node = nodes_[static_cast<size_t>(i)];
    const int nf = node.first_device;
    const int nl = node.first_device + node.num_devices - 1;
    if (!Intersects(first_device, last_device, nf, nl)) continue;
    // Uplink: the ring leaves this node.
    if (node.parent >= 0 &&
        !Contains(nf, nl, first_device, last_device)) {
      agg.Consider(node.uplink, /*bandwidth_divisor=*/1);
    }
    // Internal fabric: at least two members of the range live here and the
    // traffic between them is not already accounted to a single child.
    const int cf = std::max(first_device, nf);
    const int cl = std::min(last_device, nl);
    if (cl > cf) {
      bool inside_one_child = false;
      for (const int c : children_[static_cast<size_t>(i)]) {
        const TopologyNode& child = nodes_[static_cast<size_t>(c)];
        if (Contains(child.first_device,
                     child.first_device + child.num_devices - 1, cf, cl)) {
          inside_one_child = true;
          break;
        }
      }
      if (!inside_one_child) {
        agg.Consider(node.internal, /*bandwidth_divisor=*/1);
      }
    }
  }
  GALVATRON_CHECK(agg.any) << "no edge crossed pricing ["
                           << first_device << ", " << last_device << "]";
  return agg.Result();
}

LinkSpec TopologyGraph::CollectiveBottleneck(int stage_first_device,
                                             int stride, int degree,
                                             int stage_width) const {
  if (degree < 2) return LinkSpec{};
  GALVATRON_CHECK_GE(stride, 1);
  const int group_span = (degree - 1) * stride;
  const int last = stage_first_device + group_span;
  GALVATRON_CHECK_LT(last, num_devices_);
  // Sibling groups: hybrid strategies tile the stage into
  // stage_width / (stride * degree) x stride translated copies of the
  // primary group; when the shape does not tile (a hand-written plan),
  // contention degrades to 1 and this is plain range pricing.
  const int tile = stride * degree;
  const bool tiles =
      stage_width >= tile && stage_width % tile == 0 &&
      stage_first_device + stage_width <= num_devices_;
  EdgeAgg agg;
  for (int i = 0; i < static_cast<int>(nodes_.size()); ++i) {
    const TopologyNode& node = nodes_[static_cast<size_t>(i)];
    const int nf = node.first_device;
    const int nl = node.first_device + node.num_devices - 1;
    if (!Intersects(stage_first_device, last, nf, nl)) continue;
    if (node.parent >= 0 && !Contains(nf, nl, stage_first_device, last)) {
      int crossing_groups = 1;
      if (tiles) {
        crossing_groups = 0;
        for (int q = 0; q < stage_width / tile; ++q) {
          for (int r = 0; r < stride; ++r) {
            const int base = stage_first_device + q * tile + r;
            const int group_last = base + group_span;
            if (Intersects(base, group_last, nf, nl) &&
                !Contains(nf, nl, base, group_last)) {
              ++crossing_groups;
            }
          }
        }
        if (crossing_groups < 1) crossing_groups = 1;
      }
      agg.Consider(node.uplink, crossing_groups);
    }
    const int cf = std::max(stage_first_device, nf);
    const int cl = std::min(last, nl);
    if (cl > cf) {
      bool inside_one_child = false;
      for (const int c : children_[static_cast<size_t>(i)]) {
        const TopologyNode& child = nodes_[static_cast<size_t>(c)];
        if (Contains(child.first_device,
                     child.first_device + child.num_devices - 1, cf, cl)) {
          inside_one_child = true;
          break;
        }
      }
      if (!inside_one_child) {
        agg.Consider(node.internal, /*bandwidth_divisor=*/1);
      }
    }
  }
  GALVATRON_CHECK(agg.any);
  return agg.Result();
}

int TopologyGraph::CollectiveContention(int stage_first_device, int stride,
                                        int degree, int stage_width) const {
  if (degree < 2) return 1;
  const int group_span = (degree - 1) * stride;
  const int last = stage_first_device + group_span;
  const int tile = stride * degree;
  if (stage_width < tile || stage_width % tile != 0 ||
      stage_first_device + stage_width > num_devices_) {
    return 1;
  }
  int max_crossing = 1;
  for (int i = 0; i < static_cast<int>(nodes_.size()); ++i) {
    const TopologyNode& node = nodes_[static_cast<size_t>(i)];
    if (node.parent < 0) continue;
    const int nf = node.first_device;
    const int nl = node.first_device + node.num_devices - 1;
    if (!Intersects(stage_first_device, last, nf, nl) ||
        Contains(nf, nl, stage_first_device, last)) {
      continue;
    }
    int crossing_groups = 0;
    for (int q = 0; q < stage_width / tile; ++q) {
      for (int r = 0; r < stride; ++r) {
        const int base = stage_first_device + q * tile + r;
        const int group_last = base + group_span;
        if (Intersects(base, group_last, nf, nl) &&
            !Contains(nf, nl, base, group_last)) {
          ++crossing_groups;
        }
      }
    }
    max_crossing = std::max(max_crossing, crossing_groups);
  }
  return max_crossing;
}

std::string TopologyGraph::ToString() const {
  std::ostringstream os;
  os << num_devices_ << " devices;";
  for (const DeviceIsland& island : islands_) {
    os << " [" << island.name << ": " << island.num_devices << "x "
       << StrFormat("%.1f", island.sustained_flops / 1e12) << " TFLOP/s]";
  }
  for (const TopologyNode& node : nodes_) {
    os << " {" << node.name << " [" << node.first_device << ","
       << node.first_device + node.num_devices << ") "
       << ClassName(node.internal.cls) << " "
       << StrFormat("%.1f", node.internal.bandwidth_bytes_per_sec / 1e9)
       << " GB/s";
    if (node.parent >= 0) {
      os << " ^" << ClassName(node.uplink.cls) << " "
         << StrFormat("%.1f", node.uplink.bandwidth_bytes_per_sec / 1e9)
         << " GB/s";
    }
    os << "}";
  }
  return os.str();
}

Result<std::vector<StageGeometry>> ProportionalStageGeometry(
    const std::vector<DeviceIsland>& islands, int pp) {
  if (pp < 1) return Status::InvalidArgument("pp must be >= 1");
  if (islands.empty()) {
    return Status::InvalidArgument("need at least one island");
  }
  const int k = static_cast<int>(islands.size());
  int total_devices = 0;
  for (const DeviceIsland& island : islands) {
    if (island.num_devices < 1 || island.sustained_flops <= 0) {
      return Status::InvalidArgument("islands need devices and throughput");
    }
    total_devices += island.num_devices;
  }
  if (pp > total_devices) {
    return Status::InvalidArgument(StrFormat(
        "cannot cut %d stages from %d devices", pp, total_devices));
  }

  std::vector<StageGeometry> stages;
  stages.reserve(static_cast<size_t>(pp));

  if (pp < k) {
    // Group whole islands into pp contiguous runs balancing summed
    // throughput: exact interval DP minimizing the maximum run weight
    // (k is tiny — one entry per hardware generation boundary).
    std::vector<double> prefix(static_cast<size_t>(k) + 1, 0.0);
    for (int i = 0; i < k; ++i) {
      prefix[static_cast<size_t>(i) + 1] =
          prefix[static_cast<size_t>(i)] +
          islands[static_cast<size_t>(i)].num_devices *
              islands[static_cast<size_t>(i)].sustained_flops;
    }
    const double inf = std::numeric_limits<double>::infinity();
    // best[s][i]: minimal max-run-weight splitting the first i islands
    // into s runs; cut[s][i]: the start island of the last run.
    std::vector<std::vector<double>> best(
        static_cast<size_t>(pp) + 1,
        std::vector<double>(static_cast<size_t>(k) + 1, inf));
    std::vector<std::vector<int>> cut(
        static_cast<size_t>(pp) + 1,
        std::vector<int>(static_cast<size_t>(k) + 1, 0));
    best[0][0] = 0.0;
    for (int s = 1; s <= pp; ++s) {
      for (int i = s; i <= k; ++i) {
        for (int j = s - 1; j < i; ++j) {
          const double w = std::max(best[static_cast<size_t>(s) - 1]
                                        [static_cast<size_t>(j)],
                                    prefix[static_cast<size_t>(i)] -
                                        prefix[static_cast<size_t>(j)]);
          if (w < best[static_cast<size_t>(s)][static_cast<size_t>(i)]) {
            best[static_cast<size_t>(s)][static_cast<size_t>(i)] = w;
            cut[static_cast<size_t>(s)][static_cast<size_t>(i)] = j;
          }
        }
      }
    }
    std::vector<int> bounds(static_cast<size_t>(pp) + 1, 0);
    bounds[static_cast<size_t>(pp)] = k;
    for (int s = pp; s >= 1; --s) {
      bounds[static_cast<size_t>(s) - 1] =
          cut[static_cast<size_t>(s)][static_cast<size_t>(bounds
              [static_cast<size_t>(s)])];
    }
    for (int s = 0; s < pp; ++s) {
      const DeviceIsland& lo = islands[static_cast<size_t>(
          bounds[static_cast<size_t>(s)])];
      int width = 0;
      for (int i = bounds[static_cast<size_t>(s)];
           i < bounds[static_cast<size_t>(s) + 1]; ++i) {
        width += islands[static_cast<size_t>(i)].num_devices;
      }
      stages.push_back(StageGeometry{lo.first_device, width});
    }
    return stages;
  }

  // pp >= islands: apportion stage counts by island throughput with the
  // highest-quotient (D'Hondt) method — deterministic, monotone in the
  // weights, lowest index wins ties — capped at the island's device count.
  std::vector<int> counts(static_cast<size_t>(k), 1);
  int assigned = k;
  while (assigned < pp) {
    int pick = -1;
    double pick_quotient = -1.0;
    for (int i = 0; i < k; ++i) {
      const DeviceIsland& island = islands[static_cast<size_t>(i)];
      if (counts[static_cast<size_t>(i)] >= island.num_devices) continue;
      const double quotient =
          island.num_devices * island.sustained_flops /
          (counts[static_cast<size_t>(i)] + 1);
      if (quotient > pick_quotient) {
        pick_quotient = quotient;
        pick = i;
      }
    }
    if (pick < 0) break;  // every island saturated (pp == total_devices)
    ++counts[static_cast<size_t>(pick)];
    ++assigned;
  }
  if (assigned < pp) {
    return Status::InvalidArgument(StrFormat(
        "cannot place %d stages on %d devices", pp, total_devices));
  }
  for (int i = 0; i < k; ++i) {
    const DeviceIsland& island = islands[static_cast<size_t>(i)];
    const int c = counts[static_cast<size_t>(i)];
    int offset = island.first_device;
    for (int s = 0; s < c; ++s) {
      const int width = island.num_devices / c + (s < island.num_devices % c);
      stages.push_back(StageGeometry{offset, width});
      offset += width;
    }
  }
  return stages;
}

}  // namespace galvatron
