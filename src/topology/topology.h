#ifndef GALVATRON_TOPOLOGY_TOPOLOGY_H_
#define GALVATRON_TOPOLOGY_TOPOLOGY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/link.h"
#include "util/result.h"
#include "util/status.h"

namespace galvatron {

/// One vertex of the interconnect hierarchy: a contiguous device range
/// joined by an `internal` fabric (NVLink mesh, PCIe switch, rail-optimized
/// leaf switch, ...) and attached to its parent's fabric through an
/// `uplink` edge (host PCIe bridge, NIC, spine port). The root describes
/// the whole cluster; its uplink is unused.
///
/// Nested nodes refine the picture: a node whose range equals its parent's
/// models a tier change on the same devices (e.g. a PCIe switch under a
/// NUMA complex). Siblings under one parent must cover disjoint ranges.
struct TopologyNode {
  std::string name;
  int first_device = 0;
  int num_devices = 0;
  /// Index of the enclosing node, -1 for the root.
  int parent = -1;
  /// Edge toward the parent fabric (bandwidth must be positive on
  /// non-root nodes; shared by every collective that leaves this node).
  LinkSpec uplink;
  /// Fabric joining this node's members (bandwidth must be positive).
  LinkSpec internal;
};

/// A contiguous run of identical accelerators: mixed-generation clusters
/// are unions of islands, each with its own sustained throughput, memory,
/// and small-batch efficiency knee. `small_batch_half_life` 0 inherits the
/// cluster-wide default.
struct DeviceIsland {
  std::string name;
  int first_device = 0;
  int num_devices = 0;
  double sustained_flops = 0.0;
  int64_t memory_bytes = 0;
  double small_batch_half_life = 0.0;
};

/// A device block assigned to one pipeline stage.
struct StageGeometry {
  int first_device = 0;
  int num_devices = 0;
};

inline bool operator==(const StageGeometry& a, const StageGeometry& b) {
  return a.first_device == b.first_device && a.num_devices == b.num_devices;
}
inline bool operator!=(const StageGeometry& a, const StageGeometry& b) {
  return !(a == b);
}

/// An explicit interconnect hierarchy over devices 0..n-1, replacing the
/// flat contiguous-`TopologyLevel` picture with a tree of fabrics. Pricing
/// walks the edges a collective actually crosses: the bottleneck of a
/// device range is the minimum bandwidth (and maximum latency) over every
/// crossed uplink and every partially-covered internal fabric — so a
/// cross-node ring on PCIe hosts is priced at PCIe speed even when the
/// inter-node NIC is faster, which a single innermost-level class cannot
/// express.
class TopologyGraph {
 public:
  /// Validates the forest shape: exactly one root covering [0, n), parents
  /// enclosing children, disjoint siblings, no parent cycles, positive
  /// bandwidths (zero-bandwidth edges are configuration bugs, not free
  /// links), and islands that tile [0, n) exactly.
  static Result<TopologyGraph> Create(int num_devices,
                                      std::vector<TopologyNode> nodes,
                                      std::vector<DeviceIsland> islands);

  int num_devices() const { return num_devices_; }
  const std::vector<TopologyNode>& nodes() const { return nodes_; }
  const std::vector<DeviceIsland>& islands() const { return islands_; }
  int root() const { return root_; }

  /// Bottleneck of a ring over the contiguous range [first, last]: the
  /// slowest crossed edge. Requires first < last.
  LinkSpec RangeBottleneck(int first_device, int last_device) const;

  /// Bottleneck of the collective group {base + i*stride} rooted at the
  /// stage's first device, with cross-tier contention: sibling groups of
  /// the same stage (the stage is `stage_width` devices wide and tiles
  /// into stage_width/(stride*degree) x stride translated groups) that
  /// cross the same uplink share its bandwidth, so each crossed uplink is
  /// priced at bandwidth / (number of groups crossing it). Internal
  /// fabrics are switched and not shared across sibling groups.
  LinkSpec CollectiveBottleneck(int stage_first_device, int stride,
                                int degree, int stage_width) const;

  /// The largest bandwidth divisor CollectiveBottleneck applies for this
  /// group shape (1 when no uplink is crossed or the group tiling does not
  /// divide the stage).
  int CollectiveContention(int stage_first_device, int stride, int degree,
                           int stage_width) const;

  std::string ToString() const;

 private:
  TopologyGraph() = default;

  int num_devices_ = 0;
  int root_ = 0;
  std::vector<TopologyNode> nodes_;
  std::vector<DeviceIsland> islands_;
  std::vector<std::vector<int>> children_;
};

inline bool operator==(const TopologyNode& a, const TopologyNode& b) {
  return a.name == b.name && a.first_device == b.first_device &&
         a.num_devices == b.num_devices && a.parent == b.parent &&
         a.uplink == b.uplink && a.internal == b.internal;
}

inline bool operator==(const DeviceIsland& a, const DeviceIsland& b) {
  return a.name == b.name && a.first_device == b.first_device &&
         a.num_devices == b.num_devices &&
         a.sustained_flops == b.sustained_flops &&
         a.memory_bytes == b.memory_bytes &&
         a.small_batch_half_life == b.small_batch_half_life;
}

inline bool operator==(const TopologyGraph& a, const TopologyGraph& b) {
  return a.num_devices() == b.num_devices() && a.nodes() == b.nodes() &&
         a.islands() == b.islands();
}

/// Splits a `pp`-deep pipeline across unequal islands: stage counts are
/// apportioned to islands proportionally to island throughput
/// (num_devices x sustained_flops, highest-quotient rounding, at least one
/// stage per island when pp >= islands), and each island's devices split
/// as evenly as possible among its stages. With pp < islands, contiguous
/// runs of whole islands are grouped to balance summed throughput.
/// Stages are contiguous, cover every device, and never mix islands when
/// pp >= islands — each stage's budget is then simply its island's memory.
Result<std::vector<StageGeometry>> ProportionalStageGeometry(
    const std::vector<DeviceIsland>& islands, int pp);

}  // namespace galvatron

#endif  // GALVATRON_TOPOLOGY_TOPOLOGY_H_
