#include "trace/analyzer.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"

namespace galvatron {
namespace trace {

namespace {

/// Length of the union of the (already start-ordered) event intervals on
/// one stream. Events on a stream never overlap in a legal schedule, so
/// this equals the plain sum of elapsed times; computing the union anyway
/// turns any illegal overlap into a visible conservation error.
double UnionBusySeconds(const ExecutionTrace& trace,
                        const std::vector<int>& on_stream) {
  double covered = 0.0;
  bool open = false;
  double cur_start = 0.0;
  double cur_end = 0.0;
  for (int id : on_stream) {
    const TraceEvent& event = trace.events[static_cast<size_t>(id)];
    if (!open) {
      open = true;
      cur_start = event.start_sec;
      cur_end = event.finish_sec;
    } else if (event.start_sec > cur_end) {
      covered += cur_end - cur_start;
      cur_start = event.start_sec;
      cur_end = event.finish_sec;
    } else {
      cur_end = std::max(cur_end, event.finish_sec);
    }
  }
  if (open) covered += cur_end - cur_start;
  return covered;
}

}  // namespace

Result<AttributionReport> Analyze(const ExecutionTrace& trace) {
  AttributionReport report;
  report.makespan_sec = trace.makespan_sec;
  const size_t n = trace.events.size();
  const int num_devices = trace.num_devices();

  // ---- per-stream attribution and the conservation identity -------------
  report.streams.reserve(trace.streams.size());
  // Trace-side busy (work + lost sums) per (device, kind) for the engine
  // reconciliation below.
  std::vector<double> trace_compute_busy(static_cast<size_t>(num_devices),
                                         0.0);
  std::vector<double> trace_comm_busy(static_cast<size_t>(num_devices), 0.0);
  std::vector<double> compute_union(static_cast<size_t>(num_devices), 0.0);
  for (size_t s = 0; s < trace.streams.size(); ++s) {
    const StreamSpec& spec = trace.streams[s];
    StreamAttribution stream;
    stream.stream_id = static_cast<int>(s);
    stream.device = spec.device;
    stream.kind = spec.kind;
    double elapsed_sum = 0.0;
    for (int id : trace.stream_events[s]) {
      const TraceEvent& event = trace.events[static_cast<size_t>(id)];
      stream.category_sec[static_cast<size_t>(event.category)] +=
          event.elapsed_sec();
      elapsed_sum += event.elapsed_sec();
      stream.work_sec += event.work_sec;
      stream.lost_sec += event.lost_sec;
    }
    stream.busy_sec = UnionBusySeconds(trace, trace.stream_events[s]);
    stream.idle_sec = trace.makespan_sec - stream.busy_sec;
    stream.conservation_error_sec =
        std::abs(elapsed_sum + stream.idle_sec - trace.makespan_sec);
    report.max_stream_conservation_error_sec =
        std::max(report.max_stream_conservation_error_sec,
                 stream.conservation_error_sec);
    if (spec.device >= 0 && spec.device < num_devices) {
      if (spec.kind == StreamKind::kCompute) {
        trace_compute_busy[static_cast<size_t>(spec.device)] +=
            stream.work_sec + stream.lost_sec;
        compute_union[static_cast<size_t>(spec.device)] += stream.busy_sec;
      } else {
        trace_comm_busy[static_cast<size_t>(spec.device)] +=
            stream.work_sec + stream.lost_sec;
      }
    }
    report.streams.push_back(std::move(stream));
  }

  // ---- global per-category totals (once per task) -----------------------
  for (const TraceEvent& event : trace.events) {
    const size_t c = static_cast<size_t>(event.category);
    report.category_elapsed_sec[c] += event.elapsed_sec();
    report.category_work_sec[c] += event.work_sec;
    report.category_lost_sec[c] += event.lost_sec;
    report.total_lost_sec += event.lost_sec;
    report.max_task_decomposition_error_sec =
        std::max(report.max_task_decomposition_error_sec,
                 std::abs(event.elapsed_sec() - event.work_sec -
                          event.lost_sec));
  }

  // ---- engine-vs-trace busy reconciliation ------------------------------
  // The engine integrated busy seconds per device while scheduling; the
  // trace's work + lost sums must reproduce them (elapsed == work + lost
  // per task, and a stream's busy time is the sum of its events' elapsed).
  for (int d = 0; d < num_devices; ++d) {
    report.max_busy_reconciliation_error_sec = std::max(
        report.max_busy_reconciliation_error_sec,
        std::abs(trace.compute_busy_sec[static_cast<size_t>(d)] -
                 trace_compute_busy[static_cast<size_t>(d)]));
    report.max_busy_reconciliation_error_sec = std::max(
        report.max_busy_reconciliation_error_sec,
        std::abs(trace.comm_busy_sec[static_cast<size_t>(d)] -
                 trace_comm_busy[static_cast<size_t>(d)]));
  }

  // ---- utilization and the pipeline bubble ------------------------------
  report.device_compute_utilization.assign(static_cast<size_t>(num_devices),
                                           0.0);
  report.device_comm_utilization.assign(static_cast<size_t>(num_devices),
                                        0.0);
  if (trace.makespan_sec > 0 && num_devices > 0) {
    double idle_fraction_sum = 0.0;
    std::vector<double> comm_union(static_cast<size_t>(num_devices), 0.0);
    for (const StreamAttribution& stream : report.streams) {
      if (stream.kind == StreamKind::kComm && stream.device >= 0 &&
          stream.device < num_devices) {
        comm_union[static_cast<size_t>(stream.device)] += stream.busy_sec;
      }
    }
    for (int d = 0; d < num_devices; ++d) {
      const double compute_util =
          compute_union[static_cast<size_t>(d)] / trace.makespan_sec;
      report.device_compute_utilization[static_cast<size_t>(d)] =
          compute_util;
      report.device_comm_utilization[static_cast<size_t>(d)] =
          comm_union[static_cast<size_t>(d)] / trace.makespan_sec;
      idle_fraction_sum += 1.0 - compute_util;
    }
    report.pipeline_bubble_fraction = idle_fraction_sum / num_devices;
  }

  // ---- critical path ----------------------------------------------------
  // The engine starts a task only at t=0 or at the instant a completion
  // event fires, and the completion that unblocked it is either one of its
  // dependencies or the previous occupant of one of its streams. So walking
  // back from the last-finishing event through the max-finish predecessor
  // yields a chain whose links abut exactly — it tiles [0, makespan] and
  // its summed elapsed time equals the makespan.
  if (n > 0) {
    // Previous occupant per (event, stream).
    std::vector<std::vector<int>> stream_preds(n);
    for (const std::vector<int>& on_stream : trace.stream_events) {
      for (size_t i = 1; i < on_stream.size(); ++i) {
        stream_preds[static_cast<size_t>(on_stream[i])].push_back(
            on_stream[i - 1]);
      }
    }
    int current = 0;
    for (size_t t = 1; t < n; ++t) {
      if (trace.events[t].finish_sec >
          trace.events[static_cast<size_t>(current)].finish_sec) {
        current = static_cast<int>(t);
      }
    }
    const double tol = 1e-9 * std::max(trace.makespan_sec, 1e-300);
    std::vector<int> path;
    while (true) {
      path.push_back(current);
      const TraceEvent& event = trace.events[static_cast<size_t>(current)];
      if (event.start_sec <= 0.0) break;
      if (path.size() > n) {
        return Status::Internal("critical-path walk did not terminate");
      }
      int best = -1;
      double best_finish = -1.0;
      auto consider = [&](int candidate) {
        const double finish =
            trace.events[static_cast<size_t>(candidate)].finish_sec;
        if (finish > best_finish) {
          best_finish = finish;
          best = candidate;
        }
      };
      for (int dep : event.deps) consider(dep);
      for (int pred : stream_preds[static_cast<size_t>(current)]) {
        consider(pred);
      }
      if (best < 0 || best_finish < event.start_sec - tol) {
        return Status::Internal(StrFormat(
            "critical-path walk stuck at task %d ('%s'): starts at %g but "
            "no predecessor finishes then",
            current, event.label.c_str(), event.start_sec));
      }
      current = best;
    }
    std::reverse(path.begin(), path.end());
    for (int id : path) {
      const TraceEvent& event = trace.events[static_cast<size_t>(id)];
      report.critical_category_sec[static_cast<size_t>(event.category)] +=
          event.elapsed_sec();
      report.critical_path_sec += event.elapsed_sec();
    }
    report.critical_path = std::move(path);
  }

  return report;
}

}  // namespace trace
}  // namespace galvatron
