#ifndef GALVATRON_TRACE_ANALYZER_H_
#define GALVATRON_TRACE_ANALYZER_H_

#include <array>
#include <vector>

#include "trace/trace.h"
#include "util/result.h"

namespace galvatron {
namespace trace {

/// Per-category seconds, indexed by static_cast<int>(TaskCategory).
using CategorySeconds = std::array<double, kNumTaskCategories>;

/// Wall-time attribution of one stream (a serial lane: one compute or comm
/// stream of one simulated device). The conservation identity the fuzz
/// invariant pins down:
///   sum over categories of category_sec[c] + idle_sec == makespan
/// holds to floating-point rounding because a stream's events never overlap
/// — busy_sec is computed from the union of event intervals, so any
/// (illegal) overlap shows up as conservation_error_sec instead of being
/// silently absorbed.
struct StreamAttribution {
  int stream_id = -1;
  int device = 0;
  StreamKind kind = StreamKind::kCompute;
  CategorySeconds category_sec{};  // elapsed wall time per category
  double busy_sec = 0.0;           // union of event intervals
  double idle_sec = 0.0;           // makespan - busy_sec
  double work_sec = 0.0;           // sum of full-rate work
  double lost_sec = 0.0;           // sum of contention-lost seconds
  /// |sum(category_sec) + idle_sec - makespan| == overlap within the
  /// stream's events (zero for a legal schedule).
  double conservation_error_sec = 0.0;
};

/// The analyzer's full report: per-stream attribution, global per-category
/// totals, the critical path, utilization/bubble statistics, and the
/// residuals of the conservation identities (all ~1e-16-scale for a legal
/// trace; the kTraceConservation fuzz invariant asserts them below
/// 1e-9 * makespan).
struct AttributionReport {
  double makespan_sec = 0.0;
  std::vector<StreamAttribution> streams;

  /// Global totals counted once per task (multi-stream collectives such as
  /// P2P appear on every stream's attribution but only once here).
  CategorySeconds category_elapsed_sec{};
  CategorySeconds category_work_sec{};
  CategorySeconds category_lost_sec{};
  double total_lost_sec = 0.0;

  /// The critical path: a chain of events, chronological, that tiles
  /// [0, makespan] — each link starts exactly when its predecessor
  /// finishes, because the engine starts tasks only at completion events.
  /// Hence critical_path_sec == makespan for a legal trace.
  std::vector<int> critical_path;  // event (task) ids
  CategorySeconds critical_category_sec{};
  double critical_path_sec = 0.0;

  /// Fraction of compute-stream time spent idle, averaged over stages —
  /// the pipeline-bubble metric.
  double pipeline_bubble_fraction = 0.0;
  std::vector<double> device_compute_utilization;  // busy / makespan
  std::vector<double> device_comm_utilization;

  /// Residuals of the cross-checks (max over streams / devices / tasks):
  /// the stream conservation identity above; the engine's integrated
  /// busy seconds vs the trace's per-event work + lost sums; and the
  /// per-task decomposition elapsed == work + lost.
  double max_stream_conservation_error_sec = 0.0;
  double max_busy_reconciliation_error_sec = 0.0;
  double max_task_decomposition_error_sec = 0.0;
};

/// Analyzes a recorded trace. Errors only on structural impossibilities
/// (an event referencing an unknown stream, a critical-path walk that
/// cannot find the predecessor the scheduler must have had); numerical
/// violations are reported through the residual fields so callers (tests,
/// the fuzz invariant) choose their own tolerance.
Result<AttributionReport> Analyze(const ExecutionTrace& trace);

}  // namespace trace
}  // namespace galvatron

#endif  // GALVATRON_TRACE_ANALYZER_H_
