#ifndef GALVATRON_TRACE_TRACE_H_
#define GALVATRON_TRACE_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/engine.h"
#include "sim/simulator.h"
#include "util/result.h"

namespace galvatron {
namespace trace {

/// One simulated task as the trace subsystem sees it: attribution metadata
/// (category, stage/micro-batch/layer coordinates), the streams it occupied,
/// its timing, and the decomposition of its wall time into full-rate work
/// and contention-lost seconds. By construction
///   finish_sec - start_sec = work_sec + lost_sec
/// (within floating-point rounding): `work_sec` is the jitter-scaled
/// duration the task would take alone, `lost_sec` integrates the
/// (1 - rate) * dt stretch over the engine's piecewise-constant rate
/// intervals while the task contended with its sibling stream (the paper's
/// 1.3x compute/comm overlap slowdown, Sec 3.4).
struct TraceEvent {
  int task_id = -1;
  std::string label;
  TaskCategory category = TaskCategory::kOther;
  int stage = -1;
  int micro_batch = -1;
  int layer = -1;
  std::vector<int> streams;  // stream ids the task occupied
  std::vector<int> deps;     // task ids it waited on
  double start_sec = 0.0;
  double finish_sec = 0.0;
  double work_sec = 0.0;
  double lost_sec = 0.0;

  /// Communication metadata for the calibration subsystem (src/calibrate/):
  /// the (link class, collective kind, payload) key of the collective plus
  /// the simulator's pre-jitter analytic duration (`SimTask::work_sec` —
  /// NOT this event's jitter-scaled `work_sec`). comm_group_size == 0 marks
  /// a non-communication task; `analytic_sec` is still filled for every
  /// task (it is the estimator-side prediction the Fig-3 bench compares
  /// against).
  CollectiveKind comm_kind = CollectiveKind::kAllReduce;
  LinkClass comm_link = LinkClass::kPcie3;
  int64_t comm_bytes = 0;
  int comm_group_size = 0;
  double analytic_sec = 0.0;

  double elapsed_sec() const { return finish_sec - start_sec; }
};

/// A point in a per-device memory timeline: cumulative allocated bytes
/// after all deltas at `time_sec` applied.
struct MemorySample {
  double time_sec = 0.0;
  int64_t bytes = 0;
};

/// A recorded simulation: every task with timing and attribution, per-stream
/// event orderings, and per-device memory timelines reconstructed from the
/// tasks' start/end memory deltas. Produced by RecordTrace from the raw
/// SimTrace the simulator captures; consumed by the analyzer and exporters.
struct ExecutionTrace {
  double makespan_sec = 0.0;
  double overlap_slowdown = 0.0;
  double compute_jitter = 0.0;
  uint64_t seed = 0;
  std::vector<StreamSpec> streams;      // indexed by stream id
  std::vector<TraceEvent> events;       // indexed by task id
  /// Per stream: event (task) ids in (start, task-id) order. Streams are
  /// serial lanes, so consecutive entries never overlap in time.
  std::vector<std::vector<int>> stream_events;
  /// Per device: cumulative allocated bytes over time (one sample per
  /// instant at which any delta applied, deltas at equal times merged).
  std::vector<std::vector<MemorySample>> memory_timeline;
  /// Engine-integrated busy seconds per device (one representative device
  /// per pipeline stage; device id == stage id).
  std::vector<double> compute_busy_sec;
  std::vector<double> comm_busy_sec;
  std::vector<int64_t> peak_memory_bytes;  // per device

  int num_devices() const {
    return static_cast<int>(compute_busy_sec.size());
  }
};

/// Builds the execution trace from a simulator capture. Errors if the
/// capture was made without per-task lost-time recording (i.e. the
/// simulator ran without SimOptions::record_trace) or is internally
/// inconsistent (sizes out of agreement).
Result<ExecutionTrace> RecordTrace(const SimTrace& sim_trace);

}  // namespace trace
}  // namespace galvatron

#endif  // GALVATRON_TRACE_TRACE_H_
