#include "trace/trace.h"

#include <algorithm>
#include <tuple>

#include "util/string_util.h"

namespace galvatron {
namespace trace {

namespace {

/// One memory delta at an instant, before per-device accumulation.
struct MemoryDelta {
  double time_sec = 0.0;
  int64_t delta = 0;
};

}  // namespace

Result<ExecutionTrace> RecordTrace(const SimTrace& sim_trace) {
  const SimTimeline& timeline = sim_trace.timeline;
  const size_t n = sim_trace.tasks.size();
  if (timeline.tasks.size() != n) {
    return Status::InvalidArgument(StrFormat(
        "trace capture inconsistent: %d tasks, %d timings",
        static_cast<int>(n), static_cast<int>(timeline.tasks.size())));
  }
  if (timeline.task_work_sec.size() != n ||
      timeline.task_lost_sec.size() != n) {
    return Status::InvalidArgument(
        "trace capture has no per-task work/lost record — run the "
        "simulator with SimOptions::record_trace");
  }

  ExecutionTrace trace;
  trace.makespan_sec = timeline.makespan;
  trace.overlap_slowdown = sim_trace.overlap_slowdown;
  trace.compute_jitter = sim_trace.compute_jitter;
  trace.seed = sim_trace.seed;
  trace.streams = sim_trace.streams;
  trace.compute_busy_sec = timeline.compute_busy_sec;
  trace.comm_busy_sec = timeline.comm_busy_sec;
  trace.peak_memory_bytes = timeline.peak_memory_bytes;

  const int num_devices = static_cast<int>(timeline.compute_busy_sec.size());
  std::vector<std::vector<MemoryDelta>> deltas(
      static_cast<size_t>(num_devices));

  trace.events.reserve(n);
  trace.stream_events.assign(sim_trace.streams.size(), {});
  for (size_t t = 0; t < n; ++t) {
    const SimTask& task = sim_trace.tasks[t];
    const TaskTiming& timing = timeline.tasks[t];
    TraceEvent event;
    event.task_id = static_cast<int>(t);
    event.label = task.label;
    event.category = task.category;
    event.stage = task.stage;
    event.micro_batch = task.micro_batch;
    event.layer = task.layer;
    event.streams = task.streams;
    event.deps = task.deps;
    event.start_sec = timing.start;
    event.finish_sec = timing.finish;
    event.work_sec = timeline.task_work_sec[t];
    event.lost_sec = timeline.task_lost_sec[t];
    event.comm_kind = task.comm_kind;
    event.comm_link = task.comm_link;
    event.comm_bytes = task.comm_bytes;
    event.comm_group_size = task.comm_group_size;
    event.analytic_sec = task.work_sec;
    for (int s : task.streams) {
      if (s < 0 || s >= static_cast<int>(trace.stream_events.size())) {
        return Status::InvalidArgument(
            StrFormat("task %d occupies unknown stream %d",
                      static_cast<int>(t), s));
      }
      trace.stream_events[static_cast<size_t>(s)].push_back(
          static_cast<int>(t));
    }
    if (task.memory_device >= 0 && task.memory_device < num_devices) {
      if (task.start_memory_delta != 0) {
        deltas[static_cast<size_t>(task.memory_device)].push_back(
            MemoryDelta{timing.start, task.start_memory_delta});
      }
      if (task.end_memory_delta != 0) {
        deltas[static_cast<size_t>(task.memory_device)].push_back(
            MemoryDelta{timing.finish, task.end_memory_delta});
      }
    }
    trace.events.push_back(std::move(event));
  }

  for (std::vector<int>& on_stream : trace.stream_events) {
    std::sort(on_stream.begin(), on_stream.end(), [&](int a, int b) {
      return std::tie(trace.events[static_cast<size_t>(a)].start_sec, a) <
             std::tie(trace.events[static_cast<size_t>(b)].start_sec, b);
    });
  }

  trace.memory_timeline.assign(static_cast<size_t>(num_devices), {});
  for (int d = 0; d < num_devices; ++d) {
    std::vector<MemoryDelta>& device = deltas[static_cast<size_t>(d)];
    std::stable_sort(device.begin(), device.end(),
                     [](const MemoryDelta& a, const MemoryDelta& b) {
                       return a.time_sec < b.time_sec;
                     });
    int64_t bytes = 0;
    std::vector<MemorySample>& samples =
        trace.memory_timeline[static_cast<size_t>(d)];
    for (const MemoryDelta& delta : device) {
      bytes += delta.delta;
      if (!samples.empty() && samples.back().time_sec == delta.time_sec) {
        samples.back().bytes = bytes;
      } else {
        samples.push_back(MemorySample{delta.time_sec, bytes});
      }
    }
  }

  return trace;
}

}  // namespace trace
}  // namespace galvatron
