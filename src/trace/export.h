#ifndef GALVATRON_TRACE_EXPORT_H_
#define GALVATRON_TRACE_EXPORT_H_

#include <cstddef>
#include <string>

#include "trace/analyzer.h"
#include "trace/trace.h"

namespace galvatron {
namespace trace {

/// Renders the trace in the Chrome trace-event JSON format — load the file
/// in https://ui.perfetto.dev or chrome://tracing. One process per
/// simulated device (pid = device = pipeline stage), one thread per stream
/// (tid 0 = compute, tid 1 = comm), "X" complete-events colored by category
/// via "cname", and a "C" counter track per device charting the memory
/// timeline. Built as a util/json document, so the output always parses
/// back through ParseJson.
std::string ToChromeTraceJson(const ExecutionTrace& trace);

struct AttributionJsonOptions {
  /// Critical-path entries beyond this are dropped from the JSON (the
  /// serving handler caps response sizes); "critical_path_truncated"
  /// records that it happened and the per-category totals stay exact.
  size_t max_critical_path_entries = static_cast<size_t>(-1);
};

/// Compact machine-readable attribution report (schema in docs/tracing.md).
std::string ToAttributionJson(const ExecutionTrace& trace,
                              const AttributionReport& report,
                              const AttributionJsonOptions& options = {});

/// Human-readable attribution table (galvatron_cli --explain): one row per
/// category with its critical-path share, total busy and contention-lost
/// seconds. The critical-path column sums to the iteration time exactly —
/// the critical path tiles [0, makespan].
std::string RenderAttributionTable(const ExecutionTrace& trace,
                                   const AttributionReport& report);

}  // namespace trace
}  // namespace galvatron

#endif  // GALVATRON_TRACE_EXPORT_H_
