#include "trace/export.h"

#include <algorithm>
#include <string>
#include <vector>

#include "util/json.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace galvatron {
namespace trace {

namespace {

JsonValue JsonOf(double value) {
  JsonValue v;
  v.kind = JsonValue::Kind::kNumber;
  v.number = value;
  return v;
}

JsonValue JsonOf(int64_t value) {
  JsonValue v;
  v.kind = JsonValue::Kind::kNumber;
  v.number = static_cast<double>(value);
  v.number_token = StrFormat("%lld", static_cast<long long>(value));
  return v;
}

JsonValue JsonOf(int value) { return JsonOf(static_cast<int64_t>(value)); }

JsonValue JsonOf(const std::string& value) {
  JsonValue v;
  v.kind = JsonValue::Kind::kString;
  v.string = value;
  return v;
}

JsonValue JsonOf(bool value) {
  JsonValue v;
  v.kind = JsonValue::Kind::kBool;
  v.boolean = value;
  return v;
}

JsonValue JsonObject() {
  JsonValue v;
  v.kind = JsonValue::Kind::kObject;
  return v;
}

JsonValue JsonArray() {
  JsonValue v;
  v.kind = JsonValue::Kind::kArray;
  return v;
}

std::string CategoryName(TaskCategory category) {
  return std::string(TaskCategoryToString(category));
}

/// Chrome-tracing reserved color names, one per category, so the timeline
/// is readable without configuration.
const char* CategoryColor(TaskCategory category) {
  switch (category) {
    case TaskCategory::kForwardCompute: return "good";
    case TaskCategory::kBackwardCompute: return "rail_animation";
    case TaskCategory::kTpAllReduce: return "thread_state_runnable";
    case TaskCategory::kDpAllReduce: return "terrible";
    case TaskCategory::kSdpGather: return "rail_load";
    case TaskCategory::kSdpReduceScatter: return "bad";
    case TaskCategory::kTransformation: return "yellow";
    case TaskCategory::kP2P: return "thread_state_iowait";
    case TaskCategory::kStageInit: return "grey";
    case TaskCategory::kOther: return "generic_work";
  }
  return "generic_work";
}

int StreamTid(StreamKind kind) {
  return kind == StreamKind::kCompute ? 0 : 1;
}

}  // namespace

std::string ToChromeTraceJson(const ExecutionTrace& trace) {
  JsonValue doc = JsonObject();
  doc.object["displayTimeUnit"] = JsonOf(std::string("ms"));
  JsonValue events = JsonArray();

  // Track metadata: one process per device (== pipeline stage), one thread
  // per stream kind.
  for (int d = 0; d < trace.num_devices(); ++d) {
    JsonValue meta = JsonObject();
    meta.object["ph"] = JsonOf(std::string("M"));
    meta.object["name"] = JsonOf(std::string("process_name"));
    meta.object["pid"] = JsonOf(d);
    JsonValue args = JsonObject();
    args.object["name"] = JsonOf(StrFormat("stage %d", d));
    meta.object["args"] = std::move(args);
    events.array.push_back(std::move(meta));
  }
  for (const StreamSpec& stream : trace.streams) {
    JsonValue meta = JsonObject();
    meta.object["ph"] = JsonOf(std::string("M"));
    meta.object["name"] = JsonOf(std::string("thread_name"));
    meta.object["pid"] = JsonOf(stream.device);
    meta.object["tid"] = JsonOf(StreamTid(stream.kind));
    JsonValue args = JsonObject();
    args.object["name"] = JsonOf(std::string(
        stream.kind == StreamKind::kCompute ? "compute" : "comm"));
    meta.object["args"] = std::move(args);
    events.array.push_back(std::move(meta));
  }

  // One "X" complete-event per (task, occupied stream); zero-duration
  // bookkeeping tasks (stage init) are skipped like any zero-width slice.
  for (const TraceEvent& event : trace.events) {
    if (event.finish_sec <= event.start_sec) continue;
    for (int stream_id : event.streams) {
      const StreamSpec& stream =
          trace.streams[static_cast<size_t>(stream_id)];
      JsonValue slice = JsonObject();
      slice.object["name"] = JsonOf(event.label);
      slice.object["cat"] = JsonOf(CategoryName(event.category));
      slice.object["ph"] = JsonOf(std::string("X"));
      slice.object["ts"] = JsonOf(event.start_sec * 1e6);
      slice.object["dur"] = JsonOf(event.elapsed_sec() * 1e6);
      slice.object["pid"] = JsonOf(stream.device);
      slice.object["tid"] = JsonOf(StreamTid(stream.kind));
      slice.object["cname"] = JsonOf(std::string(
          CategoryColor(event.category)));
      JsonValue args = JsonObject();
      args.object["task_id"] = JsonOf(event.task_id);
      args.object["stage"] = JsonOf(event.stage);
      args.object["micro_batch"] = JsonOf(event.micro_batch);
      args.object["layer"] = JsonOf(event.layer);
      args.object["work_sec"] = JsonOf(event.work_sec);
      args.object["lost_sec"] = JsonOf(event.lost_sec);
      slice.object["args"] = std::move(args);
      events.array.push_back(std::move(slice));
    }
  }

  // Per-device memory counter tracks.
  for (int d = 0; d < trace.num_devices(); ++d) {
    for (const MemorySample& sample :
         trace.memory_timeline[static_cast<size_t>(d)]) {
      JsonValue counter = JsonObject();
      counter.object["ph"] = JsonOf(std::string("C"));
      counter.object["name"] = JsonOf(std::string("memory"));
      counter.object["pid"] = JsonOf(d);
      counter.object["ts"] = JsonOf(sample.time_sec * 1e6);
      JsonValue args = JsonObject();
      args.object["bytes"] = JsonOf(sample.bytes);
      counter.object["args"] = std::move(args);
      events.array.push_back(std::move(counter));
    }
  }

  doc.object["traceEvents"] = std::move(events);
  return WriteJson(doc);
}

std::string ToAttributionJson(const ExecutionTrace& trace,
                              const AttributionReport& report,
                              const AttributionJsonOptions& options) {
  JsonValue doc = JsonObject();
  doc.object["makespan_sec"] = JsonOf(report.makespan_sec);
  doc.object["overlap_slowdown"] = JsonOf(trace.overlap_slowdown);
  doc.object["compute_jitter"] = JsonOf(trace.compute_jitter);
  doc.object["total_lost_sec"] = JsonOf(report.total_lost_sec);
  doc.object["pipeline_bubble_fraction"] =
      JsonOf(report.pipeline_bubble_fraction);
  doc.object["critical_path_sec"] = JsonOf(report.critical_path_sec);

  JsonValue categories = JsonObject();
  for (int c = 0; c < kNumTaskCategories; ++c) {
    const size_t i = static_cast<size_t>(c);
    if (report.category_elapsed_sec[i] == 0.0 &&
        report.critical_category_sec[i] == 0.0) {
      continue;
    }
    JsonValue entry = JsonObject();
    entry.object["elapsed_sec"] = JsonOf(report.category_elapsed_sec[i]);
    entry.object["work_sec"] = JsonOf(report.category_work_sec[i]);
    entry.object["lost_sec"] = JsonOf(report.category_lost_sec[i]);
    entry.object["critical_path_sec"] =
        JsonOf(report.critical_category_sec[i]);
    categories.object[CategoryName(static_cast<TaskCategory>(c))] =
        std::move(entry);
  }
  doc.object["categories"] = std::move(categories);

  JsonValue streams = JsonArray();
  for (const StreamAttribution& stream : report.streams) {
    JsonValue entry = JsonObject();
    entry.object["device"] = JsonOf(stream.device);
    entry.object["kind"] = JsonOf(std::string(
        stream.kind == StreamKind::kCompute ? "compute" : "comm"));
    entry.object["busy_sec"] = JsonOf(stream.busy_sec);
    entry.object["idle_sec"] = JsonOf(stream.idle_sec);
    entry.object["lost_sec"] = JsonOf(stream.lost_sec);
    JsonValue per_category = JsonObject();
    for (int c = 0; c < kNumTaskCategories; ++c) {
      const size_t i = static_cast<size_t>(c);
      if (stream.category_sec[i] == 0.0) continue;
      per_category.object[CategoryName(static_cast<TaskCategory>(c))] =
          JsonOf(stream.category_sec[i]);
    }
    entry.object["categories"] = std::move(per_category);
    streams.array.push_back(std::move(entry));
  }
  doc.object["streams"] = std::move(streams);

  JsonValue utilization = JsonObject();
  JsonValue compute_util = JsonArray();
  for (double u : report.device_compute_utilization) {
    compute_util.array.push_back(JsonOf(u));
  }
  JsonValue comm_util = JsonArray();
  for (double u : report.device_comm_utilization) {
    comm_util.array.push_back(JsonOf(u));
  }
  utilization.object["compute"] = std::move(compute_util);
  utilization.object["comm"] = std::move(comm_util);
  doc.object["device_utilization"] = std::move(utilization);

  // Calibration inputs (src/calibrate/): one sample per communication task,
  // pairing the estimator's analytic prediction (recorded pre-jitter in
  // analytic_sec) with the wall time the simulation observed.
  // overlap_slowdown_estimate mirrors calibrate::EstimateOverlapSlowdown —
  // max over comm tasks of 1 + lost/work, capped at the profile's accepted
  // maximum, 0 when no comm task showed contention — recomputed inline so
  // the trace library stays independent of src/calibrate/.
  JsonValue samples = JsonArray();
  double overlap_estimate = 0.0;
  for (const TraceEvent& event : trace.events) {
    if (event.comm_group_size < 2) continue;
    if (event.work_sec > 0.0 && event.lost_sec > 0.0) {
      overlap_estimate =
          std::max(overlap_estimate, 1.0 + event.lost_sec / event.work_sec);
    }
    if (!(event.analytic_sec > 0.0)) continue;
    JsonValue sample = JsonObject();
    sample.object["link"] =
        JsonOf(std::string(LinkClassToString(event.comm_link)));
    sample.object["kind"] =
        JsonOf(std::string(CollectiveKindToString(event.comm_kind)));
    sample.object["bytes"] = JsonOf(event.comm_bytes);
    sample.object["group_size"] = JsonOf(event.comm_group_size);
    sample.object["predicted_sec"] = JsonOf(event.analytic_sec);
    sample.object["measured_sec"] = JsonOf(event.elapsed_sec());
    samples.array.push_back(std::move(sample));
  }
  doc.object["comm_samples"] = std::move(samples);
  doc.object["overlap_slowdown_estimate"] =
      JsonOf(std::min(overlap_estimate, 8.0));

  JsonValue conservation = JsonObject();
  conservation.object["max_stream_error_sec"] =
      JsonOf(report.max_stream_conservation_error_sec);
  conservation.object["max_busy_reconciliation_error_sec"] =
      JsonOf(report.max_busy_reconciliation_error_sec);
  conservation.object["max_task_decomposition_error_sec"] =
      JsonOf(report.max_task_decomposition_error_sec);
  doc.object["conservation"] = std::move(conservation);

  const size_t path_entries =
      std::min(options.max_critical_path_entries,
               report.critical_path.size());
  JsonValue path = JsonArray();
  for (size_t i = 0; i < path_entries; ++i) {
    const TraceEvent& event =
        trace.events[static_cast<size_t>(report.critical_path[i])];
    JsonValue entry = JsonObject();
    entry.object["task_id"] = JsonOf(event.task_id);
    entry.object["label"] = JsonOf(event.label);
    entry.object["category"] = JsonOf(CategoryName(event.category));
    entry.object["start_sec"] = JsonOf(event.start_sec);
    entry.object["finish_sec"] = JsonOf(event.finish_sec);
    entry.object["lost_sec"] = JsonOf(event.lost_sec);
    path.array.push_back(std::move(entry));
  }
  doc.object["critical_path"] = std::move(path);
  doc.object["critical_path_total_tasks"] =
      JsonOf(static_cast<int64_t>(report.critical_path.size()));
  doc.object["critical_path_truncated"] =
      JsonOf(path_entries < report.critical_path.size());

  return WriteJson(doc);
}

std::string RenderAttributionTable(const ExecutionTrace& trace,
                                   const AttributionReport& report) {
  TablePrinter table({"category", "critical path (ms)", "% of iteration",
                      "busy (ms)", "lost (ms)"});
  auto ms = [](double sec) { return StrFormat("%.4f", sec * 1e3); };
  const double makespan = report.makespan_sec;
  for (int c = 0; c < kNumTaskCategories; ++c) {
    const size_t i = static_cast<size_t>(c);
    if (report.category_elapsed_sec[i] == 0.0 &&
        report.critical_category_sec[i] == 0.0) {
      continue;
    }
    table.AddRow({CategoryName(static_cast<TaskCategory>(c)),
                  ms(report.critical_category_sec[i]),
                  StrFormat("%.1f%%",
                            makespan > 0
                                ? 100.0 * report.critical_category_sec[i] /
                                      makespan
                                : 0.0),
                  ms(report.category_elapsed_sec[i]),
                  ms(report.category_lost_sec[i])});
  }
  double total_busy = 0.0;
  for (double b : report.category_elapsed_sec) total_busy += b;
  table.AddRow({"total", ms(report.critical_path_sec),
                StrFormat("%.1f%%", makespan > 0
                                        ? 100.0 * report.critical_path_sec /
                                              makespan
                                        : 0.0),
                ms(total_busy), ms(report.total_lost_sec)});

  std::string out = table.ToString();
  out += StrFormat(
      "iteration %.4f ms | critical path %.4f ms over %d tasks | "
      "pipeline bubble %.1f%% | contention-lost %.4f ms "
      "(overlap slowdown %.2fx)\n",
      makespan * 1e3, report.critical_path_sec * 1e3,
      static_cast<int>(report.critical_path.size()),
      100.0 * report.pipeline_bubble_fraction, report.total_lost_sec * 1e3,
      trace.overlap_slowdown);
  return out;
}

}  // namespace trace
}  // namespace galvatron
