#ifndef GALVATRON_RUNTIME_TRAINING_SESSION_H_
#define GALVATRON_RUNTIME_TRAINING_SESSION_H_

#include <cstdint>
#include <vector>

#include "cluster/cluster.h"
#include "ir/model.h"
#include "parallel/plan.h"
#include "sim/simulator.h"
#include "util/result.h"
#include "workload/workload.h"

namespace galvatron {

/// Summary statistics over the per-iteration times of a session.
struct IterationStats {
  double mean_sec = 0.0;
  double stddev_sec = 0.0;
  double min_sec = 0.0;
  double max_sec = 0.0;
  double p50_sec = 0.0;
  double p99_sec = 0.0;
};

/// Result of a multi-iteration training run.
struct SessionReport {
  IterationStats iteration;
  /// Mean samples/s over the session — the quantity the paper's tables
  /// report ("All results are averaged over 100 iterations", Sec 5.1).
  double mean_throughput_samples_per_sec = 0.0;
  double total_seconds = 0.0;
  /// Iterations where the input pipeline could not hide behind training.
  int data_stalled_iterations = 0;
  int64_t peak_memory_bytes = 0;
  bool oom = false;
  std::vector<double> per_iteration_seconds;
  /// Session-mean utilization of each pipeline stage's representative
  /// device (SimMetrics::stage_compute_busy_sec / iteration_seconds,
  /// averaged over iterations), indexed by stage. Surfaces per-stage
  /// imbalance the summed scalars hide.
  std::vector<double> stage_compute_utilization;
  std::vector<double> stage_comm_utilization;
};

/// Options for a session.
struct SessionOptions {
  int iterations = 100;  // the paper's averaging window
  uint64_t seed = 0xfeed;
  SimOptions sim;
};

/// Executes a training plan for many iterations against a workload: each
/// iteration gets fresh kernel jitter and a fresh draw of the workload's
/// length distribution, and the (double-buffered) input pipeline stalls
/// training only when loading a batch takes longer than computing one.
class TrainingSession {
 public:
  /// `cluster` must outlive this object.
  TrainingSession(const ClusterSpec* cluster, SessionOptions options = {});

  Result<SessionReport> Train(const ModelSpec& model,
                              const TrainingPlan& plan,
                              const WorkloadSpec& workload) const;

 private:
  const ClusterSpec* cluster_;
  SessionOptions options_;
};

}  // namespace galvatron

#endif  // GALVATRON_RUNTIME_TRAINING_SESSION_H_
