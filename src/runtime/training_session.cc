#include "runtime/training_session.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace galvatron {

namespace {

IterationStats ComputeStats(std::vector<double> samples) {
  IterationStats stats;
  if (samples.empty()) return stats;
  double sum = 0;
  for (double s : samples) sum += s;
  stats.mean_sec = sum / static_cast<double>(samples.size());
  double var = 0;
  for (double s : samples) {
    var += (s - stats.mean_sec) * (s - stats.mean_sec);
  }
  stats.stddev_sec = std::sqrt(var / static_cast<double>(samples.size()));
  std::sort(samples.begin(), samples.end());
  stats.min_sec = samples.front();
  stats.max_sec = samples.back();
  auto quantile = [&](double q) {
    const double pos = q * static_cast<double>(samples.size() - 1);
    const size_t lo = static_cast<size_t>(pos);
    const size_t hi = std::min(lo + 1, samples.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return samples[lo] * (1 - frac) + samples[hi] * frac;
  };
  stats.p50_sec = quantile(0.5);
  stats.p99_sec = quantile(0.99);
  return stats;
}

}  // namespace

TrainingSession::TrainingSession(const ClusterSpec* cluster,
                                 SessionOptions options)
    : cluster_(cluster), options_(options) {
  GALVATRON_CHECK(cluster != nullptr);
  GALVATRON_CHECK_GE(options_.iterations, 1);
}

Result<SessionReport> TrainingSession::Train(
    const ModelSpec& model, const TrainingPlan& plan,
    const WorkloadSpec& workload) const {
  const std::vector<IterationWorkload> iterations = SampleIterations(
      workload, plan.global_batch, options_.iterations, options_.seed);

  SessionReport report;
  report.per_iteration_seconds.reserve(iterations.size());

  for (size_t i = 0; i < iterations.size(); ++i) {
    SimOptions sim_options = options_.sim;
    sim_options.seed =
        options_.seed + 0x100 + static_cast<uint64_t>(i) * 7919u;
    sim_options.work_scale =
        options_.sim.work_scale * iterations[i].work_scale;
    Simulator simulator(cluster_, sim_options);
    GALVATRON_ASSIGN_OR_RETURN(SimMetrics metrics,
                               simulator.Run(model, plan));
    report.peak_memory_bytes =
        std::max(report.peak_memory_bytes, metrics.max_peak_memory_bytes);
    report.oom |= metrics.oom;
    if (report.stage_compute_utilization.empty()) {
      report.stage_compute_utilization.assign(
          metrics.stage_compute_busy_sec.size(), 0.0);
      report.stage_comm_utilization.assign(
          metrics.stage_comm_busy_sec.size(), 0.0);
    }
    for (size_t s = 0; s < metrics.stage_compute_busy_sec.size(); ++s) {
      report.stage_compute_utilization[s] +=
          metrics.stage_compute_busy_sec[s] / metrics.iteration_seconds;
      report.stage_comm_utilization[s] +=
          metrics.stage_comm_busy_sec[s] / metrics.iteration_seconds;
    }

    // Double-buffered input pipeline: iteration i trains on the batch
    // loaded during iteration i-1, so loading stalls training only when it
    // is slower than the training step (the first batch always stalls).
    double step = metrics.iteration_seconds;
    const double stall =
        i == 0 ? iterations[i].load_sec
               : std::max(0.0, iterations[i].load_sec - step);
    if (stall > 0) ++report.data_stalled_iterations;
    step += stall;
    report.per_iteration_seconds.push_back(step);
    report.total_seconds += step;
  }

  report.iteration = ComputeStats(report.per_iteration_seconds);
  report.mean_throughput_samples_per_sec =
      plan.global_batch * static_cast<double>(iterations.size()) /
      report.total_seconds;
  for (double& u : report.stage_compute_utilization) {
    u /= static_cast<double>(iterations.size());
  }
  for (double& u : report.stage_comm_utilization) {
    u /= static_cast<double>(iterations.size());
  }
  return report;
}

}  // namespace galvatron
