#include "estimator/cost_estimator.h"

#include <algorithm>

#include "parallel/transformation.h"
#include "util/logging.h"
#include "util/math_util.h"
#include "util/string_util.h"

namespace galvatron {

double LayerCost::IterationSeconds(int micro_batches,
                                   const EstimatorOptions& options) const {
  const double m = micro_batches;
  const double comp = m * bwd_compute_mb_sec;
  const double comm = m * ovl_mb_sec + iter_comm_sec;
  double bwd;
  if (options.model_overlap_slowdown) {
    bwd = std::max(comp, comm) +
          (options.overlap_slowdown - 1.0) * std::min(comp, comm);
  } else {
    bwd = std::max(comp, comm);
  }
  return m * (fwd_mb_sec + bwd_blocking_mb_sec) + bwd;
}

CostEstimator::CostEstimator(const ClusterSpec* cluster,
                             EstimatorOptions options)
    : cluster_(cluster), layer_model_(cluster), options_(options),
      effective_options_(options) {
  GALVATRON_CHECK(cluster != nullptr);
  set_calibration(options.calibration);
}

void CostEstimator::set_calibration(
    const calibrate::CalibrationProfile* calibration) {
  calibration_ = calibration;
  effective_options_ = options_;
  if (calibration_ != nullptr && calibration_->overlap_slowdown > 0.0) {
    effective_options_.overlap_slowdown = calibration_->overlap_slowdown;
  }
}

double CostEstimator::CommTaskSeconds(const CommTask& task) const {
  const double analytic = task.Time();
  if (calibration_ == nullptr) return analytic;
  return analytic *
         calibration_->CommScale(task.link.cls, task.kind, task.bytes);
}

double CostEstimator::CombineOverlap(double compute_sec,
                                     double comm_sec) const {
  if (!effective_options_.model_overlap_slowdown) {
    return std::max(compute_sec, comm_sec);
  }
  return std::max(compute_sec, comm_sec) +
         (effective_options_.overlap_slowdown - 1.0) *
             std::min(compute_sec, comm_sec);
}

Result<LayerCost> CostEstimator::EstimateLayer(
    const LayerSpec& layer, const HybridStrategy& strategy,
    int stage_first_device, int batch_per_group, int micro_batches,
    bool recompute, int resident_micro_batches) const {
  if (micro_batches < 1 || micro_batches > batch_per_group) {
    return Status::InvalidArgument(StrFormat(
        "micro_batches %d invalid for batch %d", micro_batches,
        batch_per_group));
  }
  if (resident_micro_batches < 0 || resident_micro_batches > micro_batches) {
    resident_micro_batches = micro_batches;
  }
  const int mb_size =
      static_cast<int>(CeilDiv(batch_per_group, micro_batches));

  // Per-micro-batch timing and memory; the schedule keeps
  // `resident_micro_batches` micro-batches' activations live simultaneously,
  // so resident memory scales the per-micro-batch activation stash by that
  // count — exactly how the simulator charges it. (Analyzing once at
  // mb_size * resident samples is NOT equivalent: it rounds the per-device
  // batch up once instead of per micro-batch, and it scales the recompute
  // transient by the resident count even though only one micro-batch's
  // internals are ever rebuilt at a time.)
  GALVATRON_ASSIGN_OR_RETURN(
      LayerExecution mb,
      layer_model_.Analyze(layer, strategy, stage_first_device, mb_size,
                           recompute, options_.tp_sequence_parallel));

  LayerCost cost;
  cost.fwd_mb_sec = mb.fwd_compute_sec;
  for (const CommTask& task : mb.fwd_comms) {
    cost.fwd_mb_sec += CommTaskSeconds(task);  // forward comms all block
  }
  cost.bwd_compute_mb_sec = mb.bwd_compute_sec;
  for (const CommTask& task : mb.bwd_comms) {
    if (!task.overlappable) {
      cost.bwd_blocking_mb_sec += CommTaskSeconds(task);
    } else if (task.frequency == CommFrequency::kPerMicroBatch) {
      cost.ovl_mb_sec += CommTaskSeconds(task);
    } else {
      cost.iter_comm_sec += CommTaskSeconds(task);
    }
  }
  cost.resident_memory_bytes =
      mb.state_memory_bytes +
      static_cast<int64_t>(resident_micro_batches) *
          mb.activation_memory_bytes;
  cost.transient_memory_bytes = mb.transient_memory_bytes;
  return cost;
}

Result<StageCost> CostEstimator::EstimateStage(
    const ModelSpec& model, int first_layer, int num_layers,
    const std::vector<HybridStrategy>& strategies, int stage_first_device,
    int batch_per_group, int micro_batches,
    const std::vector<uint8_t>& recompute_flags,
    int resident_micro_batches, bool check_memory) const {
  if (num_layers < 1 || first_layer < 0 ||
      first_layer + num_layers > model.num_layers()) {
    return Status::InvalidArgument("stage layer range out of bounds");
  }
  if (static_cast<int>(strategies.size()) != num_layers) {
    return Status::InvalidArgument("one strategy per stage layer required");
  }
  if (!recompute_flags.empty() &&
      static_cast<int>(recompute_flags.size()) != num_layers) {
    return Status::InvalidArgument("one recompute flag per layer required");
  }

  StageCost stage;
  int64_t resident = 0;
  int64_t max_transient = 0;
  for (int i = 0; i < num_layers; ++i) {
    const LayerSpec& layer = model.layer(first_layer + i);
    const bool recompute =
        !recompute_flags.empty() &&
        recompute_flags[static_cast<size_t>(i)] != 0;
    GALVATRON_ASSIGN_OR_RETURN(
        LayerCost cost,
        EstimateLayer(layer, strategies[static_cast<size_t>(i)],
                      stage_first_device, batch_per_group, micro_batches,
                      recompute, resident_micro_batches));
    const double seconds =
        cost.IterationSeconds(micro_batches, effective_options_);
    stage.per_layer_seconds.push_back(seconds);
    stage.seconds += seconds;
    resident += cost.resident_memory_bytes;
    // ZeRO-3 prefetching keeps the gathered weights of two layers live
    // (current + prefetched next), so reserve twice the largest transient.
    max_transient = std::max(max_transient, 2 * cost.transient_memory_bytes);

    if (i > 0) {
      // Slice-Gather at the strategy boundary, forward and backward, per
      // micro-batch.
      const int mb_size =
          static_cast<int>(CeilDiv(batch_per_group, micro_batches));
      GALVATRON_ASSIGN_OR_RETURN(
          TransformationCost transform,
          ComputeTransformationCost(
              model.layer(first_layer + i - 1), layer,
              strategies[static_cast<size_t>(i) - 1],
              strategies[static_cast<size_t>(i)], stage_first_device, mb_size,
              *cluster_));
      stage.seconds += 2.0 * micro_batches * transform.seconds;
    }
  }
  stage.peak_memory_bytes = resident + max_transient;
  if (check_memory) {
    // Heterogeneous clusters: the stage is limited by its tightest device.
    const int64_t budget = cluster_->MinMemoryInRange(
        stage_first_device, strategies.front().TotalDegree());
    if (stage.peak_memory_bytes > budget) {
      return Status::OutOfMemory(StrFormat(
          "stage needs %s but budget is %s",
          HumanBytes(static_cast<double>(stage.peak_memory_bytes)).c_str(),
          HumanBytes(static_cast<double>(budget)).c_str()));
    }
  }
  return stage;
}

Result<PlanCost> CostEstimator::EstimatePlan(const ModelSpec& model,
                                             const TrainingPlan& plan,
                                             bool check_memory) const {
  GALVATRON_RETURN_IF_ERROR(plan.Validate(model, cluster_->num_devices()));

  PlanCost total;
  double sum_u = 0.0;
  double max_u = 0.0;
  const int mb_size = plan.MicroBatchSize();
  for (size_t i = 0; i < plan.stages.size(); ++i) {
    const StagePlan& stage = plan.stages[i];
    GALVATRON_ASSIGN_OR_RETURN(
        StageCost cost,
        EstimateStage(model, stage.first_layer, stage.num_layers,
                      stage.layer_strategies, stage.first_device,
                      plan.global_batch, plan.num_micro_batches,
                      stage.recompute,
                      plan.InFlightMicroBatches(static_cast<int>(i)),
                      check_memory));
    if (i > 0) {
      // Per-micro-batch boundary transfer: forward activations in, gradient
      // activations back out. The DP search excludes this (Sec 3.3, "we
      // exclude the boundary layers' activation transferring costs"); the
      // plan-level estimate includes it so pipelining is not free.
      const StagePlan& prev = plan.stages[i - 1];
      const LinkSpec& link = cluster_->LinkBetween(
          prev.first_device + prev.num_devices - 1, stage.first_device);
      const int64_t bytes =
          model.layer(stage.first_layer).input_bytes() * mb_size;
      double once =
          CollectiveTime(CollectiveKind::kPointToPoint, bytes, 2, link) +
          cluster_->pipeline_rpc_overhead_sec();
      if (calibration_ != nullptr) {
        once *= calibration_->CommScale(
            link.cls, CollectiveKind::kPointToPoint, bytes);
      }
      const double p2p = 2.0 * plan.num_micro_batches * once;
      // The transfer occupies both neighbours' comm streams.
      cost.seconds += p2p;
      total.stages.back().seconds += p2p;
      sum_u += p2p / plan.num_micro_batches;
      max_u = std::max(max_u, total.stages.back().seconds /
                                  plan.num_micro_batches);
    }
    const double u = cost.seconds / plan.num_micro_batches;
    sum_u += u;
    max_u = std::max(max_u, u);
    total.peak_memory_bytes =
        std::max(total.peak_memory_bytes, cost.peak_memory_bytes);
    total.stages.push_back(std::move(cost));
  }
  // GPipe schedule: fill/drain bubbles cost (m - 1) extra slots of the
  // bottleneck stage.
  total.iteration_seconds = sum_u + (plan.num_micro_batches - 1) * max_u;
  total.throughput_samples_per_sec =
      plan.global_batch / total.iteration_seconds;
  return total;
}

}  // namespace galvatron
