#ifndef GALVATRON_ESTIMATOR_COST_ESTIMATOR_H_
#define GALVATRON_ESTIMATOR_COST_ESTIMATOR_H_

#include <cstdint>
#include <vector>

#include "calibrate/profile.h"
#include "cluster/cluster.h"
#include "ir/model.h"
#include "parallel/layer_cost_model.h"
#include "parallel/plan.h"
#include "parallel/strategy.h"
#include "util/result.h"

namespace galvatron {

/// Estimator knobs (Sec 3.4). The overlap slowdown models the GPU SM
/// contention between compute kernels and NCCL collectives that previous
/// systems ignore; the paper measures ~1.3x on both sides. Disabling
/// `model_overlap_slowdown` reproduces the naive max(comp, comm) estimator
/// of Figure 3(b).
struct EstimatorOptions {
  bool model_overlap_slowdown = true;
  double overlap_slowdown = 1.3;
  /// Megatron-LM sequence parallelism for every TP region: same
  /// communication volume, activations fully sharded across the TP group.
  bool tp_sequence_parallel = false;
  /// Optional trace-fitted correction layer (src/calibrate/). When set,
  /// each communication term is multiplied by the profile's fitted scale
  /// for its (link class, collective kind, size bucket), and a non-zero
  /// fitted overlap slowdown overrides `overlap_slowdown`. Must outlive
  /// the estimator. nullptr (the default) leaves every estimate
  /// byte-identical to the uncalibrated analytic model — enforced by the
  /// CalibrationIdentity fuzz invariant.
  const calibrate::CalibrationProfile* calibration = nullptr;
};

/// Time/memory estimate of one layer under one strategy, at micro-batch
/// granularity. Fields are per device (devices of a group are symmetric).
struct LayerCost {
  /// Per micro-batch: forward compute + blocking forward collectives.
  double fwd_mb_sec = 0.0;
  /// Per micro-batch backward compute (2x forward compute).
  double bwd_compute_mb_sec = 0.0;
  /// Per micro-batch blocking backward collectives (TP all-reduce).
  double bwd_blocking_mb_sec = 0.0;
  /// Per micro-batch overlappable backward comm (SDP weight re-gather).
  double ovl_mb_sec = 0.0;
  /// Once-per-iteration overlappable comm (DP all-reduce, SDP
  /// reduce-scatter of gradients).
  double iter_comm_sec = 0.0;

  /// Resident memory with the full per-group batch (GPipe keeps every
  /// micro-batch's activations live until its backward).
  int64_t resident_memory_bytes = 0;
  int64_t transient_memory_bytes = 0;

  /// Total layer time across an iteration of `micro_batches` micro-batches,
  /// with the backward overlap model applied (Eq. below):
  ///   t = m*(fwd + bwd_blocking) + Overlap(m*bwd_compute, m*ovl + iter).
  double IterationSeconds(int micro_batches, const EstimatorOptions&) const;
};

/// Estimated cost of one pipeline stage across a full iteration.
struct StageCost {
  double seconds = 0.0;          // total stage busy time per iteration
  int64_t peak_memory_bytes = 0; // max over devices? devices symmetric: per device
  std::vector<double> per_layer_seconds;
};

/// Estimated cost of a whole plan.
struct PlanCost {
  double iteration_seconds = 0.0;
  double throughput_samples_per_sec = 0.0;
  int64_t peak_memory_bytes = 0;  // max over stages
  std::vector<StageCost> stages;
};

/// The analytic cost estimator of Sec 3.4: memory from tensor shapes,
/// compute from FLOPs over sustained device throughput, communication from
/// payload over bottleneck bandwidth, with the compute/communication
/// overlap slowdown applied in backward.
///
/// Combining rule for backward overlap: running compute and communication
/// concurrently slows both by k (= overlap_slowdown), so the overlapped
/// span costs k * min(comp, comm) and the residual runs alone:
///   Overlap(comp, comm) = max(comp, comm) + (k - 1) * min(comp, comm).
/// With modelling disabled this degrades to the classic max(comp, comm)
/// (PipeDream's choice, per the paper).
///
/// Thread-safety: all Estimate* methods are const, touch no mutable state,
/// and may be called concurrently from the parallel search sweep — provided
/// set_profile() is not called while estimates are in flight (configure the
/// estimator fully, then search).
class CostEstimator {
 public:
  /// `cluster` must outlive this object.
  CostEstimator(const ClusterSpec* cluster, EstimatorOptions options = {});

  const EstimatorOptions& options() const { return options_; }
  /// options() with the calibration profile's fitted overlap slowdown
  /// substituted in; identical to options() when no profile is installed.
  /// Pass this (not options()) to LayerCost::IterationSeconds so recombined
  /// layer costs match EstimateStage/EstimatePlan under calibration.
  const EstimatorOptions& effective_options() const {
    return effective_options_;
  }
  const ClusterSpec& cluster() const { return *cluster_; }

  /// Feeds measured per-layer timings into the underlying cost model (the
  /// paper profiles real layer execution and estimates from it, Sec 3.4).
  /// `profile` must outlive this estimator; nullptr reverts to analytic.
  void set_profile(const ProfileTable* profile) {
    layer_model_.set_profile(profile);
  }

  /// Installs (or clears) the trace-fitted calibration profile. Same
  /// lifetime and thread-safety contract as set_profile: configure before
  /// searching. With nullptr every estimate is byte-identical to the
  /// uncalibrated estimator.
  void set_calibration(const calibrate::CalibrationProfile* calibration);
  const calibrate::CalibrationProfile* calibration() const {
    return calibration_;
  }

  /// Overlap(comp, comm) as defined above.
  double CombineOverlap(double compute_sec, double comm_sec) const;

  /// Estimates c(l, s): one layer under one strategy on the stage block
  /// starting at `stage_first_device`. `batch_per_group` is the stage's
  /// full batch; `micro_batches` divides it (1 for non-pipelined stages).
  /// `recompute` enables activation checkpointing for this layer.
  /// `resident_micro_batches` is how many micro-batches' activations stay
  /// live at peak (-1: all of them — the GPipe schedule; 1F1B caps it).
  Result<LayerCost> EstimateLayer(const LayerSpec& layer,
                                  const HybridStrategy& strategy,
                                  int stage_first_device, int batch_per_group,
                                  int micro_batches, bool recompute = false,
                                  int resident_micro_batches = -1) const;

  /// Estimates a stage: sum of per-layer iteration costs plus Slice-Gather
  /// transformation costs at strategy changes (2x per micro-batch: forward
  /// and its mirrored backward). Returns OutOfMemory if the stage exceeds
  /// the device budget. `recompute_flags` may be empty (no checkpointing).
  /// `check_memory` = false skips ONLY the budget comparison — the peak is
  /// still computed and recorded — so callers caching results across
  /// memory-budget variants (the costs never depend on the budget) can
  /// re-apply the check against their own cluster.
  Result<StageCost> EstimateStage(const ModelSpec& model, int first_layer,
                                  int num_layers,
                                  const std::vector<HybridStrategy>& strategies,
                                  int stage_first_device, int batch_per_group,
                                  int micro_batches,
                                  const std::vector<uint8_t>& recompute_flags =
                                      {},
                                  int resident_micro_batches = -1,
                                  bool check_memory = true) const;

  /// Estimates a full plan: GPipe pipelining of the stage costs,
  ///   iter = sum_i u_i + (m - 1) * max_i u_i,   u_i = stage_i / m.
  /// Returns OutOfMemory if any stage exceeds its budget. `check_memory` =
  /// false defers the per-stage budget checks exactly as in EstimateStage.
  Result<PlanCost> EstimatePlan(const ModelSpec& model,
                                const TrainingPlan& plan,
                                bool check_memory = true) const;

 private:
  /// task.Time() with the calibration scale applied; exactly task.Time()
  /// when no profile is installed (no multiply happens, so the result is
  /// bit-identical, not merely equal).
  double CommTaskSeconds(const CommTask& task) const;

  const ClusterSpec* cluster_;
  LayerCostModel layer_model_;
  EstimatorOptions options_;
  const calibrate::CalibrationProfile* calibration_ = nullptr;
  /// options_ with the profile's fitted overlap slowdown substituted in
  /// (a verbatim copy when calibration_ is nullptr or its slowdown unset);
  /// the copy used by CombineOverlap and IterationSeconds.
  EstimatorOptions effective_options_;
};

}  // namespace galvatron

#endif  // GALVATRON_ESTIMATOR_COST_ESTIMATOR_H_
