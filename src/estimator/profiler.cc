#include "estimator/profiler.h"

#include <algorithm>

#include "parallel/layer_cost_model.h"
#include "parallel/strategy.h"
#include "sim/engine.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace galvatron {

Profiler::Profiler(const ClusterSpec* cluster, ProfilerOptions options)
    : cluster_(cluster), options_(std::move(options)) {
  GALVATRON_CHECK(cluster != nullptr);
  GALVATRON_CHECK_GE(options_.probe_batches.size(), 2u);
  GALVATRON_CHECK_GE(options_.repetitions, 1);
}

Result<LayerProfile> Profiler::ProfileLayer(const LayerSpec& layer) const {
  LayerCostModel cost_model(cluster_);

  // Measure mean wall time per probe batch by executing the layer's
  // forward as a compute task on a single simulated device, with the
  // engine's jitter active (seeded per repetition).
  std::vector<double> mean_seconds;
  for (int batch : options_.probe_batches) {
    if (batch < 1) return Status::InvalidArgument("probe batch must be >= 1");
    GALVATRON_ASSIGN_OR_RETURN(
        LayerExecution exec,
        cost_model.Analyze(layer, HybridStrategy(), /*stage_first_device=*/0,
                           batch));
    double total = 0.0;
    for (int rep = 0; rep < options_.repetitions; ++rep) {
      SimEngine engine(/*overlap_slowdown=*/1.0, /*compute_jitter=*/0.06,
                       options_.seed + static_cast<uint64_t>(rep) * 977u);
      const int stream = engine.AddStream({0, StreamKind::kCompute});
      GALVATRON_RETURN_IF_ERROR(
          engine.AddTask({"probe", {stream}, exec.fwd_compute_sec, {}})
              .status());
      GALVATRON_ASSIGN_OR_RETURN(SimTimeline timeline, engine.Run());
      total += timeline.makespan;
    }
    mean_seconds.push_back(total / options_.repetitions);
  }

  // Least-squares affine fit t(b) = base + slope * b over the probes.
  const size_t n = options_.probe_batches.size();
  double sum_b = 0, sum_t = 0, sum_bb = 0, sum_bt = 0;
  for (size_t i = 0; i < n; ++i) {
    const double b = options_.probe_batches[i];
    const double t = mean_seconds[i];
    sum_b += b;
    sum_t += t;
    sum_bb += b * b;
    sum_bt += b * t;
  }
  const double denom = n * sum_bb - sum_b * sum_b;
  if (denom <= 0) return Status::Internal("degenerate probe batches");

  LayerProfile profile;
  profile.fwd_sec_per_sample = (n * sum_bt - sum_b * sum_t) / denom;
  profile.fwd_base_sec = (sum_t - profile.fwd_sec_per_sample * sum_b) /
                         static_cast<double>(n);
  profile.samples_measured =
      static_cast<int>(n) * options_.repetitions;
  // Jitter can push the fitted base slightly negative for tiny layers.
  profile.fwd_base_sec = std::max(profile.fwd_base_sec, 0.0);
  return profile;
}

Result<ProfileTable> Profiler::ProfileModel(const ModelSpec& model) const {
  ProfileTable table;
  for (const LayerSpec& layer : model.layers()) {
    if (table.count(layer.signature()) > 0) continue;
    GALVATRON_ASSIGN_OR_RETURN(LayerProfile profile, ProfileLayer(layer));
    table.emplace(layer.signature(), profile);
  }
  return table;
}

}  // namespace galvatron
