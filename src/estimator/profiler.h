#ifndef GALVATRON_ESTIMATOR_PROFILER_H_
#define GALVATRON_ESTIMATOR_PROFILER_H_

#include <cstdint>
#include <vector>

#include "cluster/cluster.h"
#include "ir/model.h"
#include "parallel/layer_cost_model.h"
#include "util/result.h"

namespace galvatron {

/// Options for profiling runs.
struct ProfilerOptions {
  /// Batch sizes measured per layer (two suffice for the affine fit; more
  /// average out the simulated kernel jitter).
  std::vector<int> probe_batches = {1, 2, 4, 8};
  /// Timing repetitions per probe (the paper averages 100 iterations).
  int repetitions = 10;
  uint64_t seed = 0xbeef;
};

/// Sec 3.4: "the per-sample computation time ... could be measured by
/// profiling real layer execution time on a single device". This profiler
/// executes each distinct layer shape on a single simulated device —
/// including the effects the analytic model abstracts away (kernel launch
/// overhead, timing jitter) — and fits the affine forward-time model the
/// estimator consumes via `LayerCostModel` / `CostEstimator` profile hooks.
class Profiler {
 public:
  /// `cluster` must outlive this object.
  explicit Profiler(const ClusterSpec* cluster, ProfilerOptions options = {});

  /// Measures one layer on a single device.
  Result<LayerProfile> ProfileLayer(const LayerSpec& layer) const;

  /// Profiles every distinct layer signature of `model` (repeated blocks
  /// are measured once).
  Result<ProfileTable> ProfileModel(const ModelSpec& model) const;

 private:
  const ClusterSpec* cluster_;
  ProfilerOptions options_;
};

}  // namespace galvatron

#endif  // GALVATRON_ESTIMATOR_PROFILER_H_
