#include "sim/engine.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace galvatron {

std::string_view TaskCategoryToString(TaskCategory category) {
  switch (category) {
    case TaskCategory::kForwardCompute: return "forward-compute";
    case TaskCategory::kBackwardCompute: return "backward-compute";
    case TaskCategory::kTpAllReduce: return "tp-allreduce";
    case TaskCategory::kDpAllReduce: return "dp-allreduce";
    case TaskCategory::kSdpGather: return "sdp-gather";
    case TaskCategory::kSdpReduceScatter: return "sdp-reduce-scatter";
    case TaskCategory::kTransformation: return "transformation";
    case TaskCategory::kP2P: return "p2p";
    case TaskCategory::kStageInit: return "stage-init";
    case TaskCategory::kOther: return "other";
  }
  return "other";
}

SimEngine::SimEngine(double overlap_slowdown, double compute_jitter,
                     uint64_t seed)
    : overlap_slowdown_(overlap_slowdown),
      compute_jitter_(compute_jitter),
      seed_(seed) {
  GALVATRON_CHECK_GE(overlap_slowdown_, 1.0);
  GALVATRON_CHECK_GE(compute_jitter_, 0.0);
  GALVATRON_CHECK_LT(compute_jitter_, 1.0);
}

int SimEngine::AddStream(const StreamSpec& spec) {
  streams_.push_back(spec);
  max_device_ = std::max(max_device_, spec.device);
  return static_cast<int>(streams_.size()) - 1;
}

Result<int> SimEngine::AddTask(SimTask task) {
  const int id = static_cast<int>(tasks_.size());
  if (task.streams.empty()) {
    return Status::InvalidArgument("task occupies no streams");
  }
  for (int s : task.streams) {
    if (s < 0 || s >= num_streams()) {
      return Status::InvalidArgument(StrFormat("unknown stream %d", s));
    }
  }
  for (int d : task.deps) {
    if (d < 0 || d >= id) {
      return Status::InvalidArgument(
          StrFormat("task %d depends on invalid task %d", id, d));
    }
  }
  if (task.work_sec < 0) {
    return Status::InvalidArgument("negative task duration");
  }
  if (task.memory_device > max_device_) {
    return Status::InvalidArgument("memory_device outside cluster");
  }
  tasks_.push_back(std::move(task));
  return id;
}

Result<SimTimeline> SimEngine::Run(bool record_lost_time) const {
  const int num_tasks_total = num_tasks();
  const int num_devices = max_device_ + 1;

  SimTimeline timeline;
  timeline.tasks.assign(static_cast<size_t>(num_tasks_total), TaskTiming{});
  timeline.peak_memory_bytes.assign(static_cast<size_t>(num_devices), 0);
  timeline.compute_busy_sec.assign(static_cast<size_t>(num_devices), 0.0);
  timeline.comm_busy_sec.assign(static_cast<size_t>(num_devices), 0.0);
  if (record_lost_time) {
    timeline.task_work_sec.assign(static_cast<size_t>(num_tasks_total), 0.0);
    timeline.task_lost_sec.assign(static_cast<size_t>(num_tasks_total), 0.0);
  }
  if (num_tasks_total == 0) return timeline;

  // Per-device current memory.
  std::vector<int64_t> memory(static_cast<size_t>(num_devices), 0);

  // Dependency bookkeeping.
  std::vector<int> pending_deps(static_cast<size_t>(num_tasks_total), 0);
  std::vector<std::vector<int>> dependents(
      static_cast<size_t>(num_tasks_total));
  for (int t = 0; t < num_tasks_total; ++t) {
    pending_deps[static_cast<size_t>(t)] =
        static_cast<int>(tasks_[static_cast<size_t>(t)].deps.size());
    for (int d : tasks_[static_cast<size_t>(t)].deps) {
      dependents[static_cast<size_t>(d)].push_back(t);
    }
  }

  // Stream occupancy: id of the running task or -1.
  std::vector<int> stream_task(static_cast<size_t>(num_streams()), -1);
  // The sibling stream of each stream (other stream on the same device),
  // for the contention rule; -1 if none.
  std::vector<int> sibling(static_cast<size_t>(num_streams()), -1);
  for (int a = 0; a < num_streams(); ++a) {
    for (int b = 0; b < num_streams(); ++b) {
      if (a != b &&
          streams_[static_cast<size_t>(a)].device ==
              streams_[static_cast<size_t>(b)].device &&
          streams_[static_cast<size_t>(a)].kind !=
              streams_[static_cast<size_t>(b)].kind) {
        sibling[static_cast<size_t>(a)] = b;
      }
    }
  }

  std::vector<double> remaining(static_cast<size_t>(num_tasks_total), 0.0);
  std::vector<bool> started(static_cast<size_t>(num_tasks_total), false);
  std::vector<bool> finished(static_cast<size_t>(num_tasks_total), false);
  std::vector<int> running;
  // Ready = deps satisfied, not yet started; kept sorted (program order).
  std::vector<int> ready;
  for (int t = 0; t < num_tasks_total; ++t) {
    if (pending_deps[static_cast<size_t>(t)] == 0) ready.push_back(t);
  }

  double now = 0.0;
  int completed = 0;
  constexpr double kEps = 1e-15;

  auto charge_memory = [&](int device, int64_t delta) {
    if (device < 0 || delta == 0) return;
    memory[static_cast<size_t>(device)] += delta;
    timeline.peak_memory_bytes[static_cast<size_t>(device)] =
        std::max(timeline.peak_memory_bytes[static_cast<size_t>(device)],
                 memory[static_cast<size_t>(device)]);
  };

  while (completed < num_tasks_total) {
    // Start every ready task whose streams are all idle, in program order.
    bool started_any = true;
    while (started_any) {
      started_any = false;
      for (size_t i = 0; i < ready.size(); ++i) {
        const int t = ready[i];
        const SimTask& task = tasks_[static_cast<size_t>(t)];
        bool free = true;
        for (int s : task.streams) {
          if (stream_task[static_cast<size_t>(s)] != -1) {
            free = false;
            break;
          }
        }
        if (!free) continue;
        for (int s : task.streams) stream_task[static_cast<size_t>(s)] = t;
        started[static_cast<size_t>(t)] = true;
        const double jitter =
            1.0 + compute_jitter_ *
                      (Rng::HashToUnit(seed_ ^ (static_cast<uint64_t>(t) *
                                                0x9e3779b97f4a7c15ULL)) -
                       0.5);
        remaining[static_cast<size_t>(t)] = task.work_sec * jitter;
        if (record_lost_time) {
          timeline.task_work_sec[static_cast<size_t>(t)] =
              remaining[static_cast<size_t>(t)];
        }
        timeline.tasks[static_cast<size_t>(t)].start = now;
        charge_memory(task.memory_device, task.start_memory_delta);
        running.push_back(t);
        ready.erase(ready.begin() + static_cast<long>(i));
        started_any = true;
        break;  // restart the scan: stream states changed
      }
    }

    if (running.empty()) {
      return Status::Internal(StrFormat(
          "simulation deadlock: %d of %d tasks completed", completed,
          num_tasks_total));
    }

    // Rates under contention: a stream is slowed when its sibling is busy;
    // a task moves at the slowest of its streams.
    auto task_rate = [&](int t) {
      const SimTask& task = tasks_[static_cast<size_t>(t)];
      double rate = 1.0;
      for (int s : task.streams) {
        const int sib = sibling[static_cast<size_t>(s)];
        const bool contended =
            sib >= 0 && stream_task[static_cast<size_t>(sib)] != -1;
        rate = std::min(rate, contended ? 1.0 / overlap_slowdown_ : 1.0);
      }
      return rate;
    };

    // Advance to the next completion.
    double dt = std::numeric_limits<double>::infinity();
    for (int t : running) {
      const double rate = task_rate(t);
      dt = std::min(dt, remaining[static_cast<size_t>(t)] / rate);
    }
    GALVATRON_CHECK(std::isfinite(dt));

    // Progress all running tasks; accumulate busy time.
    for (int t : running) {
      const double rate = task_rate(t);
      remaining[static_cast<size_t>(t)] -= rate * dt;
      if (record_lost_time) {
        timeline.task_lost_sec[static_cast<size_t>(t)] += (1.0 - rate) * dt;
      }
      const SimTask& task = tasks_[static_cast<size_t>(t)];
      for (int s : task.streams) {
        const StreamSpec& spec = streams_[static_cast<size_t>(s)];
        if (spec.kind == StreamKind::kCompute) {
          timeline.compute_busy_sec[static_cast<size_t>(spec.device)] += dt;
        } else {
          timeline.comm_busy_sec[static_cast<size_t>(spec.device)] += dt;
        }
      }
    }
    now += dt;

    // Complete finished tasks.
    for (size_t i = 0; i < running.size();) {
      const int t = running[i];
      if (remaining[static_cast<size_t>(t)] > kEps) {
        ++i;
        continue;
      }
      const SimTask& task = tasks_[static_cast<size_t>(t)];
      finished[static_cast<size_t>(t)] = true;
      timeline.tasks[static_cast<size_t>(t)].finish = now;
      charge_memory(task.memory_device, task.end_memory_delta);
      for (int s : task.streams) stream_task[static_cast<size_t>(s)] = -1;
      for (int dep : dependents[static_cast<size_t>(t)]) {
        if (--pending_deps[static_cast<size_t>(dep)] == 0) {
          ready.insert(std::upper_bound(ready.begin(), ready.end(), dep),
                       dep);
        }
      }
      ++completed;
      running.erase(running.begin() + static_cast<long>(i));
    }
  }

  timeline.makespan = now;
  return timeline;
}

}  // namespace galvatron
