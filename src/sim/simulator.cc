#include "sim/simulator.h"

#include <algorithm>
#include <map>
#include <tuple>
#include <vector>

#include "comm/collective.h"
#include "comm/group_pool.h"
#include "ir/dtype.h"
#include "parallel/layer_cost_model.h"
#include "parallel/transformation.h"
#include "sim/engine.h"
#include "util/logging.h"
#include "util/math_util.h"
#include "util/string_util.h"

namespace galvatron {

namespace {

/// Per-layer quantities the task builder needs, precomputed per stage.
struct LayerTasks {
  double fwd_compute = 0.0;
  double bwd_compute = 0.0;  // includes the forward re-run when recomputing
  double tp_ar_fwd = 0.0;    // blocking activation all-reduce, forward
  double tp_ar_bwd = 0.0;    // blocking activation all-reduce, backward
  double sdp_gather = 0.0;   // weight all-gather (fwd and bwd prefetch)
  double dp_allreduce = 0.0; // per-iteration gradient all-reduce
  double sdp_scatter = 0.0;  // per-iteration gradient reduce-scatter
  int64_t activation_bytes = 0;       // per micro-batch, per device
  int64_t state_bytes = 0;
  int64_t sdp_transient_bytes = 0;    // gathered ZeRO-3 weights
  int64_t recompute_transient_bytes = 0;  // rebuilt activations (ckpt)

  /// Comm metadata mirrored onto the emitted SimTasks so the trace carries
  /// (link class, collective kind, payload) per comm task — the calibration
  /// subsystem's sample key. TP all-reduce payloads accumulate across the
  /// merged per-op collectives; a group size of 0 means the dimension is
  /// inactive for this layer.
  int64_t tp_fwd_bytes = 0;
  int64_t tp_bwd_bytes = 0;
  int tp_group = 0;
  LinkClass tp_link = LinkClass::kPcie3;
  int64_t sdp_bytes = 0;
  int sdp_group = 0;
  LinkClass sdp_link = LinkClass::kPcie3;
  int64_t dp_bytes = 0;
  int dp_group = 0;
  LinkClass dp_link = LinkClass::kPcie3;
};

/// One schedule slot: the forward or backward pass of (stage, micro-batch).
/// `time` is the virtual schedule position used to create tasks in a valid
/// topological (and schedule-faithful) order.
struct ScheduleSlot {
  int time = 0;
  bool backward = false;
  int stage = 0;
  int micro = 0;
};

/// Virtual-time schedule. GPipe: all forwards, then a reverse-order drain of
/// backwards. 1F1B: backward of micro-batch k at stage s follows its
/// forward by the pipeline round-trip, bounding in-flight activations.
std::vector<ScheduleSlot> BuildSchedule(PipelineSchedule schedule,
                                        int num_stages, int micro_batches) {
  std::vector<ScheduleSlot> slots;
  const int bwd_base = 4 * (num_stages + micro_batches) + 4;
  for (int s = 0; s < num_stages; ++s) {
    for (int k = 0; k < micro_batches; ++k) {
      slots.push_back(ScheduleSlot{s + 2 * k, false, s, k});
      if (schedule == PipelineSchedule::kGPipe) {
        slots.push_back(ScheduleSlot{
            bwd_base + (num_stages - 1 - s) + 2 * (micro_batches - 1 - k),
            true, s, k});
      } else {
        slots.push_back(
            ScheduleSlot{(2 * num_stages - 1 - s) + 2 * k, true, s, k});
      }
    }
  }
  std::sort(slots.begin(), slots.end(),
            [](const ScheduleSlot& a, const ScheduleSlot& b) {
              return std::tie(a.time, a.backward, a.stage, a.micro) <
                     std::tie(b.time, b.backward, b.stage, b.micro);
            });
  return slots;
}

}  // namespace

Simulator::Simulator(const ClusterSpec* cluster, SimOptions options)
    : cluster_(cluster), options_(options) {
  GALVATRON_CHECK(cluster != nullptr);
}

Result<SimMetrics> Simulator::Run(const ModelSpec& model,
                                  const TrainingPlan& plan) const {
  return RunInternal(model, plan, nullptr);
}

Result<SimMetrics> Simulator::Run(const ModelSpec& model,
                                  const TrainingPlan& plan,
                                  SimTrace* trace) const {
  if (trace != nullptr) *trace = SimTrace{};
  return RunInternal(model, plan,
                     options_.record_trace ? trace : nullptr);
}

Result<SimMetrics> Simulator::RunInternal(
    const ModelSpec& model, const TrainingPlan& plan,
    SimTrace* trace) const {
  GALVATRON_RETURN_IF_ERROR(plan.Validate(model, cluster_->num_devices()));

  const int num_stages = plan.pp_degree();
  const int m = plan.num_micro_batches;
  const int mb_size = plan.MicroBatchSize();
  LayerCostModel cost_model(cluster_);

  // Register every communication group the plan needs (Sec 4's group pool);
  // the count is reported in the metrics.
  CommGroupPool pool;
  for (const StagePlan& stage : plan.stages) {
    for (const HybridStrategy& strategy : stage.layer_strategies) {
      for (const ParallelComponent& level : strategy.levels()) {
        auto groups = strategy.AllGroups(level.dim, stage.first_device);
        if (!groups.ok()) return groups.status();
        for (auto& group : *groups) {
          auto created = pool.GetOrCreate(std::move(group));
          if (!created.ok()) return created.status();
        }
      }
    }
  }

  SimEngine engine(options_.overlap_slowdown, options_.compute_jitter,
                   options_.seed);
  std::vector<int> compute_stream(static_cast<size_t>(num_stages));
  std::vector<int> comm_stream(static_cast<size_t>(num_stages));
  for (int s = 0; s < num_stages; ++s) {
    compute_stream[static_cast<size_t>(s)] =
        engine.AddStream(StreamSpec{s, StreamKind::kCompute});
    comm_stream[static_cast<size_t>(s)] =
        engine.AddStream(StreamSpec{s, StreamKind::kComm});
  }

  // Precompute per-stage per-layer task ingredients.
  std::vector<std::vector<LayerTasks>> stage_layers(
      static_cast<size_t>(num_stages));
  // Transformation costs between consecutive in-stage layers (per mb, one
  // direction); index i = boundary between layer i and i+1 of the stage.
  std::vector<std::vector<double>> stage_transforms(
      static_cast<size_t>(num_stages));
  for (int s = 0; s < num_stages; ++s) {
    const StagePlan& stage = plan.stages[static_cast<size_t>(s)];
    for (int i = 0; i < stage.num_layers; ++i) {
      const LayerSpec& layer = model.layer(stage.first_layer + i);
      const HybridStrategy& strategy =
          stage.layer_strategies[static_cast<size_t>(i)];
      GALVATRON_ASSIGN_OR_RETURN(
          LayerExecution exec,
          cost_model.Analyze(layer, strategy, stage.first_device, mb_size,
                             stage.RecomputeAt(i),
                             options_.tp_sequence_parallel));
      LayerTasks tasks;
      const double scale = options_.work_scale;
      tasks.fwd_compute = exec.fwd_compute_sec * scale;
      tasks.bwd_compute = exec.bwd_compute_sec * scale;
      tasks.activation_bytes = exec.activation_memory_bytes;
      tasks.state_bytes = exec.state_memory_bytes;
      tasks.sdp_transient_bytes = exec.sdp_transient_bytes;
      tasks.recompute_transient_bytes = exec.recompute_transient_bytes;
      for (const CommTask& comm : exec.fwd_comms) {
        if (comm.dim == ParallelDim::kTensor) {
          tasks.tp_ar_fwd += comm.Time() * scale;  // activation payloads
          tasks.tp_fwd_bytes += comm.bytes;
          tasks.tp_group = comm.group_size;
          tasks.tp_link = comm.link.cls;
        } else if (comm.dim == ParallelDim::kShardedData) {
          tasks.sdp_gather = comm.Time();  // weights: shape-independent
          tasks.sdp_bytes = comm.bytes;
          tasks.sdp_group = comm.group_size;
          tasks.sdp_link = comm.link.cls;
        }
      }
      for (const CommTask& comm : exec.bwd_comms) {
        if (comm.dim == ParallelDim::kTensor) {
          tasks.tp_ar_bwd += comm.Time() * scale;
          tasks.tp_bwd_bytes += comm.bytes;
          tasks.tp_group = comm.group_size;
          tasks.tp_link = comm.link.cls;
        } else if (comm.dim == ParallelDim::kData) {
          tasks.dp_allreduce = comm.Time();
          tasks.dp_bytes = comm.bytes;
          tasks.dp_group = comm.group_size;
          tasks.dp_link = comm.link.cls;
        } else if (comm.dim == ParallelDim::kShardedData &&
                   comm.kind == CollectiveKind::kReduceScatter) {
          tasks.sdp_scatter = comm.Time();
          tasks.sdp_bytes = comm.bytes;
          tasks.sdp_group = comm.group_size;
          tasks.sdp_link = comm.link.cls;
        }
      }
      stage_layers[static_cast<size_t>(s)].push_back(tasks);

      if (i > 0) {
        GALVATRON_ASSIGN_OR_RETURN(
            TransformationCost transform,
            ComputeTransformationCost(
                model.layer(stage.first_layer + i - 1),
                model.layer(stage.first_layer + i),
                stage.layer_strategies[static_cast<size_t>(i) - 1], strategy,
                stage.first_device, mb_size, *cluster_));
        stage_transforms[static_cast<size_t>(s)].push_back(transform.seconds);
      }
    }
  }

  auto add = [&](SimTask task) -> Result<int> { return engine.AddTask(task); };

  // Model states materialize before the iteration.
  for (int s = 0; s < num_stages; ++s) {
    int64_t states = 0;
    for (const LayerTasks& layer : stage_layers[static_cast<size_t>(s)]) {
      states += layer.state_bytes;
    }
    SimTask init;
    init.label = StrFormat("stage%d.init", s);
    init.streams = {compute_stream[static_cast<size_t>(s)]};
    init.work_sec = 0.0;
    init.start_memory_delta = states;
    init.memory_device = s;
    init.category = TaskCategory::kStageInit;
    init.stage = s;
    GALVATRON_RETURN_IF_ERROR(add(std::move(init)).status());
  }

  // fwd_exit / bwd_exit [s][k]: the task after which the pass is externally
  // visible. fwd_compute_task[s][k][l] wires backward deps.
  auto make_grid = [&] {
    return std::vector<std::vector<int>>(
        static_cast<size_t>(num_stages),
        std::vector<int>(static_cast<size_t>(m), -1));
  };
  std::vector<std::vector<int>> fwd_exit = make_grid();
  std::vector<std::vector<int>> bwd_exit = make_grid();
  std::vector<std::vector<std::vector<int>>> fwd_compute_task(
      static_cast<size_t>(num_stages),
      std::vector<std::vector<int>>(static_cast<size_t>(m)));
  // Backward completion order per stage, for the grad-sync trigger.
  std::vector<int> bwd_done_count(static_cast<size_t>(num_stages), 0);
  // Most recent backward compute task per (stage, layer), in schedule
  // order: gates the next micro-batch's backward SDP gather of the same
  // layer so gathered-weight copies cannot pile up across the drain.
  std::vector<std::vector<int>> prev_bwd_compute(
      static_cast<size_t>(num_stages));
  for (int s = 0; s < num_stages; ++s) {
    prev_bwd_compute[static_cast<size_t>(s)].assign(
        stage_layers[static_cast<size_t>(s)].size(), -1);
  }

  for (const ScheduleSlot& slot :
       BuildSchedule(plan.schedule, num_stages, m)) {
    const int s = slot.stage;
    const int k = slot.micro;
    const StagePlan& stage = plan.stages[static_cast<size_t>(s)];
    const auto& layers = stage_layers[static_cast<size_t>(s)];
    const int L = static_cast<int>(layers.size());

    if (!slot.backward) {
      // ---- forward pass of (s, k) --------------------------------------
      int entry_dep = -1;
      if (s > 0) {
        const StagePlan& prev = plan.stages[static_cast<size_t>(s) - 1];
        const LinkSpec& link = cluster_->LinkBetween(
            prev.first_device + prev.num_devices - 1, stage.first_device);
        SimTask p2p;
        p2p.label = StrFormat("p2p_fwd.s%d.mb%d", s, k);
        p2p.streams = {comm_stream[static_cast<size_t>(s) - 1],
                       comm_stream[static_cast<size_t>(s)]};
        p2p.comm_bytes = model.layer(stage.first_layer).input_bytes() * mb_size;
        p2p.work_sec =
            CollectiveTime(CollectiveKind::kPointToPoint, p2p.comm_bytes, 2,
                           link) +
            cluster_->pipeline_rpc_overhead_sec();
        p2p.deps = {
            fwd_exit[static_cast<size_t>(s) - 1][static_cast<size_t>(k)]};
        p2p.category = TaskCategory::kP2P;
        p2p.stage = s;
        p2p.micro_batch = k;
        p2p.comm_kind = CollectiveKind::kPointToPoint;
        p2p.comm_link = link.cls;
        p2p.comm_group_size = 2;
        GALVATRON_ASSIGN_OR_RETURN(entry_dep, add(std::move(p2p)));
      }
      // 1F1B in-flight cap: this forward waits for the backward that frees
      // its activation slot.
      const int in_flight = plan.InFlightMicroBatches(s);
      const int freeing_micro = k - in_flight;

      int chain = entry_dep;
      for (int l = 0; l < L; ++l) {
        const LayerTasks& layer = layers[static_cast<size_t>(l)];

        if (l > 0 && stage_transforms[static_cast<size_t>(s)]
                                     [static_cast<size_t>(l) - 1] > 0) {
          SimTask transform;
          transform.label = StrFormat("xform_fwd.s%d.mb%d.l%d", s, k, l);
          transform.streams = {comm_stream[static_cast<size_t>(s)]};
          transform.work_sec = stage_transforms[static_cast<size_t>(s)]
                                               [static_cast<size_t>(l) - 1];
          if (chain >= 0) transform.deps = {chain};
          transform.category = TaskCategory::kTransformation;
          transform.stage = s;
          transform.micro_batch = k;
          transform.layer = stage.first_layer + l;
          GALVATRON_ASSIGN_OR_RETURN(chain, add(std::move(transform)));
        }

        if (layer.sdp_gather > 0) {
          SimTask gather;
          gather.label = StrFormat("sdp_ag_fwd.s%d.mb%d.l%d", s, k, l);
          gather.streams = {comm_stream[static_cast<size_t>(s)]};
          gather.work_sec = layer.sdp_gather;
          std::vector<int> gather_deps;
          if (chain >= 0) gather_deps.push_back(chain);
          // ZeRO-3 holds at most the in-use gathered weights plus one
          // prefetch: micro-batch k's gather of layer l waits for (k-1)'s
          // compute of the same layer to release its copy. Without this
          // gate the comm stream front-runs the pipeline and piles up one
          // gathered copy per queued micro-batch.
          if (k > 0) {
            gather_deps.push_back(
                fwd_compute_task[static_cast<size_t>(s)]
                                [static_cast<size_t>(k) - 1]
                                [static_cast<size_t>(l)]);
          }
          gather.deps = std::move(gather_deps);
          gather.start_memory_delta = layer.sdp_transient_bytes;
          gather.memory_device = s;
          gather.category = TaskCategory::kSdpGather;
          gather.stage = s;
          gather.micro_batch = k;
          gather.layer = stage.first_layer + l;
          gather.comm_kind = CollectiveKind::kAllGather;
          gather.comm_link = layer.sdp_link;
          gather.comm_bytes = layer.sdp_bytes;
          gather.comm_group_size = layer.sdp_group;
          GALVATRON_ASSIGN_OR_RETURN(chain, add(std::move(gather)));
        }

        SimTask compute;
        compute.label = StrFormat("fwd.s%d.mb%d.l%d", s, k, l);
        compute.streams = {compute_stream[static_cast<size_t>(s)]};
        compute.work_sec = layer.fwd_compute;
        std::vector<int> deps;
        if (chain >= 0) deps.push_back(chain);
        if (freeing_micro >= 0) {
          deps.push_back(bwd_exit[static_cast<size_t>(s)]
                                 [static_cast<size_t>(freeing_micro)]);
        }
        compute.deps = std::move(deps);
        // Stash the (possibly input-only) activation; checkpointed layers
        // also materialize their internals transiently during forward.
        compute.start_memory_delta =
            layer.activation_bytes + layer.recompute_transient_bytes;
        compute.end_memory_delta =
            -(layer.recompute_transient_bytes + layer.sdp_transient_bytes);
        compute.memory_device = s;
        compute.category = TaskCategory::kForwardCompute;
        compute.stage = s;
        compute.micro_batch = k;
        compute.layer = stage.first_layer + l;
        GALVATRON_ASSIGN_OR_RETURN(chain, add(std::move(compute)));
        fwd_compute_task[static_cast<size_t>(s)][static_cast<size_t>(k)]
            .push_back(chain);

        if (layer.tp_ar_fwd > 0) {
          SimTask ar;
          ar.label = StrFormat("tp_ar_fwd.s%d.mb%d.l%d", s, k, l);
          ar.streams = {comm_stream[static_cast<size_t>(s)]};
          ar.work_sec = layer.tp_ar_fwd;
          ar.deps = {chain};
          ar.category = TaskCategory::kTpAllReduce;
          ar.stage = s;
          ar.micro_batch = k;
          ar.layer = stage.first_layer + l;
          ar.comm_kind = CollectiveKind::kAllReduce;
          ar.comm_link = layer.tp_link;
          ar.comm_bytes = layer.tp_fwd_bytes;
          ar.comm_group_size = layer.tp_group;
          GALVATRON_ASSIGN_OR_RETURN(chain, add(std::move(ar)));
        }
      }
      fwd_exit[static_cast<size_t>(s)][static_cast<size_t>(k)] = chain;
      continue;
    }

    // ---- backward pass of (s, k) ---------------------------------------
    int entry_dep;
    if (s == num_stages - 1) {
      entry_dep = fwd_exit[static_cast<size_t>(s)][static_cast<size_t>(k)];
    } else {
      const StagePlan& next = plan.stages[static_cast<size_t>(s) + 1];
      const LinkSpec& link = cluster_->LinkBetween(
          stage.first_device + stage.num_devices - 1, next.first_device);
      SimTask p2p;
      p2p.label = StrFormat("p2p_bwd.s%d.mb%d", s, k);
      p2p.streams = {comm_stream[static_cast<size_t>(s)],
                     comm_stream[static_cast<size_t>(s) + 1]};
      p2p.comm_bytes = model.layer(next.first_layer).input_bytes() * mb_size;
      p2p.work_sec =
          CollectiveTime(CollectiveKind::kPointToPoint, p2p.comm_bytes, 2,
                         link) +
          cluster_->pipeline_rpc_overhead_sec();
      p2p.deps = {
          bwd_exit[static_cast<size_t>(s) + 1][static_cast<size_t>(k)]};
      p2p.category = TaskCategory::kP2P;
      p2p.stage = s;
      p2p.micro_batch = k;
      p2p.comm_kind = CollectiveKind::kPointToPoint;
      p2p.comm_link = link.cls;
      p2p.comm_group_size = 2;
      GALVATRON_ASSIGN_OR_RETURN(entry_dep, add(std::move(p2p)));
    }

    const bool last_micro_of_stage =
        ++bwd_done_count[static_cast<size_t>(s)] == m;

    int chain = entry_dep;
    // Gate of the previously processed (l+1) backward compute: the bwd SDP
    // gather prefetches against it, overlapping that layer's compute.
    int prev_compute_gate = entry_dep;
    for (int l = L - 1; l >= 0; --l) {
      const LayerTasks& layer = layers[static_cast<size_t>(l)];

      if (l < L - 1 && stage_transforms[static_cast<size_t>(s)]
                                       [static_cast<size_t>(l)] > 0) {
        SimTask transform;
        transform.label = StrFormat("xform_bwd.s%d.mb%d.l%d", s, k, l);
        transform.streams = {comm_stream[static_cast<size_t>(s)]};
        transform.work_sec =
            stage_transforms[static_cast<size_t>(s)][static_cast<size_t>(l)];
        if (chain >= 0) transform.deps = {chain};
        transform.category = TaskCategory::kTransformation;
        transform.stage = s;
        transform.micro_batch = k;
        transform.layer = stage.first_layer + l + 1;
        GALVATRON_ASSIGN_OR_RETURN(chain, add(std::move(transform)));
      }

      int gather_id = -1;
      if (layer.sdp_gather > 0) {
        SimTask gather;
        gather.label = StrFormat("sdp_ag_bwd.s%d.mb%d.l%d", s, k, l);
        gather.streams = {comm_stream[static_cast<size_t>(s)]};
        gather.work_sec = layer.sdp_gather;
        // Prefetch: issue as soon as the previous layer's backward compute
        // *starts* (ZeRO-3 prefetching), not when it finishes — but never
        // more than one micro-batch ahead of this layer's own backward, or
        // gathered-weight copies pile up across the pipeline drain.
        std::vector<int> gather_deps;
        if (prev_compute_gate >= 0) gather_deps.push_back(prev_compute_gate);
        if (prev_bwd_compute[static_cast<size_t>(s)][static_cast<size_t>(l)] >=
            0) {
          gather_deps.push_back(
              prev_bwd_compute[static_cast<size_t>(s)][static_cast<size_t>(l)]);
        }
        gather.deps = std::move(gather_deps);
        gather.start_memory_delta = layer.sdp_transient_bytes;
        gather.memory_device = s;
        gather.category = TaskCategory::kSdpGather;
        gather.stage = s;
        gather.micro_batch = k;
        gather.layer = stage.first_layer + l;
        gather.comm_kind = CollectiveKind::kAllGather;
        gather.comm_link = layer.sdp_link;
        gather.comm_bytes = layer.sdp_bytes;
        gather.comm_group_size = layer.sdp_group;
        GALVATRON_ASSIGN_OR_RETURN(gather_id, add(std::move(gather)));
      }

      SimTask compute;
      compute.label = StrFormat("bwd.s%d.mb%d.l%d", s, k, l);
      compute.streams = {compute_stream[static_cast<size_t>(s)]};
      compute.work_sec = layer.bwd_compute;
      std::vector<int> deps;
      if (chain >= 0) deps.push_back(chain);
      if (gather_id >= 0) deps.push_back(gather_id);
      deps.push_back(fwd_compute_task[static_cast<size_t>(s)]
                                     [static_cast<size_t>(k)]
                                     [static_cast<size_t>(l)]);
      // GPipe flushes: no backward runs at a stage until the stage's last
      // forward finished. BuildSchedule's virtual times express this, but
      // only a dependency enforces it in the event graph — without it the
      // drain starts early and the stage never holds all m activations.
      if (plan.schedule == PipelineSchedule::kGPipe) {
        deps.push_back(fwd_compute_task[static_cast<size_t>(s)]
                                       [static_cast<size_t>(m) - 1]
                                       [static_cast<size_t>(l)]);
      }
      prev_compute_gate = chain;
      compute.deps = std::move(deps);
      // Checkpointed layers rebuild their internals for the duration of
      // the backward; everything of this (layer, micro-batch) frees after.
      compute.start_memory_delta = layer.recompute_transient_bytes;
      compute.end_memory_delta =
          -(layer.activation_bytes + layer.recompute_transient_bytes +
            layer.sdp_transient_bytes);
      compute.memory_device = s;
      compute.category = TaskCategory::kBackwardCompute;
      compute.stage = s;
      compute.micro_batch = k;
      compute.layer = stage.first_layer + l;
      GALVATRON_ASSIGN_OR_RETURN(chain, add(std::move(compute)));
      prev_bwd_compute[static_cast<size_t>(s)][static_cast<size_t>(l)] = chain;

      if (layer.tp_ar_bwd > 0) {
        SimTask ar;
        ar.label = StrFormat("tp_ar_bwd.s%d.mb%d.l%d", s, k, l);
        ar.streams = {comm_stream[static_cast<size_t>(s)]};
        ar.work_sec = layer.tp_ar_bwd;
        ar.deps = {chain};
        ar.category = TaskCategory::kTpAllReduce;
        ar.stage = s;
        ar.micro_batch = k;
        ar.layer = stage.first_layer + l;
        ar.comm_kind = CollectiveKind::kAllReduce;
        ar.comm_link = layer.tp_link;
        ar.comm_bytes = layer.tp_bwd_bytes;
        ar.comm_group_size = layer.tp_group;
        GALVATRON_ASSIGN_OR_RETURN(chain, add(std::move(ar)));
      }

      // Gradient synchronization fires after this layer's last micro-batch
      // and overlaps the remaining backward compute — the contention case
      // of Sec 3.4.
      if (last_micro_of_stage) {
        if (layer.dp_allreduce > 0) {
          SimTask ar;
          ar.label = StrFormat("dp_ar.s%d.l%d", s, l);
          ar.streams = {comm_stream[static_cast<size_t>(s)]};
          ar.work_sec = layer.dp_allreduce;
          ar.deps = {chain};
          ar.category = TaskCategory::kDpAllReduce;
          ar.stage = s;
          ar.layer = stage.first_layer + l;
          ar.comm_kind = CollectiveKind::kAllReduce;
          ar.comm_link = layer.dp_link;
          ar.comm_bytes = layer.dp_bytes;
          ar.comm_group_size = layer.dp_group;
          GALVATRON_RETURN_IF_ERROR(add(std::move(ar)).status());
        }
        if (layer.sdp_scatter > 0) {
          SimTask rs;
          rs.label = StrFormat("sdp_rs.s%d.l%d", s, l);
          rs.streams = {comm_stream[static_cast<size_t>(s)]};
          rs.work_sec = layer.sdp_scatter;
          rs.deps = {chain};
          rs.category = TaskCategory::kSdpReduceScatter;
          rs.stage = s;
          rs.layer = stage.first_layer + l;
          rs.comm_kind = CollectiveKind::kReduceScatter;
          rs.comm_link = layer.sdp_link;
          rs.comm_bytes = layer.sdp_bytes;
          rs.comm_group_size = layer.sdp_group;
          GALVATRON_RETURN_IF_ERROR(add(std::move(rs)).status());
        }
      }
    }
    bwd_exit[static_cast<size_t>(s)][static_cast<size_t>(k)] = chain;
  }

  GALVATRON_ASSIGN_OR_RETURN(
      SimTimeline timeline, engine.Run(/*record_lost_time=*/trace != nullptr));
  if (trace != nullptr) {
    trace->overlap_slowdown = options_.overlap_slowdown;
    trace->compute_jitter = options_.compute_jitter;
    trace->seed = options_.seed;
    trace->streams.reserve(static_cast<size_t>(engine.num_streams()));
    for (int s = 0; s < engine.num_streams(); ++s) {
      trace->streams.push_back(engine.stream(s));
    }
    trace->tasks.reserve(static_cast<size_t>(engine.num_tasks()));
    for (int t = 0; t < engine.num_tasks(); ++t) {
      trace->tasks.push_back(engine.task(t));
    }
    trace->timeline = timeline;
  }

  SimMetrics metrics;
  metrics.iteration_seconds = timeline.makespan;
  metrics.throughput_samples_per_sec =
      plan.global_batch / timeline.makespan;
  metrics.num_tasks = engine.num_tasks();
  metrics.num_comm_groups = pool.num_groups();
  metrics.stage_peak_memory_bytes = timeline.peak_memory_bytes;
  for (int64_t peak : timeline.peak_memory_bytes) {
    metrics.max_peak_memory_bytes =
        std::max(metrics.max_peak_memory_bytes, peak);
  }
  metrics.stage_compute_busy_sec = timeline.compute_busy_sec;
  metrics.stage_comm_busy_sec = timeline.comm_busy_sec;
  for (double busy : timeline.compute_busy_sec) {
    metrics.compute_busy_sec += busy;
  }
  for (double busy : timeline.comm_busy_sec) {
    metrics.comm_busy_sec += busy;
  }
  if (options_.check_memory) {
    for (int s2 = 0; s2 < num_stages; ++s2) {
      const StagePlan& stage2 = plan.stages[static_cast<size_t>(s2)];
      const int64_t budget = cluster_->MinMemoryInRange(
          stage2.first_device, stage2.num_devices);
      if (timeline.peak_memory_bytes[static_cast<size_t>(s2)] > budget) {
        metrics.oom = true;
      }
    }
  }
  return metrics;
}

}  // namespace galvatron
