#ifndef GALVATRON_SIM_ENGINE_H_
#define GALVATRON_SIM_ENGINE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/link.h"
#include "comm/collective.h"
#include "util/result.h"

namespace galvatron {

/// A stream is a serial execution lane on a device. Each simulated device
/// has one compute stream and one communication stream, mirroring how NCCL
/// collectives run concurrently with compute kernels on a GPU.
enum class StreamKind { kCompute, kComm };

struct StreamSpec {
  int device = 0;
  StreamKind kind = StreamKind::kCompute;
};

/// Cost taxonomy of the paper's Eq. 1 decomposition plus pipeline plumbing:
/// per-layer compute (forward/backward), intra-layer communication (TP
/// activation all-reduce, DP gradient all-reduce, ZeRO-3 weight gather /
/// gradient reduce-scatter), cross-layer Slice-Gather transformation, and
/// the inter-stage P2P / bookkeeping tasks the schedule adds around them.
/// Every simulator-built task carries one of these so the trace subsystem
/// (src/trace/) can attribute wall time per category.
enum class TaskCategory {
  kForwardCompute,
  kBackwardCompute,
  kTpAllReduce,
  kDpAllReduce,
  kSdpGather,
  kSdpReduceScatter,
  kTransformation,
  kP2P,
  kStageInit,
  kOther,
};

inline constexpr int kNumTaskCategories = 10;

/// Stable kebab-case name ("forward-compute", ...), used as the Chrome
/// trace "cat" field and as attribution-report keys.
std::string_view TaskCategoryToString(TaskCategory category);

/// One unit of simulated work. A task occupies one or more streams for its
/// duration (collectives occupy the comm streams of every participant) and
/// starts only when all dependencies completed and all its streams are idle.
struct SimTask {
  std::string label;
  std::vector<int> streams;   // stream ids this task occupies
  double work_sec = 0.0;      // duration at full rate
  std::vector<int> deps;      // task ids that must complete first

  /// Memory accounting hooks (per device): applied when the task starts /
  /// completes. Negative deltas free memory.
  int64_t start_memory_delta = 0;
  int64_t end_memory_delta = 0;
  int memory_device = -1;  // device charged; -1 = none

  /// Attribution metadata (ignored by the engine; consumed by src/trace/).
  /// Coordinates are -1 where the dimension does not apply (e.g. gradient
  /// sync has no micro-batch; stage init has no layer).
  TaskCategory category = TaskCategory::kOther;
  int stage = -1;
  int micro_batch = -1;
  int layer = -1;

  /// Communication metadata (ignored by the engine; consumed by the trace
  /// recorder and src/calibrate/). Set only on collective tasks —
  /// comm_group_size == 0 marks a non-communication task. `comm_bytes` is
  /// the full payload the task moves (merged TP all-reduces accumulate);
  /// `work_sec` is the matching analytic prediction, so (work_sec,
  /// observed elapsed) pairs keyed by (comm_link, comm_kind, comm_bytes)
  /// are exactly the samples the calibration fit consumes.
  CollectiveKind comm_kind = CollectiveKind::kAllReduce;
  LinkClass comm_link = LinkClass::kPcie3;
  int64_t comm_bytes = 0;
  int comm_group_size = 0;
};

/// Completed-run timing for one task.
struct TaskTiming {
  double start = 0.0;
  double finish = 0.0;
};

/// Result of a simulation run.
struct SimTimeline {
  double makespan = 0.0;
  std::vector<TaskTiming> tasks;            // indexed by task id
  std::vector<int64_t> peak_memory_bytes;   // per device
  std::vector<double> compute_busy_sec;     // per device
  std::vector<double> comm_busy_sec;        // per device

  /// Filled only by Run(/*record_lost_time=*/true); empty otherwise.
  /// task_work_sec[t] is the jitter-scaled duration task t performed at
  /// full rate; task_lost_sec[t] integrates the seconds the task spent
  /// waiting on the contention slowdown, i.e. sum over its piecewise-
  /// constant rate intervals of (1 - rate) * dt. By construction
  /// finish - start = task_work_sec + task_lost_sec for every task.
  std::vector<double> task_work_sec;        // indexed by task id
  std::vector<double> task_lost_sec;        // indexed by task id
};

/// Discrete-event engine with compute/communication contention: while both
/// streams of a device are busy, tasks on that device progress at
/// 1/overlap_slowdown of full speed — the GPU SM contention effect the
/// paper measures at ~1.3x (Sec 3.4). A multi-stream task (collective)
/// progresses at the slowest of its streams' rates, modelling the
/// synchronous nature of ring collectives.
///
/// Scheduling: ready tasks start in task-id order (program order) as their
/// streams free up, which keeps multi-stream task acquisition deadlock-free.
class SimEngine {
 public:
  /// `overlap_slowdown` >= 1; jitter in [0, 1): task durations are scaled
  /// by 1 + jitter * (hash(id) - 0.5), a deterministic stand-in for kernel
  /// timing variance (seeded so runs are reproducible).
  SimEngine(double overlap_slowdown, double compute_jitter, uint64_t seed);

  /// Registers a stream; returns its id.
  int AddStream(const StreamSpec& spec);

  /// Registers a task; returns its id. Dependencies must already exist.
  Result<int> AddTask(SimTask task);

  int num_streams() const { return static_cast<int>(streams_.size()); }
  int num_tasks() const { return static_cast<int>(tasks_.size()); }
  const SimTask& task(int id) const {
    return tasks_[static_cast<size_t>(id)];
  }
  const StreamSpec& stream(int id) const {
    return streams_[static_cast<size_t>(id)];
  }

  /// Runs the whole task graph to completion. Errors on dependency cycles
  /// (reported as Internal: deadlock). When `record_lost_time` is set the
  /// timeline additionally carries per-task work/contention-lost seconds
  /// (SimTimeline::task_work_sec / task_lost_sec) for the trace subsystem;
  /// the scheduling arithmetic is identical either way, so a recording run
  /// produces bit-identical timings to a non-recording one.
  Result<SimTimeline> Run(bool record_lost_time = false) const;

 private:
  double overlap_slowdown_;
  double compute_jitter_;
  uint64_t seed_;
  std::vector<StreamSpec> streams_;
  std::vector<SimTask> tasks_;
  int max_device_ = -1;
};

}  // namespace galvatron

#endif  // GALVATRON_SIM_ENGINE_H_
