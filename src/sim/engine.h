#ifndef GALVATRON_SIM_ENGINE_H_
#define GALVATRON_SIM_ENGINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"

namespace galvatron {

/// A stream is a serial execution lane on a device. Each simulated device
/// has one compute stream and one communication stream, mirroring how NCCL
/// collectives run concurrently with compute kernels on a GPU.
enum class StreamKind { kCompute, kComm };

struct StreamSpec {
  int device = 0;
  StreamKind kind = StreamKind::kCompute;
};

/// One unit of simulated work. A task occupies one or more streams for its
/// duration (collectives occupy the comm streams of every participant) and
/// starts only when all dependencies completed and all its streams are idle.
struct SimTask {
  std::string label;
  std::vector<int> streams;   // stream ids this task occupies
  double work_sec = 0.0;      // duration at full rate
  std::vector<int> deps;      // task ids that must complete first

  /// Memory accounting hooks (per device): applied when the task starts /
  /// completes. Negative deltas free memory.
  int64_t start_memory_delta = 0;
  int64_t end_memory_delta = 0;
  int memory_device = -1;  // device charged; -1 = none
};

/// Completed-run timing for one task.
struct TaskTiming {
  double start = 0.0;
  double finish = 0.0;
};

/// Result of a simulation run.
struct SimTimeline {
  double makespan = 0.0;
  std::vector<TaskTiming> tasks;            // indexed by task id
  std::vector<int64_t> peak_memory_bytes;   // per device
  std::vector<double> compute_busy_sec;     // per device
  std::vector<double> comm_busy_sec;        // per device
};

/// Discrete-event engine with compute/communication contention: while both
/// streams of a device are busy, tasks on that device progress at
/// 1/overlap_slowdown of full speed — the GPU SM contention effect the
/// paper measures at ~1.3x (Sec 3.4). A multi-stream task (collective)
/// progresses at the slowest of its streams' rates, modelling the
/// synchronous nature of ring collectives.
///
/// Scheduling: ready tasks start in task-id order (program order) as their
/// streams free up, which keeps multi-stream task acquisition deadlock-free.
class SimEngine {
 public:
  /// `overlap_slowdown` >= 1; jitter in [0, 1): task durations are scaled
  /// by 1 + jitter * (hash(id) - 0.5), a deterministic stand-in for kernel
  /// timing variance (seeded so runs are reproducible).
  SimEngine(double overlap_slowdown, double compute_jitter, uint64_t seed);

  /// Registers a stream; returns its id.
  int AddStream(const StreamSpec& spec);

  /// Registers a task; returns its id. Dependencies must already exist.
  Result<int> AddTask(SimTask task);

  int num_streams() const { return static_cast<int>(streams_.size()); }
  int num_tasks() const { return static_cast<int>(tasks_.size()); }
  const SimTask& task(int id) const {
    return tasks_[static_cast<size_t>(id)];
  }
  const StreamSpec& stream(int id) const {
    return streams_[static_cast<size_t>(id)];
  }

  /// Runs the whole task graph to completion. Errors on dependency cycles
  /// (reported as Internal: deadlock).
  Result<SimTimeline> Run() const;

 private:
  double overlap_slowdown_;
  double compute_jitter_;
  uint64_t seed_;
  std::vector<StreamSpec> streams_;
  std::vector<SimTask> tasks_;
  int max_device_ = -1;
};

}  // namespace galvatron

#endif  // GALVATRON_SIM_ENGINE_H_
