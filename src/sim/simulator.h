#ifndef GALVATRON_SIM_SIMULATOR_H_
#define GALVATRON_SIM_SIMULATOR_H_

#include <cstdint>
#include <vector>

#include <string>

#include "cluster/cluster.h"
#include "ir/model.h"
#include "parallel/plan.h"
#include "sim/engine.h"
#include "util/result.h"

namespace galvatron {

/// Simulator knobs. The defaults model the effects the analytic estimator
/// either models (contention slowdown) or deliberately omits (per-task
/// timing jitter), producing the estimator-vs-reality gap of Figure 3.
struct SimOptions {
  /// Contention slowdown while a device's compute and comm streams are
  /// both busy (the paper measures ~1.3x).
  double overlap_slowdown = 1.3;
  /// Deterministic per-task duration noise (fraction, +-jitter/2).
  double compute_jitter = 0.06;
  uint64_t seed = 0x5eed;
  /// When true, a plan whose simulated peak memory exceeds the device
  /// budget yields oom=true in the metrics.
  bool check_memory = true;
  /// Execute TP regions with Megatron sequence parallelism (must match the
  /// estimator option the plan was searched with).
  bool tp_sequence_parallel = false;
  /// Scales all length-dependent work (compute, activation collectives,
  /// boundary transfers) — the per-iteration knob variable-length
  /// workloads turn (weight collectives are shape-independent).
  double work_scale = 1.0;
};

/// Measured results of simulating one training iteration.
struct SimMetrics {
  double iteration_seconds = 0.0;
  double throughput_samples_per_sec = 0.0;
  bool oom = false;
  /// Peak bytes per pipeline stage (devices within a stage are symmetric;
  /// one representative device is simulated per stage).
  std::vector<int64_t> stage_peak_memory_bytes;
  int64_t max_peak_memory_bytes = 0;
  int num_tasks = 0;
  int num_comm_groups = 0;  // distinct NCCL-style groups the plan needs
  double compute_busy_sec = 0.0;  // summed over stages
  double comm_busy_sec = 0.0;
};

/// Discrete-event execution of a hybrid-parallel training iteration — the
/// stand-in for the paper's real 8/16/64-GPU testbeds (see DESIGN.md,
/// substitution table).
///
/// The GPipe schedule is lowered to a task graph per stage: per micro-batch
/// forward compute, TP all-reduces, SDP weight gathers, Slice-Gather
/// transformations and inter-stage P2P sends, then the mirrored backward
/// with gradient synchronization (DP all-reduce / SDP reduce-scatter) firing
/// after each layer's last micro-batch — which is what overlaps it with the
/// remaining backward compute and triggers the contention slowdown.
///
/// Devices within a stage's group run symmetric timelines, so one
/// representative device per stage is simulated; collective durations carry
/// the full group size and topology-resolved bottleneck links.
class Simulator {
 public:
  /// `cluster` must outlive this object.
  explicit Simulator(const ClusterSpec* cluster, SimOptions options = {});

  /// Simulates one training iteration of `plan`. Invalid plans error;
  /// memory overruns are reported via SimMetrics::oom.
  Result<SimMetrics> Run(const ModelSpec& model,
                         const TrainingPlan& plan) const;

  /// Like Run, but also renders the task timeline as a Chrome-tracing JSON
  /// document (load in chrome://tracing or https://ui.perfetto.dev): one
  /// track per (stage, stream), one slice per compute/communication task.
  Result<SimMetrics> RunWithTrace(const ModelSpec& model,
                                  const TrainingPlan& plan,
                                  std::string* chrome_trace_json) const;

 private:
  Result<SimMetrics> RunInternal(const ModelSpec& model,
                                 const TrainingPlan& plan,
                                 std::string* chrome_trace_json) const;

  const ClusterSpec* cluster_;
  SimOptions options_;
};

/// Serializes a completed timeline to the Chrome trace-event format.
std::string TimelineToChromeTrace(const SimEngine& engine,
                                  const SimTimeline& timeline);

}  // namespace galvatron

#endif  // GALVATRON_SIM_SIMULATOR_H_
