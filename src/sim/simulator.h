#ifndef GALVATRON_SIM_SIMULATOR_H_
#define GALVATRON_SIM_SIMULATOR_H_

#include <cstdint>
#include <vector>

#include <string>

#include "cluster/cluster.h"
#include "ir/model.h"
#include "parallel/plan.h"
#include "sim/engine.h"
#include "util/result.h"

namespace galvatron {

/// Simulator knobs. The defaults model the effects the analytic estimator
/// either models (contention slowdown) or deliberately omits (per-task
/// timing jitter), producing the estimator-vs-reality gap of Figure 3.
struct SimOptions {
  /// Contention slowdown while a device's compute and comm streams are
  /// both busy (the paper measures ~1.3x).
  double overlap_slowdown = 1.3;
  /// Deterministic per-task duration noise (fraction, +-jitter/2).
  double compute_jitter = 0.06;
  uint64_t seed = 0x5eed;
  /// When true, a plan whose simulated peak memory exceeds the device
  /// budget yields oom=true in the metrics.
  bool check_memory = true;
  /// Execute TP regions with Megatron sequence parallelism (must match the
  /// estimator option the plan was searched with).
  bool tp_sequence_parallel = false;
  /// Scales all length-dependent work (compute, activation collectives,
  /// boundary transfers) — the per-iteration knob variable-length
  /// workloads turn (weight collectives are shape-independent).
  double work_scale = 1.0;
  /// When true, Run(model, plan, &trace) captures the full execution trace
  /// (every task with category/coordinates/timing plus per-task contention-
  /// lost seconds) for the src/trace/ subsystem. Off by default: the
  /// non-recording path performs identical scheduling arithmetic, so
  /// SimMetrics are byte-identical with the flag on or off.
  bool record_trace = false;
};

/// Measured results of simulating one training iteration.
struct SimMetrics {
  double iteration_seconds = 0.0;
  double throughput_samples_per_sec = 0.0;
  bool oom = false;
  /// Peak bytes per pipeline stage (devices within a stage are symmetric;
  /// one representative device is simulated per stage).
  std::vector<int64_t> stage_peak_memory_bytes;
  int64_t max_peak_memory_bytes = 0;
  int num_tasks = 0;
  int num_comm_groups = 0;  // distinct NCCL-style groups the plan needs
  /// Busy-time convention: one REPRESENTATIVE device is simulated per
  /// pipeline stage, so these scalars are sums over the per-stage
  /// representatives — NOT cluster-wide totals. A stage whose group spans
  /// g devices contributes the busy time of one of them; scale each
  /// stage's entry of the vectors below by its group width if you want a
  /// cluster aggregate. Utilization of stage s is
  /// stage_*_busy_sec[s] / iteration_seconds.
  double compute_busy_sec = 0.0;  // sum of stage_compute_busy_sec
  double comm_busy_sec = 0.0;     // sum of stage_comm_busy_sec
  /// Per-stage busy seconds of the representative device's compute / comm
  /// stream (same convention as above), indexed by pipeline stage.
  std::vector<double> stage_compute_busy_sec;
  std::vector<double> stage_comm_busy_sec;
};

/// The raw material of one traced simulation: the task graph exactly as the
/// simulator built it (labels, categories, stage/micro-batch/layer
/// coordinates, streams, memory deltas) plus the engine's completed
/// timeline with per-task work/contention-lost seconds. Consumed by
/// src/trace/ (recorder, analyzer, exporters); the sim layer itself only
/// captures it.
struct SimTrace {
  double overlap_slowdown = 0.0;
  double compute_jitter = 0.0;
  uint64_t seed = 0;
  std::vector<StreamSpec> streams;  // indexed by stream id
  std::vector<SimTask> tasks;       // indexed by task id
  SimTimeline timeline;             // includes task_work_sec/task_lost_sec
};

/// Discrete-event execution of a hybrid-parallel training iteration — the
/// stand-in for the paper's real 8/16/64-GPU testbeds (see DESIGN.md,
/// substitution table).
///
/// The GPipe schedule is lowered to a task graph per stage: per micro-batch
/// forward compute, TP all-reduces, SDP weight gathers, Slice-Gather
/// transformations and inter-stage P2P sends, then the mirrored backward
/// with gradient synchronization (DP all-reduce / SDP reduce-scatter) firing
/// after each layer's last micro-batch — which is what overlaps it with the
/// remaining backward compute and triggers the contention slowdown.
///
/// Devices within a stage's group run symmetric timelines, so one
/// representative device per stage is simulated; collective durations carry
/// the full group size and topology-resolved bottleneck links.
class Simulator {
 public:
  /// `cluster` must outlive this object.
  explicit Simulator(const ClusterSpec* cluster, SimOptions options = {});

  /// Simulates one training iteration of `plan`. Invalid plans error;
  /// memory overruns are reported via SimMetrics::oom.
  Result<SimMetrics> Run(const ModelSpec& model,
                         const TrainingPlan& plan) const;

  /// Like Run, but when SimOptions::record_trace is set and `trace` is
  /// non-null, additionally fills `trace` with the full execution record
  /// for src/trace/ (TraceRecorder / analyzer / exporters). With the flag
  /// off, `trace` is cleared and the run is indistinguishable from the
  /// two-argument overload.
  Result<SimMetrics> Run(const ModelSpec& model, const TrainingPlan& plan,
                         SimTrace* trace) const;

 private:
  Result<SimMetrics> RunInternal(const ModelSpec& model,
                                 const TrainingPlan& plan,
                                 SimTrace* trace) const;

  const ClusterSpec* cluster_;
  SimOptions options_;
};

}  // namespace galvatron

#endif  // GALVATRON_SIM_SIMULATOR_H_
