#include "comm/group_pool.h"

#include <algorithm>
#include <sstream>

namespace galvatron {

std::string CommGroup::ToString() const {
  std::ostringstream os;
  os << "group" << id << "{";
  for (size_t i = 0; i < device_ids.size(); ++i) {
    if (i > 0) os << ",";
    os << device_ids[i];
  }
  os << "}";
  return os.str();
}

Result<CommGroup> CommGroupPool::GetOrCreate(std::vector<int> device_ids) {
  if (device_ids.empty()) {
    return Status::InvalidArgument("empty communication group");
  }
  std::sort(device_ids.begin(), device_ids.end());
  if (std::adjacent_find(device_ids.begin(), device_ids.end()) !=
      device_ids.end()) {
    return Status::InvalidArgument("duplicate device in communication group");
  }
  auto it = groups_.find(device_ids);
  if (it != groups_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  CommGroup group;
  group.id = static_cast<int>(groups_.size());
  group.device_ids = device_ids;
  groups_.emplace(std::move(device_ids), group);
  return group;
}

}  // namespace galvatron
