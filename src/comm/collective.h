#ifndef GALVATRON_COMM_COLLECTIVE_H_
#define GALVATRON_COMM_COLLECTIVE_H_

#include <cstdint>
#include <string_view>

#include "cluster/link.h"

namespace galvatron {

/// NCCL-style collective primitives used by the four parallelisms:
/// DP all-reduces gradients; SDP all-gathers parameters (x2) and
/// reduce-scatters gradients; TP all-reduces activations; PP sends
/// boundary activations point-to-point.
enum class CollectiveKind {
  kAllReduce,
  kAllGather,
  kReduceScatter,
  kBroadcast,
  kPointToPoint,
};

std::string_view CollectiveKindToString(CollectiveKind kind);

/// Inverse of CollectiveKindToString ("AllReduce", "AllGather",
/// "ReduceScatter", "Broadcast", "P2P"); unknown names are InvalidArgument.
/// Calibration profiles key their fitted groups on these names.
Result<CollectiveKind> CollectiveKindFromString(std::string_view name);

/// Bus-traffic multiplier of a ring implementation: an n-rank ring
/// all-reduce moves 2(n-1)/n of the payload over the bottleneck link,
/// all-gather and reduce-scatter move (n-1)/n, a pipelined broadcast ~1,
/// and point-to-point exactly 1 (group size 2).
double RingTrafficFactor(CollectiveKind kind, int group_size);

/// Number of latency-bound ring steps (each paying one hop latency).
int RingSteps(CollectiveKind kind, int group_size);

/// Predicted wall time of a collective over `bytes` payload on a group of
/// `group_size` ranks whose bottleneck interconnect is `link`:
///   time = factor * bytes / bandwidth + steps * latency.
/// For group_size == 1 every collective is free.
double CollectiveTime(CollectiveKind kind, int64_t bytes, int group_size,
                      const LinkSpec& link);

}  // namespace galvatron

#endif  // GALVATRON_COMM_COLLECTIVE_H_
