#include "comm/collective.h"

#include <string>

#include "util/logging.h"

namespace galvatron {

std::string_view CollectiveKindToString(CollectiveKind kind) {
  switch (kind) {
    case CollectiveKind::kAllReduce:
      return "AllReduce";
    case CollectiveKind::kAllGather:
      return "AllGather";
    case CollectiveKind::kReduceScatter:
      return "ReduceScatter";
    case CollectiveKind::kBroadcast:
      return "Broadcast";
    case CollectiveKind::kPointToPoint:
      return "P2P";
  }
  return "?";
}

Result<CollectiveKind> CollectiveKindFromString(std::string_view name) {
  if (name == "AllReduce") return CollectiveKind::kAllReduce;
  if (name == "AllGather") return CollectiveKind::kAllGather;
  if (name == "ReduceScatter") return CollectiveKind::kReduceScatter;
  if (name == "Broadcast") return CollectiveKind::kBroadcast;
  if (name == "P2P") return CollectiveKind::kPointToPoint;
  return Status::InvalidArgument("unknown collective kind '" +
                                 std::string(name) + "'");
}

double RingTrafficFactor(CollectiveKind kind, int group_size) {
  GALVATRON_CHECK_GE(group_size, 1);
  if (group_size == 1) return 0.0;
  const double n = group_size;
  switch (kind) {
    case CollectiveKind::kAllReduce:
      return 2.0 * (n - 1.0) / n;
    case CollectiveKind::kAllGather:
    case CollectiveKind::kReduceScatter:
      return (n - 1.0) / n;
    case CollectiveKind::kBroadcast:
    case CollectiveKind::kPointToPoint:
      return 1.0;
  }
  return 1.0;
}

int RingSteps(CollectiveKind kind, int group_size) {
  if (group_size <= 1) return 0;
  switch (kind) {
    case CollectiveKind::kAllReduce:
      return 2 * (group_size - 1);
    case CollectiveKind::kAllGather:
    case CollectiveKind::kReduceScatter:
    case CollectiveKind::kBroadcast:
      return group_size - 1;
    case CollectiveKind::kPointToPoint:
      return 1;
  }
  return 1;
}

double CollectiveTime(CollectiveKind kind, int64_t bytes, int group_size,
                      const LinkSpec& link) {
  GALVATRON_CHECK_GE(bytes, 0);
  if (group_size <= 1 || bytes == 0) return 0.0;
  const double transfer = RingTrafficFactor(kind, group_size) *
                          static_cast<double>(bytes) /
                          link.bandwidth_bytes_per_sec;
  const double latency = RingSteps(kind, group_size) * link.latency_sec;
  return transfer + latency;
}

}  // namespace galvatron
