#ifndef GALVATRON_COMM_GROUP_POOL_H_
#define GALVATRON_COMM_GROUP_POOL_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/result.h"

namespace galvatron {

/// A communication group: an ordered set of device ids that execute
/// collectives together (the analog of an NCCL communicator).
struct CommGroup {
  int id = 0;
  std::vector<int> device_ids;  // sorted, unique

  int size() const { return static_cast<int>(device_ids.size()); }
  std::string ToString() const;
};

/// The global communication-group pool of Sec 4: NCCL group construction is
/// expensive, so Galvatron creates every group a plan might use once, up
/// front, and reuses them. The pool deduplicates by member set and counts
/// hits so the ablation bench can report the reuse rate.
class CommGroupPool {
 public:
  CommGroupPool() = default;

  CommGroupPool(const CommGroupPool&) = delete;
  CommGroupPool& operator=(const CommGroupPool&) = delete;

  /// Returns the group for `device_ids` (order-insensitive), creating it on
  /// first use. Errors on empty or duplicate-containing id lists.
  Result<CommGroup> GetOrCreate(std::vector<int> device_ids);

  /// Number of distinct groups constructed.
  int num_groups() const { return static_cast<int>(groups_.size()); }

  /// Number of GetOrCreate calls served from the pool.
  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }

 private:
  std::map<std::vector<int>, CommGroup> groups_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
};

}  // namespace galvatron

#endif  // GALVATRON_COMM_GROUP_POOL_H_
