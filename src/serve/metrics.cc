#include "serve/metrics.h"

#include "util/string_util.h"

namespace galvatron {
namespace serve {

namespace {

/// Upper bounds of the latency histogram. Chosen around the planner's
/// working range: a plan-cache hit is O(100us), a warm search O(1-10ms), a
/// cold 64-GPU search O(100ms+).
constexpr double kLatencyBounds[] = {0.0001, 0.00025, 0.0005, 0.001, 0.0025,
                                     0.005,  0.01,    0.025,  0.05,  0.1,
                                     0.25,   0.5,     1.0,    2.5,   10.0};
constexpr size_t kNumBounds = sizeof(kLatencyBounds) / sizeof(double);

}  // namespace

void ServeMetrics::RecordRequest(const std::string& endpoint, int http_status,
                                 double latency_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  ++requests_[{endpoint, http_status}];
  Histogram& h = latency_[endpoint];
  if (h.buckets.empty()) h.buckets.assign(kNumBounds + 1, 0);
  size_t b = 0;
  while (b < kNumBounds && latency_seconds > kLatencyBounds[b]) ++b;
  ++h.buckets[b];
  h.sum += latency_seconds;
  ++h.count;
}

void ServeMetrics::RecordPlanCache(bool hit) {
  std::lock_guard<std::mutex> lock(mu_);
  if (hit) {
    ++plan_cache_hits_;
  } else {
    ++plan_cache_misses_;
  }
}

void ServeMetrics::RecordCostCache(int64_t delta_hits, int64_t delta_misses) {
  std::lock_guard<std::mutex> lock(mu_);
  cost_cache_hits_ += delta_hits;
  cost_cache_misses_ += delta_misses;
}

int64_t ServeMetrics::plan_cache_hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return plan_cache_hits_;
}

std::string ServeMetrics::Render() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out +=
      "# HELP galvatron_serve_requests_total Completed requests by endpoint "
      "and HTTP status.\n"
      "# TYPE galvatron_serve_requests_total counter\n";
  for (const auto& [key, count] : requests_) {
    out += StrFormat(
        "galvatron_serve_requests_total{endpoint=\"%s\",status=\"%d\"} "
        "%lld\n",
        key.first.c_str(), key.second, static_cast<long long>(count));
  }
  out +=
      "# HELP galvatron_serve_request_latency_seconds Request handling "
      "latency.\n"
      "# TYPE galvatron_serve_request_latency_seconds histogram\n";
  for (const auto& [endpoint, h] : latency_) {
    int64_t cumulative = 0;
    for (size_t b = 0; b < kNumBounds; ++b) {
      cumulative += h.buckets[b];
      out += StrFormat(
          "galvatron_serve_request_latency_seconds_bucket{endpoint=\"%s\","
          "le=\"%g\"} %lld\n",
          endpoint.c_str(), kLatencyBounds[b],
          static_cast<long long>(cumulative));
    }
    cumulative += h.buckets[kNumBounds];
    out += StrFormat(
        "galvatron_serve_request_latency_seconds_bucket{endpoint=\"%s\","
        "le=\"+Inf\"} %lld\n",
        endpoint.c_str(), static_cast<long long>(cumulative));
    out += StrFormat(
        "galvatron_serve_request_latency_seconds_sum{endpoint=\"%s\"} %.9g\n",
        endpoint.c_str(), h.sum);
    out += StrFormat(
        "galvatron_serve_request_latency_seconds_count{endpoint=\"%s\"} "
        "%lld\n",
        endpoint.c_str(), static_cast<long long>(h.count));
  }
  out += StrFormat(
      "# HELP galvatron_serve_plan_cache_hits_total /v1/plan requests "
      "answered from the plan cache.\n"
      "# TYPE galvatron_serve_plan_cache_hits_total counter\n"
      "galvatron_serve_plan_cache_hits_total %lld\n"
      "# HELP galvatron_serve_plan_cache_misses_total /v1/plan requests "
      "that ran the search.\n"
      "# TYPE galvatron_serve_plan_cache_misses_total counter\n"
      "galvatron_serve_plan_cache_misses_total %lld\n",
      static_cast<long long>(plan_cache_hits_),
      static_cast<long long>(plan_cache_misses_));
  out += StrFormat(
      "# HELP galvatron_serve_cost_cache_hits_total Cumulative shared "
      "cost-cache hits across requests.\n"
      "# TYPE galvatron_serve_cost_cache_hits_total counter\n"
      "galvatron_serve_cost_cache_hits_total %lld\n"
      "# HELP galvatron_serve_cost_cache_misses_total Cumulative shared "
      "cost-cache misses (estimator invocations).\n"
      "# TYPE galvatron_serve_cost_cache_misses_total counter\n"
      "galvatron_serve_cost_cache_misses_total %lld\n",
      static_cast<long long>(cost_cache_hits_),
      static_cast<long long>(cost_cache_misses_));
  out += StrFormat(
      "# HELP galvatron_serve_in_flight Requests currently queued or "
      "executing.\n"
      "# TYPE galvatron_serve_in_flight gauge\n"
      "galvatron_serve_in_flight %lld\n"
      "# HELP galvatron_serve_rejected_total Connections dropped by "
      "admission control (HTTP 429).\n"
      "# TYPE galvatron_serve_rejected_total counter\n"
      "galvatron_serve_rejected_total %lld\n",
      static_cast<long long>(in_flight_.load(std::memory_order_relaxed)),
      static_cast<long long>(rejected_.load(std::memory_order_relaxed)));
  out += StrFormat(
      "# HELP galvatron_serve_measure_explain_total /v1/measure requests "
      "that returned the traced attribution summary.\n"
      "# TYPE galvatron_serve_measure_explain_total counter\n"
      "galvatron_serve_measure_explain_total %lld\n",
      static_cast<long long>(explain_.load(std::memory_order_relaxed)));
  out += StrFormat(
      "# HELP galvatron_serve_coalesced_total /v1/plan requests that "
      "joined an identical in-flight search and replayed its response.\n"
      "# TYPE galvatron_serve_coalesced_total counter\n"
      "galvatron_serve_coalesced_total %lld\n"
      "# HELP galvatron_serve_warm_start_total /v1/plan searches "
      "warm-started from cached DP frontiers.\n"
      "# TYPE galvatron_serve_warm_start_total counter\n"
      "galvatron_serve_warm_start_total %lld\n"
      "# HELP galvatron_serve_async_submitted_total Async /v1/plan "
      "submissions accepted (HTTP 202).\n"
      "# TYPE galvatron_serve_async_submitted_total counter\n"
      "galvatron_serve_async_submitted_total %lld\n",
      static_cast<long long>(coalesced_.load(std::memory_order_relaxed)),
      static_cast<long long>(warm_start_.load(std::memory_order_relaxed)),
      static_cast<long long>(
          async_submitted_.load(std::memory_order_relaxed)));
  out += StrFormat(
      "# HELP galvatron_serve_calibration_applied_total Calibration "
      "profiles fitted by POST /v1/calibrate and swapped in.\n"
      "# TYPE galvatron_serve_calibration_applied_total counter\n"
      "galvatron_serve_calibration_applied_total %lld\n"
      "# HELP galvatron_serve_calibration_rejected_total POST /v1/calibrate "
      "requests whose fit failed validation or had no samples.\n"
      "# TYPE galvatron_serve_calibration_rejected_total counter\n"
      "galvatron_serve_calibration_rejected_total %lld\n"
      "# HELP galvatron_serve_calibration_staleness_measures Traced "
      "/v1/measure runs captured since the active profile was fitted.\n"
      "# TYPE galvatron_serve_calibration_staleness_measures gauge\n"
      "galvatron_serve_calibration_staleness_measures %lld\n",
      static_cast<long long>(
          calibration_applied_.load(std::memory_order_relaxed)),
      static_cast<long long>(
          calibration_rejected_.load(std::memory_order_relaxed)),
      static_cast<long long>(
          measures_since_calibration_.load(std::memory_order_relaxed)));
  return out;
}

}  // namespace serve
}  // namespace galvatron
