#include "serve/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>

#include "util/json.h"
#include "util/string_util.h"

namespace galvatron {
namespace serve {

namespace {

/// Request line + headers must fit here; a planning request's headers are a
/// few hundred bytes, so 64 KiB only ever stops hostile input.
constexpr size_t kMaxHeaderBytes = 64 * 1024;

std::string TrimWhitespace(const std::string& s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(s[begin])) != 0) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1])) != 0) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string ToLower(std::string s) {
  for (char& c : s) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return s;
}

/// recv with EINTR retry. Returns bytes read, 0 on EOF, -1 with a Status
/// classification left to the caller via errno.
ssize_t RecvSome(int fd, char* buffer, size_t size) {
  while (true) {
    const ssize_t n = ::recv(fd, buffer, size, 0);
    if (n >= 0) return n;
    if (errno == EINTR) continue;
    return -1;
  }
}

Status ParseHeaderBlock(const std::string& head, HttpRequest* request) {
  size_t line_start = 0;
  bool first = true;
  while (line_start < head.size()) {
    size_t line_end = head.find("\r\n", line_start);
    if (line_end == std::string::npos) line_end = head.size();
    const std::string line = head.substr(line_start, line_end - line_start);
    line_start = line_end + 2;
    if (line.empty()) continue;
    if (first) {
      first = false;
      const size_t sp1 = line.find(' ');
      const size_t sp2 = sp1 == std::string::npos
                             ? std::string::npos
                             : line.find(' ', sp1 + 1);
      if (sp1 == std::string::npos || sp2 == std::string::npos) {
        return Status::InvalidArgument("malformed HTTP request line");
      }
      request->method = line.substr(0, sp1);
      request->target = line.substr(sp1 + 1, sp2 - sp1 - 1);
      const std::string version = line.substr(sp2 + 1);
      if (version.rfind("HTTP/1.", 0) != 0) {
        return Status::InvalidArgument(
            StrFormat("unsupported protocol '%s'", version.c_str()));
      }
      if (request->method.empty() || request->target.empty() ||
          request->target[0] != '/') {
        return Status::InvalidArgument("malformed HTTP request line");
      }
      continue;
    }
    const size_t colon = line.find(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument("malformed HTTP header line");
    }
    request->headers[ToLower(line.substr(0, colon))] =
        TrimWhitespace(line.substr(colon + 1));
  }
  if (first) return Status::InvalidArgument("empty HTTP request");
  return Status::OK();
}

}  // namespace

std::string_view HttpReasonPhrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 408:
      return "Request Timeout";
    case 413:
      return "Payload Too Large";
    case 422:
      return "Unprocessable Entity";
    case 429:
      return "Too Many Requests";
    case 500:
      return "Internal Server Error";
    case 501:
      return "Not Implemented";
    case 503:
      return "Service Unavailable";
    case 504:
      return "Gateway Timeout";
    default:
      return "Unknown";
  }
}

int HttpStatusFromStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kInvalidArgument:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kOutOfMemory:
      return 413;
    case StatusCode::kFailedPrecondition:
    case StatusCode::kInfeasible:
      return 422;
    case StatusCode::kUnimplemented:
      return 501;
    case StatusCode::kCancelled:
      return 504;
    case StatusCode::kInternal:
      return 500;
  }
  return 500;
}

std::string SerializeHttpResponse(const HttpResponse& response) {
  std::string out = StrFormat(
      "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n"
      "Connection: close\r\n\r\n",
      response.status,
      std::string(HttpReasonPhrase(response.status)).c_str(),
      response.content_type.c_str(), response.body.size());
  out += response.body;
  return out;
}

HttpResponse MakeJsonErrorResponse(const Status& status, int http_status) {
  HttpResponse response;
  response.status = http_status != 0 ? http_status : HttpStatusFromStatus(status);
  response.body = StrFormat(
      "{\"error\": {\"code\": \"%s\", \"message\": \"%s\"}}\n",
      std::string(StatusCodeToString(status.code())).c_str(),
      JsonEscape(status.message()).c_str());
  return response;
}

Result<HttpRequest> ReadHttpRequest(int fd, size_t max_body_bytes) {
  std::string data;
  char buffer[8192];
  size_t header_end = std::string::npos;
  while (true) {
    const size_t scan_from = data.size() < 3 ? 0 : data.size() - 3;
    const ssize_t n = RecvSome(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::Cancelled("timed out reading request");
      }
      return Status::Internal(
          StrFormat("recv failed: %s", std::strerror(errno)));
    }
    if (n == 0) {
      return data.empty()
                 ? Status::InvalidArgument("empty HTTP request")
                 : Status::Cancelled("connection closed mid-request");
    }
    data.append(buffer, static_cast<size_t>(n));
    header_end = data.find("\r\n\r\n", scan_from);
    if (header_end != std::string::npos) break;
    if (data.size() > kMaxHeaderBytes) {
      return Status::InvalidArgument("HTTP headers exceed 64 KiB");
    }
  }

  HttpRequest request;
  GALVATRON_RETURN_IF_ERROR(
      ParseHeaderBlock(data.substr(0, header_end), &request));

  if (request.headers.count("transfer-encoding") != 0) {
    return Status::Unimplemented(
        "chunked transfer encoding is not supported; send Content-Length");
  }

  size_t content_length = 0;
  auto it = request.headers.find("content-length");
  if (it != request.headers.end()) {
    const std::string& text = it->second;
    if (text.empty() || text.size() > 15) {
      return Status::InvalidArgument("malformed Content-Length");
    }
    for (char c : text) {
      if (std::isdigit(static_cast<unsigned char>(c)) == 0) {
        return Status::InvalidArgument("malformed Content-Length");
      }
    }
    content_length = static_cast<size_t>(std::strtoull(
        text.c_str(), nullptr, 10));
  }
  if (content_length > max_body_bytes) {
    // Reject before reading: a hostile client cannot make the server buffer
    // an arbitrarily large body.
    return Status::OutOfMemory(
        StrFormat("request body of %zu bytes exceeds the %zu-byte limit",
                  content_length, max_body_bytes));
  }

  request.body = data.substr(header_end + 4);
  if (request.body.size() > content_length) {
    return Status::InvalidArgument("request body longer than Content-Length");
  }
  while (request.body.size() < content_length) {
    const ssize_t n = RecvSome(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::Cancelled("timed out reading request body");
      }
      return Status::Internal(
          StrFormat("recv failed: %s", std::strerror(errno)));
    }
    if (n == 0) {
      return Status::Cancelled("connection closed mid-body");
    }
    const size_t want = content_length - request.body.size();
    if (static_cast<size_t>(n) > want) {
      return Status::InvalidArgument(
          "request body longer than Content-Length");
    }
    request.body.append(buffer, static_cast<size_t>(n));
  }
  return request;
}

bool WriteFully(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

Result<HttpResponse> HttpFetch(const std::string& host, int port,
                               const std::string& method,
                               const std::string& target,
                               const std::string& body, int timeout_ms) {
  const std::string address = host == "localhost" ? "127.0.0.1" : host;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument(
        StrFormat("'%s' is not an IPv4 address (DNS is out of scope for "
                  "this client)",
                  host.c_str()));
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::Internal(
        StrFormat("socket failed: %s", std::strerror(errno)));
  }
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status status = Status::Internal(StrFormat(
        "connect to %s:%d failed: %s", address.c_str(), port,
        std::strerror(errno)));
    ::close(fd);
    return status;
  }

  std::string request = StrFormat(
      "%s %s HTTP/1.1\r\nHost: %s:%d\r\nContent-Type: application/json\r\n"
      "Content-Length: %zu\r\nConnection: close\r\n\r\n",
      method.c_str(), target.c_str(), address.c_str(), port, body.size());
  request += body;
  if (!WriteFully(fd, request)) {
    const Status status = Status::Internal(
        StrFormat("send failed: %s", std::strerror(errno)));
    ::close(fd);
    return status;
  }

  std::string data;
  char buffer[8192];
  while (true) {
    const ssize_t n = RecvSome(fd, buffer, sizeof(buffer));
    if (n < 0) {
      const Status status =
          (errno == EAGAIN || errno == EWOULDBLOCK)
              ? Status::Cancelled("timed out reading response")
              : Status::Internal(
                    StrFormat("recv failed: %s", std::strerror(errno)));
      ::close(fd);
      return status;
    }
    if (n == 0) break;
    data.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);

  const size_t header_end = data.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return Status::InvalidArgument("malformed HTTP response");
  }
  const size_t line_end = data.find("\r\n");
  const std::string status_line = data.substr(0, line_end);
  // "HTTP/1.1 200 OK"
  const size_t sp1 = status_line.find(' ');
  if (sp1 == std::string::npos || status_line.rfind("HTTP/1.", 0) != 0) {
    return Status::InvalidArgument("malformed HTTP status line");
  }
  HttpResponse response;
  response.status = std::atoi(status_line.c_str() + sp1 + 1);
  if (response.status < 100 || response.status > 599) {
    return Status::InvalidArgument("malformed HTTP status code");
  }
  // Pull Content-Type out of the headers; everything else is ignored.
  const std::string head = ToLower(data.substr(0, header_end));
  const size_t ct = head.find("content-type:");
  if (ct != std::string::npos) {
    size_t ct_end = head.find("\r\n", ct);
    if (ct_end == std::string::npos) ct_end = head.size();
    response.content_type = TrimWhitespace(
        data.substr(ct + 13, ct_end - ct - 13));
  }
  response.body = data.substr(header_end + 4);
  return response;
}

}  // namespace serve
}  // namespace galvatron
