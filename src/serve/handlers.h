#ifndef GALVATRON_SERVE_HANDLERS_H_
#define GALVATRON_SERVE_HANDLERS_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "api/galvatron.h"
#include "calibrate/fit.h"
#include "calibrate/profile.h"
#include "serve/http.h"
#include "serve/metrics.h"
#include "serve/plan_cache.h"
#include "util/json.h"
#include "util/thread_pool.h"

namespace galvatron {
namespace serve {

struct PlanServiceOptions {
  /// Entries in the response-level plan cache (0 disables it).
  size_t plan_cache_entries = 128;
  /// Distinct (model, cluster-topology, estimator-options) PlanningContexts
  /// kept warm. Each holds a SharedCostCache and a DpFrontierCache that
  /// persist across requests; budget-only cluster variants share one
  /// context (per-layer costs never depend on the memory budget).
  size_t context_cache_entries = 8;
  /// Default per-request wall-clock deadline for /v1/plan in milliseconds;
  /// 0 means unlimited. A request's own "deadline_ms" field overrides it.
  double default_deadline_ms = 0.0;
  /// Path of the persistent plan-cache journal (see PlanCacheOptions);
  /// empty keeps the plan cache in-memory only.
  std::string plan_cache_journal;
  /// Worker threads executing async ("async": true) plan requests.
  int async_workers = 2;
  /// Calibration samples retained from traced /v1/measure runs (the newest
  /// are kept; POST /v1/calibrate fits from this buffer). 0 disables
  /// capture, and /v1/calibrate then answers FailedPrecondition.
  size_t calibration_sample_capacity = 65536;
  /// When the journal file exceeds this many bytes, the next Put compacts
  /// it down to a snapshot of the live cache (see PlanCacheOptions);
  /// 0 = never compact on size.
  int64_t plan_cache_journal_max_bytes = 0;
  /// Completed/pending async jobs retained for polling. When full and no
  /// completed job can be evicted, new submissions are rejected with 429.
  size_t async_jobs = 128;
  /// Optional telemetry sink shared with the HttpServer.
  ServeMetrics* metrics = nullptr;
};

/// The planning service behind galvatron_serve. Routes:
///
///   POST /v1/plan     {"model": "<zoo name>" | {...spec...},
///                      "cluster": {...spec...},
///                      "options": {...optimizer knobs...},   (optional)
///                      "deadline_ms": 250,                   (optional)
///                      "async": true}                        (optional)
///     -> {"plan": {...}, "estimated": {...}, "search_stats": {...},
///         "plan_cache_hit": false}
///     async form -> 202 {"plan_id": "plan-7", "poll": "/v1/plan/plan-7",
///                        "status": "pending"}
///
///   GET /v1/plan/<id> -> 202 {"status": "pending", ...} while running,
///                        then the finished plan response verbatim
///                        (byte-identical to the synchronous answer);
///                        404 for unknown or evicted ids.
///
///   POST /v1/measure  {"model": ..., "cluster": ..., "plan": {...},
///                      "sim": {...simulator knobs...}}        (optional)
///     -> {"metrics": {...SimMetrics...}}
///     With "explain": true the traced run's comm samples are also retained
///     in a bounded buffer as calibration observations.
///
///   POST /v1/calibrate {"min_group_samples": 2}               (optional)
///     Fits a calibration profile (src/calibrate/) from the retained
///     /v1/measure samples and atomically swaps it in: subsequent /v1/plan
///     searches price communication with the fitted scales. The profile
///     version is folded into both the plan-cache key and the warm-context
///     key, so stale cached answers are never replayed across a swap.
///     -> {"applied": true, "version": 3, "profile": {...}}
///     {"reset": true} instead drops the active profile and clears the
///     sample buffer. Rejected fits (no samples, out-of-range
///     coefficients) leave the active profile untouched
///     (galvatron_serve_calibration_{applied,rejected}_total;
///     galvatron_serve_calibration_staleness_measures gauges how many
///     traced measures arrived since the active fit).
///
///   GET /healthz      -> {"status": "ok", "version": "..."}
///   GET /metrics      -> Prometheus text exposition
///
/// The search is deterministic, so /v1/plan responses are cacheable: the
/// request's canonical signature (WriteJson-normalized model/cluster plus
/// the resolved option values) keys an LRU PlanCache, and a hit replays the
/// cold run's plan/estimated/search_stats byte-identically with
/// "plan_cache_hit": true. The cache can persist across restarts through an
/// append-only journal (PlanServiceOptions::plan_cache_journal).
///
/// Cold-path machinery (the repeated-request fast paths, in lookup order):
///  1. plan cache — exact repeats replay the serialized response.
///  2. singleflight — concurrent identical requests share ONE search: the
///     first becomes the leader, the rest block and replay the leader's
///     byte-identical response (metric: galvatron_serve_coalesced_total).
///  3. warm-start — near-miss requests (same model/options, cluster
///     differing only in per-device memory) share a PlanningContext whose
///     DpFrontierCache replays completed DP frontiers instead of re-running
///     the kernel (metric: galvatron_serve_warm_start_total).
///
/// Every error is a structured JSON body (MakeJsonErrorResponse) with the
/// Status-mapped HTTP code; hostile input never crashes the process.
/// Thread-safe; Handle may run on many workers at once.
class PlanService {
 public:
  explicit PlanService(PlanServiceOptions options = {});

  /// Drains async workers, then compacts the plan-cache journal (via
  /// PlanCache's destructor), so a SIGTERM'd daemon restarts warm.
  ~PlanService();

  PlanService(const PlanService&) = delete;
  PlanService& operator=(const PlanService&) = delete;

  /// The HttpServer::Handler entry point.
  HttpResponse Handle(const HttpRequest& request);

  PlanCache::Stats plan_cache_stats() const { return plan_cache_.stats(); }

 private:
  /// One in-flight /v1/plan computation, shared leader-to-followers.
  struct InFlight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    /// Leader timed out against ITS deadline; followers (whose deadlines
    /// may be longer) loop back to re-check the cache or lead themselves.
    bool retry = false;
    HttpResponse response;
  };

  /// One async plan submission, held until polled or evicted.
  struct AsyncJob {
    std::string id;
    bool done = false;
    HttpResponse response;
  };

  /// A warm context plus the calibration profile its estimator points at
  /// (the shared_ptr keeps EstimatorOptions::calibration alive for as long
  /// as the context can price anything).
  struct WarmContext {
    std::shared_ptr<PlanningContext> context;
    std::shared_ptr<const calibrate::CalibrationProfile> calibration;
  };

  std::shared_ptr<PlanningContext> GetOrCreateContext(
      const std::string& key, const ModelSpec& model,
      const ClusterSpec& cluster, const EstimatorOptions& estimator_options,
      std::shared_ptr<const calibrate::CalibrationProfile> calibration);

  /// The active profile and its version under calibration_mu_.
  std::shared_ptr<const calibrate::CalibrationProfile> ActiveCalibration(
      int64_t* version) const;

  HttpResponse HandlePlan(const HttpRequest& request);
  /// The post-singleflight search path: parse specs, find the warm
  /// context, run the optimizer, serialize, fill the plan cache.
  /// `calibration` is the profile snapshot whose version HandlePlan folded
  /// into `cache_key` — passed through (not re-read) so the cached response
  /// is always priced by exactly the profile its key names.
  HttpResponse ComputePlan(
      const JsonValue& root, const JsonValue& model_value,
      const JsonValue& cluster_value, const std::string& model_canonical,
      const std::string& cache_key, double deadline_ms,
      std::shared_ptr<const calibrate::CalibrationProfile> calibration,
      int64_t calibration_version);
  HttpResponse SubmitAsyncPlan(const JsonValue& root);
  HttpResponse HandlePlanPoll(const std::string& id);
  HttpResponse HandleMeasure(const HttpRequest& request);
  HttpResponse HandleCalibrate(const HttpRequest& request);
  HttpResponse HandleHealthz() const;
  HttpResponse HandleMetrics() const;

  PlanServiceOptions options_;
  PlanCache plan_cache_;

  // Tiny LRU of warm PlanningContexts (front = most recently used).
  mutable std::mutex contexts_mu_;
  std::list<std::pair<std::string, WarmContext>> contexts_;
  std::unordered_map<std::string, decltype(contexts_)::iterator>
      contexts_index_;

  // Calibration: the active trace-fitted profile, swapped whole by POST
  // /v1/calibrate (readers copy the shared_ptr under the mutex, then price
  // lock-free), plus the bounded sample buffer /v1/measure feeds.
  mutable std::mutex calibration_mu_;
  std::shared_ptr<const calibrate::CalibrationProfile> calibration_;
  int64_t calibration_version_ = 0;
  std::vector<calibrate::CommObservation> calibration_samples_;
  double calibration_overlap_estimate_ = 0.0;

  // Singleflight table: cache key -> the in-flight computation.
  std::mutex inflight_mu_;
  std::unordered_map<std::string, std::shared_ptr<InFlight>> inflight_;

  // Async job table (front = newest).
  std::mutex jobs_mu_;
  std::list<std::shared_ptr<AsyncJob>> jobs_;
  std::unordered_map<std::string, std::shared_ptr<AsyncJob>> jobs_index_;
  std::atomic<int64_t> next_job_id_{0};

  // Declared last so it is destroyed FIRST: its destructor drains queued
  // async plans, which touch every member above.
  std::unique_ptr<ThreadPool> async_pool_;
};

}  // namespace serve
}  // namespace galvatron

#endif  // GALVATRON_SERVE_HANDLERS_H_
