#ifndef GALVATRON_SERVE_HANDLERS_H_
#define GALVATRON_SERVE_HANDLERS_H_

#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "api/galvatron.h"
#include "serve/http.h"
#include "serve/metrics.h"
#include "serve/plan_cache.h"

namespace galvatron {
namespace serve {

struct PlanServiceOptions {
  /// Entries in the response-level plan cache (0 disables it).
  size_t plan_cache_entries = 128;
  /// Distinct (model, cluster, estimator-options) PlanningContexts kept
  /// warm. Each holds a SharedCostCache that persists across requests.
  size_t context_cache_entries = 8;
  /// Default per-request wall-clock deadline for /v1/plan in milliseconds;
  /// 0 means unlimited. A request's own "deadline_ms" field overrides it.
  double default_deadline_ms = 0.0;
  /// Optional telemetry sink shared with the HttpServer.
  ServeMetrics* metrics = nullptr;
};

/// The planning service behind galvatron_serve. Routes:
///
///   POST /v1/plan     {"model": "<zoo name>" | {...spec...},
///                      "cluster": {...spec...},
///                      "options": {...optimizer knobs...},   (optional)
///                      "deadline_ms": 250}                    (optional)
///     -> {"plan": {...}, "estimated": {...}, "search_stats": {...},
///         "plan_cache_hit": false}
///
///   POST /v1/measure  {"model": ..., "cluster": ..., "plan": {...},
///                      "sim": {...simulator knobs...}}        (optional)
///     -> {"metrics": {...SimMetrics...}}
///
///   GET /healthz      -> {"status": "ok", "version": "..."}
///   GET /metrics      -> Prometheus text exposition
///
/// The search is deterministic, so /v1/plan responses are cacheable: the
/// request's canonical signature (WriteJson-normalized model/cluster plus
/// the resolved option values) keys an LRU PlanCache, and a hit replays the
/// cold run's plan/estimated/search_stats byte-identically with
/// "plan_cache_hit": true. Distinct option variants of one (model, cluster,
/// estimator-options) triple share a PlanningContext, i.e. one
/// SharedCostCache — the cross-request warm path.
///
/// Every error is a structured JSON body (MakeJsonErrorResponse) with the
/// Status-mapped HTTP code; hostile input never crashes the process.
/// Thread-safe; Handle may run on many workers at once.
class PlanService {
 public:
  explicit PlanService(PlanServiceOptions options = {});

  PlanService(const PlanService&) = delete;
  PlanService& operator=(const PlanService&) = delete;

  /// The HttpServer::Handler entry point.
  HttpResponse Handle(const HttpRequest& request);

  PlanCache::Stats plan_cache_stats() const { return plan_cache_.stats(); }

 private:
  std::shared_ptr<PlanningContext> GetOrCreateContext(
      const std::string& key, const ModelSpec& model,
      const ClusterSpec& cluster, const EstimatorOptions& estimator_options);

  HttpResponse HandlePlan(const HttpRequest& request);
  HttpResponse HandleMeasure(const HttpRequest& request);
  HttpResponse HandleHealthz() const;
  HttpResponse HandleMetrics() const;

  PlanServiceOptions options_;
  PlanCache plan_cache_;

  // Tiny LRU of warm PlanningContexts (front = most recently used).
  mutable std::mutex contexts_mu_;
  std::list<std::pair<std::string, std::shared_ptr<PlanningContext>>>
      contexts_;
  std::unordered_map<std::string, decltype(contexts_)::iterator>
      contexts_index_;
};

}  // namespace serve
}  // namespace galvatron

#endif  // GALVATRON_SERVE_HANDLERS_H_
