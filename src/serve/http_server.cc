#include "serve/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "util/string_util.h"

namespace galvatron {
namespace serve {

namespace {

void SetSocketTimeouts(int fd, int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/// The route label used in metrics: the target without any query string.
std::string RouteOf(const HttpRequest& request) {
  const size_t q = request.target.find('?');
  return q == std::string::npos ? request.target : request.target.substr(0, q);
}

/// Closes a connection whose request may not have been read to completion
/// (429 rejections, 413 bodies the server refused to read). A plain close()
/// with unread bytes in the receive buffer makes the kernel send RST, which
/// can destroy the already-written response before the client reads it; so:
/// half-close the write side, drain (bounded) until the peer finishes or
/// the SO_RCVTIMEO expires, then close.
void DrainAndClose(int fd) {
  ::shutdown(fd, SHUT_WR);
  char buffer[4096];
  size_t drained = 0;
  while (drained < (1u << 20)) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    drained += static_cast<size_t>(n);
  }
  ::close(fd);
}

}  // namespace

Result<std::unique_ptr<HttpServer>> HttpServer::Start(HttpServerOptions options,
                                                      Handler handler) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options.port));
  if (::inet_pton(AF_INET, options.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return Status::InvalidArgument(StrFormat(
        "bind address '%s' is not an IPv4 literal", options.bind_address.c_str()));
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::Internal(
        StrFormat("socket failed: %s", std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status status = Status::Internal(
        StrFormat("bind to %s:%d failed: %s", options.bind_address.c_str(),
                  options.port, std::strerror(errno)));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 128) != 0) {
    const Status status =
        Status::Internal(StrFormat("listen failed: %s", std::strerror(errno)));
    ::close(fd);
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    const Status status = Status::Internal(
        StrFormat("getsockname failed: %s", std::strerror(errno)));
    ::close(fd);
    return status;
  }
  // A receive timeout on the listen socket bounds accept() so the accept
  // loop can observe the stop flag even if shutdown()'s wakeup were missed.
  SetSocketTimeouts(fd, 100);

  return std::unique_ptr<HttpServer>(new HttpServer(
      std::move(options), std::move(handler), fd, ntohs(bound.sin_port)));
}

HttpServer::HttpServer(HttpServerOptions options, Handler handler,
                       int listen_fd, int port)
    : options_(std::move(options)),
      handler_(std::move(handler)),
      listen_fd_(listen_fd),
      port_(port),
      pool_(std::make_unique<ThreadPool>(options_.num_threads)) {
  accept_thread_ = std::thread([this] { AcceptLoop(); });
}

HttpServer::~HttpServer() { Shutdown(); }

void HttpServer::Shutdown() {
  if (shut_down_.exchange(true)) return;
  stopping_.store(true);
  // Wake a blocked accept() immediately instead of waiting out its timeout.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  pool_->Wait();  // drain every admitted request before the socket goes away
  ::close(listen_fd_);
}

void HttpServer::AcceptLoop() {
  while (!stopping_.load()) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
          errno == ECONNABORTED) {
        continue;
      }
      // EINVAL/EBADF after shutdown(); anything else also ends the loop —
      // the listen socket is gone, there is nothing to accept from.
      break;
    }
    SetSocketTimeouts(fd, options_.io_timeout_ms);

    const int admitted = in_flight_.fetch_add(1) + 1;
    if (admitted > options_.max_in_flight) {
      in_flight_.fetch_sub(1);
      // Reject on the accept thread: the canned response costs microseconds
      // and keeps workers free for admitted sweeps.
      const HttpResponse response = MakeJsonErrorResponse(
          Status(StatusCode::kFailedPrecondition,
                 StrFormat("server is at its %d-request limit; retry later",
                           options_.max_in_flight)),
          429);
      WriteFully(fd, SerializeHttpResponse(response));
      // Re-bound the drain tightly: this runs on the accept thread, and a
      // slow-loris rejected client must not stall admission for io_timeout.
      SetSocketTimeouts(fd, 100);
      DrainAndClose(fd);
      if (options_.metrics != nullptr) options_.metrics->RecordRejected();
      continue;
    }
    if (options_.metrics != nullptr) options_.metrics->IncInFlight();
    pool_->Submit([this, fd] {
      HandleConnection(fd);
      if (options_.metrics != nullptr) options_.metrics->DecInFlight();
      in_flight_.fetch_sub(1);
    });
  }
}

void HttpServer::HandleConnection(int fd) {
  const auto start = std::chrono::steady_clock::now();
  Result<HttpRequest> request = ReadHttpRequest(fd, options_.max_body_bytes);
  HttpResponse response;
  std::string route = "(unparsed)";
  if (request.ok()) {
    route = RouteOf(*request);
    response = handler_(*request);
  } else {
    // A read-side Cancelled is the client stalling or hanging up, which is
    // 408 Request Timeout, not the handler-side 504 deadline.
    const int http_status = request.status().IsCancelled()
                                ? 408
                                : HttpStatusFromStatus(request.status());
    response = MakeJsonErrorResponse(request.status(), http_status);
  }
  WriteFully(fd, SerializeHttpResponse(response));
  if (request.ok()) {
    ::close(fd);
  } else {
    DrainAndClose(fd);  // the request may have unread bytes; avoid an RST
  }
  if (options_.metrics != nullptr) {
    const double latency =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    options_.metrics->RecordRequest(route, response.status, latency);
  }
}

}  // namespace serve
}  // namespace galvatron
