#ifndef GALVATRON_SERVE_PLAN_CACHE_H_
#define GALVATRON_SERVE_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

namespace galvatron {
namespace serve {

struct PlanCacheOptions {
  /// 0 disables caching (every Get misses, Put is a no-op).
  size_t capacity = 128;
  /// Append-only JSONL journal the cache persists to; empty keeps the
  /// cache purely in-memory. Line 1 is a version header
  /// ({"format":"galvatron-plan-cache","version":1}); every later line is
  /// one {"key":...,"value":...} entry, appended on Put and replayed on
  /// startup so a restarted daemon serves its old plans as cache hits.
  /// Robustness contract: a truncated, corrupt or wrong-version journal is
  /// WARNED about and the cache starts empty — it never crashes and never
  /// serves a partially-restored journal. An unwritable path disables
  /// persistence with one warning.
  std::string journal_path;
  /// Size-triggered compaction: when an append pushes the journal file past
  /// this many bytes, the cache rewrites it down to a snapshot of the live
  /// entries (see Compact), bounding on-disk growth for a long-lived daemon
  /// whose appends keep superseding each other. 0 = never compact on size
  /// (the journal still compacts at shutdown). Replay identity holds either
  /// way: a journal compacted mid-run restores the same cache a
  /// never-compacted one would.
  int64_t journal_max_bytes = 0;
};

/// Thread-safe LRU cache from a canonical request signature to the
/// serialized plan-response fragment it produced. The search is
/// deterministic for a fixed (model, cluster, options) triple, so a cached
/// response is byte-identical to what a fresh search would serialize — the
/// cache trades memory for the full sweep latency.
///
/// Values are handed out as shared_ptr to immutable strings: Get only
/// copies a pointer under the lock, so a multi-KB response body is never
/// copied inside the critical section while other requests wait.
class PlanCache {
 public:
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
    size_t size = 0;
    size_t capacity = 0;
    /// Persistence telemetry: whether a journal is attached and still
    /// writable, how many entries the startup replay restored, the file's
    /// current size, and how many size-triggered compactions have run.
    bool journal_enabled = false;
    int64_t journal_restored = 0;
    int64_t journal_bytes = 0;
    int64_t journal_compactions = 0;
  };

  /// In-memory-only cache; `capacity` == 0 disables caching.
  explicit PlanCache(size_t capacity)
      : PlanCache(PlanCacheOptions{capacity, std::string()}) {}

  /// Loads `options.journal_path` (when set) before returning, so entries
  /// persisted by a previous process are immediately servable.
  explicit PlanCache(const PlanCacheOptions& options);

  /// Compacts the journal on destruction (see Compact), so a drained
  /// daemon leaves a minimal, current journal behind.
  ~PlanCache();

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Looks up `key`; on hit refreshes recency and returns the immutable
  /// value (a pointer copy — the body itself is not copied under the
  /// lock). Returns nullptr on miss.
  std::shared_ptr<const std::string> Get(const std::string& key);

  /// Inserts or refreshes `key`, evicting the least-recently-used entry
  /// beyond capacity, and appends the entry to the journal when one is
  /// attached.
  void Put(const std::string& key, std::string value);

  /// Rewrites the journal to exactly the live entries in oldest-first
  /// order (so a replay reproduces today's recency), via a temp file +
  /// atomic rename. Dropped: evicted entries and superseded appends. No-op
  /// without a writable journal.
  void Compact();

  Stats stats() const;

 private:
  // key, value (immutable once inserted)
  using Entry = std::pair<std::string, std::shared_ptr<const std::string>>;

  // Inserts without journaling; shared by Put and the startup replay.
  // Caller holds mu_.
  void PutLocked(const std::string& key,
                 std::shared_ptr<const std::string> value);
  void LoadJournal();
  // Appends one entry line; disables the journal with one warning on
  // failure. Caller holds journal_mu_ and not mu_.
  void AppendLocked(const std::string& key, const std::string& value);

  mutable std::mutex mu_;
  size_t capacity_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t evictions_ = 0;
  int64_t journal_restored_ = 0;

  // Journal state. Lock discipline: mu_ and journal_mu_ are never held
  // together — Put/Compact snapshot under mu_, release, then touch the
  // file under journal_mu_.
  mutable std::mutex journal_mu_;
  std::string journal_path_;
  int64_t journal_max_bytes_ = 0;
  int64_t journal_bytes_ = 0;        // bytes written since the last rewrite
  int64_t journal_compactions_ = 0;  // size-triggered, not shutdown
  bool journal_enabled_ = false;
};

}  // namespace serve
}  // namespace galvatron

#endif  // GALVATRON_SERVE_PLAN_CACHE_H_
