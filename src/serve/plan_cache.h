#ifndef GALVATRON_SERVE_PLAN_CACHE_H_
#define GALVATRON_SERVE_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

namespace galvatron {
namespace serve {

/// Thread-safe LRU cache from a canonical request signature to the
/// serialized plan-response fragment it produced. The search is
/// deterministic for a fixed (model, cluster, options) triple, so a cached
/// response is byte-identical to what a fresh search would serialize — the
/// cache trades memory for the full sweep latency.
class PlanCache {
 public:
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
    size_t size = 0;
    size_t capacity = 0;
  };

  /// `capacity` == 0 disables caching (every Get misses, Put is a no-op).
  explicit PlanCache(size_t capacity) : capacity_(capacity) {}

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Looks up `key`; on hit copies the value into `*value`, refreshes
  /// recency and returns true.
  bool Get(const std::string& key, std::string* value);

  /// Inserts or refreshes `key`, evicting the least-recently-used entry
  /// beyond capacity.
  void Put(const std::string& key, std::string value);

  Stats stats() const;

 private:
  using Entry = std::pair<std::string, std::string>;  // key, value

  mutable std::mutex mu_;
  size_t capacity_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t evictions_ = 0;
};

}  // namespace serve
}  // namespace galvatron

#endif  // GALVATRON_SERVE_PLAN_CACHE_H_
