#ifndef GALVATRON_SERVE_HTTP_SERVER_H_
#define GALVATRON_SERVE_HTTP_SERVER_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "serve/http.h"
#include "serve/metrics.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace galvatron {
namespace serve {

struct HttpServerOptions {
  std::string bind_address = "127.0.0.1";
  /// 0 asks the kernel for an ephemeral port; port() reports the actual one.
  int port = 0;
  /// Worker threads handling requests. The accept thread is extra.
  int num_threads = 4;
  /// Admission control: connections beyond this many queued-or-executing
  /// requests are answered with a canned 429 from the accept thread and
  /// closed, so a burst cannot queue unbounded strategy sweeps.
  int max_in_flight = 64;
  /// Content-Length ceiling; larger bodies are rejected with 413 before the
  /// body is read.
  size_t max_body_bytes = 8 * 1024 * 1024;
  /// Socket read/write timeout per connection. A client that stalls
  /// mid-request gets 408 instead of pinning a worker forever.
  int io_timeout_ms = 5000;
  /// Optional sink for request/rejection/in-flight telemetry.
  ServeMetrics* metrics = nullptr;
};

/// A minimal blocking HTTP/1.1 server: one accept thread feeding a fixed
/// ThreadPool, one request per connection. Request framing errors are
/// answered with structured JSON 4xx bodies here; everything that parses is
/// passed to the handler. Shutdown() (also run by the destructor) stops
/// accepting and drains in-flight requests before returning, which is what
/// makes SIGTERM graceful in the daemon.
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  /// Binds, listens and starts the accept thread. Fails with
  /// InvalidArgument/Internal if the address cannot be bound.
  static Result<std::unique_ptr<HttpServer>> Start(HttpServerOptions options,
                                                   Handler handler);

  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// The bound port (resolves option port 0 to the kernel's choice).
  int port() const { return port_; }

  /// Stops accepting, waits for every in-flight request to finish, then
  /// closes the listen socket. Idempotent and safe to call from a signal
  /// drain path (it only uses regular synchronization, no allocation-free
  /// guarantee is needed because it runs on the main thread, not in the
  /// handler itself).
  void Shutdown();

 private:
  HttpServer(HttpServerOptions options, Handler handler, int listen_fd,
             int port);

  void AcceptLoop();
  void HandleConnection(int fd);

  HttpServerOptions options_;
  Handler handler_;
  int listen_fd_;
  int port_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> shut_down_{false};
  std::atomic<int> in_flight_{0};
  std::unique_ptr<ThreadPool> pool_;
  std::thread accept_thread_;
};

}  // namespace serve
}  // namespace galvatron

#endif  // GALVATRON_SERVE_HTTP_SERVER_H_
