#include "serve/plan_cache.h"

namespace galvatron {
namespace serve {

bool PlanCache::Get(const std::string& key, std::string* value) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  *value = it->second->second;
  ++hits_;
  return true;
}

void PlanCache::Put(const std::string& key, std::string value) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(value);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(value));
  index_[key] = lru_.begin();
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
  }
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.size = lru_.size();
  s.capacity = capacity_;
  return s;
}

}  // namespace serve
}  // namespace galvatron
