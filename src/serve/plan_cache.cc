#include "serve/plan_cache.h"

#include <cstdio>
#include <fstream>
#include <vector>

#include "util/json.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace galvatron {
namespace serve {
namespace {

constexpr int kJournalVersion = 1;
constexpr char kJournalFormat[] = "galvatron-plan-cache";

std::string HeaderLine() {
  return StrFormat("{\"format\":\"%s\",\"version\":%d}\n", kJournalFormat,
                   kJournalVersion);
}

std::string EntryLine(const std::string& key, const std::string& value) {
  return "{\"key\":\"" + JsonEscape(key) + "\",\"value\":\"" +
         JsonEscape(value) + "\"}\n";
}

/// Validates the journal's first line. Any mismatch — wrong format tag,
/// future version, not JSON at all — means the file is not ours to trust.
bool ValidHeader(const std::string& line) {
  auto parsed = ParseJson(line);
  if (!parsed.ok() || parsed->kind != JsonValue::Kind::kObject) return false;
  auto format = GetString(*parsed, "format");
  auto version = GetInt(*parsed, "version", 0);
  return format.ok() && *format == kJournalFormat && version.ok() &&
         *version == kJournalVersion;
}

}  // namespace

PlanCache::PlanCache(const PlanCacheOptions& options)
    : capacity_(options.capacity),
      journal_path_(options.journal_path),
      journal_max_bytes_(options.journal_max_bytes) {
  if (!journal_path_.empty() && capacity_ > 0) {
    journal_enabled_ = true;
    LoadJournal();
  }
}

PlanCache::~PlanCache() { Compact(); }

std::shared_ptr<const std::string> PlanCache::Get(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  return it->second->second;
}

void PlanCache::PutLocked(const std::string& key,
                          std::shared_ptr<const std::string> value) {
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(value);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(value));
  index_[key] = lru_.begin();
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
  }
}

void PlanCache::Put(const std::string& key, std::string value) {
  if (capacity_ == 0) return;
  auto shared = std::make_shared<const std::string>(std::move(value));
  {
    std::lock_guard<std::mutex> lock(mu_);
    PutLocked(key, shared);
  }
  bool compact = false;
  {
    std::lock_guard<std::mutex> journal_lock(journal_mu_);
    if (journal_enabled_) {
      AppendLocked(key, *shared);
      // Size trigger checked AFTER the append so the entry is durable even
      // if the rewrite below fails; Compact itself reruns outside
      // journal_mu_ (it snapshots under mu_ first — the two locks are
      // never nested).
      compact = journal_enabled_ && journal_max_bytes_ > 0 &&
                journal_bytes_ > journal_max_bytes_;
      if (compact) ++journal_compactions_;
    }
  }
  if (compact) Compact();
}

void PlanCache::AppendLocked(const std::string& key,
                             const std::string& value) {
  const std::string line = EntryLine(key, value);
  std::ofstream out(journal_path_, std::ios::app | std::ios::binary);
  out << line;
  out.flush();
  if (!out) {
    GALVATRON_LOG(kWarning)
        << "plan-cache journal " << journal_path_
        << " is not writable; persistence disabled";
    journal_enabled_ = false;
    return;
  }
  journal_bytes_ += static_cast<int64_t>(line.size());
}

void PlanCache::LoadJournal() {
  // No locks needed: only the constructor calls this.
  std::ifstream in(journal_path_, std::ios::binary);
  bool corrupt = false;
  std::vector<std::pair<std::string, std::string>> restored;
  if (in) {
    std::string line;
    if (!std::getline(in, line) || !ValidHeader(line)) {
      GALVATRON_LOG(kWarning)
          << "plan-cache journal " << journal_path_
          << " has a missing or unrecognized version header; starting with "
             "an empty cache";
      corrupt = true;
    }
    int line_number = 1;
    while (!corrupt && std::getline(in, line)) {
      ++line_number;
      // A bare trailing newline is normal; anything else must parse. A
      // truncated final line (no trailing newline, e.g. a crash mid-append)
      // also lands here and fails to parse.
      if (line.empty()) continue;
      auto parsed = ParseJson(line);
      if (!parsed.ok() || parsed->kind != JsonValue::Kind::kObject) {
        corrupt = true;
      } else {
        auto key = GetString(*parsed, "key");
        auto value = GetString(*parsed, "value");
        if (!key.ok() || !value.ok()) {
          corrupt = true;
        } else {
          restored.emplace_back(*std::move(key), *std::move(value));
        }
      }
      if (corrupt) {
        GALVATRON_LOG(kWarning)
            << "plan-cache journal " << journal_path_ << " line "
            << line_number
            << " is corrupt or truncated; starting with an empty cache";
      }
    }
  }
  if (corrupt) restored.clear();
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Replay in file order: a later append supersedes (and out-recents) an
    // earlier one, reproducing the writing process's final LRU order.
    for (auto& [key, value] : restored) {
      PutLocked(key, std::make_shared<const std::string>(std::move(value)));
    }
    journal_restored_ = static_cast<int64_t>(lru_.size());
  }
  // Rewrite immediately: drops corrupt tails and superseded appends, and —
  // for a fresh path — creates the file with its header. A failure here is
  // the unwritable-path case: warn once and run in-memory only.
  Compact();
}

void PlanCache::Compact() {
  std::vector<std::pair<std::string, std::string>> entries;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Oldest first, so replaying the compacted file restores this recency.
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
      entries.emplace_back(it->first, *it->second);
    }
  }
  std::lock_guard<std::mutex> journal_lock(journal_mu_);
  if (!journal_enabled_) return;
  const std::string tmp_path = journal_path_ + ".tmp";
  int64_t written = 0;
  {
    std::ofstream out(tmp_path, std::ios::trunc | std::ios::binary);
    const std::string header = HeaderLine();
    out << header;
    written += static_cast<int64_t>(header.size());
    for (const auto& [key, value] : entries) {
      const std::string line = EntryLine(key, value);
      out << line;
      written += static_cast<int64_t>(line.size());
    }
    out.flush();
    if (!out) {
      GALVATRON_LOG(kWarning)
          << "plan-cache journal " << journal_path_
          << " is not writable; persistence disabled";
      journal_enabled_ = false;
      std::remove(tmp_path.c_str());
      return;
    }
  }
  if (std::rename(tmp_path.c_str(), journal_path_.c_str()) != 0) {
    GALVATRON_LOG(kWarning)
        << "plan-cache journal rename to " << journal_path_
        << " failed; persistence disabled";
    journal_enabled_ = false;
    std::remove(tmp_path.c_str());
    return;
  }
  journal_bytes_ = written;
}

PlanCache::Stats PlanCache::stats() const {
  Stats s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.hits = hits_;
    s.misses = misses_;
    s.evictions = evictions_;
    s.size = lru_.size();
    s.capacity = capacity_;
    s.journal_restored = journal_restored_;
  }
  std::lock_guard<std::mutex> journal_lock(journal_mu_);
  s.journal_enabled = journal_enabled_;
  s.journal_bytes = journal_bytes_;
  s.journal_compactions = journal_compactions_;
  return s;
}

}  // namespace serve
}  // namespace galvatron
