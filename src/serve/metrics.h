#ifndef GALVATRON_SERVE_METRICS_H_
#define GALVATRON_SERVE_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace galvatron {
namespace serve {

/// Process-lifetime serving telemetry, rendered in the Prometheus text
/// exposition format by GET /metrics. Thread-safe: counters are updated
/// from the accept thread and every worker.
class ServeMetrics {
 public:
  ServeMetrics() = default;
  ServeMetrics(const ServeMetrics&) = delete;
  ServeMetrics& operator=(const ServeMetrics&) = delete;

  /// One completed request on `endpoint` (the route, not the raw target)
  /// answered with `http_status` after `latency_seconds` of handling.
  void RecordRequest(const std::string& endpoint, int http_status,
                     double latency_seconds);

  /// One connection dropped by admission control (429 before handling).
  void RecordRejected() { rejected_.fetch_add(1, std::memory_order_relaxed); }

  /// One /v1/measure request that asked for (and received) the traced
  /// attribution summary via "explain": true.
  void RecordExplain() { explain_.fetch_add(1, std::memory_order_relaxed); }

  /// Plan-cache lookup outcome of one /v1/plan request.
  void RecordPlanCache(bool hit);

  /// One /v1/plan request that joined an identical in-flight search and
  /// replayed the leader's response instead of searching itself.
  void RecordCoalesced() {
    coalesced_.fetch_add(1, std::memory_order_relaxed);
  }

  /// One /v1/plan search that warm-started from cached DP frontiers
  /// (SearchStats::dp_frontier_hits > 0) instead of running fully cold.
  void RecordWarmStart() {
    warm_start_.fetch_add(1, std::memory_order_relaxed);
  }

  /// One async /v1/plan submission (HTTP 202 with a poll handle).
  void RecordAsyncSubmit() {
    async_submitted_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Outcome of one POST /v1/calibrate: `applied` when the fitted profile
  /// validated and was swapped in. Applying resets the staleness gauge.
  void RecordCalibration(bool applied) {
    if (applied) {
      calibration_applied_.fetch_add(1, std::memory_order_relaxed);
      measures_since_calibration_.store(0, std::memory_order_relaxed);
    } else {
      calibration_rejected_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// One /v1/measure that captured calibration samples; drives the
  /// staleness gauge (traced measures seen since the active profile was
  /// fitted — a large value means the profile no longer reflects recent
  /// observations).
  void RecordCalibrationSamples() {
    measures_since_calibration_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Adds one request's cost-cache lookup deltas (SearchStats'
  /// cost_cache_hits/misses). Deltas, not lifetime counters, so the totals
  /// aggregate correctly across many PlanningContexts, each with its own
  /// cache.
  void RecordCostCache(int64_t delta_hits, int64_t delta_misses);

  void IncInFlight() { in_flight_.fetch_add(1, std::memory_order_relaxed); }
  void DecInFlight() { in_flight_.fetch_sub(1, std::memory_order_relaxed); }

  int64_t plan_cache_hits() const;
  int64_t rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }
  int64_t explain() const {
    return explain_.load(std::memory_order_relaxed);
  }
  int64_t coalesced() const {
    return coalesced_.load(std::memory_order_relaxed);
  }
  int64_t warm_start() const {
    return warm_start_.load(std::memory_order_relaxed);
  }
  int64_t calibration_applied() const {
    return calibration_applied_.load(std::memory_order_relaxed);
  }
  int64_t calibration_rejected() const {
    return calibration_rejected_.load(std::memory_order_relaxed);
  }

  /// Prometheus text exposition (version 0.0.4) of every metric:
  /// request counts by endpoint/status, latency histograms per endpoint,
  /// plan-cache and cost-cache hit/miss counters, in-flight gauge and the
  /// admission-rejected counter.
  std::string Render() const;

 private:
  struct Histogram {
    std::vector<int64_t> buckets;  // cumulative counts, one per bound + +Inf
    double sum = 0.0;
    int64_t count = 0;
  };

  mutable std::mutex mu_;
  std::map<std::pair<std::string, int>, int64_t> requests_;  // (endpoint, status)
  std::map<std::string, Histogram> latency_;                 // endpoint
  int64_t plan_cache_hits_ = 0;
  int64_t plan_cache_misses_ = 0;
  int64_t cost_cache_hits_ = 0;
  int64_t cost_cache_misses_ = 0;
  std::atomic<int64_t> in_flight_{0};
  std::atomic<int64_t> rejected_{0};
  std::atomic<int64_t> explain_{0};
  std::atomic<int64_t> coalesced_{0};
  std::atomic<int64_t> warm_start_{0};
  std::atomic<int64_t> async_submitted_{0};
  std::atomic<int64_t> calibration_applied_{0};
  std::atomic<int64_t> calibration_rejected_{0};
  std::atomic<int64_t> measures_since_calibration_{0};
};

}  // namespace serve
}  // namespace galvatron

#endif  // GALVATRON_SERVE_METRICS_H_
