#ifndef GALVATRON_SERVE_HTTP_H_
#define GALVATRON_SERVE_HTTP_H_

#include <cstddef>
#include <map>
#include <string>
#include <string_view>

#include "util/result.h"

namespace galvatron {
namespace serve {

/// One parsed HTTP/1.1 request. Header names are lower-cased; values are
/// whitespace-trimmed. The server speaks one request per connection
/// (responses carry "Connection: close"), which keeps the state machine
/// trivial and is plenty for a planning service whose unit of work is a
/// full strategy sweep.
struct HttpRequest {
  std::string method;  // "GET", "POST", ...
  std::string target;  // "/v1/plan"
  std::map<std::string, std::string> headers;
  std::string body;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

/// Canonical reason phrase for the handful of status codes the service
/// emits; "Unknown" otherwise.
std::string_view HttpReasonPhrase(int status);

/// Maps a library Status to the HTTP status code of a structured error
/// response: InvalidArgument 400, NotFound 404, OutOfMemory 413 (bodies and
/// memory budgets both arrive as byte limits), FailedPrecondition and
/// Infeasible 422, Cancelled 504 (server-side deadline), Unimplemented 501,
/// everything else 500.
int HttpStatusFromStatus(const Status& status);

/// Serializes a response with Content-Length and Connection: close.
std::string SerializeHttpResponse(const HttpResponse& response);

/// Builds the structured JSON error body every non-2xx response carries:
/// `{"error": {"code": "<StatusCodeName>", "message": "..."}}`. The HTTP
/// status defaults to HttpStatusFromStatus(status); pass `http_status` to
/// override (the server maps a read-side Cancelled to 408, not 504).
HttpResponse MakeJsonErrorResponse(const Status& status, int http_status = 0);

/// Reads and parses one request from a connected socket. The caller is
/// expected to have set SO_RCVTIMEO; a timeout or mid-request EOF returns
/// Cancelled (the server answers 408), a Content-Length above
/// `max_body_bytes` returns OutOfMemory WITHOUT reading the body (the
/// server answers 413 immediately), Transfer-Encoding returns
/// Unimplemented, and any malformed framing returns InvalidArgument.
Result<HttpRequest> ReadHttpRequest(int fd, size_t max_body_bytes);

/// Writes the whole buffer, retrying on partial writes and EINTR. Returns
/// false on error (peer gone); the caller just closes the connection.
bool WriteFully(int fd, const std::string& data);

/// Minimal blocking HTTP/1.1 client for the CLI's --server mode, the
/// integration tests and the throughput bench: connects to `host` (an IPv4
/// literal or "localhost"), sends one request with Connection: close, and
/// reads the response until EOF. `timeout_ms` bounds connect/read/write
/// individually.
Result<HttpResponse> HttpFetch(const std::string& host, int port,
                               const std::string& method,
                               const std::string& target,
                               const std::string& body,
                               int timeout_ms = 30000);

}  // namespace serve
}  // namespace galvatron

#endif  // GALVATRON_SERVE_HTTP_H_
